# docs-check: fails when the top-level documentation is missing or rotten.
#
# Run as a script:  cmake -DREPO_ROOT=<repo> -P cmake/docs_check.cmake
# Wired into ctest as the `docs-check` target (see CMakeLists.txt), so
# tier-1 catches doc rot the same way it catches test failures:
#   * README.md and ARCHITECTURE.md must exist at the repo root;
#   * every relative markdown link `[text](path)` in a top-level .md file
#     must point at an existing file or directory (external http(s)/
#     mailto links and pure #anchors are skipped; a trailing #anchor on a
#     relative link is stripped before the existence check).
if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "docs-check: pass -DREPO_ROOT=<repository root>")
endif()

set(failures 0)

foreach(required README.md ARCHITECTURE.md)
  if(NOT EXISTS "${REPO_ROOT}/${required}")
    message(SEND_ERROR "docs-check: required document ${required} is missing")
    math(EXPR failures "${failures} + 1")
  endif()
endforeach()

file(GLOB top_docs "${REPO_ROOT}/*.md")
foreach(doc ${top_docs})
  file(READ "${doc}" content)
  get_filename_component(doc_name "${doc}" NAME)
  # Markdown links: ](target). Extracted with a consume loop — MATCHALL
  # results containing ']' confuse CMake's list parsing — over the
  # characters link targets actually use (no spaces or parentheses).
  set(rest "${content}")
  while(rest MATCHES "\\]\\(([A-Za-z0-9_./#:?=%&-]+)\\)(.*)")
    set(target "${CMAKE_MATCH_1}")
    set(rest "${CMAKE_MATCH_2}")
    if(target MATCHES "^(https?|mailto):" OR target MATCHES "^#")
      continue()
    endif()
    string(REGEX REPLACE "#.*$" "" target "${target}")
    if(target STREQUAL "")
      continue()
    endif()
    if(NOT EXISTS "${REPO_ROOT}/${target}")
      message(SEND_ERROR
              "docs-check: ${doc_name} links to '${target}', which does not exist")
      math(EXPR failures "${failures} + 1")
    endif()
  endwhile()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "docs-check: ${failures} problem(s) found")
endif()
message(STATUS "docs-check: README.md/ARCHITECTURE.md present, all relative links resolve")
