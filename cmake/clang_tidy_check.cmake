# lint-check: run clang-tidy over every src/ translation unit against the
# build tree's compile_commands.json. Checks come from the repo-root
# .clang-tidy (bugprone-*, performance-*, concurrency-*).
#
# Invoked by ctest as
#   cmake -DREPO_ROOT=... -DBUILD_DIR=... -P cmake/clang_tidy_check.cmake
#
# Hosts without clang-tidy pass with a notice: the target exists so that
# machines *with* the tool gate on it, not to make tier-1 depend on an
# optional toolchain component.

if(NOT DEFINED REPO_ROOT OR NOT DEFINED BUILD_DIR)
  message(FATAL_ERROR "lint-check: REPO_ROOT and BUILD_DIR must be defined")
endif()

find_program(CLANG_TIDY_EXE clang-tidy)
if(NOT CLANG_TIDY_EXE)
  message(STATUS "lint-check: clang-tidy not installed on this host; skipping (pass)")
  return()
endif()

if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
  message(FATAL_ERROR "lint-check: ${BUILD_DIR}/compile_commands.json missing "
                      "(CMAKE_EXPORT_COMPILE_COMMANDS should have produced it)")
endif()

file(GLOB_RECURSE LINT_SOURCES "${REPO_ROOT}/src/*.cpp")
list(SORT LINT_SOURCES)

set(FAILED_FILES "")
foreach(source ${LINT_SOURCES})
  message(STATUS "lint-check: ${source}")
  execute_process(
    COMMAND ${CLANG_TIDY_EXE} -p ${BUILD_DIR} --quiet ${source}
    RESULT_VARIABLE tidy_result
    OUTPUT_VARIABLE tidy_output
    ERROR_VARIABLE tidy_errors)
  if(NOT tidy_result EQUAL 0)
    message(STATUS "${tidy_output}")
    list(APPEND FAILED_FILES ${source})
  endif()
endforeach()

if(FAILED_FILES)
  list(LENGTH FAILED_FILES n_failed)
  message(FATAL_ERROR "lint-check: clang-tidy reported problems in ${n_failed} file(s): ${FAILED_FILES}")
endif()
message(STATUS "lint-check: clang-tidy clean over src/")
