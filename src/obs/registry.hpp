// mdac::obs::Registry — the unified metrics registry (ISSUE 9).
//
// The repo grew five disconnected telemetry surfaces (EngineMetrics,
// DispatchStats, BreakerStats, CacheStats, the PAP audit log); the
// paper's monitoring/audit argument (§3.2) needs them in ONE place an
// operator can scrape. The registry holds named counter / gauge /
// histogram instruments and renders them in Prometheus text exposition
// format (`expose()` — stable ordering, escaped label values), so the
// future wire front-end can serve /metrics without inventing another
// format.
//
// Two registration shapes:
//
//   * owned instruments — `counter()/gauge()/histogram()` create an
//     instrument the registry owns and hot paths update directly.
//     Counters are optionally *sharded*: N cache-line-padded cells
//     (exactly the EngineMetrics per-worker-counter idiom) so concurrent
//     writers never rendezvous on one line; `value()` sums on read.
//     Labels are pre-interned at registration — the label block is
//     rendered to its final `{k="v",...}` string once, and the hot path
//     never touches a string again.
//   * collectors — subsystems that already keep their own counters
//     (EngineMetrics, DispatchStats, BreakerStats, CacheStats,
//     HeartbeatMonitor, the PAP audit ring) register a callback that
//     reports current values into a MetricSink at expose time. Each
//     subsystem exposes a `register_metrics(Registry&)` member doing
//     exactly this. The callback captures the subsystem by reference:
//     either unregister (remove_collector) before the subsystem dies, or
//     let the registry die first (the usual shape in tests and tools).
//
// Thread-safety: registration and expose() serialise on one mutex;
// owned-instrument updates are relaxed atomics (safe from any thread,
// any time). Collector callbacks run under the registry mutex on the
// expose()-calling thread — they must be safe to invoke from it (the
// adapted subsystems all read relaxed atomics or single-threaded sim
// state there).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mdac::obs {

/// One metric label. Values are escaped at render time, so any bytes go.
struct Label {
  std::string key;
  std::string value;
};

/// Renders `{k="v",...}` with Prometheus escaping (\\, \", \n) — empty
/// string for no labels. Exposed for tests; Registry pre-renders it at
/// instrument registration ("pre-interned symbol pairs").
std::string render_label_block(const std::vector<Label>& labels);

/// Monotonic counter over N cache-line-padded shards. Shard by worker
/// index (like EngineMetrics::WorkerCounters) so the hot path's
/// fetch_add never contends with a neighbour's line; single-shard
/// counters are just a padded atomic.
class Counter {
 public:
  explicit Counter(std::size_t shards = 1)
      : shards_(shards == 0 ? 1 : shards),
        cells_(std::make_unique<Cell[]>(shards_)) {}

  void add(std::uint64_t n = 1, std::size_t shard = 0) {
    cells_[shard < shards_ ? shard : 0].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment(std::size_t shard = 0) { add(1, shard); }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < shards_; ++i) {
      total += cells_[i].v.load(std::memory_order_relaxed);
    }
    return total;
  }

  std::size_t shards() const { return shards_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::size_t shards_;
  std::unique_ptr<Cell[]> cells_;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram (the EngineMetrics latency-histogram shape):
/// bucket i counts observations in [2^(i-1), 2^i), so 64 buckets cover
/// the full uint64 range with ~1.5x relative error — enough for latency
/// percentiles without per-instrument bucket configuration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t v);

  struct Snapshot {
    std::uint64_t counts[kBuckets] = {};
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    /// Upper bound of bucket `i` as Prometheus `le` (2^i).
    static double upper_bound(std::size_t i);
  };
  Snapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

/// What a collector writes into at expose time. All values are reported
/// fresh on every call; the sink owns ordering and formatting.
class MetricSink {
 public:
  void counter(std::string_view name, std::string_view help, double value,
               const std::vector<Label>& labels = {});
  void gauge(std::string_view name, std::string_view help, double value,
             const std::vector<Label>& labels = {});
  /// A full log2 histogram (cumulative buckets are derived here).
  void histogram(std::string_view name, std::string_view help,
                 const Histogram::Snapshot& snapshot,
                 const std::vector<Label>& labels = {});

 private:
  friend class Registry;
  struct Sample {
    std::string label_block;  // pre-rendered {k="v",...}
    double value = 0;
    // Histogram payload (empty for counter/gauge samples).
    std::vector<std::pair<double, std::uint64_t>> cumulative;  // (le, count)
    std::uint64_t count = 0;
    double sum = 0;
  };
  struct Family {
    char type = 'c';  // 'c' counter, 'g' gauge, 'h' histogram
    std::string help;
    std::vector<Sample> samples;
  };
  Family& family(std::string_view name, std::string_view help, char type);

  std::map<std::string, Family, std::less<>> families_;
};

using Collector = std::function<void(MetricSink&)>;

class Registry {
 public:
  /// Registers (or returns the existing) instrument under
  /// (name, labels). Re-registering with a different type throws
  /// std::logic_error — one name, one type, like Prometheus demands.
  Counter& counter(std::string name, std::string help,
                   std::vector<Label> labels = {}, std::size_t shards = 1);
  Gauge& gauge(std::string name, std::string help, std::vector<Label> labels = {});
  Histogram& histogram(std::string name, std::string help,
                       std::vector<Label> labels = {});

  /// Adds a pull-time collector; returns an id for remove_collector.
  std::uint64_t add_collector(Collector collector);
  void remove_collector(std::uint64_t id);

  /// Appends the full Prometheus text exposition to `out`: families
  /// sorted by name, samples sorted by label block, `# HELP` / `# TYPE`
  /// once per family, label values escaped. Ends with a newline.
  void expose(std::string& out) const;
  std::string expose() const {
    std::string out;
    expose(out);
    return out;
  }

 private:
  struct Instrument {
    std::string name;
    std::string help;
    std::string label_block;
    char type = 'c';
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Instrument& instrument(std::string name, std::string help,
                         std::vector<Label> labels, char type);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Instrument>> instruments_;
  std::map<std::string, std::size_t> by_key_;  // name + label block -> index
  std::vector<std::pair<std::uint64_t, Collector>> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

}  // namespace mdac::obs
