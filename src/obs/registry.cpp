#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mdac::obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
void append_escaped_value(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

/// HELP text escaping: backslash and newline only (quotes are fine).
void append_escaped_help(std::string& out, std::string_view help) {
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

/// Renders a double the way Prometheus clients do: integers without a
/// fraction, everything else shortest-roundtrip-ish, +Inf spelled out.
void append_value(std::string& out, double value) {
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_sample_line(std::string& out, std::string_view name,
                        std::string_view label_block, double value) {
  out += name;
  out += label_block;
  out += ' ';
  append_value(out, value);
  out += '\n';
}

/// Merges an extra label into a pre-rendered block (histogram `le`).
std::string with_extra_label(std::string_view block, std::string_view key,
                             std::string_view value) {
  std::string out;
  if (block.empty()) {
    out += '{';
  } else {
    out.append(block.substr(0, block.size() - 1));  // drop trailing '}'
    out += ',';
  }
  out += key;
  out += "=\"";
  append_escaped_value(out, value);
  out += "\"}";
  return out;
}

}  // namespace

std::string render_label_block(const std::vector<Label>& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ',';
    first = false;
    out += label.key;
    out += "=\"";
    append_escaped_value(out, label.value);
    out += '"';
  }
  out += '}';
  return out;
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

void Histogram::observe(std::uint64_t v) {
  const std::size_t bucket = std::min<std::size_t>(std::bit_width(v), kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::Snapshot::upper_bound(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i));
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.total += s.counts[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------
// MetricSink
// ---------------------------------------------------------------------

MetricSink::Family& MetricSink::family(std::string_view name, std::string_view help,
                                       char type) {
  const auto it = families_.find(name);
  if (it != families_.end()) return it->second;
  Family f;
  f.type = type;
  f.help = std::string(help);
  return families_.emplace(std::string(name), std::move(f)).first->second;
}

void MetricSink::counter(std::string_view name, std::string_view help, double value,
                         const std::vector<Label>& labels) {
  Sample s;
  s.label_block = render_label_block(labels);
  s.value = value;
  family(name, help, 'c').samples.push_back(std::move(s));
}

void MetricSink::gauge(std::string_view name, std::string_view help, double value,
                       const std::vector<Label>& labels) {
  Sample s;
  s.label_block = render_label_block(labels);
  s.value = value;
  family(name, help, 'g').samples.push_back(std::move(s));
}

void MetricSink::histogram(std::string_view name, std::string_view help,
                           const Histogram::Snapshot& snapshot,
                           const std::vector<Label>& labels) {
  Sample s;
  s.label_block = render_label_block(labels);
  // Sparse cumulative buckets: only the buckets that changed the
  // cumulative count get a `le` line (plus +Inf, emitted at render
  // time) — a 64-bucket log2 histogram would otherwise be 64 lines of
  // repeats. Valid exposition: cumulative counts stay monotone.
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (snapshot.counts[i] == 0) continue;
    cumulative += snapshot.counts[i];
    s.cumulative.emplace_back(Histogram::Snapshot::upper_bound(i), cumulative);
  }
  s.count = snapshot.total;
  s.sum = static_cast<double>(snapshot.sum);
  family(name, help, 'h').samples.push_back(std::move(s));
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Registry::Instrument& Registry::instrument(std::string name, std::string help,
                                           std::vector<Label> labels, char type) {
  std::lock_guard lock(mutex_);
  std::string block = render_label_block(labels);
  const std::string key = name + block;
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    Instrument& existing = *instruments_[it->second];
    if (existing.type != type) {
      throw std::logic_error("obs::Registry: metric '" + name +
                             "' re-registered with a different type");
    }
    return existing;
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = std::move(name);
  inst->help = std::move(help);
  inst->label_block = std::move(block);
  inst->type = type;
  instruments_.push_back(std::move(inst));
  by_key_.emplace(key, instruments_.size() - 1);
  return *instruments_.back();
}

Counter& Registry::counter(std::string name, std::string help,
                           std::vector<Label> labels, std::size_t shards) {
  Instrument& inst =
      instrument(std::move(name), std::move(help), std::move(labels), 'c');
  if (inst.counter == nullptr) inst.counter = std::make_unique<Counter>(shards);
  return *inst.counter;
}

Gauge& Registry::gauge(std::string name, std::string help, std::vector<Label> labels) {
  Instrument& inst =
      instrument(std::move(name), std::move(help), std::move(labels), 'g');
  if (inst.gauge == nullptr) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

Histogram& Registry::histogram(std::string name, std::string help,
                               std::vector<Label> labels) {
  Instrument& inst =
      instrument(std::move(name), std::move(help), std::move(labels), 'h');
  if (inst.histogram == nullptr) inst.histogram = std::make_unique<Histogram>();
  return *inst.histogram;
}

std::uint64_t Registry::add_collector(Collector collector) {
  std::lock_guard lock(mutex_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return id;
}

void Registry::remove_collector(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  std::erase_if(collectors_, [id](const auto& entry) { return entry.first == id; });
}

void Registry::expose(std::string& out) const {
  std::lock_guard lock(mutex_);
  MetricSink sink;
  // Owned instruments report themselves through the same sink as
  // collectors, so ordering and rendering live in exactly one place.
  for (const auto& inst : instruments_) {
    MetricSink::Sample s;
    s.label_block = inst->label_block;
    switch (inst->type) {
      case 'c':
        s.value = static_cast<double>(inst->counter->value());
        break;
      case 'g':
        s.value = inst->gauge->value();
        break;
      case 'h': {
        const Histogram::Snapshot snap = inst->histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (snap.counts[i] == 0) continue;
          cumulative += snap.counts[i];
          s.cumulative.emplace_back(Histogram::Snapshot::upper_bound(i), cumulative);
        }
        s.count = snap.total;
        s.sum = static_cast<double>(snap.sum);
        break;
      }
      default:
        break;
    }
    sink.family(inst->name, inst->help, inst->type).samples.push_back(std::move(s));
  }
  for (const auto& [id, collector] : collectors_) {
    (void)id;
    collector(sink);
  }

  // families_ is a std::map: name order is already stable. Samples are
  // sorted by their pre-rendered label block for a deterministic layout
  // regardless of registration order (the golden test pins this).
  for (auto& [name, fam] : sink.families_) {
    std::sort(fam.samples.begin(), fam.samples.end(),
              [](const MetricSink::Sample& a, const MetricSink::Sample& b) {
                return a.label_block < b.label_block;
              });
    out += "# HELP ";
    out += name;
    out += ' ';
    append_escaped_help(out, fam.help);
    out += '\n';
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += fam.type == 'c' ? "counter" : fam.type == 'g' ? "gauge" : "histogram";
    out += '\n';
    for (const MetricSink::Sample& s : fam.samples) {
      if (fam.type != 'h') {
        append_sample_line(out, name, s.label_block, s.value);
        continue;
      }
      for (const auto& [le, count] : s.cumulative) {
        char le_text[32];
        std::snprintf(le_text, sizeof(le_text), "%.17g", le);
        append_sample_line(out, std::string(name) + "_bucket",
                           with_extra_label(s.label_block, "le", le_text),
                           static_cast<double>(count));
      }
      append_sample_line(out, std::string(name) + "_bucket",
                         with_extra_label(s.label_block, "le", "+Inf"),
                         static_cast<double>(s.count));
      append_sample_line(out, std::string(name) + "_sum", s.label_block, s.sum);
      append_sample_line(out, std::string(name) + "_count", s.label_block,
                         static_cast<double>(s.count));
    }
  }
}

}  // namespace mdac::obs
