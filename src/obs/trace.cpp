#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/registry.hpp"

namespace mdac::obs {

namespace {

/// splitmix64 — turns the dense admission sequence into well-mixed,
/// collision-free trace ids (bijective, so distinct admissions can
/// never share an id).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void append_ns(std::string& out, std::uint64_t ns) {
  char buf[48];
  if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", ns);
  }
  out += buf;
}

const char* reply_event_name(std::uint64_t code) {
  switch (static_cast<ReplyEvent>(code)) {
    case ReplyEvent::kTimeout: return "timeout";
    case ReplyEvent::kUndecodable: return "undecodable";
    case ReplyEvent::kRetryable: return "retryable";
    case ReplyEvent::kDecided: return "decided";
  }
  return "?";
}

const char* breaker_event_name(std::uint64_t code) {
  switch (static_cast<BreakerEvent>(code)) {
    case BreakerEvent::kSkip: return "skip";
    case BreakerEvent::kProbe: return "probe";
    case BreakerEvent::kOpen: return "open";
  }
  return "?";
}

void append_span(std::string& out, const Trace& trace, const Span& span) {
  out += "  +";
  append_ns(out, span.at_ns >= trace.started_ns ? span.at_ns - trace.started_ns : 0);
  out += ' ';
  out += to_string(span.kind);
  char buf[128];
  switch (span.kind) {
    case SpanKind::kAdmission:
      break;
    case SpanKind::kQueueWait:
      out += " waited=";
      append_ns(out, span.a);
      break;
    case SpanKind::kCacheProbe:
      out += span.a == 0 ? " level=miss" : (span.a == 1 ? " level=L1" : " level=L2");
      if (span.b != 0) {
        std::snprintf(buf, sizeof(buf), " retries=%" PRIu64, span.b);
        out += buf;
      }
      break;
    case SpanKind::kBatch:
      std::snprintf(buf, sizeof(buf), " worker=%" PRIu64 " size=%" PRIu64, span.a,
                    span.b);
      out += buf;
      break;
    case SpanKind::kEvaluate:
      std::snprintf(buf, sizeof(buf),
                    " worker=%" PRIu64 " partitions=%" PRIu64 " compiled=%" PRIu64,
                    span.a, span.b, span.c);
      out += buf;
      break;
    case SpanKind::kObligation:
      std::snprintf(buf, sizeof(buf), " id=%s ok=%s",
                    std::string(span.tag_view()).c_str(), span.a != 0 ? "yes" : "no");
      out += buf;
      break;
    case SpanKind::kDispatchTry:
      std::snprintf(buf, sizeof(buf), " replica=%s wave=%" PRIu64,
                    std::string(span.tag_view()).c_str(), span.a);
      out += buf;
      break;
    case SpanKind::kDispatchReply:
      std::snprintf(buf, sizeof(buf), " replica=%s event=%s",
                    std::string(span.tag_view()).c_str(), reply_event_name(span.a));
      out += buf;
      break;
    case SpanKind::kBackoff:
      std::snprintf(buf, sizeof(buf), " delay=%" PRIu64 "ms wave=%" PRIu64, span.a,
                    span.b);
      out += buf;
      break;
    case SpanKind::kBreakerEvent:
      std::snprintf(buf, sizeof(buf), " replica=%s event=%s",
                    std::string(span.tag_view()).c_str(), breaker_event_name(span.a));
      out += buf;
      break;
    case SpanKind::kOutcome:
      if (!span.tag_view().empty()) {
        out += " status=";
        out += span.tag_view();
      }
      break;
  }
  out += '\n';
}

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmission: return "admission";
    case SpanKind::kQueueWait: return "queue-wait";
    case SpanKind::kCacheProbe: return "cache-probe";
    case SpanKind::kBatch: return "batch";
    case SpanKind::kEvaluate: return "evaluate";
    case SpanKind::kObligation: return "obligation";
    case SpanKind::kDispatchTry: return "dispatch-try";
    case SpanKind::kDispatchReply: return "dispatch-reply";
    case SpanKind::kBackoff: return "backoff";
    case SpanKind::kBreakerEvent: return "breaker";
    case SpanKind::kOutcome: return "outcome";
  }
  return "?";
}

const char* to_string(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kDecided: return "decided";
    case TraceOutcome::kShedQueueFull: return "shed-queue-full";
    case TraceOutcome::kShedDeadline: return "shed-deadline";
    case TraceOutcome::kShutdown: return "shutdown";
    case TraceOutcome::kFailsafe: return "failsafe";
  }
  return "?";
}

DecisionTracer::DecisionTracer(ObsConfig config) : config_(config) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  ring_.reserve(config_.ring_capacity);
}

TraceHandle DecisionTracer::admit() {
  const std::uint64_t seq = admitted_.fetch_add(1, std::memory_order_relaxed) + 1;
  TraceHandle handle;
  handle.id = splitmix64(seq);
  if (handle.id == 0) handle.id = 1;  // 0 means "no trace" to callers
  handle.sampled =
      config_.sample_every_n != 0 && seq % config_.sample_every_n == 0;
  if (handle.sampled) sampled_.fetch_add(1, std::memory_order_relaxed);
  return handle;
}

void DecisionTracer::publish(const Trace& trace) {
  std::lock_guard lock(mutex_);
  ++published_;
  if (trace.anomaly) ++anomalies_;
  if (ring_.size() < config_.ring_capacity) {
    ring_.push_back(trace);
    return;
  }
  // Ring full: overwrite the oldest slot (next_slot_ walks the ring).
  ring_[next_slot_] = trace;
  next_slot_ = (next_slot_ + 1) % ring_.size();
}

std::vector<Trace> DecisionTracer::traces() const {
  std::lock_guard lock(mutex_);
  return ring_;
}

std::optional<Trace> DecisionTracer::find(std::uint64_t trace_id) const {
  std::lock_guard lock(mutex_);
  for (const Trace& t : ring_) {
    if (t.trace_id == trace_id) return t;
  }
  return std::nullopt;
}

std::optional<Trace> DecisionTracer::worst_latency() const {
  std::lock_guard lock(mutex_);
  const auto it = std::max_element(
      ring_.begin(), ring_.end(), [](const Trace& a, const Trace& b) {
        return a.latency_ns() < b.latency_ns();
      });
  if (it == ring_.end()) return std::nullopt;
  return *it;
}

std::vector<Trace> DecisionTracer::with_outcome(TraceOutcome outcome) const {
  std::lock_guard lock(mutex_);
  std::vector<Trace> matches;
  for (const Trace& t : ring_) {
    if (t.outcome == outcome) matches.push_back(t);
  }
  return matches;
}

std::uint64_t DecisionTracer::published_total() const {
  std::lock_guard lock(mutex_);
  return published_;
}

std::uint64_t DecisionTracer::anomalies_total() const {
  std::lock_guard lock(mutex_);
  return anomalies_;
}

std::uint64_t DecisionTracer::ring_dropped_total() const {
  std::lock_guard lock(mutex_);
  return published_ > ring_.size() ? published_ - ring_.size() : 0;
}

std::uint64_t DecisionTracer::register_metrics(Registry& registry) const {
  return registry.add_collector([this](MetricSink& sink) {
    sink.counter("mdac_obs_traces_admitted_total",
                 "Requests that passed tracer admission (traced or not).",
                 static_cast<double>(admitted_total()));
    sink.counter("mdac_obs_traces_sampled_total",
                 "Admissions head-sampled for span recording.",
                 static_cast<double>(sampled_total()));
    sink.counter("mdac_obs_traces_published_total",
                 "Completed traces published to the explain ring.",
                 static_cast<double>(published_total()));
    sink.counter("mdac_obs_trace_anomalies_total",
                 "Published traces flagged anomalous (shed/fail-safe/Indeterminate).",
                 static_cast<double>(anomalies_total()));
    sink.counter("mdac_obs_traces_evicted_total",
                 "Published traces overwritten by ring wrap.",
                 static_cast<double>(ring_dropped_total()));
  });
}

std::string render(const Trace& trace) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "trace %016" PRIx64 " outcome=%s decision=%s",
                trace.trace_id, to_string(trace.outcome),
                core::to_string(trace.decision));
  out += buf;
  if (trace.anomaly) out += " [anomaly]";
  out += '\n';
  out += "  latency=";
  append_ns(out, trace.latency_ns());
  if (trace.worker != Trace::kNoWorker) {
    std::snprintf(buf, sizeof(buf), " worker=%u", trace.worker);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " snapshot=v%" PRIu64 " cache=%s",
                trace.snapshot_version,
                trace.cache_level == 0   ? "miss"
                : trace.cache_level == 1 ? "L1"
                                         : "L2");
  out += buf;
  out += '\n';
  for (std::uint32_t i = 0; i < trace.span_count; ++i) {
    append_span(out, trace, trace.spans[i]);
  }
  if (trace.spans_dropped != 0) {
    std::snprintf(buf, sizeof(buf), "  (%u spans dropped)\n", trace.spans_dropped);
    out += buf;
  }
  return out;
}

}  // namespace mdac::obs
