// mdac::obs decision tracing — per-request explain traces (ISSUE 9).
//
// Answers the question the paper's monitoring argument keeps asking:
// *why* was this request denied/shed — on which worker, at which cache
// level, against which snapshot version, after how long in the queue?
// Every admission gets a 64-bit trace id (carried on EngineResult /
// pep::Enforcement so callers can correlate); a *sampled* admission
// additionally records a bounded sequence of spans with monotonic-clock
// timestamps as it moves through the flow:
//
//   kAdmission     PEP/engine admission (trace start)
//   kQueueWait     dequeue by a worker (a = wait ns)
//   kCacheProbe    decision-cache probe (a = level: 0 miss / 1 L1 / 2 L2,
//                  b = seqlock read retries)
//   kBatch         batch membership (a = worker, b = batch size)
//   kEvaluate      replica evaluation (a = worker, b = partitions probed,
//                  c = compiled policies in the working set)
//   kObligation    PEP obligation discharge (tag = id, a = ok)
//   kDispatchTry   ReplicatedPdpClient RPC try (tag = replica, a = wave)
//   kDispatchReply reply classification (tag = replica, a = ReplyEvent)
//   kBackoff       inter-wave backoff (a = delay ms, b = next wave)
//   kBreakerEvent  breaker gate/trip (tag = replica, a = BreakerEvent)
//   kOutcome       completion (trace end, tag = status)
//
// Sampling (ObsConfig): head-sample every Nth admission
// (sample_every_n; 0 = off), PLUS tail-sample every anomaly — sheds,
// dispatch fail-safes, Indeterminate outcomes — regardless of the head
// decision (always_sample_anomalies). A tail-sampled trace is
// reconstructed at completion from what the completion site knows
// (admission time, cache level, worker, snapshot version, outcome), so
// the interesting requests are never the ones that got away.
//
// Hot-path cost contract: an UNTRACED request costs one relaxed
// fetch_add at admission and a null-pointer check per would-be span —
// zero allocation, zero clock reads, no shared mutable state beyond the
// admission counter. Allocation (one Trace) happens only for sampled
// requests and anomalies. The bench gate pdp_mt_traced_off pins the
// tracer-attached-sampling-off row within 3% of the untraced engine row.
//
// Completed traces land in a bounded ring buffer (mutexed — publication
// is per *sampled* completion, far off the hot path; TSan-clean by
// construction) queryable by trace id, worst latency, or outcome, and
// render human-readably via `render()` (examples/decision_service.cpp).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/decision.hpp"

namespace mdac::obs {

class Registry;

/// Monotonic timestamp in ns (steady_clock since epoch) — every span's
/// clock. Not wall time: only differences and ordering are meaningful.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

enum class SpanKind : std::uint8_t {
  kAdmission,
  kQueueWait,
  kCacheProbe,
  kBatch,
  kEvaluate,
  kObligation,
  kDispatchTry,
  kDispatchReply,
  kBackoff,
  kBreakerEvent,
  kOutcome,
};

const char* to_string(SpanKind kind);

/// Payload code for kDispatchReply spans (Span::a).
enum class ReplyEvent : std::uint64_t {
  kTimeout = 0,
  kUndecodable = 1,
  kRetryable = 2,
  kDecided = 3,
};

/// Payload code for kBreakerEvent spans (Span::a).
enum class BreakerEvent : std::uint64_t {
  kSkip = 0,   ///< open breaker suppressed the try
  kProbe = 1,  ///< half-open probe admitted
  kOpen = 2,   ///< this failure tripped the breaker open
};

/// One recorded step. Fixed-size (inline tag, three payload words) so a
/// Trace is a flat POD block — copyable into the ring with memcpy-class
/// cost and no allocation.
struct Span {
  SpanKind kind = SpanKind::kAdmission;
  std::uint64_t at_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::array<char, 16> tag{};  // short context: replica id, status, cause

  void set_tag(std::string_view t) {
    const std::size_t n = std::min(t.size(), tag.size() - 1);
    std::copy_n(t.data(), n, tag.data());
    tag[n] = '\0';
  }
  std::string_view tag_view() const { return std::string_view(tag.data()); }
};

enum class TraceOutcome : std::uint8_t {
  kDecided,
  kShedQueueFull,
  kShedDeadline,
  kShutdown,
  kFailsafe,  ///< dispatch-level fail-safe (ReplicatedPdpClient)
};

const char* to_string(TraceOutcome outcome);

/// A completed (or in-flight) decision trace: fixed-capacity span array
/// plus the path summary every query wants without walking spans.
struct Trace {
  static constexpr std::size_t kMaxSpans = 16;
  /// Sentinel for `worker` when the request never reached one.
  static constexpr std::uint32_t kNoWorker = 0xffffffffu;

  std::uint64_t trace_id = 0;
  std::uint64_t started_ns = 0;
  std::uint64_t finished_ns = 0;
  TraceOutcome outcome = TraceOutcome::kDecided;
  core::DecisionType decision = core::DecisionType::kNotApplicable;
  /// True when this trace was (or would have been) captured by the
  /// always-sample-anomalies rule: shed, fail-safe, or Indeterminate.
  bool anomaly = false;
  std::uint32_t worker = kNoWorker;
  std::uint64_t snapshot_version = 0;
  std::uint8_t cache_level = 0;  // 0 evaluated/miss, 1 L1, 2 L2
  std::uint32_t span_count = 0;
  std::uint32_t spans_dropped = 0;  // records past kMaxSpans
  std::array<Span, kMaxSpans> spans{};

  /// Appends a span; returns it for payload/tag filling, or nullptr when
  /// the trace is full (the drop is counted, never silent).
  Span* record(SpanKind kind, std::uint64_t at_ns) {
    if (span_count >= kMaxSpans) {
      ++spans_dropped;
      return nullptr;
    }
    Span& s = spans[span_count++];
    s = Span{};
    s.kind = kind;
    s.at_ns = at_ns;
    return &s;
  }

  std::uint64_t latency_ns() const {
    return finished_ns >= started_ns ? finished_ns - started_ns : 0;
  }
};

struct ObsConfig {
  /// Head-sample one of every N admissions; 0 disables head sampling
  /// (anomalies may still be tail-sampled below).
  std::uint64_t sample_every_n = 0;
  /// Capture every shed / fail-safe / Indeterminate outcome even when
  /// its admission was not head-sampled.
  bool always_sample_anomalies = true;
  /// Completed-trace ring capacity; the oldest trace is overwritten
  /// (and counted as dropped) when full.
  std::size_t ring_capacity = 256;
};

/// What admit() hands back: the request's trace id and whether the
/// caller should record spans for it.
struct TraceHandle {
  std::uint64_t id = 0;
  bool sampled = false;
};

/// The per-process tracer: allocates trace ids, applies the sampling
/// policy, and keeps the bounded ring of completed traces. admit() and
/// publish() are safe from any thread; queries copy under the ring
/// mutex.
class DecisionTracer {
 public:
  explicit DecisionTracer(ObsConfig config = {});

  const ObsConfig& config() const { return config_; }
  bool always_sample_anomalies() const { return config_.always_sample_anomalies; }

  /// Admission: one relaxed fetch_add; id is a splitmix64 of the
  /// admission sequence (never 0), sampled = head-sampling decision.
  TraceHandle admit();

  /// Copies the completed trace into the ring. Callers set outcome /
  /// finished_ns / summary fields first.
  void publish(const Trace& trace);

  // ---- queries (copies; newest-first for recent()) ----
  std::vector<Trace> traces() const;
  std::optional<Trace> find(std::uint64_t trace_id) const;
  std::optional<Trace> worst_latency() const;
  std::vector<Trace> with_outcome(TraceOutcome outcome) const;

  // ---- self-telemetry ----
  std::uint64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t sampled_total() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  std::uint64_t published_total() const;
  std::uint64_t anomalies_total() const;
  std::uint64_t ring_dropped_total() const;

  /// Registers the tracer's own counters (admissions, samples,
  /// anomalies, ring drops) with a Registry; returns the collector id.
  std::uint64_t register_metrics(Registry& registry) const;

 private:
  ObsConfig config_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> sampled_{0};

  mutable std::mutex mutex_;
  std::vector<Trace> ring_;   // capacity-bounded, write index wraps
  std::size_t next_slot_ = 0;
  std::uint64_t published_ = 0;
  std::uint64_t anomalies_ = 0;
};

/// Human-readable multi-line rendering of one trace (the explain-trace
/// surface examples/decision_service.cpp prints).
std::string render(const Trace& trace);

}  // namespace mdac::obs
