// Static policy-conflict analysis (paper §3.1, "Policy Conflict
// Resolution", following Lupu & Sloman [51]).
//
// The analysis projects each rule to an *atom*: its effect plus, per
// (category, attribute), the set of string-equality values its combined
// policy+rule target admits. Two atoms with opposite effects whose
// constraint sets overlap on every shared attribute form a potential
// modality conflict; the overlap is reported with a witness assignment.
// Rules whose targets/conditions fall outside the equality fragment are
// flagged `approximate` — they *may* conflict (the analysis stays sound
// by over-approximating, never silently missing a pair).
//
// Meta-policies (§3.1): separation-of-duty pairs that must never both be
// permitted to one subject — checked statically against permit atoms.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace mdac::conflict {

using AttributeKey = std::pair<core::Category, std::string>;

struct Atom {
  std::string policy_id;
  std::string rule_id;
  core::Effect effect = core::Effect::kPermit;
  /// Admitted values per attribute; an absent key admits *any* value.
  std::map<AttributeKey, std::set<std::string>> constraints;
  /// True if the rule has structure the equality fragment cannot capture
  /// (conditions, non-equality matches): treat its missing constraints
  /// conservatively.
  bool approximate = false;
};

/// Extracts analysis atoms from a policy. The policy-level target is
/// intersected into every rule's constraints.
std::vector<Atom> extract_atoms(const core::Policy& policy);

struct Conflict {
  /// Indices into the atom vector the analysis ran over.
  std::size_t permit_index = 0;
  std::size_t deny_index = 0;
  /// A concrete witness (one value per constrained attribute) on which
  /// both atoms apply.
  std::map<AttributeKey, std::string> witness;
  bool approximate = false;  // involves an approximate atom
};

/// All pairwise modality conflicts among `atoms`.
std::vector<Conflict> find_modality_conflicts(const std::vector<Atom>& atoms);

struct AnalysisResult {
  std::vector<Atom> atoms;
  std::vector<Conflict> conflicts;  // indices refer into `atoms`
};

/// Convenience: extract + analyse a set of policies.
AnalysisResult analyse(const std::vector<const core::Policy*>& policies);

// ---------------------------------------------------------------------
// Meta-policies
// ---------------------------------------------------------------------

/// "No subject may be permitted both A and B" — the paper's SoD example.
struct SodMetaPolicy {
  std::string name;
  std::string resource_a;
  std::string action_a;
  std::string resource_b;
  std::string action_b;
};

struct SodViolation {
  std::size_t meta_index = 0;      // into the metas vector
  std::size_t permit_a_index = 0;  // into the atoms vector
  std::size_t permit_b_index = 0;
  /// Subject constraint overlap enabling both permissions; empty set
  /// means "any subject".
  std::set<std::string> overlapping_subjects;
};

/// Finds permit-atom pairs granting both halves of a SoD constraint to an
/// overlapping subject population.
std::vector<SodViolation> check_sod(const std::vector<Atom>& atoms,
                                    const std::vector<SodMetaPolicy>& metas);

}  // namespace mdac::conflict
