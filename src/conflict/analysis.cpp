#include "conflict/analysis.hpp"

namespace mdac::conflict {

namespace {

/// Constraint map plus a flag for structure outside the equality fragment.
struct ExtractedTarget {
  std::map<AttributeKey, std::set<std::string>> constraints;
  bool approximate = false;
};

/// Projects a target onto the equality fragment. Each AnyOf whose AllOfs
/// are single string-equality matches over one attribute becomes a
/// constraint (attribute -> value set). Anything else sets `approximate`.
ExtractedTarget project_target(const core::Target& target) {
  ExtractedTarget out;
  for (const core::AnyOf& any : target.any_ofs) {
    bool viable = !any.all_ofs.empty();
    std::optional<AttributeKey> key;
    std::set<std::string> values;
    for (const core::AllOf& all : any.all_ofs) {
      if (all.matches.size() != 1) {
        viable = false;
        break;
      }
      const core::Match& m = all.matches[0];
      if (m.function_id != "string-equal" || !m.literal.is_string()) {
        viable = false;
        break;
      }
      const AttributeKey k{m.category, m.attribute_id};
      if (!key.has_value()) {
        key = k;
      } else if (*key != k) {
        viable = false;
        break;
      }
      values.insert(m.literal.as_string());
    }
    if (!viable || !key.has_value()) {
      out.approximate = true;
      continue;
    }
    // Conjunction with an existing constraint on the same key intersects.
    auto [it, inserted] = out.constraints.emplace(*key, values);
    if (!inserted) {
      std::set<std::string> intersection;
      for (const std::string& v : values) {
        if (it->second.count(v) > 0) intersection.insert(v);
      }
      it->second = std::move(intersection);
    }
  }
  return out;
}

/// Merges (conjoins) b into a.
void intersect_into(std::map<AttributeKey, std::set<std::string>>* a,
                    const std::map<AttributeKey, std::set<std::string>>& b) {
  for (const auto& [key, values] : b) {
    auto [it, inserted] = a->emplace(key, values);
    if (!inserted) {
      std::set<std::string> intersection;
      for (const std::string& v : values) {
        if (it->second.count(v) > 0) intersection.insert(v);
      }
      it->second = std::move(intersection);
    }
  }
}

/// True if some constraint admits no value at all (the atom can never
/// apply and is dropped from analysis).
bool unsatisfiable(const std::map<AttributeKey, std::set<std::string>>& c) {
  for (const auto& [key, values] : c) {
    if (values.empty()) return true;
  }
  return false;
}

}  // namespace

std::vector<Atom> extract_atoms(const core::Policy& policy) {
  std::vector<Atom> out;
  const ExtractedTarget policy_target = project_target(policy.target_spec);

  for (const core::Rule& rule : policy.rules) {
    Atom atom;
    atom.policy_id = policy.policy_id;
    atom.rule_id = rule.id;
    atom.effect = rule.effect;
    atom.constraints = policy_target.constraints;
    atom.approximate = policy_target.approximate;

    if (rule.target.has_value()) {
      const ExtractedTarget rule_target = project_target(*rule.target);
      intersect_into(&atom.constraints, rule_target.constraints);
      atom.approximate = atom.approximate || rule_target.approximate;
    }
    if (rule.condition) {
      // Conditions are outside the equality fragment entirely.
      atom.approximate = true;
    }
    if (unsatisfiable(atom.constraints)) continue;
    out.push_back(std::move(atom));
  }
  return out;
}

std::vector<Conflict> find_modality_conflicts(const std::vector<Atom>& atoms) {
  std::vector<Conflict> out;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      const Atom& a = atoms[i];
      const Atom& b = atoms[j];
      if (a.effect == b.effect) continue;

      // Overlap test: every attribute constrained by BOTH atoms must
      // share at least one admitted value. Attributes constrained by one
      // side only always overlap (the other admits anything).
      bool overlaps = true;
      std::map<AttributeKey, std::string> witness;
      for (const auto& [key, a_values] : a.constraints) {
        const auto b_it = b.constraints.find(key);
        if (b_it == b.constraints.end()) {
          if (!a_values.empty()) witness.emplace(key, *a_values.begin());
          continue;
        }
        bool found = false;
        for (const std::string& v : a_values) {
          if (b_it->second.count(v) > 0) {
            witness.emplace(key, v);
            found = true;
            break;
          }
        }
        if (!found) {
          overlaps = false;
          break;
        }
      }
      if (!overlaps) continue;
      for (const auto& [key, b_values] : b.constraints) {
        if (a.constraints.count(key) == 0 && !b_values.empty()) {
          witness.emplace(key, *b_values.begin());
        }
      }

      Conflict conflict;
      conflict.permit_index = a.effect == core::Effect::kPermit ? i : j;
      conflict.deny_index = a.effect == core::Effect::kPermit ? j : i;
      conflict.witness = std::move(witness);
      conflict.approximate = a.approximate || b.approximate;
      out.push_back(std::move(conflict));
    }
  }
  return out;
}

AnalysisResult analyse(const std::vector<const core::Policy*>& policies) {
  AnalysisResult result;
  for (const core::Policy* p : policies) {
    std::vector<Atom> extracted = extract_atoms(*p);
    result.atoms.insert(result.atoms.end(),
                        std::make_move_iterator(extracted.begin()),
                        std::make_move_iterator(extracted.end()));
  }
  result.conflicts = find_modality_conflicts(result.atoms);
  return result;
}

namespace {

const std::set<std::string>* constraint_of(const Atom& atom, const AttributeKey& key) {
  const auto it = atom.constraints.find(key);
  if (it == atom.constraints.end()) return nullptr;
  return &it->second;
}

/// Does the atom permit (resource, action)?
bool permits(const Atom& atom, const std::string& resource,
             const std::string& action) {
  if (atom.effect != core::Effect::kPermit) return false;
  const AttributeKey res_key{core::Category::kResource, core::attrs::kResourceId};
  const AttributeKey act_key{core::Category::kAction, core::attrs::kActionId};
  const auto* res = constraint_of(atom, res_key);
  const auto* act = constraint_of(atom, act_key);
  if (res != nullptr && res->count(resource) == 0) return false;
  if (act != nullptr && act->count(action) == 0) return false;
  return true;
}

}  // namespace

std::vector<SodViolation> check_sod(const std::vector<Atom>& atoms,
                                    const std::vector<SodMetaPolicy>& metas) {
  std::vector<SodViolation> out;
  const AttributeKey subj_key{core::Category::kSubject, core::attrs::kSubjectId};
  for (std::size_t m = 0; m < metas.size(); ++m) {
    const SodMetaPolicy& meta = metas[m];
    for (std::size_t ia = 0; ia < atoms.size(); ++ia) {
      const Atom& a = atoms[ia];
      if (!permits(a, meta.resource_a, meta.action_a)) continue;
      for (std::size_t ib = 0; ib < atoms.size(); ++ib) {
        const Atom& b = atoms[ib];
        if (!permits(b, meta.resource_b, meta.action_b)) continue;
        // Subject overlap: unconstrained on either side = everyone.
        const auto* sa = constraint_of(a, subj_key);
        const auto* sb = constraint_of(b, subj_key);
        std::set<std::string> overlap;
        bool overlapping = false;
        if (sa == nullptr && sb == nullptr) {
          overlapping = true;
        } else if (sa == nullptr) {
          overlapping = !sb->empty();
          overlap = *sb;
        } else if (sb == nullptr) {
          overlapping = !sa->empty();
          overlap = *sa;
        } else {
          for (const std::string& s : *sa) {
            if (sb->count(s) > 0) overlap.insert(s);
          }
          overlapping = !overlap.empty();
        }
        if (!overlapping) continue;
        out.push_back(SodViolation{m, ia, ib, std::move(overlap)});
      }
    }
  }
  return out;
}

}  // namespace mdac::conflict
