// Role-Based Access Control (RBAC96 / ANSI INCITS 359), the access-control
// model the paper singles out as "well suited for distributed
// environments that need to address protection requirements for a large
// base of subjects and objects" (§2.2).
//
// Implements: users, roles, permissions, user-role and permission-role
// assignment, a role hierarchy (seniors inherit juniors' permissions),
// sessions with role activation, and both static and dynamic
// separation-of-duty constraints.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mdac::rbac {

struct Permission {
  std::string resource;
  std::string action;

  bool operator==(const Permission&) const = default;
  auto operator<=>(const Permission&) const = default;
};

/// Outcome of an RBAC administrative or session operation. Constraint
/// violations are expected runtime outcomes (not exceptions): callers
/// branch on them, audits record the reason.
struct Outcome {
  bool ok = true;
  std::string reason;

  static Outcome success() { return {}; }
  static Outcome failure(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

/// A separation-of-duty constraint: a user (SSD) or session (DSD) may hold
/// at most `cardinality - 1` roles from `roles`.
struct SodConstraint {
  std::string name;
  std::set<std::string> roles;
  std::size_t cardinality = 2;
};

using SessionId = std::uint64_t;

class RbacModel {
 public:
  // --- administration ---------------------------------------------------
  void add_user(const std::string& user);
  void add_role(const std::string& role);

  /// Declares that `senior` inherits all permissions of `junior`.
  /// Fails if either role is unknown or the edge would create a cycle.
  Outcome add_inheritance(const std::string& senior, const std::string& junior);

  /// UA relation; enforces SSD constraints over the user's *authorised*
  /// role set (assigned plus inherited), per the ANSI standard.
  Outcome assign_user(const std::string& user, const std::string& role);
  Outcome deassign_user(const std::string& user, const std::string& role);

  /// PA relation.
  Outcome grant_permission(const std::string& role, Permission permission);
  Outcome revoke_permission(const std::string& role, const Permission& permission);

  Outcome add_ssd_constraint(SodConstraint constraint);
  Outcome add_dsd_constraint(SodConstraint constraint);

  // --- review functions ---------------------------------------------------
  bool has_user(const std::string& user) const { return users_.count(user) > 0; }
  bool has_role(const std::string& role) const { return roles_.count(role) > 0; }

  std::set<std::string> assigned_roles(const std::string& user) const;

  /// Assigned roles plus everything reachable downward through the
  /// hierarchy (a senior is authorised for its juniors' roles).
  std::set<std::string> authorized_roles(const std::string& user) const;

  /// Direct permissions of a role plus inherited ones.
  std::set<Permission> role_permissions(const std::string& role) const;

  /// True iff some authorised role carries the permission.
  bool user_has_permission(const std::string& user, const Permission& p) const;

  std::vector<std::string> all_roles() const;
  std::vector<std::string> all_users() const;

  // --- sessions -----------------------------------------------------------
  /// Creates a session with no active roles. Unknown user -> Outcome
  /// failure is not expressible here, so unknown users get a session that
  /// can activate nothing.
  SessionId create_session(const std::string& user);
  void end_session(SessionId session);

  /// Activates a role: it must be in the user's authorised set and must
  /// not violate any DSD constraint against the already-active roles.
  Outcome activate_role(SessionId session, const std::string& role);
  Outcome deactivate_role(SessionId session, const std::string& role);

  std::set<std::string> active_roles(SessionId session) const;

  /// Access check against the session's *active* roles (least privilege:
  /// an authorised-but-inactive role grants nothing).
  bool check_access(SessionId session, const Permission& p) const;

 private:
  /// Roles reachable downward (junior-wards) from `role`, inclusive.
  std::set<std::string> downward_closure(const std::string& role) const;
  bool reachable(const std::string& from, const std::string& to) const;
  Outcome check_sod(const std::set<std::string>& roles,
                    const std::vector<SodConstraint>& constraints) const;

  std::set<std::string> users_;
  std::set<std::string> roles_;
  std::map<std::string, std::set<std::string>> juniors_;  // senior -> juniors
  std::map<std::string, std::set<std::string>> ua_;       // user -> roles
  std::map<std::string, std::set<Permission>> pa_;        // role -> permissions
  std::vector<SodConstraint> ssd_;
  std::vector<SodConstraint> dsd_;

  struct Session {
    std::string user;
    std::set<std::string> active;
  };
  std::map<SessionId, Session> sessions_;
  SessionId next_session_ = 1;
};

}  // namespace mdac::rbac
