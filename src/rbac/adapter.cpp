#include "rbac/adapter.hpp"

namespace mdac::rbac {

std::optional<core::Bag> RbacAttributeProvider::resolve(
    core::Category category, const std::string& id,
    const core::RequestContext& request) {
  if (category != core::Category::kSubject || id != core::attrs::kRole) {
    return std::nullopt;
  }
  const core::Bag* subject_bag =
      request.get(core::Category::kSubject, core::attrs::kSubjectId);
  if (subject_bag == nullptr || subject_bag->empty() ||
      !subject_bag->at(0).is_string()) {
    return std::nullopt;
  }
  const std::string user = subject_bag->at(0).as_string();
  if (!model_.has_user(user)) return std::nullopt;

  core::Bag roles;
  for (const std::string& role : model_.authorized_roles(user)) {
    roles.add(core::AttributeValue(role));
  }
  return roles;
}

core::PolicySet compile_to_policy_set(const RbacModel& model,
                                      const std::string& policy_set_id) {
  core::PolicySet out;
  out.policy_set_id = policy_set_id;
  out.policy_combining = "permit-overrides";
  out.description = "compiled from RBAC model";

  for (const std::string& role : model.all_roles()) {
    core::Policy p;
    p.policy_id = policy_set_id + ":role:" + role;
    p.description = "permissions of role " + role;
    p.rule_combining = "permit-overrides";
    p.target_spec.require(core::Category::kSubject, core::attrs::kRole,
                          core::AttributeValue(role));

    std::size_t i = 0;
    // role_permissions includes inherited (junior) permissions, so each
    // role's policy is self-contained; decisions do not depend on whether
    // the attribute provider reports juniors as separate roles.
    for (const Permission& perm : model.role_permissions(role)) {
      core::Rule r;
      r.id = p.policy_id + ":permit:" + std::to_string(i++);
      r.effect = core::Effect::kPermit;
      core::Target t;
      t.require(core::Category::kResource, core::attrs::kResourceId,
                core::AttributeValue(perm.resource));
      t.require(core::Category::kAction, core::attrs::kActionId,
                core::AttributeValue(perm.action));
      r.target = std::move(t);
      p.rules.push_back(std::move(r));
    }
    out.add(std::move(p));
  }
  return out;
}

}  // namespace mdac::rbac
