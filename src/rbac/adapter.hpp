// Bridges between the RBAC model and the policy machinery:
//
//  * RbacAttributeProvider — a PIP-style resolver exposing a subject's
//    authorised roles as the `role` attribute, so ordinary attribute
//    policies can be written against RBAC state (the paper's point that
//    roles are just one kind of subject attribute, §3.1).
//
//  * compile_to_policy_set — lowers the whole RBAC state into an
//    XACML-shaped PolicySet (one policy per role, one permit rule per
//    permission). This is the "models bridge the gap between high-level
//    policies and low-level mechanisms" move of §2.2, made executable.
#pragma once

#include "core/evaluation.hpp"
#include "core/policy.hpp"
#include "rbac/rbac.hpp"

namespace mdac::rbac {

class RbacAttributeProvider final : public core::AttributeResolver {
 public:
  explicit RbacAttributeProvider(const RbacModel& model) : model_(model) {}

  /// Supplies (subject, "role") from the model's authorised-role review.
  std::optional<core::Bag> resolve(core::Category category, const std::string& id,
                                   const core::RequestContext& request) override;

 private:
  const RbacModel& model_;
};

/// Compiles RBAC state into a policy set:
///   PolicySet(permit-overrides)
///     Policy per role R, target [subject.role == R]
///       Rule per permission (resource, action) -> Permit
/// A PDP evaluating the result together with RbacAttributeProvider decides
/// exactly like RbacModel::user_has_permission.
core::PolicySet compile_to_policy_set(const RbacModel& model,
                                      const std::string& policy_set_id);

}  // namespace mdac::rbac
