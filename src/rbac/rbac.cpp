#include "rbac/rbac.hpp"

#include <deque>

namespace mdac::rbac {

void RbacModel::add_user(const std::string& user) { users_.insert(user); }

void RbacModel::add_role(const std::string& role) { roles_.insert(role); }

bool RbacModel::reachable(const std::string& from, const std::string& to) const {
  // BFS downward through the juniors relation.
  std::deque<std::string> frontier{from};
  std::set<std::string> seen{from};
  while (!frontier.empty()) {
    const std::string cur = frontier.front();
    frontier.pop_front();
    if (cur == to) return true;
    const auto it = juniors_.find(cur);
    if (it == juniors_.end()) continue;
    for (const std::string& next : it->second) {
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

Outcome RbacModel::add_inheritance(const std::string& senior,
                                   const std::string& junior) {
  if (roles_.count(senior) == 0) return Outcome::failure("unknown role " + senior);
  if (roles_.count(junior) == 0) return Outcome::failure("unknown role " + junior);
  if (senior == junior) return Outcome::failure("role cannot inherit itself");
  // Adding senior->junior creates a cycle iff junior already reaches senior.
  if (reachable(junior, senior)) {
    return Outcome::failure("inheritance " + senior + "->" + junior +
                            " would create a cycle");
  }
  juniors_[senior].insert(junior);
  return Outcome::success();
}

std::set<std::string> RbacModel::downward_closure(const std::string& role) const {
  std::set<std::string> out;
  std::deque<std::string> frontier{role};
  while (!frontier.empty()) {
    const std::string cur = frontier.front();
    frontier.pop_front();
    if (!out.insert(cur).second) continue;
    const auto it = juniors_.find(cur);
    if (it == juniors_.end()) continue;
    for (const std::string& next : it->second) frontier.push_back(next);
  }
  return out;
}

Outcome RbacModel::check_sod(const std::set<std::string>& roles,
                             const std::vector<SodConstraint>& constraints) const {
  for (const SodConstraint& c : constraints) {
    std::size_t held = 0;
    for (const std::string& r : c.roles) {
      if (roles.count(r) > 0) ++held;
    }
    if (held >= c.cardinality) {
      return Outcome::failure("separation-of-duty constraint '" + c.name +
                              "' violated (" + std::to_string(held) + " of " +
                              std::to_string(c.cardinality) + " conflicting roles)");
    }
  }
  return Outcome::success();
}

Outcome RbacModel::assign_user(const std::string& user, const std::string& role) {
  if (users_.count(user) == 0) return Outcome::failure("unknown user " + user);
  if (roles_.count(role) == 0) return Outcome::failure("unknown role " + role);

  // Tentatively add, then check SSD over the authorised (inherited) set.
  std::set<std::string> authorized;
  for (const std::string& r : ua_[user]) {
    const auto closure = downward_closure(r);
    authorized.insert(closure.begin(), closure.end());
  }
  const auto closure = downward_closure(role);
  authorized.insert(closure.begin(), closure.end());

  if (const Outcome o = check_sod(authorized, ssd_); !o) return o;
  ua_[user].insert(role);
  return Outcome::success();
}

Outcome RbacModel::deassign_user(const std::string& user, const std::string& role) {
  const auto it = ua_.find(user);
  if (it == ua_.end() || it->second.erase(role) == 0) {
    return Outcome::failure(user + " is not assigned " + role);
  }
  // ANSI semantics: a session's active roles must stay a subset of the
  // user's authorised set. Dropping an assignment can also strip roles
  // that were only reachable through it via inheritance.
  const std::set<std::string> still_authorized = authorized_roles(user);
  for (auto& [id, session] : sessions_) {
    if (session.user != user) continue;
    std::erase_if(session.active, [&](const std::string& active) {
      return still_authorized.count(active) == 0;
    });
  }
  return Outcome::success();
}

Outcome RbacModel::grant_permission(const std::string& role, Permission permission) {
  if (roles_.count(role) == 0) return Outcome::failure("unknown role " + role);
  pa_[role].insert(std::move(permission));
  return Outcome::success();
}

Outcome RbacModel::revoke_permission(const std::string& role,
                                     const Permission& permission) {
  const auto it = pa_.find(role);
  if (it == pa_.end() || it->second.erase(permission) == 0) {
    return Outcome::failure("permission not granted to " + role);
  }
  return Outcome::success();
}

Outcome RbacModel::add_ssd_constraint(SodConstraint constraint) {
  if (constraint.cardinality < 2) {
    return Outcome::failure("SSD cardinality must be at least 2");
  }
  // Reject if an existing assignment already violates it.
  for (const std::string& user : users_) {
    std::size_t held = 0;
    const auto authorized = authorized_roles(user);
    for (const std::string& r : constraint.roles) {
      if (authorized.count(r) > 0) ++held;
    }
    if (held >= constraint.cardinality) {
      return Outcome::failure("existing assignment of " + user +
                              " already violates '" + constraint.name + "'");
    }
  }
  ssd_.push_back(std::move(constraint));
  return Outcome::success();
}

Outcome RbacModel::add_dsd_constraint(SodConstraint constraint) {
  if (constraint.cardinality < 2) {
    return Outcome::failure("DSD cardinality must be at least 2");
  }
  dsd_.push_back(std::move(constraint));
  return Outcome::success();
}

std::set<std::string> RbacModel::assigned_roles(const std::string& user) const {
  const auto it = ua_.find(user);
  if (it == ua_.end()) return {};
  return it->second;
}

std::set<std::string> RbacModel::authorized_roles(const std::string& user) const {
  std::set<std::string> out;
  for (const std::string& r : assigned_roles(user)) {
    const auto closure = downward_closure(r);
    out.insert(closure.begin(), closure.end());
  }
  return out;
}

std::set<Permission> RbacModel::role_permissions(const std::string& role) const {
  std::set<Permission> out;
  for (const std::string& r : downward_closure(role)) {
    const auto it = pa_.find(r);
    if (it == pa_.end()) continue;
    out.insert(it->second.begin(), it->second.end());
  }
  return out;
}

bool RbacModel::user_has_permission(const std::string& user,
                                    const Permission& p) const {
  for (const std::string& r : assigned_roles(user)) {
    if (role_permissions(r).count(p) > 0) return true;
  }
  return false;
}

std::vector<std::string> RbacModel::all_roles() const {
  return {roles_.begin(), roles_.end()};
}

std::vector<std::string> RbacModel::all_users() const {
  return {users_.begin(), users_.end()};
}

SessionId RbacModel::create_session(const std::string& user) {
  const SessionId id = next_session_++;
  sessions_[id] = Session{user, {}};
  return id;
}

void RbacModel::end_session(SessionId session) { sessions_.erase(session); }

Outcome RbacModel::activate_role(SessionId session, const std::string& role) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return Outcome::failure("unknown session");
  if (authorized_roles(it->second.user).count(role) == 0) {
    return Outcome::failure(it->second.user + " is not authorised for " + role);
  }
  std::set<std::string> tentative = it->second.active;
  tentative.insert(role);
  if (const Outcome o = check_sod(tentative, dsd_); !o) return o;
  it->second.active.insert(role);
  return Outcome::success();
}

Outcome RbacModel::deactivate_role(SessionId session, const std::string& role) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return Outcome::failure("unknown session");
  if (it->second.active.erase(role) == 0) {
    return Outcome::failure(role + " is not active in this session");
  }
  return Outcome::success();
}

std::set<std::string> RbacModel::active_roles(SessionId session) const {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return {};
  return it->second.active;
}

bool RbacModel::check_access(SessionId session, const Permission& p) const {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return false;
  for (const std::string& r : it->second.active) {
    if (role_permissions(r).count(p) > 0) return true;
  }
  return false;
}

}  // namespace mdac::rbac
