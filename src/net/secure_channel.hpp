// WS-Security-style message protection (paper §3.2, "Security of Access
// Control Systems"): sign and/or encrypt a payload before it enters the
// network, verify/decrypt on receipt.
//
// The size and CPU overhead of these wrappers versus plain messages is
// experiment C2 — the paper's observation (via [40]) that secured
// Web-Service messages are "significantly bigger" is reproduced here.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "crypto/cipher.hpp"
#include "crypto/keys.hpp"
#include "xml/xml.hpp"

namespace mdac::net {

struct ChannelSecurity {
  bool sign = false;
  bool encrypt = false;
};

/// One endpoint's view of a protected channel: its signing key pair, the
/// peers it trusts, and the (pre-agreed) symmetric content key.
class SecureChannel {
 public:
  SecureChannel(const crypto::KeyPair& signing_key, const crypto::TrustStore& trust,
                common::Bytes content_key)
      : signing_key_(signing_key),
        trust_(trust),
        content_key_(std::move(content_key)) {}

  /// Wraps `payload` in a <Protected> document per the security mode.
  std::string protect(const std::string& payload, ChannelSecurity mode);

  /// Unwraps; nullopt if the signature fails, the signer is untrusted,
  /// or decryption produces garbage framing.
  std::optional<std::string> unprotect(const std::string& wire) const;

 private:
  const crypto::KeyPair& signing_key_;
  const crypto::TrustStore& trust_;
  common::Bytes content_key_;
  std::uint64_t nonce_counter_ = 0;
};

}  // namespace mdac::net
