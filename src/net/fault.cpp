#include "net/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace mdac::net {

namespace {

bool matches(const std::string& pattern, const std::string& id) {
  return pattern.empty() || pattern == id;
}

}  // namespace

FaultPlan& FaultPlan::add_link_fault(LinkFault fault) {
  link_faults_.push_back(std::move(fault));
  return *this;
}

FaultPlan& FaultPlan::add_outage(NodeOutage outage) {
  outages_.push_back(std::move(outage));
  return *this;
}

FaultPlan& FaultPlan::partition(const std::vector<std::string>& from_group,
                                const std::vector<std::string>& to_group,
                                common::TimePoint start, common::TimePoint stop) {
  for (const std::string& from : from_group) {
    for (const std::string& to : to_group) {
      LinkFault f;
      f.from = from;
      f.to = to;
      f.start = start;
      f.stop = stop;
      f.drop_probability = 1.0;
      link_faults_.push_back(std::move(f));
    }
  }
  return *this;
}

FaultPlan& FaultPlan::flap(const std::string& node, common::TimePoint first_down,
                           common::Duration down_for, common::Duration period,
                           common::TimePoint until) {
  if (down_for <= 0 || period <= down_for) {
    throw std::invalid_argument(
        "FaultPlan::flap: need 0 < down_for < period (the node must spend "
        "time up between outages)");
  }
  for (common::TimePoint at = first_down; at < until; at += period) {
    outages_.push_back({node, at, std::min<common::TimePoint>(at + down_for, until)});
  }
  return *this;
}

void FaultPlan::arm(Network& network) {
  network_ = &network;
  network.set_fault_injector(this);
  Simulator& sim = network.simulator();
  for (const NodeOutage& outage : outages_) {
    const auto at_or_now = [&](common::TimePoint at) {
      return std::max<common::Duration>(0, at - sim.now());
    };
    sim.schedule(at_or_now(outage.from),
                 [this, node = outage.node, alive = std::weak_ptr<char>(alive_)] {
                   if (alive.expired() || network_ == nullptr) return;
                   network_->set_node_up(node, false);
                   ++stats_.crashes;
                 });
    if (outage.to != std::numeric_limits<common::TimePoint>::max()) {
      sim.schedule(at_or_now(outage.to),
                   [this, node = outage.node, alive = std::weak_ptr<char>(alive_)] {
                     if (alive.expired() || network_ == nullptr) return;
                     network_->set_node_up(node, true);
                     ++stats_.recoveries;
                   });
    }
  }
}

void FaultPlan::disarm() {
  if (network_ != nullptr && network_->fault_injector() == this) {
    network_->set_fault_injector(nullptr);
  }
  network_ = nullptr;
}

FaultInjector::Verdict FaultPlan::on_send(const Message& message) {
  Verdict verdict;
  if (network_ == nullptr) return verdict;
  const common::TimePoint now = network_->simulator().now();
  for (const LinkFault& fault : link_faults_) {
    if (now < fault.start || now >= fault.stop) continue;
    if (!matches(fault.from, message.from) || !matches(fault.to, message.to)) continue;

    if (rng_.chance(fault.drop_probability)) {
      ++stats_.drops;
      verdict.drop = true;
      return verdict;  // a dropped message suffers no further faults
    }
    common::Duration extra = fault.delay_ms;
    if (fault.delay_jitter_ms > 0) {
      extra += rng_.uniform_int(0, fault.delay_jitter_ms);
    }
    if (extra > 0) {
      verdict.extra_delay += extra;
      ++stats_.delays;
    }
    if (rng_.chance(fault.reorder_probability) && fault.reorder_window_ms > 0) {
      // An extra uniform delay lets messages sent later overtake this
      // one — reordering without a hold-and-release queue.
      verdict.extra_delay += rng_.uniform_int(0, fault.reorder_window_ms);
      ++stats_.reorders;
    }
    if (!verdict.duplicate && rng_.chance(fault.duplicate_probability)) {
      verdict.duplicate = true;
      ++stats_.duplicates;
    }
    if (!verdict.corrupt && rng_.chance(fault.corrupt_probability)) {
      verdict.corrupt = true;
      ++stats_.corruptions;
    }
  }
  return verdict;
}

std::vector<std::string> named_fault_plan_names() {
  return {"flaky-links", "primary-flap", "slow-partition", "dup-corrupt",
          "chaos-mix"};
}

std::unique_ptr<FaultPlan> make_named_fault_plan(
    const std::string& name, std::uint64_t seed,
    const std::vector<std::string>& nodes, const std::string& client,
    common::TimePoint horizon) {
  if (nodes.empty()) {
    throw std::invalid_argument("make_named_fault_plan: no nodes");
  }
  auto plan = std::make_unique<FaultPlan>(seed, name);

  if (name == "flaky-links") {
    LinkFault f;
    f.stop = horizon;
    f.drop_probability = 0.10;
    f.delay_jitter_ms = 20;
    plan->add_link_fault(std::move(f));
    return plan;
  }
  if (name == "primary-flap") {
    plan->flap(nodes.front(), /*first_down=*/100, /*down_for=*/300,
               /*period=*/600, /*until=*/horizon);
    return plan;
  }
  if (name == "slow-partition") {
    if (nodes.size() > 1) {
      // One-way partition for the middle half of the run: requests to
      // nodes[1] vanish while its replies (and heartbeat pongs) still
      // flow — the asymmetric failure a simple up/down flag cannot model.
      plan->partition({client}, {nodes[1]}, horizon / 4, horizon / 2);
    }
    if (nodes.size() > 2) {
      LinkFault slow;
      slow.from = nodes[2];
      slow.to = client;
      slow.stop = horizon;
      slow.delay_ms = 150;
      plan->add_link_fault(std::move(slow));
    }
    return plan;
  }
  if (name == "dup-corrupt") {
    LinkFault dup;
    dup.stop = horizon;
    dup.duplicate_probability = 0.25;
    plan->add_link_fault(std::move(dup));
    LinkFault corrupt_requests;
    corrupt_requests.from = client;
    corrupt_requests.to = nodes.front();
    corrupt_requests.stop = horizon;
    corrupt_requests.corrupt_probability = 0.20;
    plan->add_link_fault(std::move(corrupt_requests));
    if (nodes.size() > 1) {
      LinkFault corrupt_replies;
      corrupt_replies.from = nodes[1];
      corrupt_replies.to = client;
      corrupt_replies.stop = horizon;
      corrupt_replies.corrupt_probability = 0.15;
      plan->add_link_fault(std::move(corrupt_replies));
    }
    return plan;
  }
  if (name == "chaos-mix") {
    LinkFault mild;
    mild.stop = horizon;
    mild.drop_probability = 0.05;
    mild.delay_jitter_ms = 30;
    mild.duplicate_probability = 0.10;
    mild.reorder_probability = 0.10;
    mild.reorder_window_ms = 40;
    plan->add_link_fault(std::move(mild));
    LinkFault corrupt;
    corrupt.to = client;
    corrupt.stop = horizon;
    corrupt.corrupt_probability = 0.05;
    plan->add_link_fault(std::move(corrupt));
    if (nodes.size() > 2) {
      plan->flap(nodes[2], /*first_down=*/200, /*down_for=*/250, /*period=*/900,
                 /*until=*/horizon);
    }
    return plan;
  }
  throw std::invalid_argument("unknown fault plan '" + name + "'");
}

}  // namespace mdac::net
