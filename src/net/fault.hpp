// net::FaultPlan — deterministic, seeded fault scenarios over the
// Simulator/Network substrate.
//
// The paper's dependability claim (§3.2) is about the authorisation
// fabric surviving the failures real multi-domain networks produce, but
// until this layer existed the simulator could only express uniform link
// loss and manual node up/down toggles. A FaultPlan scripts faults the
// way an experiment describes them:
//
//   * per-link scripted faults with [start, stop) activation windows —
//     probabilistic drop, fixed + jittered delay spikes, duplication,
//     payload corruption, and reorder windows (an extra uniformly random
//     delay that lets later sends overtake earlier ones);
//   * asymmetric partitions (drop=1 link faults in one direction only),
//     built from node groups with partition();
//   * node crash/recover windows and flapping schedules, expanded into
//     simulator events when the plan is armed.
//
// Determinism: all randomness comes from the plan's own seeded Rng, the
// simulator fires events in (time, insertion) order, and node
// transitions are scheduled at arm() time — so a (plan, seed, workload)
// triple replays byte-identically. That is what lets the chaos tests
// assert the oracle invariant: under ANY armed plan, a dispatcher must
// deliver either the fault-free oracle's decision or an explicit
// fail-safe indeterminate, never a fabricated permit.
//
// Corruption model: a corrupted message has its payload replaced by
// kCorruptedPayload, a marker no XML parser accepts. This models a
// checksum-detectable mangled frame — receivers reliably *detect*
// corruption (request parse fails server-side, decision parse fails
// client-side) rather than silently evaluating an altered request,
// which random byte flips could in principle produce.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace mdac::net {

/// One scripted link fault. Empty `from`/`to` are wildcards; the fault
/// is active for sends happening at simulated time in [start, stop).
struct LinkFault {
  std::string from;  // sender node id; empty = any
  std::string to;    // receiver node id; empty = any
  common::TimePoint start = 0;
  common::TimePoint stop = std::numeric_limits<common::TimePoint>::max();

  double drop_probability = 0.0;       // 1.0 = blackhole (partition)
  common::Duration delay_ms = 0;       // fixed extra latency while active
  common::Duration delay_jitter_ms = 0;  // plus uniform extra in [0, jitter]
  double duplicate_probability = 0.0;  // deliver the message twice
  double corrupt_probability = 0.0;    // replace payload with kCorruptedPayload
  double reorder_probability = 0.0;    // extra uniform delay in [0, reorder_window_ms]
  common::Duration reorder_window_ms = 0;
};

/// One scripted node outage: down at [from, to).
struct NodeOutage {
  std::string node;
  common::TimePoint from = 0;
  common::TimePoint to = std::numeric_limits<common::TimePoint>::max();
};

struct FaultPlanStats {
  std::size_t drops = 0;
  std::size_t delays = 0;
  std::size_t duplicates = 0;
  std::size_t corruptions = 0;
  std::size_t reorders = 0;
  std::size_t crashes = 0;
  std::size_t recoveries = 0;
};

class FaultPlan final : public FaultInjector {
 public:
  explicit FaultPlan(std::uint64_t seed = 42, std::string name = "")
      : name_(std::move(name)), rng_(seed) {}

  const std::string& name() const { return name_; }

  FaultPlan& add_link_fault(LinkFault fault);
  FaultPlan& add_outage(NodeOutage outage);

  /// Asymmetric partition: messages from every node in `from_group` to
  /// every node in `to_group` are dropped during [start, stop). Call
  /// twice with the groups swapped for a symmetric partition.
  FaultPlan& partition(const std::vector<std::string>& from_group,
                       const std::vector<std::string>& to_group,
                       common::TimePoint start, common::TimePoint stop);

  /// Flapping schedule: `node` goes down at `first_down`, stays down for
  /// `down_for`, comes back, and repeats every `period` until `until`.
  FaultPlan& flap(const std::string& node, common::TimePoint first_down,
                  common::Duration down_for, common::Duration period,
                  common::TimePoint until);

  /// Installs the plan: registers as the network's fault injector and
  /// schedules every node outage transition on the simulator. The plan
  /// must outlive the network (or be disarmed first).
  void arm(Network& network);
  /// Detaches from the network (scheduled node transitions already in
  /// the simulator queue still fire; they only touch the network).
  void disarm();

  Verdict on_send(const Message& message) override;

  const FaultPlanStats& stats() const { return stats_; }

 private:
  std::string name_;
  common::Rng rng_;
  std::vector<LinkFault> link_faults_;
  std::vector<NodeOutage> outages_;
  Network* network_ = nullptr;
  FaultPlanStats stats_;
  // Scheduled node transitions capture a weak_ptr to this token so a
  // plan destroyed mid-run leaves them as no-ops, not dangling calls.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

/// The named fault plans the chaos tests and the C7 bench sweep share —
/// every name is a reproducible scenario over a PEP (`client`) talking
/// to PDP `nodes`, active until `horizon` (simulated ms):
///   * "flaky-links"    — 10% loss + 0-20ms delay jitter on every link
///   * "primary-flap"   — nodes[0] crash-flaps (down 300ms every 600ms)
///   * "slow-partition" — client->nodes[1] blackholed for the middle of
///                        the run; nodes[2]'s replies delayed +150ms
///   * "dup-corrupt"    — 25% duplication everywhere; requests to
///                        nodes[0] and replies from nodes[1] corrupted
///   * "chaos-mix"      — mild everything: loss, jitter, duplication,
///                        corruption, reordering, plus nodes[2] flapping
std::vector<std::string> named_fault_plan_names();
std::unique_ptr<FaultPlan> make_named_fault_plan(const std::string& name,
                                                 std::uint64_t seed,
                                                 const std::vector<std::string>& nodes,
                                                 const std::string& client,
                                                 common::TimePoint horizon = 60'000);

}  // namespace mdac::net
