#include "net/secure_channel.hpp"

#include "crypto/sha256.hpp"

namespace mdac::net {

namespace {
constexpr const char* kMagicPrefix = "mdac:";  // framing check after decrypt
}

std::string SecureChannel::protect(const std::string& payload, ChannelSecurity mode) {
  xml::Element e("Protected");
  std::string body = payload;

  if (mode.encrypt) {
    // Fresh nonce per message: counter mixed with the key fingerprint.
    crypto::Sha256 h;
    h.update(signing_key_.public_key().key_id);
    h.update(std::to_string(nonce_counter_++));
    const crypto::Digest d = h.finish();
    common::Bytes nonce(d.begin(), d.begin() + 16);

    const crypto::EncryptedPayload enc = crypto::ctr_encrypt(
        content_key_, nonce, common::to_bytes(kMagicPrefix + body));
    xml::Element& enc_el = e.add_child("EncryptedData");
    enc_el.set_attr("Nonce", common::base64_encode(enc.nonce));
    enc_el.text = common::base64_encode(enc.ciphertext);
    body = xml::to_string(enc_el);  // signature covers the ciphertext
  } else {
    e.add_child("Data").text = body;
  }

  if (mode.sign) {
    const std::string to_sign = mode.encrypt ? body : payload;
    const crypto::Signature sig = crypto::sign(signing_key_, to_sign);
    xml::Element& sig_el = e.add_child("Signature");
    sig_el.set_attr("KeyId", sig.key_id);
    sig_el.text = common::base64_encode(sig.tag);
  }
  return xml::to_string(e);
}

std::optional<std::string> SecureChannel::unprotect(const std::string& wire) const {
  const auto doc = xml::try_parse(wire);
  if (!doc || doc->name != "Protected") return std::nullopt;

  const xml::Element* encrypted = doc->child("EncryptedData");
  const xml::Element* plain = doc->child("Data");
  const xml::Element* sig_el = doc->child("Signature");

  // Verify the signature first (over ciphertext if encrypted).
  if (sig_el != nullptr) {
    crypto::Signature sig;
    sig.key_id = sig_el->attr_or("KeyId", "");
    const auto tag = common::base64_decode(sig_el->text);
    if (!tag) return std::nullopt;
    sig.tag = *tag;
    const std::string covered =
        encrypted != nullptr ? xml::to_string(*encrypted)
        : plain != nullptr   ? plain->text
                             : std::string();
    if (!trust_.verify(covered, sig)) return std::nullopt;
  }

  if (encrypted != nullptr) {
    const auto nonce = common::base64_decode(encrypted->attr_or("Nonce", ""));
    const auto ciphertext = common::base64_decode(encrypted->text);
    if (!nonce || !ciphertext) return std::nullopt;
    const common::Bytes decrypted =
        crypto::ctr_decrypt(content_key_, crypto::EncryptedPayload{*nonce, *ciphertext});
    const std::string text = common::to_string(decrypted);
    if (text.rfind(kMagicPrefix, 0) != 0) return std::nullopt;  // wrong key
    return text.substr(std::string(kMagicPrefix).size());
  }
  if (plain != nullptr) return plain->text;
  return std::nullopt;
}

}  // namespace mdac::net
