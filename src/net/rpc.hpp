// Request/response RPC over the message network, with correlation ids and
// timeouts. The shape of every PEP->PDP decision query, PAP retrieval and
// capability issuance in the distributed experiments.
//
// Everything is callback-based because the simulator is single-threaded:
// a call completes when the response event fires (or the timeout event
// wins the race — late responses are ignored, as in real RPC stacks).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/network.hpp"

namespace mdac::net {

class RpcNode {
 public:
  /// Handles an incoming request; returns the response payload.
  using RequestHandler = std::function<std::string(
      const std::string& type, const std::string& payload, const std::string& from)>;
  /// Async variant: the handler must eventually invoke `respond` exactly
  /// once (possibly from a later simulator event) with the response
  /// payload. Needed by services that fan out to other nodes before they
  /// can answer (e.g. syndication servers).
  using Responder = std::function<void(std::string response_payload)>;
  using AsyncRequestHandler =
      std::function<void(const std::string& type, const std::string& payload,
                         const std::string& from, Responder respond)>;
  /// Receives the response payload, or nullopt on timeout.
  using ResponseCallback = std::function<void(std::optional<std::string>)>;
  /// Handles one-way (non-RPC) messages.
  using NotifyHandler =
      std::function<void(const std::string& type, const std::string& payload,
                         const std::string& from)>;

  RpcNode(Network& network, std::string id);
  ~RpcNode();

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  const std::string& id() const { return id_; }
  Network& network() { return network_; }

  void set_request_handler(RequestHandler handler) {
    request_handler_ = std::move(handler);
    async_request_handler_ = nullptr;
  }
  void set_async_request_handler(AsyncRequestHandler handler) {
    async_request_handler_ = std::move(handler);
    request_handler_ = nullptr;
  }
  void set_notify_handler(NotifyHandler handler) {
    notify_handler_ = std::move(handler);
  }

  /// Issues a request; `callback` fires exactly once.
  void call(const std::string& to, const std::string& type, std::string payload,
            common::Duration timeout, ResponseCallback callback);

  /// Fire-and-forget message.
  void notify(const std::string& to, const std::string& type, std::string payload);

  std::size_t calls_sent() const { return calls_sent_; }
  std::size_t timeouts() const { return timeouts_; }

 private:
  void on_message(const Message& message);

  Network& network_;
  std::string id_;
  RequestHandler request_handler_;
  AsyncRequestHandler async_request_handler_;
  NotifyHandler notify_handler_;
  std::uint64_t next_correlation_ = 1;
  std::map<std::uint64_t, ResponseCallback> pending_;
  std::size_t calls_sent_ = 0;
  std::size_t timeouts_ = 0;
  // Liveness token: simulator events capture a weak_ptr to this so a
  // timeout firing after the node's destruction is a no-op, not a crash.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace mdac::net
