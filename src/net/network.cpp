#include "net/network.hpp"

namespace mdac::net {

void Network::set_link(const std::string& from, const std::string& to,
                       LinkConfig config) {
  links_[{from, to}] = config;
}

void Network::register_node(const std::string& id, MessageHandler handler) {
  handlers_[id] = std::move(handler);
  up_[id] = true;
}

void Network::unregister_node(const std::string& id) {
  handlers_.erase(id);
  up_.erase(id);
}

void Network::set_node_up(const std::string& id, bool up) {
  const auto it = up_.find(id);
  if (it != up_.end()) it->second = up;
}

bool Network::is_up(const std::string& id) const {
  const auto it = up_.find(id);
  return it != up_.end() && it->second;
}

const LinkConfig& Network::link_for(const std::string& from,
                                    const std::string& to) const {
  const auto it = links_.find({from, to});
  if (it != links_.end()) return it->second;
  return default_link_;
}

void Network::send(Message message) {
  ++stats_.messages_sent;
  stats_.bytes_sent += message.size_bytes();

  // The fault fabric sees the message first: a scripted fault can drop,
  // delay, duplicate or corrupt it before the link's own behaviour.
  FaultInjector::Verdict verdict;
  if (injector_ != nullptr) verdict = injector_->on_send(message);
  if (verdict.drop) {
    ++stats_.messages_dropped;
    return;
  }
  if (verdict.corrupt) {
    message.payload = kCorruptedPayload;
    ++stats_.messages_corrupted;
  }

  const LinkConfig& link = link_for(message.from, message.to);
  if (sim_.rng().chance(link.drop_probability)) {
    ++stats_.messages_dropped;
    return;
  }

  common::Duration latency = link.base_latency + verdict.extra_delay;
  if (link.jitter > 0) latency += sim_.rng().uniform_int(0, link.jitter);

  // Deliver through the envelope codec so byte accounting and the parse
  // path are always exercised, exactly like a real stack would.
  const std::string wire = message.to_envelope();
  const auto deliver = [this, wire]() {
    const auto decoded = Message::from_envelope(wire);
    if (!decoded) {
      ++stats_.messages_undeliverable;
      return;
    }
    const auto handler = handlers_.find(decoded->to);
    if (handler == handlers_.end() || !is_up(decoded->to)) {
      ++stats_.messages_undeliverable;
      return;
    }
    ++stats_.messages_delivered;
    handler->second(*decoded);
  };
  sim_.schedule(latency, deliver);
  if (verdict.duplicate) {
    ++stats_.messages_duplicated;
    sim_.schedule(latency + 1, deliver);
  }
}

}  // namespace mdac::net
