// The simulated multi-domain network: named nodes, configurable links
// (latency, jitter, loss), node up/down failure injection, and full
// message/byte accounting.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/message.hpp"
#include "net/sim.hpp"

namespace mdac::net {

struct LinkConfig {
  common::Duration base_latency = 5;  // ms
  common::Duration jitter = 0;        // uniform extra in [0, jitter]
  double drop_probability = 0.0;
};

struct NetworkStats {
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_dropped = 0;     // link loss or partition
  std::size_t messages_undeliverable = 0;  // unknown or down node
  std::size_t bytes_sent = 0;
};

class Network {
 public:
  using MessageHandler = std::function<void(const Message&)>;

  explicit Network(Simulator& sim) : sim_(sim) {}

  void set_default_link(LinkConfig config) { default_link_ = config; }

  /// Directed per-pair override (from -> to).
  void set_link(const std::string& from, const std::string& to, LinkConfig config);

  void register_node(const std::string& id, MessageHandler handler);
  void unregister_node(const std::string& id);
  bool has_node(const std::string& id) const { return handlers_.count(id) > 0; }

  /// Failure injection: a down node silently loses incoming messages
  /// (the caller only notices through timeouts — as in real systems).
  void set_node_up(const std::string& id, bool up);
  bool is_up(const std::string& id) const;

  /// Sends asynchronously; delivery is scheduled on the simulator with
  /// the link's latency. Messages to unknown/down nodes are dropped.
  void send(Message message);

  const NetworkStats& stats() const { return stats_; }
  Simulator& simulator() { return sim_; }

 private:
  const LinkConfig& link_for(const std::string& from, const std::string& to) const;

  Simulator& sim_;
  LinkConfig default_link_;
  std::map<std::pair<std::string, std::string>, LinkConfig> links_;
  std::map<std::string, MessageHandler> handlers_;
  std::map<std::string, bool> up_;
  NetworkStats stats_;
};

}  // namespace mdac::net
