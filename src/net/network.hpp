// The simulated multi-domain network: named nodes, configurable links
// (latency, jitter, loss), node up/down failure injection, and full
// message/byte accounting.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "net/message.hpp"
#include "net/sim.hpp"

namespace mdac::net {

struct LinkConfig {
  common::Duration base_latency = 5;  // ms
  common::Duration jitter = 0;        // uniform extra in [0, jitter]
  double drop_probability = 0.0;
};

struct NetworkStats {
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_dropped = 0;     // link loss or partition
  std::size_t messages_undeliverable = 0;  // unknown or down node
  std::size_t messages_corrupted = 0;   // fault-injected payload corruption
  std::size_t messages_duplicated = 0;  // fault-injected duplicate deliveries
  std::size_t bytes_sent = 0;
};

/// Payload stamped onto corrupted messages: deliberately not parseable
/// as XML, so corruption is always *detected* by the receiving parser
/// (the checksum-failure model — see net/fault.hpp) instead of silently
/// mutating a request or decision into a different valid one.
inline constexpr const char* kCorruptedPayload = "[payload corrupted in transit]";

/// Hook consulted once per send: the fault-injection fabric's view of
/// what should happen to this message (net::FaultPlan implements it; the
/// default nullptr injector leaves the network fault-free).
class FaultInjector {
 public:
  struct Verdict {
    bool drop = false;
    common::Duration extra_delay = 0;  // added to the link latency
    bool duplicate = false;            // deliver a second copy
    bool corrupt = false;              // replace payload with kCorruptedPayload
  };

  virtual ~FaultInjector() = default;
  virtual Verdict on_send(const Message& message) = 0;
};

class Network {
 public:
  using MessageHandler = std::function<void(const Message&)>;

  explicit Network(Simulator& sim) : sim_(sim) {}

  void set_default_link(LinkConfig config) { default_link_ = config; }

  /// Directed per-pair override (from -> to).
  void set_link(const std::string& from, const std::string& to, LinkConfig config);

  void register_node(const std::string& id, MessageHandler handler);
  void unregister_node(const std::string& id);
  bool has_node(const std::string& id) const { return handlers_.count(id) > 0; }

  /// Failure injection: a down node silently loses incoming messages
  /// (the caller only notices through timeouts — as in real systems).
  void set_node_up(const std::string& id, bool up);
  bool is_up(const std::string& id) const;

  /// Installs a fault injector consulted on every send (not owned; must
  /// outlive the network or be cleared with nullptr). See net/fault.hpp.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Sends asynchronously; delivery is scheduled on the simulator with
  /// the link's latency. Messages to unknown/down nodes are dropped.
  void send(Message message);

  const NetworkStats& stats() const { return stats_; }
  Simulator& simulator() { return sim_; }

 private:
  const LinkConfig& link_for(const std::string& from, const std::string& to) const;

  Simulator& sim_;
  LinkConfig default_link_;
  std::map<std::pair<std::string, std::string>, LinkConfig> links_;
  std::map<std::string, MessageHandler> handlers_;
  std::map<std::string, bool> up_;
  FaultInjector* injector_ = nullptr;
  NetworkStats stats_;
};

}  // namespace mdac::net
