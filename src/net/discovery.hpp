// Service discovery (paper §3.2, "Location of Policy Decision Points"):
// "in case of large and dynamically changing distributed systems, a
// static binding between enforcement and decision points may not be
// feasible. In such cases a discovery mechanism needs to be employed."
//
// A DiscoveryService node keeps a registry of (service kind, provider
// node, expiry) leases; providers re-register periodically, so crashed
// providers age out. Clients query by kind and get the live providers.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/rpc.hpp"

namespace mdac::net {

/// Registry node. Wire protocol (all via RPC):
///   register: payload "kind|provider-id|ttl-ms"  -> "ok"
///   lookup:   payload "kind"                     -> "id1,id2,..." (may be "")
class DiscoveryService {
 public:
  DiscoveryService(Network& network, std::string node_id);

  std::size_t registrations() const { return registrations_; }
  std::size_t lookups() const { return lookups_; }

  /// Direct (in-process) view, for tests and local composition.
  std::vector<std::string> providers_of(const std::string& kind) const;

 private:
  struct Lease {
    std::string provider;
    common::TimePoint expires_at;
  };

  Network& network_;
  RpcNode node_;
  std::map<std::string, std::vector<Lease>> leases_;  // kind -> leases
  std::size_t registrations_ = 0;
  std::size_t lookups_ = 0;
};

/// Provider-side helper: registers and keeps the lease fresh.
class DiscoveryRegistrant {
 public:
  /// `node` is the provider's own RPC node (shared with its service).
  DiscoveryRegistrant(RpcNode& node, std::string registry_id, std::string kind,
                      common::Duration lease_ms);

  /// Registers once; call start_renewal() for periodic re-registration.
  void register_once();
  void start_renewal();
  void stop() { running_ = false; }

 private:
  void schedule_renewal();

  RpcNode& node_;
  std::string registry_id_;
  std::string kind_;
  common::Duration lease_ms_;
  bool running_ = false;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

/// Client-side helper: resolves a kind to provider ids.
class DiscoveryClient {
 public:
  DiscoveryClient(RpcNode& node, std::string registry_id)
      : node_(node), registry_id_(std::move(registry_id)) {}

  using LookupCallback = std::function<void(std::vector<std::string>)>;
  void lookup(const std::string& kind, common::Duration timeout,
              LookupCallback callback);

 private:
  RpcNode& node_;
  std::string registry_id_;
};

}  // namespace mdac::net
