#include "net/rpc.hpp"

namespace mdac::net {

RpcNode::RpcNode(Network& network, std::string id)
    : network_(network), id_(std::move(id)) {
  network_.register_node(id_, [this](const Message& m) { on_message(m); });
}

RpcNode::~RpcNode() { network_.unregister_node(id_); }

void RpcNode::call(const std::string& to, const std::string& type,
                   std::string payload, common::Duration timeout,
                   ResponseCallback callback) {
  const std::uint64_t correlation = next_correlation_++;
  pending_[correlation] = std::move(callback);
  ++calls_sent_;

  Message m;
  m.from = id_;
  m.to = to;
  m.type = type;
  m.payload = std::move(payload);
  m.correlation = correlation;
  network_.send(std::move(m));

  network_.simulator().schedule(
      timeout, [this, correlation, alive = std::weak_ptr<char>(alive_)]() {
        if (alive.expired()) return;  // node destroyed before timeout fired
        const auto it = pending_.find(correlation);
        if (it == pending_.end()) return;  // already answered
        ResponseCallback cb = std::move(it->second);
        pending_.erase(it);
        ++timeouts_;
        cb(std::nullopt);
      });
}

void RpcNode::notify(const std::string& to, const std::string& type,
                     std::string payload) {
  Message m;
  m.from = id_;
  m.to = to;
  m.type = type;
  m.payload = std::move(payload);
  network_.send(std::move(m));
}

void RpcNode::on_message(const Message& message) {
  if (message.correlation != 0 && message.is_response) {
    const auto it = pending_.find(message.correlation);
    if (it == pending_.end()) return;  // late response after timeout
    ResponseCallback cb = std::move(it->second);
    pending_.erase(it);
    cb(message.payload);
    return;
  }
  if (message.correlation != 0) {
    const auto respond = [this, to = message.from, type = message.type,
                          correlation = message.correlation](std::string payload) {
      Message reply;
      reply.from = id_;
      reply.to = to;
      reply.type = type;
      reply.payload = std::move(payload);
      reply.correlation = correlation;
      reply.is_response = true;
      network_.send(std::move(reply));
    };
    if (async_request_handler_) {
      async_request_handler_(message.type, message.payload, message.from, respond);
    } else if (request_handler_) {
      respond(request_handler_(message.type, message.payload, message.from));
    }
    // No handler registered: drop; the caller times out.
    return;
  }
  if (notify_handler_) {
    notify_handler_(message.type, message.payload, message.from);
  }
}

}  // namespace mdac::net
