// Messages and their SOAP-shaped envelope encoding.
//
// Every cross-component interaction in the architecture travels as a
// Message; `size_bytes()` is the byte accounting the paper's
// communication-performance challenge needs — envelope verbosity included,
// because that verbosity is part of the finding (cf. [40] in the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mdac::net {

struct Message {
  std::string from;
  std::string to;
  std::string type;     // application verb, e.g. "authz-request"
  std::string payload;  // serialised body (usually XML)
  std::uint64_t correlation = 0;  // RPC correlation id; 0 = one-way
  bool is_response = false;

  /// SOAP-style envelope: <Envelope><Header>routing</Header><Body>…</Body>.
  std::string to_envelope() const;
  static std::optional<Message> from_envelope(const std::string& wire);

  /// Bytes on the wire: the full envelope length.
  std::size_t size_bytes() const;

  bool operator==(const Message&) const = default;
};

}  // namespace mdac::net
