#include "net/sim.hpp"

#include <stdexcept>

namespace mdac::net {

void Simulator::schedule(common::Duration delay, Handler fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule: negative delay");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Copy out before popping: the handler may schedule new events.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.at;
  ++processed_;
  event.fn();
  return true;
}

void Simulator::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
}

void Simulator::run_until(common::TimePoint deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

}  // namespace mdac::net
