#include "net/discovery.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace mdac::net {

DiscoveryService::DiscoveryService(Network& network, std::string node_id)
    : network_(network), node_(network, std::move(node_id)) {
  node_.set_request_handler([this](const std::string& type,
                                   const std::string& payload,
                                   const std::string& from) -> std::string {
    if (type == "register") {
      const auto parts = common::split(payload, '|');
      if (parts.size() != 3) return "bad-request";
      const std::string& kind = parts[0];
      const std::string& provider = parts[1];
      common::Duration ttl = 0;
      try {
        ttl = std::stoll(parts[2]);
      } catch (const std::exception&) {
        return "bad-request";
      }
      ++registrations_;
      auto& leases = leases_[kind];
      const common::TimePoint expires = network_.simulator().now() + ttl;
      const auto it = std::find_if(
          leases.begin(), leases.end(),
          [&](const Lease& l) { return l.provider == provider; });
      if (it != leases.end()) {
        it->expires_at = expires;
      } else {
        leases.push_back(Lease{provider, expires});
      }
      return "ok";
    }
    if (type == "lookup") {
      ++lookups_;
      return common::join(providers_of(payload), ",");
    }
    (void)from;
    return "unknown-request";
  });
}

std::vector<std::string> DiscoveryService::providers_of(
    const std::string& kind) const {
  std::vector<std::string> out;
  const auto it = leases_.find(kind);
  if (it == leases_.end()) return out;
  const common::TimePoint now = network_.simulator().now();
  for (const Lease& lease : it->second) {
    if (lease.expires_at > now) out.push_back(lease.provider);
  }
  return out;
}

DiscoveryRegistrant::DiscoveryRegistrant(RpcNode& node, std::string registry_id,
                                         std::string kind, common::Duration lease_ms)
    : node_(node),
      registry_id_(std::move(registry_id)),
      kind_(std::move(kind)),
      lease_ms_(lease_ms) {}

void DiscoveryRegistrant::register_once() {
  node_.call(registry_id_, "register",
             kind_ + "|" + node_.id() + "|" + std::to_string(lease_ms_),
             /*timeout=*/lease_ms_, [](std::optional<std::string>) {});
}

void DiscoveryRegistrant::start_renewal() {
  if (running_) return;
  running_ = true;
  register_once();
  schedule_renewal();
}

void DiscoveryRegistrant::schedule_renewal() {
  // Renew at half the lease so a single lost renewal does not expire us.
  node_.network().simulator().schedule(
      lease_ms_ / 2, [this, weak = std::weak_ptr<char>(alive_)]() {
        if (weak.expired() || !running_) return;
        register_once();
        schedule_renewal();
      });
}

void DiscoveryClient::lookup(const std::string& kind, common::Duration timeout,
                             LookupCallback callback) {
  node_.call(registry_id_, "lookup", kind, timeout,
             [callback](std::optional<std::string> response) {
               std::vector<std::string> out;
               if (response.has_value() && !response->empty()) {
                 out = common::split(*response, ',');
               }
               callback(std::move(out));
             });
}

}  // namespace mdac::net
