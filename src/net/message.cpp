#include "net/message.hpp"

#include "xml/xml.hpp"

namespace mdac::net {

std::string Message::to_envelope() const {
  xml::Element env("Envelope");
  xml::Element& header = env.add_child("Header");
  header.add_child("From").text = from;
  header.add_child("To").text = to;
  header.add_child("Type").text = type;
  if (correlation != 0) {
    xml::Element& c = header.add_child("Correlation");
    c.text = std::to_string(correlation);
    c.set_attr("Response", is_response ? "true" : "false");
  }
  env.add_child("Body").text = payload;
  return xml::to_string(env);
}

std::optional<Message> Message::from_envelope(const std::string& wire) {
  std::string error;
  const auto doc = xml::try_parse(wire, &error);
  if (!doc || doc->name != "Envelope") return std::nullopt;
  const xml::Element* header = doc->child("Header");
  const xml::Element* body = doc->child("Body");
  if (header == nullptr || body == nullptr) return std::nullopt;

  Message m;
  if (const xml::Element* e = header->child("From")) m.from = e->text;
  if (const xml::Element* e = header->child("To")) m.to = e->text;
  if (const xml::Element* e = header->child("Type")) m.type = e->text;
  if (m.to.empty() || m.type.empty()) return std::nullopt;  // unroutable
  if (const xml::Element* e = header->child("Correlation")) {
    try {
      m.correlation = std::stoull(e->text);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    m.is_response = e->attr_or("Response", "false") == "true";
  }
  m.payload = body->text;
  return m;
}

std::size_t Message::size_bytes() const { return to_envelope().size(); }

}  // namespace mdac::net
