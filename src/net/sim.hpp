// Discrete-event simulator: the substrate standing in for real WANs
// between administrative domains (see DESIGN.md substitutions).
//
// Single-threaded and deterministic: events fire in (time, insertion)
// order, all randomness comes from the owned seeded Rng, and components
// read time through the Clock interface so the same code runs against
// wall-clock time in examples.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace mdac::net {

class Simulator {
 public:
  using Handler = std::function<void()>;

  explicit Simulator(std::uint64_t seed = 42) : rng_(seed) {}

  common::TimePoint now() const { return now_; }
  common::Rng& rng() { return rng_; }

  /// Clock view of simulated time, for injection into components.
  const common::Clock& clock() const { return clock_; }

  /// Schedules `fn` to run `delay` milliseconds from now (>= 0).
  void schedule(common::Duration delay, Handler fn);

  /// Runs one event; returns false if the queue is empty.
  bool step();

  /// Runs until the event queue drains (or `max_events` fire).
  void run(std::size_t max_events = 1'000'000);

  /// Runs events with timestamps <= deadline; leaves later events queued
  /// and advances the clock to the deadline.
  void run_until(common::TimePoint deadline);

  std::size_t pending() const { return queue_.size(); }
  std::size_t events_processed() const { return processed_; }

 private:
  struct Event {
    common::TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  class SimClock final : public common::Clock {
   public:
    explicit SimClock(const Simulator& sim) : sim_(sim) {}
    common::TimePoint now() const override { return sim_.now_; }

   private:
    const Simulator& sim_;
  };

  common::TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  common::Rng rng_;
  SimClock clock_{*this};
};

}  // namespace mdac::net
