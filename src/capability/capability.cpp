#include "capability/capability.hpp"

namespace mdac::capability {

CapabilityService::CapabilityService(std::string name, const crypto::KeyPair& key,
                                     std::shared_ptr<core::Pdp> issuing_pdp,
                                     const common::Clock& clock,
                                     common::Duration validity_ms)
    : name_(std::move(name)),
      key_(key),
      issuing_pdp_(std::move(issuing_pdp)),
      clock_(clock),
      validity_ms_(validity_ms) {}

IssueResult CapabilityService::issue(const CapabilityRequest& request) {
  IssueResult result;

  // Pre-screening: evaluate the would-be access against the community
  // policy, with the claimed attributes in the subject category.
  core::RequestContext screening =
      core::RequestContext::make(request.subject, request.resource, request.action);
  for (const auto& [id, bag] : request.subject_attributes) {
    screening.set(core::Category::kSubject, id, bag);
  }
  result.screening_decision = issuing_pdp_->evaluate(screening);
  if (!result.screening_decision.is_permit()) {
    ++refused_;
    return result;
  }

  tokens::Assertion assertion;
  assertion.assertion_id = name_ + ":" + std::to_string(next_id_++);
  assertion.issuer = name_;
  assertion.subject = request.subject;
  assertion.issue_instant = clock_.now();
  assertion.conditions.not_before = clock_.now();
  assertion.conditions.not_on_or_after = clock_.now() + validity_ms_;
  assertion.conditions.audience = request.audience;
  assertion.attributes = request.subject_attributes;
  assertion.authz = tokens::AuthzDecisionStatement{
      request.resource, request.action, core::DecisionType::kPermit};

  result.token = tokens::sign_assertion(std::move(assertion), key_);
  ++issued_;
  return result;
}

CapabilityGate::CapabilityGate(std::string audience, const crypto::TrustStore& trust,
                               const common::Clock& clock,
                               std::shared_ptr<core::Pdp> local_pdp)
    : audience_(std::move(audience)),
      trust_(trust),
      clock_(clock),
      local_pdp_(std::move(local_pdp)) {}

GateResult CapabilityGate::admit(const tokens::SignedAssertion& token,
                                 const std::string& resource,
                                 const std::string& action) {
  GateResult result;
  result.token_status = tokens::validate(token, trust_, clock_.now(), audience_);
  if (result.token_status != tokens::TokenValidity::kValid) {
    result.reason = std::string("capability rejected: ") +
                    tokens::to_string(result.token_status);
    return result;
  }

  // Scope check: the capability must cover this (resource, action).
  if (!token.assertion.authz.has_value() ||
      token.assertion.authz->decision != core::DecisionType::kPermit ||
      token.assertion.authz->resource != resource ||
      token.assertion.authz->action != action) {
    result.reason = "capability does not cover this resource/action";
    return result;
  }

  if (!local_pdp_) {
    result.allowed = true;
    return result;
  }

  // The provider's own policy gets the final say, seeing the *token's*
  // attributes (not self-claimed ones).
  core::RequestContext request =
      core::RequestContext::make(token.assertion.subject, resource, action);
  for (const auto& [id, bag] : token.assertion.attributes) {
    request.set(core::Category::kSubject, id, bag);
  }
  request.add(core::Category::kSubject, "capability-issuer",
              core::AttributeValue(token.assertion.issuer));
  result.local_decision = local_pdp_->evaluate(request);
  result.allowed = result.local_decision.is_permit();
  if (!result.allowed) {
    result.reason = "provider policy: " + result.local_decision.describe();
  }
  return result;
}

}  // namespace mdac::capability
