// The capability-issuing (push) architecture — paper Fig. 2, modelled on
// CAS/VOMS (§2.2).
//
// Flow: (I) the client asks the trusted CapabilityService for a
// capability; the service *pre-screens* the request against its own
// issuing PDP and, on permit, (II) returns a signed SAML-shaped assertion
// carrying the client's vetted attributes and an authz-decision
// statement scoped to (resource, action) with a validity window and
// audience. (III) The client attaches the token to its service call.
// (IV) The resource provider's CapabilityGate validates the token and
// STILL makes the final local decision — the paper is explicit that the
// provider "may impose their own restrictions".
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/clock.hpp"
#include "core/pdp.hpp"
#include "crypto/keys.hpp"
#include "tokens/assertion.hpp"

namespace mdac::capability {

struct CapabilityRequest {
  std::string subject;
  std::map<std::string, core::Bag> subject_attributes;  // claimed / vetted
  std::string resource;
  std::string action;
  std::string audience;  // target domain / service
};

struct IssueResult {
  std::optional<tokens::SignedAssertion> token;
  core::Decision screening_decision;  // why issuance failed, if it did
};

class CapabilityService {
 public:
  /// `issuing_pdp` holds the community policy (CAS-style): who may be
  /// granted capabilities for what.
  CapabilityService(std::string name, const crypto::KeyPair& key,
                    std::shared_ptr<core::Pdp> issuing_pdp,
                    const common::Clock& clock, common::Duration validity_ms);

  IssueResult issue(const CapabilityRequest& request);

  const std::string& name() const { return name_; }
  const crypto::PublicKey& public_key() const { return key_.public_key(); }
  std::size_t issued_count() const { return issued_; }
  std::size_t refused_count() const { return refused_; }

 private:
  std::string name_;
  const crypto::KeyPair& key_;
  std::shared_ptr<core::Pdp> issuing_pdp_;
  const common::Clock& clock_;
  common::Duration validity_ms_;
  std::uint64_t next_id_ = 1;
  std::size_t issued_ = 0;
  std::size_t refused_ = 0;
};

/// Resource-provider side: token checks + the provider's own final say.
struct GateResult {
  bool allowed = false;
  tokens::TokenValidity token_status = tokens::TokenValidity::kValid;
  core::Decision local_decision;
  std::string reason;
};

class CapabilityGate {
 public:
  /// `local_pdp` may be null: then a valid token alone grants access
  /// (pure capability semantics). With a PDP set, the provider's local
  /// policy gets the final decision, fed with the token's attributes.
  CapabilityGate(std::string audience, const crypto::TrustStore& trust,
                 const common::Clock& clock, std::shared_ptr<core::Pdp> local_pdp);

  GateResult admit(const tokens::SignedAssertion& token, const std::string& resource,
                   const std::string& action);

 private:
  std::string audience_;
  const crypto::TrustStore& trust_;
  const common::Clock& clock_;
  std::shared_ptr<core::Pdp> local_pdp_;
};

}  // namespace mdac::capability
