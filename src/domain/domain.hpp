// An administrative domain and the Virtual Organisation that federates
// them — the composition in the paper's Fig. 1.
//
// Each Domain owns the full local stack: an identity provider (key +
// user directory), a PAP repository, a PDP over the issued policies, a
// PIP resolver chain and a PEP guarding its services. Domains are
// autonomous: cross-domain access only works once a domain has chosen to
// trust the peer's identity provider, and even then the local PDP has
// the final say (§3.2, "Autonomy of Administration Domains").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "core/pdp.hpp"
#include "crypto/keys.hpp"
#include "pap/repository.hpp"
#include "pep/pep.hpp"
#include "pip/history.hpp"
#include "pip/providers.hpp"
#include "tokens/assertion.hpp"

namespace mdac::domain {

class Domain {
 public:
  Domain(std::string name, const common::Clock& clock);

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  const std::string& name() const { return name_; }

  // --- identity provider ---------------------------------------------
  /// Registers a local user with their directory attributes.
  void register_user(const std::string& user,
                     const std::map<std::string, core::Bag>& attributes);
  bool has_user(const std::string& user) const { return users_.count(user) > 0; }

  /// Issues a signed identity/attribute assertion for a local user,
  /// audience-restricted to the target domain. Throws for unknown users.
  tokens::SignedAssertion issue_identity_assertion(const std::string& user,
                                                   const std::string& audience,
                                                   common::Duration validity_ms);

  const crypto::KeyPair& idp_key() const { return idp_key_; }

  // --- policy & decision ------------------------------------------------
  pap::PolicyRepository& repository() { return repository_; }

  /// Registers the domain's attribute vocabulary with its PAP: the names
  /// are interned on this trusted path (so they keep resolving after a
  /// wire peer exhausts the symbol table) and become the domain's
  /// allowlist for wire-request validation (pap::PolicyRepository).
  pap::RepoOutcome register_attribute_vocabulary(const std::vector<std::string>& names) {
    return repository_.register_attribute_names(name_, names, /*actor=*/name_);
  }

  /// Adds a policy directly to the live PDP store (tests / VO setup).
  void add_policy(core::Policy policy);
  void add_policy_set(core::PolicySet policy_set);

  /// (Re)loads every issued repository policy into the PDP store.
  std::size_t adopt_issued_policies();

  std::shared_ptr<core::Pdp> pdp() { return pdp_; }
  pep::EnforcementPoint& pep() { return pep_; }
  pip::AccessHistory& history() { return history_; }

  /// Local decision, resolved through the domain's PIP chain.
  core::Decision decide(const core::RequestContext& request) {
    return pdp_->evaluate(request);
  }

  /// Full local enforcement (decision + obligations + fail-safe bias).
  pep::Enforcement enforce(const core::RequestContext& request);

  // --- cross-domain trust ----------------------------------------------
  crypto::TrustStore& trust_store() { return trust_; }

  /// Accept identity assertions from the other domain's IdP.
  void trust_domain(const Domain& other) { trust_.add_trusted_key(other.idp_key()); }

  struct CrossDomainResult {
    bool allowed = false;
    tokens::TokenValidity token_status = tokens::TokenValidity::kValid;
    core::Decision decision;
    std::string reason;
  };

  /// The paper's federated flow: a foreign subject presents an identity
  /// assertion from their home IdP; the local PDP evaluates the token's
  /// vetted attributes under local policy.
  CrossDomainResult handle_cross_domain_request(const tokens::SignedAssertion& token,
                                                const std::string& resource,
                                                const std::string& action);

 private:
  std::string name_;
  const common::Clock& clock_;
  crypto::KeyPair idp_key_;
  std::map<std::string, std::map<std::string, core::Bag>> users_;
  std::uint64_t next_assertion_ = 1;

  pip::DirectoryProvider directory_;
  pip::AccessHistory history_;
  pip::HistoryProvider history_provider_;
  pip::EnvironmentProvider environment_;
  pip::CompositeResolver resolver_;

  pap::PolicyRepository repository_;
  std::shared_ptr<core::PolicyStore> store_;
  std::shared_ptr<core::Pdp> pdp_;
  crypto::TrustStore trust_;
  pep::EnforcementPoint pep_;
};

/// The federation: shared VO-level policy plus pairwise IdP trust.
class VirtualOrganisation {
 public:
  explicit VirtualOrganisation(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_member(Domain* member) { members_.push_back(member); }
  const std::vector<Domain*>& members() const { return members_; }

  /// Every member trusts every other member's IdP.
  void establish_pairwise_trust();

  /// Clones a VO-wide policy into every member's PDP store; returns the
  /// number of domains that received it.
  std::size_t distribute_policy(const core::Policy& policy);

 private:
  std::string name_;
  std::vector<Domain*> members_;
};

}  // namespace mdac::domain
