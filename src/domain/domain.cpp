#include "domain/domain.hpp"

#include <stdexcept>

namespace mdac::domain {

Domain::Domain(std::string name, const common::Clock& clock)
    : name_(std::move(name)),
      clock_(clock),
      idp_key_(crypto::KeyPair::generate("idp:" + name_)),
      history_provider_(history_),
      environment_(clock),
      repository_(clock),
      store_(std::make_shared<core::PolicyStore>()),
      pdp_(std::make_shared<core::Pdp>(store_)),
      pep_([this](const core::RequestContext& request) {
        return pdp_->evaluate(request);
      }) {
  resolver_.add(&directory_);
  resolver_.add(&history_provider_);
  resolver_.add(&environment_);
  pdp_->set_resolver(&resolver_);
  // Issue-time vocabulary auto-extraction: every policy this domain
  // issues feeds its referenced attribute names into the domain's
  // allowlist, so register_attribute_vocabulary() is only needed for
  // names requests use that no policy mentions.
  repository_.set_vocabulary_domain(name_);
}

void Domain::register_user(const std::string& user,
                           const std::map<std::string, core::Bag>& attributes) {
  users_[user] = attributes;
  for (const auto& [id, bag] : attributes) {
    for (const core::AttributeValue& v : bag.values()) {
      directory_.add_subject_attribute(user, id, v);
    }
  }
  directory_.add_subject_attribute(user, core::attrs::kSubjectDomain,
                                   core::AttributeValue(name_));
}

tokens::SignedAssertion Domain::issue_identity_assertion(
    const std::string& user, const std::string& audience,
    common::Duration validity_ms) {
  const auto it = users_.find(user);
  if (it == users_.end()) {
    throw std::invalid_argument("domain " + name_ + " has no user '" + user + "'");
  }
  tokens::Assertion assertion;
  assertion.assertion_id = name_ + ":assertion:" + std::to_string(next_assertion_++);
  assertion.issuer = name_;
  assertion.subject = user;
  assertion.issue_instant = clock_.now();
  assertion.conditions.not_before = clock_.now();
  assertion.conditions.not_on_or_after = clock_.now() + validity_ms;
  assertion.conditions.audience = audience;
  assertion.attributes = it->second;
  assertion.attributes[core::attrs::kSubjectDomain] =
      core::Bag(core::AttributeValue(name_));
  return tokens::sign_assertion(std::move(assertion), idp_key_);
}

void Domain::add_policy(core::Policy policy) { store_->add(std::move(policy)); }

void Domain::add_policy_set(core::PolicySet policy_set) {
  store_->add(std::move(policy_set));
}

std::size_t Domain::adopt_issued_policies() {
  return repository_.load_into(store_.get());
}

pep::Enforcement Domain::enforce(const core::RequestContext& request) {
  pep::Enforcement result = pep_.enforce(request);
  if (result.allowed) {
    // Feed the access history (Chinese-Wall / SoD substrate).
    const core::Bag* subject =
        request.get(core::Category::kSubject, core::attrs::kSubjectId);
    const core::Bag* resource =
        request.get(core::Category::kResource, core::attrs::kResourceId);
    const core::Bag* action =
        request.get(core::Category::kAction, core::attrs::kActionId);
    if (subject != nullptr && !subject->empty() && resource != nullptr &&
        !resource->empty() && action != nullptr && !action->empty()) {
      history_.record(subject->at(0).to_text(), resource->at(0).to_text(),
                      action->at(0).to_text(), clock_.now());
    }
  }
  return result;
}

Domain::CrossDomainResult Domain::handle_cross_domain_request(
    const tokens::SignedAssertion& token, const std::string& resource,
    const std::string& action) {
  CrossDomainResult result;
  result.token_status = tokens::validate(token, trust_, clock_.now(), name_);
  if (result.token_status != tokens::TokenValidity::kValid) {
    result.reason = std::string("identity assertion rejected: ") +
                    tokens::to_string(result.token_status);
    return result;
  }

  core::RequestContext request =
      core::RequestContext::make(token.assertion.subject, resource, action);
  for (const auto& [id, bag] : token.assertion.attributes) {
    request.set(core::Category::kSubject, id, bag);
  }
  request.add(core::Category::kSubject, "asserting-idp",
              core::AttributeValue(token.assertion.issuer));

  result.decision = pdp_->evaluate(request);
  result.allowed = result.decision.is_permit();
  if (!result.allowed) {
    result.reason = "local policy: " + result.decision.describe();
  } else {
    history_.record(token.assertion.subject, resource, action, clock_.now());
  }
  return result;
}

void VirtualOrganisation::establish_pairwise_trust() {
  for (Domain* a : members_) {
    for (Domain* b : members_) {
      if (a != b) a->trust_domain(*b);
    }
  }
}

std::size_t VirtualOrganisation::distribute_policy(const core::Policy& policy) {
  for (Domain* member : members_) {
    member->add_policy(policy.clone());
  }
  return members_.size();
}

}  // namespace mdac::domain
