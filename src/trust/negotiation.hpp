// Automated trust negotiation (paper §3.1, citing Winsborough et al. [60]
// and the Traust service [46]): two strangers "conduct a bilateral and
// iterative exchange of policies and credentials to incrementally
// establish trust".
//
// Credentials are typed tokens; each party guards its credentials and
// resources with disclosure policies — AND/OR trees over the *other*
// party's disclosed credentials. Two classic strategies:
//   * eager        — disclose everything currently unlocked, every round
//   * parsimonious — disclose only credentials that are (transitively)
//                    relevant to the outstanding request
// The negotiation succeeds when the resource's policy is satisfied, and
// fails at a fixpoint. Rounds and messages are counted for experiment C6.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace mdac::trust {

/// AND/OR tree over credential type names.
class DisclosurePolicy {
 public:
  static DisclosurePolicy always();  // no requirement
  static DisclosurePolicy credential(std::string type);
  static DisclosurePolicy all_of(std::vector<DisclosurePolicy> children);
  static DisclosurePolicy any_of(std::vector<DisclosurePolicy> children);

  bool satisfied_by(const std::set<std::string>& disclosed) const;

  /// Credential types appearing anywhere in the tree (the "relevant set"
  /// the parsimonious strategy chases).
  std::set<std::string> mentioned_credentials() const;

  bool is_trivial() const { return kind_ == Kind::kAlways; }

 private:
  enum class Kind { kAlways, kCredential, kAnd, kOr };

  Kind kind_ = Kind::kAlways;
  std::string credential_;
  std::vector<DisclosurePolicy> children_;
};

/// One negotiating party: what it holds, and what it demands before
/// releasing each credential / resource.
struct Party {
  std::string name;
  std::set<std::string> credentials;  // credential types it can produce
  std::map<std::string, DisclosurePolicy> release_policies;  // per credential
  std::map<std::string, DisclosurePolicy> resource_policies;  // per resource

  /// Policy guarding `credential`; defaults to freely releasable.
  const DisclosurePolicy& policy_for(const std::string& credential) const;
};

enum class Strategy { kEager, kParsimonious };

struct NegotiationResult {
  bool success = false;
  std::size_t rounds = 0;
  std::size_t messages = 0;  // credential disclosures + policy requests
  std::set<std::string> disclosed_by_requester;
  std::set<std::string> disclosed_by_provider;
  std::string failure_reason;
};

/// Runs the negotiation for `resource` held by `provider`.
NegotiationResult negotiate(const Party& requester, const Party& provider,
                            const std::string& resource, Strategy strategy,
                            std::size_t max_rounds = 64);

}  // namespace mdac::trust
