#include "trust/negotiation.hpp"

namespace mdac::trust {

// ---------------------------------------------------------------------
// DisclosurePolicy
// ---------------------------------------------------------------------

DisclosurePolicy DisclosurePolicy::always() { return DisclosurePolicy(); }

DisclosurePolicy DisclosurePolicy::credential(std::string type) {
  DisclosurePolicy p;
  p.kind_ = Kind::kCredential;
  p.credential_ = std::move(type);
  return p;
}

DisclosurePolicy DisclosurePolicy::all_of(std::vector<DisclosurePolicy> children) {
  DisclosurePolicy p;
  p.kind_ = Kind::kAnd;
  p.children_ = std::move(children);
  return p;
}

DisclosurePolicy DisclosurePolicy::any_of(std::vector<DisclosurePolicy> children) {
  DisclosurePolicy p;
  p.kind_ = Kind::kOr;
  p.children_ = std::move(children);
  return p;
}

bool DisclosurePolicy::satisfied_by(const std::set<std::string>& disclosed) const {
  switch (kind_) {
    case Kind::kAlways:
      return true;
    case Kind::kCredential:
      return disclosed.count(credential_) > 0;
    case Kind::kAnd:
      for (const DisclosurePolicy& c : children_) {
        if (!c.satisfied_by(disclosed)) return false;
      }
      return true;
    case Kind::kOr:
      for (const DisclosurePolicy& c : children_) {
        if (c.satisfied_by(disclosed)) return true;
      }
      return children_.empty();
  }
  return false;
}

std::set<std::string> DisclosurePolicy::mentioned_credentials() const {
  std::set<std::string> out;
  if (kind_ == Kind::kCredential) {
    out.insert(credential_);
    return out;
  }
  for (const DisclosurePolicy& c : children_) {
    const auto sub = c.mentioned_credentials();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

const DisclosurePolicy& Party::policy_for(const std::string& credential) const {
  static const DisclosurePolicy kAlways = DisclosurePolicy::always();
  const auto it = release_policies.find(credential);
  if (it == release_policies.end()) return kAlways;
  return it->second;
}

// ---------------------------------------------------------------------
// Negotiation
// ---------------------------------------------------------------------

namespace {

/// Backward-chains the "relevant" credential sets for the parsimonious
/// strategy: starting from the resource policy, which of my credentials
/// might the other side demand, and what do their guards mention in turn.
void compute_need_sets(const Party& requester, const Party& provider,
                       const DisclosurePolicy& resource_policy,
                       std::set<std::string>* needed_from_requester,
                       std::set<std::string>* needed_from_provider) {
  // Seed with what the resource policy mentions.
  *needed_from_requester = resource_policy.mentioned_credentials();

  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::string& c : *needed_from_requester) {
      if (requester.credentials.count(c) == 0) continue;
      for (const std::string& dep : requester.policy_for(c).mentioned_credentials()) {
        if (needed_from_provider->insert(dep).second) changed = true;
      }
    }
    for (const std::string& c : *needed_from_provider) {
      if (provider.credentials.count(c) == 0) continue;
      for (const std::string& dep : provider.policy_for(c).mentioned_credentials()) {
        if (needed_from_requester->insert(dep).second) changed = true;
      }
    }
  }
}

/// Discloses every unlocked, not-yet-disclosed credential of `owner`
/// (restricted to `relevant` unless it is null). Returns how many were
/// newly disclosed.
std::size_t disclose_unlocked(const Party& owner,
                              const std::set<std::string>& other_side_disclosed,
                              const std::set<std::string>* relevant,
                              std::set<std::string>* own_disclosed) {
  std::size_t newly = 0;
  for (const std::string& c : owner.credentials) {
    if (own_disclosed->count(c) > 0) continue;
    if (relevant != nullptr && relevant->count(c) == 0) continue;
    if (!owner.policy_for(c).satisfied_by(other_side_disclosed)) continue;
    own_disclosed->insert(c);
    ++newly;
  }
  return newly;
}

}  // namespace

NegotiationResult negotiate(const Party& requester, const Party& provider,
                            const std::string& resource, Strategy strategy,
                            std::size_t max_rounds) {
  NegotiationResult result;
  result.messages = 1;  // the initial resource request

  const auto policy_it = provider.resource_policies.find(resource);
  if (policy_it == provider.resource_policies.end()) {
    result.failure_reason = "provider has no policy for resource '" + resource +
                            "' (fail-safe: no access)";
    return result;
  }
  const DisclosurePolicy& resource_policy = policy_it->second;
  result.messages += 1;  // provider sends back the (relevant) policy

  std::set<std::string> needed_from_requester;
  std::set<std::string> needed_from_provider;
  const std::set<std::string>* relevant_requester = nullptr;
  const std::set<std::string>* relevant_provider = nullptr;
  if (strategy == Strategy::kParsimonious) {
    compute_need_sets(requester, provider, resource_policy, &needed_from_requester,
                      &needed_from_provider);
    relevant_requester = &needed_from_requester;
    relevant_provider = &needed_from_provider;
  }

  while (result.rounds < max_rounds) {
    if (resource_policy.satisfied_by(result.disclosed_by_requester)) {
      result.success = true;
      result.messages += 1;  // the final grant
      return result;
    }
    ++result.rounds;

    const std::size_t from_requester =
        disclose_unlocked(requester, result.disclosed_by_provider, relevant_requester,
                          &result.disclosed_by_requester);
    if (from_requester > 0) result.messages += 1;

    if (resource_policy.satisfied_by(result.disclosed_by_requester)) continue;

    const std::size_t from_provider =
        disclose_unlocked(provider, result.disclosed_by_requester, relevant_provider,
                          &result.disclosed_by_provider);
    if (from_provider > 0) result.messages += 1;

    if (from_requester == 0 && from_provider == 0) {
      result.failure_reason = "negotiation reached a fixpoint without satisfying "
                              "the resource policy";
      result.messages += 1;  // the final refusal
      return result;
    }
  }
  result.failure_reason = "round limit exceeded";
  return result;
}

}  // namespace mdac::trust
