// Policy Administration Point (paper §2.2, component 3).
//
// A versioned repository with the lifecycle the paper's management
// challenge enumerates (§3.2: writing, reviewing, issuing, modifying,
// withdrawing, retrieving) and an append-only audit log carrying content
// hashes — the substrate for the compliance/audit story (ISO 27k, DPA).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "core/policy.hpp"

namespace mdac::pap {

enum class Lifecycle { kDraft, kIssued, kWithdrawn };

const char* to_string(Lifecycle s);

struct PolicyRecord {
  std::string policy_id;
  int version = 1;
  Lifecycle status = Lifecycle::kDraft;
  std::string document;      // wire (XML) form
  std::string author;
  common::TimePoint updated_at = 0;
};

struct AuditEntry {
  common::TimePoint at = 0;
  std::string actor;
  std::string operation;   // submit / issue / withdraw / replace
  std::string policy_id;
  int version = 0;
  std::string content_hash;  // SHA-256 of the document, hex
};

struct RepoOutcome {
  bool ok = true;
  std::string reason;

  static RepoOutcome success() { return {}; }
  static RepoOutcome failure(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

class PolicyRepository {
 public:
  explicit PolicyRepository(const common::Clock& clock) : clock_(clock) {}

  /// Parses and stores `document` as a draft. A document for an existing
  /// id becomes a new draft version. Malformed documents are rejected.
  RepoOutcome submit(const std::string& document, const std::string& author);

  /// Promotes the latest draft to issued (withdrawing any prior issued
  /// version of the same id).
  RepoOutcome issue(const std::string& policy_id, const std::string& actor);

  /// Withdraws the issued version.
  RepoOutcome withdraw(const std::string& policy_id, const std::string& actor);

  /// Latest record (any status) / the issued record for an id.
  const PolicyRecord* latest(const std::string& policy_id) const;
  const PolicyRecord* issued(const std::string& policy_id) const;

  std::vector<const PolicyRecord*> all_issued() const;
  std::vector<std::string> policy_ids() const;

  /// Materialises every issued policy into a PDP's store (the PAP→PDP
  /// retrieval edge of Fig. 4). Returns how many were loaded.
  std::size_t load_into(core::PolicyStore* store) const;

  // --- attribute vocabulary (interner-boundary hardening) -------------
  //
  // A domain registers the attribute names its policies and peers use.
  // Registration runs on the trusted admin path and interns the names
  // into the process-global symbol table, so requests carrying a
  // registered vocabulary always take the interned fast path — even
  // after an abusive wire peer has filled the table (unregistered fresh
  // names then ride the per-request side table; see core/request.hpp).
  // The allowlist also lets a wire front-end (pep::PdpService) reject
  // requests naming attributes outside the domain's vocabulary.

  /// Registers (and interns) `names` for `domain`; appends to any
  /// existing allowlist and audit-logs the registration. Fails without
  /// partial registration if the symbol table cannot hold them all.
  RepoOutcome register_attribute_names(const std::string& domain,
                                       const std::vector<std::string>& names,
                                       const std::string& actor);

  /// The registered allowlist, or nullptr if `domain` never registered.
  const std::set<std::string, std::less<>>* attribute_allowlist(
      const std::string& domain) const;

  /// True if `domain` registered no allowlist (everything allowed) or
  /// `name` is on it.
  bool attribute_allowed(const std::string& domain, std::string_view name) const;

  const std::vector<AuditEntry>& audit_log() const { return audit_; }

  /// Bumped on every successful mutation — remote caches key off this.
  std::uint64_t revision() const { return revision_; }

 private:
  void record_audit(const std::string& actor, const std::string& operation,
                    const std::string& policy_id, int version,
                    const std::string& document);

  const common::Clock& clock_;
  // id -> all versions, ascending.
  std::map<std::string, std::vector<PolicyRecord>> records_;
  // domain -> registered attribute-name allowlist.
  std::map<std::string, std::set<std::string, std::less<>>, std::less<>> allowlists_;
  std::vector<AuditEntry> audit_;
  std::uint64_t revision_ = 0;
};

}  // namespace mdac::pap
