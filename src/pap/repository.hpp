// Policy Administration Point (paper §2.2, component 3).
//
// A versioned repository with the lifecycle the paper's management
// challenge enumerates (§3.2: writing, reviewing, issuing, modifying,
// withdrawing, retrieving) and an append-only audit log carrying content
// hashes — the substrate for the compliance/audit story (ISO 27k, DPA).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/finding.hpp"
#include "common/clock.hpp"
#include "core/policy.hpp"

namespace mdac::core {
class CompiledPolicyTree;
}  // namespace mdac::core

namespace mdac::obs {
class Registry;
}  // namespace mdac::obs

namespace mdac::pap {

enum class Lifecycle { kDraft, kIssued, kWithdrawn };

const char* to_string(Lifecycle s);

struct PolicyRecord {
  std::string policy_id;
  int version = 1;
  Lifecycle status = Lifecycle::kDraft;
  std::string document;      // wire (XML) form
  std::string author;
  common::TimePoint updated_at = 0;
};

struct AuditEntry {
  /// Monotone per-repository sequence number, starting at 1. Survives
  /// ring eviction: when the audit log is capacity-bound, gaps below the
  /// oldest retained entry identify exactly how many entries were
  /// dropped (the retained suffix itself stays gap-free).
  std::uint64_t sequence = 0;
  common::TimePoint at = 0;
  std::string actor;
  std::string operation;   // submit / issue / withdraw / replace
  std::string policy_id;
  int version = 0;
  std::string content_hash;  // SHA-256 of the document, hex
};

struct RepoOutcome {
  bool ok = true;
  std::string reason;

  static RepoOutcome success() { return {}; }
  static RepoOutcome failure(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

/// Issue-time static-analysis policy (paper §3.1: conflicts are found
/// *before* deployment, on the trusted administrative path).
struct PapConfig {
  /// Run the mdac::analysis linter on every issue(): the candidate node
  /// plus every already-issued compiled tree are analysed together, and
  /// findings involving the candidate are audited.
  bool lint_on_issue = true;
  /// Refuse issuance outright when the lint report carries
  /// error-severity findings involving the candidate (cross-root
  /// modality conflicts, dangling references, type errors). The refusal
  /// is audited as "lint-refused" and leaves the repository unchanged.
  bool lint_gate = false;
  /// Non-empty: the issue-time lint additionally checks the candidate's
  /// referenced attribute names against this domain's registered
  /// allowlist (vocabulary pass). Meant for manually registered
  /// vocabularies; leave empty when set_vocabulary_domain() is used —
  /// auto-extraction grows the allowlist from the policies themselves,
  /// so the pass could only ever warn about its own input.
  std::string lint_vocabulary_domain;
  /// Upper bound on retained audit entries. 0 = unbounded (the default,
  /// preserving append-only semantics for compliance deployments that
  /// archive externally). When bound, the log is a ring: the oldest
  /// entry is dropped to admit a new one, dropped_audit_entries() counts
  /// the evictions, and AuditEntry::sequence stays monotone so the drop
  /// is detectable rather than silent.
  std::size_t audit_capacity = 0;
};

class PolicyRepository {
 public:
  explicit PolicyRepository(const common::Clock& clock, PapConfig config = {})
      : clock_(clock), config_(std::move(config)) {}

  /// Parses and stores `document` as a draft. A document for an existing
  /// id becomes a new draft version. Malformed documents are rejected.
  RepoOutcome submit(const std::string& document, const std::string& author);

  /// Promotes the latest draft to issued (withdrawing any prior issued
  /// version of the same id). Issuing also *compiles* the node
  /// (core::CompiledPolicyTree — plain policies and whole PolicySet
  /// trees alike) on this trusted path: the artifact is attached by
  /// load_into(), so every PDP replica loading this repository shares
  /// one compiled program per node, and re-issuing a new version
  /// recompiles. Issuing a policy that issued PolicySets *reference*
  /// additionally recompiles those dependent artifacts (transitively)
  /// before this call returns — so a snapshot published right after an
  /// issue always carries artifacts whose compile-time diagnostics and
  /// stats reflect the new working set. (Decision correctness never
  /// waits for that recompilation: compiled references resolve through
  /// the live store per request — see core/compiled.hpp.) When a
  /// vocabulary domain is set (see set_vocabulary_domain), the attribute
  /// names the policy references are harvested and registered as that
  /// domain's allowlist first.
  RepoOutcome issue(const std::string& policy_id, const std::string& actor);

  /// Withdraws the issued version and drops its compiled artifact;
  /// dependent issued artifacts recompile, as on issue().
  RepoOutcome withdraw(const std::string& policy_id, const std::string& actor);

  /// Latest record (any status) / the issued record for an id.
  const PolicyRecord* latest(const std::string& policy_id) const;
  const PolicyRecord* issued(const std::string& policy_id) const;

  std::vector<const PolicyRecord*> all_issued() const;
  std::vector<std::string> policy_ids() const;

  /// Materialises every issued policy into a PDP's store (the PAP→PDP
  /// retrieval edge of Fig. 4), attaching each policy's compiled
  /// artifact so replicas share the issue-time compilation. Returns how
  /// many were loaded.
  std::size_t load_into(core::PolicyStore* store) const;

  /// The compile-on-issue artifact for `policy_id`'s issued version, or
  /// null (not issued, or its document failed to parse).
  std::shared_ptr<const core::CompiledPolicyTree> compiled(
      const std::string& policy_id) const;

  // --- attribute vocabulary (interner-boundary hardening) -------------
  //
  // A domain registers the attribute names its policies and peers use.
  // Registration runs on the trusted admin path and interns the names
  // into the process-global symbol table, so requests carrying a
  // registered vocabulary always take the interned fast path — even
  // after an abusive wire peer has filled the table (unregistered fresh
  // names then ride the per-request side table; see core/request.hpp).
  // The allowlist also lets a wire front-end (pep::PdpService) reject
  // requests naming attributes outside the domain's vocabulary.

  /// Registers (and interns) `names` for `domain`; appends to any
  /// existing allowlist and audit-logs the registration. Fails without
  /// partial registration if the symbol table cannot hold them all.
  RepoOutcome register_attribute_names(const std::string& domain,
                                       const std::vector<std::string>& names,
                                       const std::string& actor);

  /// The registered allowlist, or nullptr if `domain` never registered.
  const std::set<std::string, std::less<>>* attribute_allowlist(
      const std::string& domain) const;

  /// True if `domain` registered no allowlist (everything allowed) or
  /// `name` is on it.
  bool attribute_allowed(const std::string& domain, std::string_view name) const;

  /// Enables issue-time vocabulary auto-extraction: every issue()
  /// harvests the attribute names the policy references
  /// (core::referenced_attribute_names) and feeds them through
  /// register_attribute_names for `domain`, so the allowlist tracks the
  /// issued policy set without manual registration. Empty = disabled
  /// (the default). Domains wire their own name in (domain::Domain).
  void set_vocabulary_domain(std::string domain) {
    vocabulary_domain_ = std::move(domain);
  }
  const std::string& vocabulary_domain() const { return vocabulary_domain_; }

  const std::deque<AuditEntry>& audit_log() const { return audit_; }

  /// Audit entries evicted by the PapConfig::audit_capacity ring; always
  /// 0 when the log is unbounded.
  std::uint64_t dropped_audit_entries() const { return dropped_audit_entries_; }

  /// Registers audit-log size/drop metrics with a metrics registry
  /// (mdac_pap_*); returns the collector id. The repository must outlive
  /// the registry or be unregistered first.
  std::uint64_t register_metrics(obs::Registry& registry) const;

  /// Bumped on every successful mutation — remote caches key off this.
  std::uint64_t revision() const { return revision_; }

  /// The report from the most recent issue-time lint (null until the
  /// first issue() with lint_on_issue). Snapshot publication
  /// (runtime::SnapshotPublisher::publish_from) attaches this to the
  /// published snapshot so PDP replicas can surface analyser findings
  /// alongside the policy state they execute.
  std::shared_ptr<const analysis::AnalysisReport> lint_report() const {
    return lint_report_;
  }

  const PapConfig& config() const { return config_; }

 private:
  void record_audit(const std::string& actor, const std::string& operation,
                    const std::string& policy_id, int version,
                    const std::string& document);
  /// Compiles `node` (the parsed issued document of `policy_id`) and
  /// replaces its artifact and dependency edges. `intern_names` = false
  /// is the symbol-table-exhausted degradation (see issue()); it is
  /// remembered per id so dependent *re*compiles stay resolve-only and
  /// cannot burn the symbol budget the atomic registration refusal
  /// preserved.
  void compile_node(const std::string& policy_id, const core::PolicyTreeNode& node,
                    bool intern_names);
  /// Parses `policy_id`'s issued document and compiles it via
  /// compile_node, reusing the id's remembered intern_names mode;
  /// clears artifact and edges if nothing is issued or parsing fails.
  void compile_issued(const std::string& policy_id);
  /// Recompiles every issued node whose tree references `changed_id`,
  /// transitively (a set referencing a set referencing `changed_id`
  /// recompiles too). Audited per recompiled node.
  void recompile_dependents(const std::string& changed_id, const std::string& actor);
  /// Lints `node` (the candidate for issuance as `policy_id`, at
  /// `version`) against every already-issued compiled tree. Returns
  /// failure when the gate refuses; audits findings either way.
  RepoOutcome lint_candidate(const std::string& policy_id, int version,
                             const core::PolicyTreeNode& node,
                             const std::string& actor);

  const common::Clock& clock_;
  PapConfig config_;
  std::shared_ptr<const analysis::AnalysisReport> lint_report_;
  // id -> all versions, ascending.
  std::map<std::string, std::vector<PolicyRecord>> records_;
  // id -> compile-on-issue artifact for the currently issued version.
  std::map<std::string, std::shared_ptr<const core::CompiledPolicyTree>> compiled_;
  // id -> policy ids its issued tree references (dependency edges for
  // recompile_dependents).
  std::map<std::string, std::set<std::string>> references_;
  // ids whose issue-time registration failed (symbol table exhausted):
  // their compiles — including dependent recompiles — stay resolve-only.
  std::set<std::string> resolve_only_;
  // domain -> registered attribute-name allowlist.
  std::map<std::string, std::set<std::string, std::less<>>, std::less<>> allowlists_;
  std::string vocabulary_domain_;
  std::deque<AuditEntry> audit_;
  std::uint64_t audit_sequence_ = 0;
  std::uint64_t dropped_audit_entries_ = 0;
  std::uint64_t revision_ = 0;
};

}  // namespace mdac::pap
