#include "pap/admin_guard.hpp"

#include "core/serialization.hpp"

namespace mdac::pap {

core::RequestContext GuardedRepository::admin_request(const std::string& actor,
                                                      const std::string& operation,
                                                      const std::string& policy_id) {
  core::RequestContext req =
      core::RequestContext::make(actor, "policy:" + policy_id, operation);
  req.add(core::Category::kResource, "resource-kind",
          core::AttributeValue("access-control-policy"));
  return req;
}

RepoOutcome GuardedRepository::authorize(const std::string& actor,
                                         const std::string& operation,
                                         const std::string& policy_id) {
  const core::Decision d =
      admin_pdp_->evaluate(admin_request(actor, operation, policy_id));
  if (d.is_permit()) return RepoOutcome::success();
  // Fail-safe: anything but an explicit permit blocks administration.
  return RepoOutcome::failure("admin authorisation denied for " + actor + " " +
                              operation + " " + policy_id + " (" + d.describe() +
                              ")");
}

RepoOutcome GuardedRepository::submit(const std::string& document,
                                      const std::string& actor) {
  std::string policy_id;
  try {
    policy_id = core::node_from_string(document)->id();
  } catch (const std::exception& e) {
    return RepoOutcome::failure(std::string("invalid policy document: ") + e.what());
  }
  if (const RepoOutcome o = authorize(actor, "submit", policy_id); !o) return o;
  return repository_.submit(document, actor);
}

RepoOutcome GuardedRepository::issue(const std::string& policy_id,
                                     const std::string& actor) {
  if (const RepoOutcome o = authorize(actor, "issue", policy_id); !o) return o;
  return repository_.issue(policy_id, actor);
}

RepoOutcome GuardedRepository::withdraw(const std::string& policy_id,
                                        const std::string& actor) {
  if (const RepoOutcome o = authorize(actor, "withdraw", policy_id); !o) return o;
  return repository_.withdraw(policy_id, actor);
}

}  // namespace mdac::pap
