#include "pap/syndication.hpp"

#include <memory>

#include "core/serialization.hpp"
#include "xml/xml.hpp"

namespace mdac::pap {

namespace {

/// Collects every string literal compared against resource-id with
/// string-equal in the node's own target.
std::vector<std::string> target_resource_values(const core::PolicyTreeNode& node) {
  std::vector<std::string> out;
  const core::Target* target = node.target();
  if (target == nullptr) return out;
  for (const core::AnyOf& any : target->any_ofs) {
    for (const core::AllOf& all : any.all_ofs) {
      for (const core::Match& m : all.matches) {
        if (m.category == core::Category::kResource &&
            m.attribute_id == core::attrs::kResourceId &&
            m.function_id == "string-equal" && m.literal.is_string()) {
          out.push_back(m.literal.as_string());
        }
      }
    }
  }
  return out;
}

std::size_t count_rules(const core::PolicyTreeNode& node) {
  if (const auto* p = dynamic_cast<const core::Policy*>(&node)) {
    return p->rules.size();
  }
  if (const auto* ps = dynamic_cast<const core::PolicySet*>(&node)) {
    std::size_t total = 0;
    for (const core::PolicyNodePtr& child : ps->children()) {
      total += count_rules(*child);
    }
    return total;
  }
  return 0;
}

}  // namespace

bool SyndicationConstraint::accepts(const core::PolicyTreeNode& node) const {
  if (resource_scope.has_value()) {
    const std::vector<std::string> resources = target_resource_values(node);
    if (resources.empty()) return false;  // unscoped policy vs scoped domain
    for (const std::string& r : resources) {
      if (!common::wildcard_match(*resource_scope, r)) return false;
    }
  }
  if (count_rules(node) > max_rules) return false;
  if (custom && !custom(node)) return false;
  return true;
}

std::string report_to_payload(const SyndicationReport& report) {
  xml::Element e("Report");
  e.set_attr("Accepted", std::to_string(report.accepted));
  e.set_attr("Rejected", std::to_string(report.rejected));
  e.set_attr("Nodes", std::to_string(report.nodes_reached));
  return xml::to_string(e);
}

std::optional<SyndicationReport> report_from_payload(const std::string& payload) {
  const auto doc = xml::try_parse(payload);
  if (!doc || doc->name != "Report") return std::nullopt;
  try {
    SyndicationReport r;
    r.accepted = std::stoull(doc->attr_or("Accepted", "0"));
    r.rejected = std::stoull(doc->attr_or("Rejected", "0"));
    r.nodes_reached = std::stoull(doc->attr_or("Nodes", "0"));
    return r;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

SyndicationServer::SyndicationServer(net::Network& network, std::string node_id,
                                     PolicyRepository& repository,
                                     SyndicationConstraint constraint)
    : node_(network, std::move(node_id)),
      repository_(repository),
      constraint_(std::move(constraint)) {
  node_.set_async_request_handler(
      [this](const std::string& type, const std::string& payload,
             const std::string& /*from*/, net::RpcNode::Responder respond) {
        if (type != "syndicate") {
          respond(report_to_payload(SyndicationReport{}));
          return;
        }
        handle_syndicate(payload,
                         [respond](SyndicationReport report) {
                           respond(report_to_payload(report));
                         },
                         /*per_hop_timeout=*/1000);
      });
}

void SyndicationServer::add_child(const std::string& child_node_id) {
  children_.push_back(child_node_id);
}

void SyndicationServer::publish(const std::string& document,
                                std::function<void(SyndicationReport)> on_complete,
                                common::Duration per_hop_timeout) {
  handle_syndicate(document, std::move(on_complete), per_hop_timeout);
}

void SyndicationServer::handle_syndicate(
    const std::string& document, std::function<void(SyndicationReport)> done,
    common::Duration per_hop_timeout) {
  SyndicationReport local;
  local.nodes_reached = 1;

  bool acceptable = false;
  try {
    const core::PolicyNodePtr node = core::node_from_string(document);
    acceptable = constraint_.accepts(*node);
  } catch (const std::exception&) {
    acceptable = false;
  }
  if (acceptable && repository_.submit(document, "syndication:" + node_.id())) {
    // Syndicated policies go live immediately in the local PAP.
    const std::string id = core::node_from_string(document)->id();
    repository_.issue(id, "syndication:" + node_.id());
    local.accepted = 1;
  } else {
    local.rejected = 1;
  }

  if (children_.empty()) {
    done(local);
    return;
  }

  struct Pending {
    SyndicationReport aggregate;
    std::size_t remaining;
    std::function<void(SyndicationReport)> done;
  };
  auto pending = std::make_shared<Pending>();
  pending->aggregate = local;
  pending->remaining = children_.size();
  pending->done = std::move(done);

  for (const std::string& child : children_) {
    node_.call(child, "syndicate", document, per_hop_timeout,
               [pending](std::optional<std::string> response) {
                 if (response.has_value()) {
                   if (const auto report = report_from_payload(*response)) {
                     pending->aggregate.accepted += report->accepted;
                     pending->aggregate.rejected += report->rejected;
                     pending->aggregate.nodes_reached += report->nodes_reached;
                   }
                 }
                 if (--pending->remaining == 0) {
                   pending->done(pending->aggregate);
                 }
               });
  }
}

}  // namespace mdac::pap
