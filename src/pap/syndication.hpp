// Policy syndication (paper Fig. 5 and §3.2 "Communication Performance"):
// a global PAP pushes policies down a hierarchy of syndication servers;
// each local PAP applies its own constraint filter — accepting only
// policies within its scope — and reports acceptance back up.
//
// Runs over the simulated network so the Fig-5 bench can measure
// propagation latency and message counts against depth and fanout.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "core/policy.hpp"
#include "net/rpc.hpp"
#include "pap/repository.hpp"

namespace mdac::pap {

/// Local autonomy: which syndicated policies a domain will take.
struct SyndicationConstraint {
  /// If set, every resource-id equality value in the policy's target must
  /// match this wildcard pattern (e.g. "domain-a/*"). Policies without a
  /// resource-id constraint are rejected when a scope is set.
  std::optional<std::string> resource_scope;
  /// Upper bound on total rule count (syndication payload control).
  std::size_t max_rules = static_cast<std::size_t>(-1);
  /// Extra domain-specific veto.
  std::function<bool(const core::PolicyTreeNode&)> custom;

  bool accepts(const core::PolicyTreeNode& node) const;
};

/// Aggregate result reported back up the hierarchy.
struct SyndicationReport {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t nodes_reached = 0;
};

/// One server in the Fig-5 tree. The root calls publish(); interior nodes
/// relay to children over the network; every node files accepted policies
/// into its local repository.
class SyndicationServer {
 public:
  SyndicationServer(net::Network& network, std::string node_id,
                    PolicyRepository& repository, SyndicationConstraint constraint);

  void add_child(const std::string& child_node_id);

  /// Root entry point: pushes `document` into the subtree. `on_complete`
  /// fires when every reachable node has reported (or timed out).
  void publish(const std::string& document,
               std::function<void(SyndicationReport)> on_complete,
               common::Duration per_hop_timeout = 1000);

  const std::string& node_id() const { return node_.id(); }
  const std::vector<std::string>& children() const { return children_; }

 private:
  /// Handles a syndicate request; returns the serialized subtree report.
  void handle_syndicate(const std::string& document,
                        std::function<void(SyndicationReport)> done,
                        common::Duration per_hop_timeout);

  net::RpcNode node_;
  PolicyRepository& repository_;
  SyndicationConstraint constraint_;
  std::vector<std::string> children_;
};

/// Wire form helpers for reports (exposed for tests).
std::string report_to_payload(const SyndicationReport& report);
std::optional<SyndicationReport> report_from_payload(const std::string& payload);

}  // namespace mdac::pap
