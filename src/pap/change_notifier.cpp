#include "pap/change_notifier.hpp"

namespace mdac::pap {

bool ChangeNotifier::notify_if_changed() {
  const std::uint64_t current = repository_.revision();
  if (current == last_revision_) return false;
  last_revision_ = current;
  broadcast("revision " + std::to_string(current));
  return true;
}

void ChangeNotifier::broadcast(const std::string& reason) {
  for (const std::string& subscriber : subscribers_) {
    node_.notify(subscriber, "policy-changed", reason);
    ++notifications_sent_;
  }
}

}  // namespace mdac::pap
