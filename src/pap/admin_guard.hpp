// "Securing the authorisation system with its own security policies"
// (paper §3.2 / [44]): every administrative operation on the repository
// is itself an access request — subject = administrator, resource =
// "policy:<id>" (in the admin domain), action = submit/issue/withdraw —
// decided by an *admin PDP* whose policies live in the very same policy
// language. One language, one engine, checks and audits included.
#pragma once

#include <memory>

#include "core/pdp.hpp"
#include "pap/repository.hpp"

namespace mdac::pap {

class GuardedRepository {
 public:
  GuardedRepository(PolicyRepository& repository, std::shared_ptr<core::Pdp> admin_pdp)
      : repository_(repository), admin_pdp_(std::move(admin_pdp)) {}

  /// Each operation first consults the admin PDP; a non-permit decision
  /// fails the operation with the decision attached to the reason.
  RepoOutcome submit(const std::string& document, const std::string& actor);
  RepoOutcome issue(const std::string& policy_id, const std::string& actor);
  RepoOutcome withdraw(const std::string& policy_id, const std::string& actor);

  const PolicyRepository& repository() const { return repository_; }

  /// Builds the administrative request for (actor, operation, policy id);
  /// exposed so admin policies can be authored and tested against it.
  static core::RequestContext admin_request(const std::string& actor,
                                            const std::string& operation,
                                            const std::string& policy_id);

 private:
  RepoOutcome authorize(const std::string& actor, const std::string& operation,
                        const std::string& policy_id);

  PolicyRepository& repository_;
  std::shared_ptr<core::Pdp> admin_pdp_;
};

}  // namespace mdac::pap
