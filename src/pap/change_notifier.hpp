// Policy-change notification: the missing half of the paper's caching
// story (§3.2). Caches make the pull model affordable, but stale entries
// produce false permits/denies; the notifier closes the loop by
// broadcasting "policy-changed" events from the PAP to every subscribed
// PEP cache, which invalidates wholesale.
//
// Delivery is best-effort (one-way notify over the lossy network), so
// TTLs remain the backstop — exactly the layered defence the paper's
// challenge text implies.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cache/decision_cache.hpp"
#include "net/rpc.hpp"
#include "pap/repository.hpp"

namespace mdac::pap {

/// PAP-side: watches a repository revision and broadcasts changes.
class ChangeNotifier {
 public:
  ChangeNotifier(net::Network& network, std::string node_id,
                 const PolicyRepository& repository)
      : node_(network, std::move(node_id)), repository_(repository) {}

  void add_subscriber(const std::string& node_id) {
    subscribers_.push_back(node_id);
  }

  /// Broadcasts if the repository changed since the last call. Returns
  /// true if a notification went out. Callers typically invoke this
  /// after administrative operations (or on a simulator timer).
  bool notify_if_changed();

  /// Unconditional broadcast (e.g. out-of-band revocation).
  void broadcast(const std::string& reason);

  std::size_t notifications_sent() const { return notifications_sent_; }

 private:
  net::RpcNode node_;
  const PolicyRepository& repository_;
  std::vector<std::string> subscribers_;
  std::uint64_t last_revision_ = 0;
  std::size_t notifications_sent_ = 0;
};

/// PEP-side: a network node that flushes a decision cache on
/// "policy-changed" notifications.
class CacheInvalidationListener {
 public:
  CacheInvalidationListener(net::Network& network, std::string node_id,
                            cache::DecisionCache& cache)
      : node_(network, std::move(node_id)), cache_(cache) {
    node_.set_notify_handler([this](const std::string& type, const std::string&,
                                    const std::string&) {
      if (type == "policy-changed") {
        cache_.invalidate_all();
        ++invalidations_;
      }
    });
  }

  const std::string& node_id() const { return node_.id(); }
  std::size_t invalidations() const { return invalidations_; }

 private:
  net::RpcNode node_;
  cache::DecisionCache& cache_;
  std::size_t invalidations_ = 0;
};

}  // namespace mdac::pap
