#include "pap/repository.hpp"

#include <stdexcept>

#include "analysis/analysis.hpp"
#include "common/interner.hpp"
#include "core/compiled.hpp"
#include "core/serialization.hpp"
#include "crypto/sha256.hpp"
#include "obs/registry.hpp"

namespace mdac::pap {

const char* to_string(Lifecycle s) {
  switch (s) {
    case Lifecycle::kDraft: return "draft";
    case Lifecycle::kIssued: return "issued";
    case Lifecycle::kWithdrawn: return "withdrawn";
  }
  return "?";
}

void PolicyRepository::record_audit(const std::string& actor,
                                    const std::string& operation,
                                    const std::string& policy_id, int version,
                                    const std::string& document) {
  AuditEntry entry;
  entry.sequence = ++audit_sequence_;
  entry.at = clock_.now();
  entry.actor = actor;
  entry.operation = operation;
  entry.policy_id = policy_id;
  entry.version = version;
  entry.content_hash = crypto::digest_hex(crypto::Sha256::hash(document));
  audit_.push_back(std::move(entry));
  if (config_.audit_capacity != 0 && audit_.size() > config_.audit_capacity) {
    // Ring semantics: evict oldest, never refuse the new entry — recent
    // history is what incident response reads first. The eviction is
    // accounted (dropped_audit_entries_) and detectable via the sequence
    // gap below the oldest retained entry.
    audit_.pop_front();
    ++dropped_audit_entries_;
  }
  ++revision_;
}

std::uint64_t PolicyRepository::register_metrics(obs::Registry& registry) const {
  const PolicyRepository* repo = this;
  return registry.add_collector([repo](obs::MetricSink& sink) {
    sink.gauge("mdac_pap_audit_entries", "Audit entries currently retained",
               static_cast<double>(repo->audit_.size()));
    sink.counter("mdac_pap_audit_entries_total",
                 "Audit entries ever recorded (monotone sequence high-water)",
                 static_cast<double>(repo->audit_sequence_));
    sink.counter("mdac_pap_dropped_audit_entries_total",
                 "Audit entries evicted by the audit_capacity ring",
                 static_cast<double>(repo->dropped_audit_entries_));
    sink.gauge("mdac_pap_revision", "Repository revision counter",
               static_cast<double>(repo->revision_));
  });
}

RepoOutcome PolicyRepository::submit(const std::string& document,
                                     const std::string& author) {
  std::string policy_id;
  try {
    const auto node = core::node_from_string(document);
    policy_id = node->id();
  } catch (const std::exception& e) {
    return RepoOutcome::failure(std::string("invalid policy document: ") + e.what());
  }

  auto& versions = records_[policy_id];
  PolicyRecord record;
  record.policy_id = policy_id;
  record.version = versions.empty() ? 1 : versions.back().version + 1;
  record.status = Lifecycle::kDraft;
  record.document = document;
  record.author = author;
  record.updated_at = clock_.now();
  versions.push_back(std::move(record));

  record_audit(author, "submit", policy_id, versions.back().version, document);
  return RepoOutcome::success();
}

RepoOutcome PolicyRepository::lint_candidate(const std::string& policy_id,
                                             int version,
                                             const core::PolicyTreeNode& node,
                                             const std::string& actor) {
  // Analyse the candidate together with the working set it would join:
  // every already-issued compiled tree contributes its source node (and
  // its artifact, for compile diagnostics). Cross-root conflicts against
  // issued trees are exactly the paper's pre-deployment check.
  std::vector<analysis::AnalysisInput> roots;
  roots.push_back({&node, nullptr});
  for (const auto& [other_id, artifact] : compiled_) {
    if (other_id == policy_id || artifact == nullptr) continue;
    roots.push_back({&artifact->source(), artifact.get()});
  }
  analysis::AnalyzerOptions options;
  options.resolves = [this, &policy_id](const std::string& id) {
    return id == policy_id || issued(id) != nullptr;
  };
  options.withdrawn = [this](const std::string& id) {
    return records_.find(id) != records_.end() && issued(id) == nullptr;
  };
  if (!config_.lint_vocabulary_domain.empty()) {
    options.vocabulary = attribute_allowlist(config_.lint_vocabulary_domain);
  }
  auto report = std::make_shared<analysis::AnalysisReport>(
      analysis::analyse_roots(roots, options));
  lint_report_ = report;

  std::size_t errors = 0, warnings = 0, infos = 0;
  for (const analysis::Finding& f : report->findings) {
    if (f.root_id != policy_id && f.other_root_id != policy_id) continue;
    switch (f.severity) {
      case analysis::Severity::kError: ++errors; break;
      case analysis::Severity::kWarning: ++warnings; break;
      case analysis::Severity::kInfo: ++infos; break;
    }
  }
  const std::string summary = std::to_string(errors) + " error(s), " +
                              std::to_string(warnings) + " warning(s), " +
                              std::to_string(infos) + " info(s)";
  if (config_.lint_gate && errors > 0) {
    record_audit(actor, "lint-refused", policy_id, version, summary);
    return RepoOutcome::failure("lint gate: " + summary + " for " + policy_id);
  }
  // Audit the lint only when it found something about this candidate:
  // the common clean-issue path stays one audit entry per operation.
  if (errors + warnings + infos > 0) {
    record_audit(actor, "lint", policy_id, version, summary);
  }
  return RepoOutcome::success();
}

RepoOutcome PolicyRepository::issue(const std::string& policy_id,
                                    const std::string& actor) {
  const auto it = records_.find(policy_id);
  if (it == records_.end()) return RepoOutcome::failure("unknown policy " + policy_id);
  auto& versions = it->second;
  if (versions.back().status != Lifecycle::kDraft) {
    return RepoOutcome::failure("latest version of " + policy_id + " is not a draft");
  }

  // Parse and lint *before* any lifecycle mutation: a gate refusal must
  // leave the repository exactly as it was.
  core::PolicyNodePtr node;
  try {
    node = core::node_from_string(versions.back().document);
  } catch (const std::exception&) {
    // Unparseable documents cannot pass submit(); guard regardless — a
    // broken record must not block issuing, only its compilation.
    node = nullptr;
  }
  if (node != nullptr && config_.lint_on_issue) {
    const RepoOutcome linted =
        lint_candidate(policy_id, versions.back().version, *node, actor);
    if (!linted) return linted;
  }

  for (PolicyRecord& r : versions) {
    if (r.status == Lifecycle::kIssued) r.status = Lifecycle::kWithdrawn;
  }
  versions.back().status = Lifecycle::kIssued;
  versions.back().updated_at = clock_.now();
  record_audit(actor, "issue", policy_id, versions.back().version,
               versions.back().document);

  // Compile-on-issue (and recompile-on-update: a re-issued id replaces
  // its artifact). This is the trusted administrative path, so the
  // compiler may intern the policy's attribute names; with a vocabulary
  // domain configured, the names any issued node references (policy or
  // policy set, walked recursively) are additionally registered (and
  // audited) as the domain's allowlist before compilation, keeping the
  // wire-request gate in sync with the issued policy set.
  if (node != nullptr) {
    bool intern_names = true;
    if (!vocabulary_domain_.empty()) {
      auto names = core::referenced_attribute_names(*node);
      // The request envelope is part of every domain's vocabulary by
      // construction (RequestContext::make always sends subject-id /
      // resource-id / action-id, and domain routing reads the domain
      // attributes): without these, the first auto-registration would
      // flip a previously open PEP name filter to closed and reject
      // every wire request over names no policy happens to mention.
      for (const char* envelope :
           {core::attrs::kSubjectId, core::attrs::kSubjectDomain,
            core::attrs::kResourceId, core::attrs::kResourceDomain,
            core::attrs::kActionId}) {
        names.push_back(envelope);
      }
      const RepoOutcome registered =
          register_attribute_names(vocabulary_domain_, names, actor);
      if (!registered) {
        // Symbol table exhausted: the issue still succeeds (policy
        // administration must not wedge on a full symbol table, and the
        // policy evaluates through string-lookup fallbacks), but a PEP
        // gating on this allowlist will reject the unregistered names —
        // make that visible in the audit trail instead of silent. The
        // compile below must then resolve-only: registration refused
        // *atomically* to preserve the remaining symbol budget, and a
        // name-by-name interning compile would burn it anyway.
        record_audit(actor, "register-attributes-failed", vocabulary_domain_,
                     static_cast<int>(names.size()), registered.reason);
        intern_names = false;
      }
    }
    compile_node(policy_id, *node, intern_names);
  } else {
    compiled_.erase(policy_id);
    references_.erase(policy_id);
    resolve_only_.erase(policy_id);
  }
  // Issued PolicySets referencing this id carry compile-time diagnostics
  // and stats about it: refresh them in the same administrative step, so
  // the next snapshot publication ships consistent artifacts.
  recompile_dependents(policy_id, actor);
  return RepoOutcome::success();
}

void PolicyRepository::compile_node(const std::string& policy_id,
                                    const core::PolicyTreeNode& node,
                                    bool intern_names) {
  core::CompileOptions options;
  options.intern_names = intern_names;
  options.reference_resolves = [this](const std::string& id) {
    return issued(id) != nullptr;
  };
  compiled_[policy_id] = core::CompiledPolicyTree::compile(node, options);
  const auto refs = core::referenced_policy_ids(node);
  references_[policy_id] = std::set<std::string>(refs.begin(), refs.end());
  if (intern_names) {
    resolve_only_.erase(policy_id);
  } else {
    resolve_only_.insert(policy_id);
  }
}

void PolicyRepository::compile_issued(const std::string& policy_id) {
  const PolicyRecord* record = issued(policy_id);
  if (record == nullptr) {
    compiled_.erase(policy_id);
    references_.erase(policy_id);
    return;
  }
  try {
    const auto node = core::node_from_string(record->document);
    compile_node(policy_id, *node,
                 resolve_only_.find(policy_id) == resolve_only_.end());
  } catch (const std::exception&) {
    compiled_.erase(policy_id);
    references_.erase(policy_id);
  }
}

void PolicyRepository::recompile_dependents(const std::string& changed_id,
                                            const std::string& actor) {
  // Transitive worklist over the dependency edges; `done` both dedups
  // and breaks reference cycles. The trigger itself was just compiled —
  // never recompile it here (a self-referencing set would loop its own
  // compilation otherwise).
  std::set<std::string> done{changed_id};
  std::vector<std::string> work{changed_id};
  while (!work.empty()) {
    const std::string id = std::move(work.back());
    work.pop_back();
    // Snapshot the dependents first: compile_issued mutates references_.
    std::vector<std::string> dependents;
    for (const auto& [dependent, refs] : references_) {
      if (refs.find(id) != refs.end()) dependents.push_back(dependent);
    }
    for (const std::string& dependent : dependents) {
      if (!done.insert(dependent).second) continue;
      const PolicyRecord* record = issued(dependent);
      if (record == nullptr) continue;
      compile_issued(dependent);
      record_audit(actor, "recompile", dependent, record->version,
                   record->document);
      work.push_back(dependent);
    }
  }
}

RepoOutcome PolicyRepository::withdraw(const std::string& policy_id,
                                       const std::string& actor) {
  const auto it = records_.find(policy_id);
  if (it == records_.end()) return RepoOutcome::failure("unknown policy " + policy_id);
  for (PolicyRecord& r : it->second) {
    if (r.status == Lifecycle::kIssued) {
      r.status = Lifecycle::kWithdrawn;
      r.updated_at = clock_.now();
      compiled_.erase(policy_id);  // nothing issued, nothing to execute
      references_.erase(policy_id);
      resolve_only_.erase(policy_id);
      record_audit(actor, "withdraw", policy_id, r.version, r.document);
      // Sets still referencing the withdrawn id recompile so their
      // diagnostics record the now-unresolvable reference (their
      // decisions already track the live store — core/compiled.hpp).
      recompile_dependents(policy_id, actor);
      return RepoOutcome::success();
    }
  }
  return RepoOutcome::failure(policy_id + " has no issued version");
}

const PolicyRecord* PolicyRepository::latest(const std::string& policy_id) const {
  const auto it = records_.find(policy_id);
  if (it == records_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

const PolicyRecord* PolicyRepository::issued(const std::string& policy_id) const {
  const auto it = records_.find(policy_id);
  if (it == records_.end()) return nullptr;
  for (const PolicyRecord& r : it->second) {
    if (r.status == Lifecycle::kIssued) return &r;
  }
  return nullptr;
}

std::vector<const PolicyRecord*> PolicyRepository::all_issued() const {
  std::vector<const PolicyRecord*> out;
  for (const auto& [id, versions] : records_) {
    for (const PolicyRecord& r : versions) {
      if (r.status == Lifecycle::kIssued) out.push_back(&r);
    }
  }
  return out;
}

std::vector<std::string> PolicyRepository::policy_ids() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const auto& [id, _] : records_) out.push_back(id);
  return out;
}

RepoOutcome PolicyRepository::register_attribute_names(
    const std::string& domain, const std::vector<std::string>& names,
    const std::string& actor) {
  if (names.empty()) return RepoOutcome::failure("empty attribute-name list");
  // Keep the registration atomic as far as the interner allows: interning
  // is irreversible, so probe capacity for the genuinely-new names before
  // interning any of them — a failed registration must not burn the
  // remaining symbol budget on a prefix of the list. The probe is
  // advisory under concurrent interning; the catch below is the backstop
  // (a race can still intern a prefix, but the allowlist itself stays
  // all-or-nothing).
  std::size_t new_count = 0;
  std::size_t new_bytes = 0;
  for (const std::string& name : names) {
    if (!common::interner().find(name)) {
      ++new_count;
      new_bytes += name.size();
    }
  }
  if (!common::interner().has_capacity(new_count, new_bytes)) {
    return RepoOutcome::failure(
        "symbol table exhausted; attribute vocabulary not registered");
  }
  try {
    for (const std::string& name : names) common::interner().intern(name);
  } catch (const std::length_error&) {
    return RepoOutcome::failure(
        "symbol table exhausted; attribute vocabulary not registered");
  }
  auto& allowlist = allowlists_[domain];
  for (const std::string& name : names) allowlist.insert(name);
  record_audit(actor, "register-attributes", domain,
               static_cast<int>(allowlist.size()),
               /*document=*/std::to_string(names.size()) + " names");
  return RepoOutcome::success();
}

const std::set<std::string, std::less<>>* PolicyRepository::attribute_allowlist(
    const std::string& domain) const {
  const auto it = allowlists_.find(domain);
  if (it == allowlists_.end()) return nullptr;
  return &it->second;
}

bool PolicyRepository::attribute_allowed(const std::string& domain,
                                         std::string_view name) const {
  const auto it = allowlists_.find(domain);
  if (it == allowlists_.end()) return true;  // no allowlist = open vocabulary
  return it->second.find(name) != it->second.end();
}

std::size_t PolicyRepository::load_into(core::PolicyStore* store) const {
  std::size_t loaded = 0;
  for (const PolicyRecord* r : all_issued()) {
    try {
      store->add(core::node_from_string(r->document), compiled(r->policy_id));
      ++loaded;
    } catch (const std::exception&) {
      // An unparseable issued record cannot happen through submit(), but
      // guard anyway: a broken policy must not take the PDP down.
    }
  }
  return loaded;
}

std::shared_ptr<const core::CompiledPolicyTree> PolicyRepository::compiled(
    const std::string& policy_id) const {
  const auto it = compiled_.find(policy_id);
  if (it == compiled_.end()) return nullptr;
  return it->second;
}

}  // namespace mdac::pap
