// Minimal levelled logger. Intentionally tiny: the library is meant to be
// embedded, so logging is opt-in and writes to a caller-supplied sink.
//
// Thread-safety (audited for mdac::runtime): log() may be called from
// any thread — the level filter is an atomic load and the sink runs
// under a global mutex, so concurrent messages never interleave within
// a sink call. set_log_sink/set_log_level are safe to race with log();
// the installed sink itself must tolerate being invoked from whichever
// thread logged (the default stderr sink does).
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace mdac::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Sets the global sink (default: stderr) and minimum level (default: warn).
void set_log_sink(LogSink sink);
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log(LogLevel::kError, m); }

}  // namespace mdac::common
