// Minimal levelled logger. Intentionally tiny: the library is meant to be
// embedded, so logging is opt-in and writes to a caller-supplied sink.
//
// Thread-safety (audited for mdac::runtime): log() may be called from
// any thread — the level filter is an atomic load and the sink runs
// under a global mutex, so concurrent messages never interleave within
// a sink call. set_log_sink/set_log_level are safe to race with log();
// the installed sink itself must tolerate being invoked from whichever
// thread logged (the default stderr sink does).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>

namespace mdac::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

using LogSink = std::function<void(LogLevel, std::string_view)>;

/// One structured key-value pair for the fielded log overloads. Holds
/// only views/scalars — constructing a LogField never allocates, so a
/// braced field list costs nothing when the message is filtered by
/// level (rendering is deferred until past the level check). The keys
/// and text values must outlive the log() call (string literals and
/// stack strings both do).
struct LogField {
  enum class Type { kText, kUnsigned, kSigned, kFloat, kBool };

  std::string_view key;
  Type type = Type::kText;
  std::string_view text;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double f = 0.0;

  constexpr LogField(std::string_view k, std::string_view v)
      : key(k), type(Type::kText), text(v) {}
  constexpr LogField(std::string_view k, const char* v)
      : key(k), type(Type::kText), text(v) {}
  constexpr LogField(std::string_view k, std::uint64_t v)
      : key(k), type(Type::kUnsigned), u(v) {}
  constexpr LogField(std::string_view k, std::uint32_t v)
      : key(k), type(Type::kUnsigned), u(v) {}
  constexpr LogField(std::string_view k, std::int64_t v)
      : key(k), type(Type::kSigned), i(v) {}
  constexpr LogField(std::string_view k, int v) : key(k), type(Type::kSigned), i(v) {}
  constexpr LogField(std::string_view k, double v)
      : key(k), type(Type::kFloat), f(v) {}
  constexpr LogField(std::string_view k, bool v)
      : key(k), type(Type::kBool), u(v ? 1 : 0) {}
};

/// Sets the global sink (default: stderr) and minimum level (default: warn).
void set_log_sink(LogSink sink);
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, std::string_view message);

/// Structured overload: renders `message key=value ...` after the
/// relaxed-atomic level early-out (a filtered message costs one atomic
/// load and zero formatting). Text values are quoted; the reserved key
/// "trace" renders unsigned values as the zero-padded hex trace id,
/// matching obs::render's `trace %016x` header — so a log line and the
/// explain trace for the same request grep identically:
///   log_info("request shed", {{"trace", result.trace_id}, {"cause", "queue-full"}});
void log(LogLevel level, std::string_view message,
         std::initializer_list<LogField> fields);

inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log(LogLevel::kError, m); }

inline void log_debug(std::string_view m, std::initializer_list<LogField> fields) {
  log(LogLevel::kDebug, m, fields);
}
inline void log_info(std::string_view m, std::initializer_list<LogField> fields) {
  log(LogLevel::kInfo, m, fields);
}
inline void log_warn(std::string_view m, std::initializer_list<LogField> fields) {
  log(LogLevel::kWarn, m, fields);
}
inline void log_error(std::string_view m, std::initializer_list<LogField> fields) {
  log(LogLevel::kError, m, fields);
}

}  // namespace mdac::common
