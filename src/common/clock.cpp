#include "common/clock.hpp"

#include <chrono>

namespace mdac::common {

TimePoint WallClock::now() const {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

}  // namespace mdac::common
