#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace mdac::common {

namespace {

std::mutex g_mutex;
// Atomic so the common case — a message below the level — is a single
// relaxed load, not a mutex acquisition. Engine workers log on error
// paths; they must never serialise on the logger just to discard a
// debug line. The sink stays under the mutex: it is a std::function
// replaced wholesale and invoked while held, so set_log_sink racing
// log() is safe.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
LogSink g_sink;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    std::cerr << "[mdac " << level_name(level) << "] " << message << '\n';
  }
}

namespace {

void append_field(std::string& out, const LogField& field) {
  out += ' ';
  out.append(field.key);
  out += '=';
  char buf[32];
  switch (field.type) {
    case LogField::Type::kText:
      out += '"';
      out.append(field.text);
      out += '"';
      break;
    case LogField::Type::kUnsigned:
      if (field.key == "trace") {
        // Match obs::render's `trace %016llx` header so one grep finds
        // both the log line and the explain trace.
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(field.u));
      } else {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(field.u));
      }
      out += buf;
      break;
    case LogField::Type::kSigned:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(field.i));
      out += buf;
      break;
    case LogField::Type::kFloat:
      std::snprintf(buf, sizeof(buf), "%g", field.f);
      out += buf;
      break;
    case LogField::Type::kBool:
      out += field.u != 0 ? "true" : "false";
      break;
  }
}

}  // namespace

void log(LogLevel level, std::string_view message,
         std::initializer_list<LogField> fields) {
  // Same early-out as the plain overload: a filtered structured message
  // costs one relaxed load, no rendering.
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::string line;
  line.reserve(message.size() + fields.size() * 24);
  line.append(message);
  for (const LogField& field : fields) append_field(line, field);
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::cerr << "[mdac " << level_name(level) << "] " << line << '\n';
  }
}

}  // namespace mdac::common
