#include "common/logging.hpp"

#include <iostream>
#include <mutex>

namespace mdac::common {

namespace {

std::mutex g_mutex;
LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void set_log_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_level = level;
}

LogLevel log_level() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_level;
}

void log(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, message);
  } else {
    std::cerr << "[mdac " << level_name(level) << "] " << message << '\n';
  }
}

}  // namespace mdac::common
