// Byte-buffer helpers shared across the library: conversions between
// strings and byte vectors, hex and base64 codecs.
//
// Base64 is load-bearing: signed tokens and encrypted envelopes embed
// binary digests in XML documents, and the size overhead of doing so is
// one of the quantities the paper's communication-performance challenge
// asks about (experiment C2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mdac::common {

using Bytes = std::vector<std::uint8_t>;

/// Copies the characters of `s` into a byte vector (no re-encoding).
Bytes to_bytes(std::string_view s);

/// Copies a byte vector into a std::string (bytes may be non-printable).
std::string to_string(const Bytes& b);

/// Lower-case hex encoding, two characters per byte.
std::string hex_encode(const Bytes& b);

/// Decodes lower- or upper-case hex. Returns nullopt on odd length or
/// non-hex characters.
std::optional<Bytes> hex_decode(std::string_view s);

/// Standard RFC 4648 base64 with padding.
std::string base64_encode(const Bytes& b);

/// Decodes base64 (padding required). Returns nullopt on malformed input.
std::optional<Bytes> base64_decode(std::string_view s);

}  // namespace mdac::common
