// Time abstraction.
//
// Every component that needs "now" (token validity windows, cache TTLs,
// heartbeats, the network simulator) takes a `Clock&` so that tests and
// benches can drive logical time deterministically with `ManualClock`,
// while examples may use `WallClock`. Timestamps are milliseconds since
// an arbitrary epoch.
//
// Thread-safety (audited for mdac::runtime, whose workers share one
// clock through the decision cache): `WallClock` is fully thread-safe —
// now() is a pure read of the system clock with no mutable state — so it
// is the clock to hand anything the DecisionEngine's workers touch
// concurrently. `ManualClock` is single-threaded BY CONTRACT: advance()/
// set() and now() are deliberately unsynchronised plain accesses so the
// simulator and tests stay deterministic and free of accidental
// ordering; do not share one across threads (TSan will rightly flag it).
// A test that needs logical time *and* a concurrent engine keeps the
// ManualClock on the thread that owns it and gives the engine-visible
// components a WallClock.
#pragma once

#include <cstdint>

namespace mdac::common {

using TimePoint = std::int64_t;  // milliseconds
using Duration = std::int64_t;   // milliseconds

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const = 0;
};

/// Real time (std::chrono::system_clock), for interactive examples and
/// for anything shared across runtime worker threads. Thread-safe:
/// stateless, now() only reads the system clock.
class WallClock final : public Clock {
 public:
  TimePoint now() const override;
};

/// Deterministic, manually advanced logical clock for tests and
/// simulation. Single-threaded by contract (see the header comment):
/// never share one with concurrently running engine workers.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) : now_(start) {}
  TimePoint now() const override { return now_; }
  void advance(Duration d) { now_ += d; }
  void set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

}  // namespace mdac::common
