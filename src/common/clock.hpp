// Time abstraction.
//
// Every component that needs "now" (token validity windows, cache TTLs,
// heartbeats, the network simulator) takes a `Clock&` so that tests and
// benches can drive logical time deterministically with `ManualClock`,
// while examples may use `WallClock`. Timestamps are milliseconds since
// an arbitrary epoch.
#pragma once

#include <cstdint>

namespace mdac::common {

using TimePoint = std::int64_t;  // milliseconds
using Duration = std::int64_t;   // milliseconds

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const = 0;
};

/// Real time (std::chrono::system_clock), for interactive examples.
class WallClock final : public Clock {
 public:
  TimePoint now() const override;
};

/// Deterministic, manually advanced logical clock for tests and simulation.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) : now_(start) {}
  TimePoint now() const override { return now_; }
  void advance(Duration d) { now_ += d; }
  void set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

}  // namespace mdac::common
