#include "common/bytes.hpp"

#include <array>

namespace mdac::common {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(const Bytes& b) { return std::string(b.begin(), b.end()); }

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string hex_encode(const Bytes& b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0f]);
  }
  return out;
}

std::optional<Bytes> hex_decode(std::string_view s) {
  if (s.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = hex_value(s[i]);
    const int lo = hex_value(s[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(const Bytes& b) {
  std::string out;
  out.reserve(((b.size() + 2) / 3) * 4);
  std::size_t i = 0;
  while (i + 3 <= b.size()) {
    const std::uint32_t n = (static_cast<std::uint32_t>(b[i]) << 16) |
                            (static_cast<std::uint32_t>(b[i + 1]) << 8) |
                            static_cast<std::uint32_t>(b[i + 2]);
    out.push_back(kB64Alphabet[(n >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 12) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 6) & 0x3f]);
    out.push_back(kB64Alphabet[n & 0x3f]);
    i += 3;
  }
  const std::size_t rem = b.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(b[i]) << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(b[i]) << 16) |
                            (static_cast<std::uint32_t>(b[i + 1]) << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 12) & 0x3f]);
    out.push_back(kB64Alphabet[(n >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> base64_decode(std::string_view s) {
  if (s.size() % 4 != 0) return std::nullopt;
  Bytes out;
  out.reserve((s.size() / 4) * 3);
  for (std::size_t i = 0; i < s.size(); i += 4) {
    int vals[4];
    int pads = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = s[i + j];
      if (c == '=') {
        // Padding may only appear in the last group, trailing positions.
        if (i + 4 != s.size() || j < 2) return std::nullopt;
        vals[j] = 0;
        ++pads;
      } else {
        if (pads > 0) return std::nullopt;  // data after padding
        vals[j] = b64_value(c);
        if (vals[j] < 0) return std::nullopt;
      }
    }
    const std::uint32_t n =
        (static_cast<std::uint32_t>(vals[0]) << 18) |
        (static_cast<std::uint32_t>(vals[1]) << 12) |
        (static_cast<std::uint32_t>(vals[2]) << 6) |
        static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
    if (pads < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
    if (pads < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
  }
  return out;
}

}  // namespace mdac::common
