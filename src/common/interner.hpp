// Interned symbol table for hot-path identifiers.
//
// Attribute names (and the policy-literal values the PDP target index
// keys on) form a small, slowly-growing vocabulary, while requests
// referencing them arrive at wire rate. Interning turns every repeated
// string comparison/hash on the decision hot path into an integer
// operation: `RequestContext` keys its bags by (Category, Symbol) and the
// PDP candidate index probes by Symbol (see core/request.hpp,
// core/pdp.hpp).
//
// `find()` deliberately never inserts: request-supplied *values* are
// unbounded (millions of users), so the hot path may only look up, never
// grow the table. Since PR 2, request parsing does not intern *names*
// either — an unknown attribute name rides the request's own side table
// (core/request.hpp) — so the only roads into this process-global table
// are trusted ones: policy/index build and per-domain attribute
// vocabulary registration (pap::PolicyRepository::register_attribute_names).
// That is the fairness half of the exhaustion defence: the caps below
// bound memory, and keeping untrusted input out of the table entirely is
// what keeps one abusive peer from consuming them for everyone else
// (tests/interner_flood_test.cpp pins this down).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mdac::common {

/// Dense id of an interned string. Valid symbols are indices into the
/// owning Interner; equality of symbols (from one interner) is equality
/// of strings.
using Symbol = std::uint32_t;

class Interner {
 public:
  /// Hard caps on distinct symbols and on total interned bytes.
  /// Interning is permanent, so an unbounded table would be a
  /// memory-exhaustion vector; the caps are the backstop should some
  /// future caller intern unvetted input. The byte cap matters as much
  /// as the count cap — 2^20 megabyte-long names would be a terabyte.
  /// 2^20 names / 64 MiB are far beyond any real policy vocabulary.
  static constexpr std::size_t kDefaultMaxSize = 1u << 20;
  static constexpr std::size_t kDefaultMaxBytes = 64u << 20;

  /// Returns the symbol for `s`, inserting it if new. Throws
  /// std::length_error once `max_size` distinct strings or `max_bytes`
  /// total name bytes are interned — callers degrade gracefully rather
  /// than crash (the PDP index falls back to always-candidate, PAP
  /// vocabulary registration fails whole). Thread-safe.
  Symbol intern(std::string_view s);

  /// Adjusts the caps (testing / embedders with known vocabularies).
  void set_max_size(std::size_t max_size);
  void set_max_bytes(std::size_t max_bytes);

  /// Returns the symbol for `s` if it was ever interned; never inserts.
  /// The steady-state (read-mostly) hot-path operation. Thread-safe.
  std::optional<Symbol> find(std::string_view s) const;

  /// Best-effort capacity probe: true if `count` new symbols totalling
  /// `bytes` name bytes would fit under the caps right now. Callers that
  /// must not leave a half-interned batch behind (PAP vocabulary
  /// registration) check this before interning; advisory only under
  /// concurrent interning, so they still catch std::length_error.
  bool has_capacity(std::size_t count, std::size_t bytes) const;

  /// The string a symbol stands for. The reference stays valid for the
  /// interner's lifetime (strings are never moved or freed). Thread-safe.
  const std::string& name(Symbol s) const;

  std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  // Views in `map_` point into `strings_`; std::deque growth never moves
  // existing elements, so the views (and name() references) stay valid.
  std::unordered_map<std::string_view, Symbol> map_;
  std::deque<std::string> strings_;
  std::size_t max_size_ = kDefaultMaxSize;
  std::size_t max_bytes_ = kDefaultMaxBytes;
  std::size_t bytes_ = 0;
};

/// The process-wide interner used by the core request/PDP types.
Interner& interner();

}  // namespace mdac::common
