// Seedable random source. All stochastic behaviour in the library
// (network jitter, failure injection, workload generators) draws from an
// injected Rng so that every experiment row is reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace mdac::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::pick on empty vector");
    return v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mdac::common
