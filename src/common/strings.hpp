// Small string helpers used throughout the library.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace mdac::common {

/// Splits on a single-character separator; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator string.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

/// Simple glob-free prefix wildcard matching used by scope rules:
/// pattern "a/*" matches "a/b"; "*" matches anything; otherwise exact.
bool wildcard_match(std::string_view pattern, std::string_view value);

/// Transparent string hash for unordered containers: lets hot paths probe
/// std::unordered_map<std::string, ...> with a string_view, avoiding the
/// temporary std::string an untyped probe would allocate.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace mdac::common
