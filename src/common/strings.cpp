#include "common/strings.hpp"

#include <cctype>

namespace mdac::common {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool wildcard_match(std::string_view pattern, std::string_view value) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    const std::string_view prefix = pattern.substr(0, pattern.size() - 1);
    return value.substr(0, prefix.size()) == prefix;
  }
  return pattern == value;
}

}  // namespace mdac::common
