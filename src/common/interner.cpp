#include "common/interner.hpp"

#include <mutex>
#include <stdexcept>

namespace mdac::common {

Symbol Interner::intern(std::string_view s) {
  {
    std::shared_lock lock(mutex_);
    const auto it = map_.find(s);
    if (it != map_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  // Re-check: another thread may have interned `s` between the locks.
  const auto it = map_.find(s);
  if (it != map_.end()) return it->second;
  if (strings_.size() >= max_size_ || bytes_ + s.size() > max_bytes_) {
    throw std::length_error("Interner: symbol table is full");
  }
  bytes_ += s.size();
  strings_.emplace_back(s);
  const Symbol sym = static_cast<Symbol>(strings_.size() - 1);
  map_.emplace(std::string_view(strings_.back()), sym);
  return sym;
}

std::optional<Symbol> Interner::find(std::string_view s) const {
  std::shared_lock lock(mutex_);
  const auto it = map_.find(s);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

const std::string& Interner::name(Symbol s) const {
  std::shared_lock lock(mutex_);
  if (s >= strings_.size()) throw std::out_of_range("Interner::name: bad symbol");
  return strings_[s];
}

void Interner::set_max_size(std::size_t max_size) {
  std::unique_lock lock(mutex_);
  max_size_ = max_size;
}

void Interner::set_max_bytes(std::size_t max_bytes) {
  std::unique_lock lock(mutex_);
  max_bytes_ = max_bytes;
}

std::size_t Interner::size() const {
  std::shared_lock lock(mutex_);
  return strings_.size();
}

bool Interner::has_capacity(std::size_t count, std::size_t bytes) const {
  std::shared_lock lock(mutex_);
  return strings_.size() + count <= max_size_ && bytes_ + bytes <= max_bytes_;
}

Interner& interner() {
  static Interner instance;
  return instance;
}

}  // namespace mdac::common
