#include "xml/xml.hpp"

#include <cctype>
#include <sstream>

#include "common/strings.hpp"

namespace mdac::xml {

std::optional<std::string> Element::attr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string Element::attr_or(std::string_view key, std::string_view fallback) const {
  if (auto v = attr(key)) return *v;
  return std::string(fallback);
}

Element& Element::set_attr(std::string key, std::string value) {
  for (auto& [k, v] : attributes) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  attributes.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Element* Element::child(std::string_view name) const {
  for (const Element& c : children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const Element& c : children) {
    if (c.name == name) out.push_back(&c);
  }
  return out;
}

Element& Element::add_child(Element e) {
  children.push_back(std::move(e));
  return children.back();
}

Element& Element::add_child(std::string name) {
  return add_child(Element(std::move(name)));
}

std::size_t Element::subtree_size() const {
  std::size_t n = 1;
  for (const Element& c : children) n += c.subtree_size();
  return n;
}

ParseError::ParseError(const std::string& message, std::size_t line, std::size_t column)
    : std::runtime_error("xml parse error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Element parse_document() {
    skip_prolog();
    Element root = parse_element();
    skip_misc();
    if (pos_ != input_.size()) fail("trailing content after document element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(message, line, col);
  }

  bool eof() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  char get() { return input_[pos_++]; }

  bool starts_with(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  void skip_comment() {
    // assumes starts_with("<!--")
    pos_ += 4;
    const std::size_t end = input_.find("-->", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  void skip_prolog() {
    skip_ws();
    if (starts_with("<?xml")) {
      const std::size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    skip_misc();
  }

  void skip_misc() {
    while (true) {
      skip_ws();
      if (starts_with("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  static bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool is_name_char(char c) {
    return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  std::string parse_name() {
    if (eof() || !is_name_start(peek())) fail("expected name");
    const std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  void append_entity(std::string& out) {
    // assumes peek() == '&'
    const std::size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 12) {
      fail("unterminated entity reference");
    }
    const std::string_view ent = input_.substr(pos_ + 1, semi - pos_ - 1);
    if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      int base = 10;
      std::string_view digits = ent.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) fail("empty character reference");
      unsigned long code = 0;
      for (char c : digits) {
        int v;
        if (c >= '0' && c <= '9') {
          v = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          v = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          v = c - 'A' + 10;
        } else {
          fail("bad character reference");
        }
        code = code * static_cast<unsigned long>(base) + static_cast<unsigned long>(v);
        if (code > 0x10ffff) fail("character reference out of range");
      }
      // UTF-8 encode.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      } else {
        out.push_back(static_cast<char>(0xf0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      }
    } else {
      fail("unknown entity '" + std::string(ent) + "'");
    }
    pos_ = semi + 1;
  }

  std::string parse_attr_value() {
    if (eof() || (peek() != '"' && peek() != '\'')) fail("expected quoted attribute value");
    const char quote = get();
    std::string out;
    while (!eof() && peek() != quote) {
      if (peek() == '&') {
        append_entity(out);
      } else if (peek() == '<') {
        fail("'<' in attribute value");
      } else {
        out.push_back(get());
      }
    }
    if (eof()) fail("unterminated attribute value");
    ++pos_;  // closing quote
    return out;
  }

  Element parse_element() {
    expect('<');
    Element e;
    e.name = parse_name();
    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) fail("unterminated start tag");
      if (peek() == '/' || peek() == '>') break;
      std::string key = parse_name();
      skip_ws();
      expect('=');
      skip_ws();
      std::string value = parse_attr_value();
      if (e.attr(key)) fail("duplicate attribute '" + key + "'");
      e.attributes.emplace_back(std::move(key), std::move(value));
    }
    if (peek() == '/') {
      ++pos_;
      expect('>');
      return e;  // empty element
    }
    expect('>');

    // Content.
    while (true) {
      if (eof()) fail("unterminated element '" + e.name + "'");
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<![CDATA[")) {
        const std::size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) fail("unterminated CDATA section");
        e.text.append(input_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
      } else if (starts_with("</")) {
        pos_ += 2;
        const std::string name = parse_name();
        if (name != e.name) {
          fail("mismatched end tag </" + name + "> for <" + e.name + ">");
        }
        skip_ws();
        expect('>');
        return e;
      } else if (peek() == '<') {
        e.children.push_back(parse_element());
      } else if (peek() == '&') {
        append_entity(e.text);
      } else {
        e.text.push_back(get());
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

void write_element(const Element& e, std::ostringstream& os, bool pretty, int depth) {
  const std::string indent = pretty ? std::string(static_cast<std::size_t>(depth) * 2, ' ') : "";
  os << indent << '<' << e.name;
  for (const auto& [k, v] : e.attributes) {
    os << ' ' << k << "=\"" << escape_attr(v) << '"';
  }
  const bool has_text = !e.text.empty();
  if (e.children.empty() && !has_text) {
    os << "/>";
    if (pretty) os << '\n';
    return;
  }
  os << '>';
  if (has_text) os << escape_text(e.text);
  if (!e.children.empty()) {
    if (pretty) os << '\n';
    for (const Element& c : e.children) {
      write_element(c, os, pretty, depth + 1);
    }
    if (pretty) os << indent;
  }
  os << "</" << e.name << '>';
  if (pretty) os << '\n';
}

}  // namespace

Element parse(std::string_view input) { return Parser(input).parse_document(); }

std::optional<Element> try_parse(std::string_view input, std::string* error) {
  try {
    return parse(input);
  } catch (const ParseError& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::string to_string(const Element& root, bool pretty) {
  std::ostringstream os;
  write_element(root, os, pretty, 0);
  std::string s = os.str();
  if (pretty && !s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

std::string escape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

const Element* find_path(const Element& root, std::string_view path) {
  const Element* cur = &root;
  for (const std::string& step : common::split(path, '/')) {
    if (step.empty()) continue;
    cur = cur->child(step);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

}  // namespace mdac::xml
