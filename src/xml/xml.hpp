// A small XML document model, parser and writer, built from scratch.
//
// Scope: the XACML-shaped policy dialect, request/response contexts,
// SAML-shaped assertions and SOAP-shaped envelopes used throughout the
// library. Supported: elements, attributes, character data, comments,
// CDATA, XML declarations, the five predefined entities and numeric
// character references. Not supported (not needed by the dialect):
// DTDs, processing instructions other than the XML declaration, and
// namespace *processing* (prefixed names are kept as literal strings,
// exactly how many real-world XACML tools treat them).
//
// Mixed content: character data inside an element is accumulated into
// Element::text; the dialect never interleaves text and child elements.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mdac::xml {

struct Element {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<Element> children;
  std::string text;

  Element() = default;
  explicit Element(std::string n) : name(std::move(n)) {}

  /// Returns the attribute value, or nullopt if absent.
  std::optional<std::string> attr(std::string_view key) const;

  /// Returns the attribute value, or `fallback` if absent.
  std::string attr_or(std::string_view key, std::string_view fallback) const;

  /// Sets (or replaces) an attribute. Returns *this for chaining.
  Element& set_attr(std::string key, std::string value);

  /// First child element with the given name, or nullptr.
  const Element* child(std::string_view name) const;

  /// All child elements with the given name.
  std::vector<const Element*> children_named(std::string_view name) const;

  /// Appends a child element and returns a reference to it.
  Element& add_child(Element e);
  Element& add_child(std::string name);

  /// Number of elements in the whole subtree (self included).
  std::size_t subtree_size() const;

  bool operator==(const Element&) const = default;
};

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t line, std::size_t column);
  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Parses a complete XML document and returns its root element.
/// Throws ParseError on malformed input.
Element parse(std::string_view input);

/// Non-throwing variant for trust-boundary code (wire decoding).
std::optional<Element> try_parse(std::string_view input, std::string* error = nullptr);

/// Serialises. `pretty` inserts newlines and two-space indentation.
std::string to_string(const Element& root, bool pretty = false);

/// Escapes character data (&, <, >) for embedding in XML text.
std::string escape_text(std::string_view s);

/// Escapes attribute values (adds quotes escaping to escape_text).
std::string escape_attr(std::string_view s);

/// Walks a '/'-separated path of child element names from `root`.
/// Returns nullptr if any step is missing. The path does not include the
/// root's own name.
const Element* find_path(const Element& root, std::string_view path);

}  // namespace mdac::xml
