// Dependable decision making: PDP replication with failover and quorum
// dispatch.
//
// The paper's title promises *dependable* access control; §3.2 observes
// that static PEP→PDP binding "does not fit into large computing
// environments" and that the authorisation fabric needs the same
// protection as the resources. This module makes the PDP a replicated
// service: a PEP-side dispatcher either walks an ordered replica list on
// timeout (failover) or queries all replicas and takes the majority
// (quorum — which also masks a *corrupted* minority replica, not just
// crashed ones). Experiment C7 measures availability and latency for
// both strategies under failure injection.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pdp.hpp"
#include "net/rpc.hpp"
#include "pep/remote.hpp"

namespace mdac::dependability {

/// A network-visible PDP replica whose liveness can be toggled (crash /
/// recover injection). Down replicas silently lose traffic; callers only
/// notice via timeouts.
class PdpReplica {
 public:
  PdpReplica(net::Network& network, std::string node_id,
             std::shared_ptr<core::Pdp> pdp)
      : network_(network), service_(network, std::move(node_id), std::move(pdp)) {}

  const std::string& node_id() const { return service_.node_id(); }
  void set_up(bool up) { network_.set_node_up(service_.node_id(), up); }
  bool is_up() const { return network_.is_up(service_.node_id()); }
  std::size_t requests_served() const { return service_.requests_served(); }

  /// The underlying wire service — e.g. to back this replica with a
  /// multi-threaded runtime::DecisionEngine (service().set_engine(...)),
  /// which is how a ReplicatedPdpClient's failover/quorum traffic ends
  /// up served by worker pools instead of single-threaded Pdps.
  pep::PdpService& service() { return service_; }

 private:
  net::Network& network_;
  pep::PdpService service_;
};

enum class DispatchStrategy { kFailover, kQuorum };

struct DispatchStats {
  std::size_t requests = 0;
  std::size_t decided = 0;          // definitive permit/deny delivered
  std::size_t failovers = 0;        // failover: tries beyond the first
  std::size_t exhausted = 0;        // failover: all replicas failed
  std::size_t quorum_indecisive = 0;  // quorum: no majority reached
};

/// PEP-side dispatcher over an ordered replica list.
class ReplicatedPdpClient {
 public:
  using DecisionCallback = std::function<void(core::Decision)>;

  ReplicatedPdpClient(net::Network& network, std::string node_id,
                      std::vector<std::string> replica_ids,
                      DispatchStrategy strategy,
                      common::Duration per_try_timeout = 200);

  void evaluate(const core::RequestContext& request, DecisionCallback callback);

  /// Reorders the preference list (e.g. from a HeartbeatMonitor). Only
  /// ids from the construction-time replica set are accepted; unknown
  /// ids are dropped, so a confused (or malicious) health feed cannot
  /// point the PEP at nodes that were never part of this PDP service.
  /// Returns how many of the supplied ids were kept.
  std::size_t set_replica_order(std::vector<std::string> replica_ids);
  const std::vector<std::string>& replicas() const { return replicas_; }

  const DispatchStats& stats() const { return stats_; }

 private:
  void evaluate_failover(std::shared_ptr<const std::string> request_xml,
                         std::size_t index, DecisionCallback callback);
  void evaluate_quorum(const std::string& request_xml, DecisionCallback callback);

  net::RpcNode node_;
  std::vector<std::string> replicas_;
  /// The construction-time replica set: the only ids set_replica_order
  /// may install (sorted for lookup).
  std::vector<std::string> known_replicas_;
  DispatchStrategy strategy_;
  common::Duration per_try_timeout_;
  DispatchStats stats_;
};

}  // namespace mdac::dependability
