// Dependable decision making: PDP replication with self-healing
// failover and quorum dispatch.
//
// The paper's title promises *dependable* access control; §3.2 observes
// that static PEP→PDP binding "does not fit into large computing
// environments" and that the authorisation fabric needs the same
// protection as the resources. This module makes the PDP a replicated
// service. A PEP-side dispatcher either walks an ordered replica list
// (failover) or queries the replica set and takes the majority (quorum —
// which also masks a *corrupted* minority replica, not just crashed
// ones).
//
// The failover path is self-healing (ISSUE 6):
//   * per-try deadlines, and between passes over the replica list a
//     capped exponential backoff with deterministic Rng-seeded jitter;
//   * a per-replica circuit breaker (dependability/breaker.hpp): a dead
//     replica costs a bounded number of timeouts, then gets skipped
//     until a half-open probe finds it again;
//   * health-feed integration: attach_health_feed(HeartbeatMonitor&)
//     reorders the replica list automatically whenever the monitor sees
//     a liveness transition — no manual set_replica_order calls;
//   * shed-aware failover: a replica answering with an engine
//     "overload-shed" status (pep::classify_reply → kRetryable) is
//     alive-but-refusing, so the dispatcher tries the next replica
//     immediately instead of delivering the shed to the PEP;
//   * graceful degradation: when the retry budget is spent the caller
//     gets a fail-safe Indeterminate{DP} whose status carries the
//     distinct kDispatchFailsafePrefix, never a fabricated decision.
//
// The delivered-decision invariant the chaos tests pin: under any
// seeded net::FaultPlan, every decision this dispatcher delivers is
// either byte-identical to the fault-free oracle's or an explicit
// fail-safe indeterminate (is_dispatch_failsafe) — never stale, never a
// fabricated permit. Experiment C7 measures availability and latency
// for both strategies under the named fault plans.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/pdp.hpp"
#include "dependability/breaker.hpp"
#include "net/rpc.hpp"
#include "obs/trace.hpp"
#include "pep/remote.hpp"

namespace mdac::dependability {

class HeartbeatMonitor;

/// A network-visible PDP replica whose liveness can be toggled (crash /
/// recover injection). Down replicas silently lose traffic; callers only
/// notice via timeouts.
class PdpReplica {
 public:
  PdpReplica(net::Network& network, std::string node_id,
             std::shared_ptr<core::Pdp> pdp)
      : network_(network), service_(network, std::move(node_id), std::move(pdp)) {}

  const std::string& node_id() const { return service_.node_id(); }
  void set_up(bool up) { network_.set_node_up(service_.node_id(), up); }
  bool is_up() const { return network_.is_up(service_.node_id()); }
  std::size_t requests_served() const { return service_.requests_served(); }

  /// The underlying wire service — e.g. to back this replica with a
  /// multi-threaded runtime::DecisionEngine (service().set_engine(...)),
  /// which is how a ReplicatedPdpClient's failover/quorum traffic ends
  /// up served by worker pools instead of single-threaded Pdps.
  pep::PdpService& service() { return service_; }

 private:
  net::Network& network_;
  pep::PdpService service_;
};

enum class DispatchStrategy { kFailover, kQuorum };

/// Self-healing dispatch knobs. Defaults are sane for the simulated
/// 5-10ms links the experiments use.
struct DispatchConfig {
  /// Per-try deadline: one RPC's timeout (ms).
  common::Duration per_try_timeout = 200;
  /// Total RPC tries one evaluate() may spend across all waves.
  std::size_t max_attempts = 8;
  /// Passes over the replica list before giving up (failover).
  std::size_t max_waves = 3;
  /// Backoff between waves: capped exponential starting here (ms)...
  common::Duration base_backoff = 10;
  common::Duration max_backoff = 160;
  /// ...with deterministic multiplicative jitter in [1-j, 1+j], drawn
  /// from an Rng seeded with `seed` (reproducible experiments).
  double backoff_jitter = 0.25;
  std::uint64_t seed = 42;
  /// Per-replica circuit breaker configuration.
  CircuitBreaker::Config breaker;
  /// Quorum electorate the majority is computed against. 0 = the known
  /// (construction-time) replica set — NOT the current preference list,
  /// so a health feed shrinking the order cannot shrink the electorate
  /// into indecision (the degraded-quorum bug this replaces).
  std::size_t quorum_votes = 0;
  /// Optional decision tracer (not owned; must outlive the client).
  /// Sampled dispatches record every try / reply / backoff / breaker
  /// event with simulator-clock timestamps; fail-safe deliveries are
  /// tail-sampled as anomalies per the tracer's policy.
  obs::DecisionTracer* tracer = nullptr;
};

struct DispatchStats {
  std::size_t requests = 0;
  std::size_t decided = 0;       ///< definitive permit/deny delivered
  std::size_t failsafe = 0;      ///< explicit fail-safe indeterminates delivered
  std::size_t tries = 0;         ///< RPC tries actually sent
  std::size_t failovers = 0;     ///< tries beyond a request's first
  std::size_t retries = 0;       ///< tries in waves >= 2 (after backoff)
  std::size_t backoffs = 0;      ///< backoff waits scheduled between waves
  std::size_t retryable_replies = 0;  ///< shed / not-ready / corrupt-echo replies skipped past
  std::size_t undecodable_replies = 0;  ///< replies whose decision XML failed to parse
  std::size_t breaker_skips = 0;   ///< sends suppressed by open breakers
  std::size_t breaker_opens = 0;   ///< breaker trips (per-replica detail: breaker())
  std::size_t breaker_probes = 0;  ///< half-open probes sent
  std::size_t health_reorders = 0;  ///< automatic reorders from the health feed
  std::size_t exhausted = 0;       ///< failover: retry budget spent
  std::size_t quorum_indecisive = 0;  ///< quorum: no majority reached
  /// Retry-traffic accounting per replica id — what the chaos tests
  /// assert stays bounded for a dead node once its breaker opens.
  std::map<std::string, std::size_t> tries_by_replica;
};

/// Every fail-safe status this dispatcher fabricates (as opposed to
/// decisions a PDP actually returned) starts with this prefix:
///   "dispatch-exhausted: ..."   failover retry budget spent
///   "dispatch-no-replicas: ..." nothing to dispatch to
///   "dispatch-no-quorum: ..."   no majority among the electorate
inline constexpr std::string_view kDispatchFailsafePrefix = "dispatch-";

/// True iff `d` is one of this dispatcher's explicit fail-safe
/// indeterminates — the only delivered decisions allowed to differ from
/// the fault-free oracle under fault injection.
inline bool is_dispatch_failsafe(const core::Decision& d) {
  return d.is_indeterminate() &&
         std::string_view(d.status.message)
                 .substr(0, kDispatchFailsafePrefix.size()) == kDispatchFailsafePrefix;
}

/// PEP-side dispatcher over an ordered replica list.
///
/// Lifetime: destroying the client cancels all in-flight dispatch state;
/// outstanding simulator events (RPC timeouts, backoff waves, health
/// listeners) become no-ops via the shared liveness token, and pending
/// DecisionCallbacks are dropped without being invoked.
class ReplicatedPdpClient {
 public:
  using DecisionCallback = std::function<void(core::Decision)>;

  ReplicatedPdpClient(net::Network& network, std::string node_id,
                      std::vector<std::string> replica_ids,
                      DispatchStrategy strategy, DispatchConfig config = {});
  /// Compatibility shape: default config with an explicit per-try timeout.
  ReplicatedPdpClient(net::Network& network, std::string node_id,
                      std::vector<std::string> replica_ids,
                      DispatchStrategy strategy, common::Duration per_try_timeout);

  void evaluate(const core::RequestContext& request, DecisionCallback callback);

  /// Reorders the preference list (e.g. from a HeartbeatMonitor). Only
  /// ids from the construction-time replica set are accepted; unknown
  /// ids are dropped, so a confused (or malicious) health feed cannot
  /// point the PEP at nodes that were never part of this PDP service.
  /// Returns how many of the supplied ids were kept.
  std::size_t set_replica_order(std::vector<std::string> replica_ids);
  const std::vector<std::string>& replicas() const { return replicas_; }

  /// Subscribes to the monitor: whenever it observes a liveness
  /// transition, the replica preference order is refreshed to
  /// live-first automatically (validated against the known set exactly
  /// like set_replica_order). The monitor must outlive the client or
  /// simply stop firing; the subscription holds no owning reference
  /// back — a destroyed client leaves the listener a no-op.
  void attach_health_feed(HeartbeatMonitor& monitor);

  const DispatchStats& stats() const { return stats_; }
  /// Per-replica breaker state/stats; nullptr for unknown ids.
  const CircuitBreaker* breaker(const std::string& replica_id) const;

  /// Registers dispatch counters plus per-replica breaker state/stats
  /// and try counts (replica-labelled) with a metrics registry
  /// (mdac_dispatch_* / mdac_breaker_*); returns the collector id. The
  /// client must outlive the registry or be unregistered first.
  std::uint64_t register_metrics(obs::Registry& registry) const;

 private:
  struct FailoverCall {
    std::shared_ptr<const std::string> request_xml;
    DecisionCallback callback;  // moved in once, never copied per hop
    std::vector<std::string> order;  // this wave's replica order
    std::size_t position = 0;
    std::size_t wave = 1;
    std::size_t attempts = 0;
    common::Duration next_backoff = 0;
    /// Trace state (0 / null when no tracer is configured or the
    /// dispatch wasn't head-sampled).
    std::uint64_t trace_id = 0;
    std::unique_ptr<obs::Trace> trace;
  };

  void start_wave(const std::shared_ptr<FailoverCall>& call);
  void try_next(const std::shared_ptr<FailoverCall>& call);
  void finish_wave(const std::shared_ptr<FailoverCall>& call);
  void deliver_failsafe(DecisionCallback& callback, std::string message,
                        std::uint64_t trace_id, std::unique_ptr<obs::Trace>& trace);
  void evaluate_quorum(std::string request_xml, DecisionCallback callback);
  CircuitBreaker& breaker_for(const std::string& replica_id);
  common::Duration jittered_backoff(common::Duration backoff);
  void refresh_from_health_feed();
  /// Simulator-clock "now" in ns — the dependability path runs on
  /// virtual time, so spans carry timestamps an experiment can reason
  /// about (a 10ms link shows up as 10ms, not wall-clock noise).
  std::uint64_t sim_now_ns();
  /// Tracer admission for one evaluate() (no-op without a tracer).
  void begin_trace(std::uint64_t& trace_id, std::unique_ptr<obs::Trace>& trace);
  /// Stamps outcome/summary fields and publishes; tail-synthesizes a
  /// trace for unsampled fail-safe/indeterminate deliveries.
  void publish_outcome(std::uint64_t trace_id, std::unique_ptr<obs::Trace>& trace,
                       const core::Decision& decision);

  net::RpcNode node_;
  std::vector<std::string> replicas_;
  /// The construction-time replica set: the only ids set_replica_order
  /// may install (sorted for lookup), and the quorum electorate.
  std::vector<std::string> known_replicas_;
  DispatchStrategy strategy_;
  DispatchConfig config_;
  common::Rng jitter_rng_;
  std::map<std::string, CircuitBreaker> breakers_;
  HeartbeatMonitor* health_ = nullptr;
  DispatchStats stats_;
  /// Liveness token: every deferred continuation (RPC callbacks, backoff
  /// waves, health listeners) holds a weak_ptr; a client destroyed with
  /// calls outstanding turns them into no-ops instead of use-after-free
  /// (the pattern HeartbeatMonitor already uses).
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace mdac::dependability
