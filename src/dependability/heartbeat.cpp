#include "dependability/heartbeat.hpp"

namespace mdac::dependability {

HeartbeatMonitor::HeartbeatMonitor(net::Network& network, std::string node_id,
                                   std::vector<std::string> targets,
                                   common::Duration period,
                                   common::Duration probe_timeout)
    : network_(network),
      node_(network, std::move(node_id)),
      targets_(std::move(targets)),
      period_(period),
      probe_timeout_(probe_timeout) {}

HeartbeatMonitor::~HeartbeatMonitor() { running_ = false; }

void HeartbeatMonitor::start() {
  if (running_) return;
  running_ = true;
  probe_all();
  schedule_next();
}

void HeartbeatMonitor::stop() { running_ = false; }

void HeartbeatMonitor::probe_all() {
  for (const std::string& target : targets_) {
    ++probes_sent_;
    node_.call(target, "ping", "", probe_timeout_,
               [this, target, alive = std::weak_ptr<char>(alive_)](
                   std::optional<std::string> response) {
                 if (alive.expired()) return;
                 if (response.has_value()) {
                   last_seen_[target] = network_.simulator().now();
                 }
               });
  }
}

void HeartbeatMonitor::schedule_next() {
  network_.simulator().schedule(
      period_, [this, alive = std::weak_ptr<char>(alive_)]() {
        if (alive.expired() || !running_) return;
        probe_all();
        schedule_next();
      });
}

bool HeartbeatMonitor::is_alive(const std::string& target) const {
  const auto it = last_seen_.find(target);
  if (it == last_seen_.end()) return false;
  // Fresh = answered within the last two periods.
  return network_.simulator().now() - it->second <= 2 * period_;
}

std::vector<std::string> HeartbeatMonitor::preferred_order() const {
  std::vector<std::string> out;
  for (const std::string& t : targets_) {
    if (is_alive(t)) out.push_back(t);
  }
  for (const std::string& t : targets_) {
    if (!is_alive(t)) out.push_back(t);
  }
  return out;
}

}  // namespace mdac::dependability
