#include "dependability/heartbeat.hpp"

#include <stdexcept>

#include "obs/registry.hpp"

namespace mdac::dependability {

HeartbeatMonitor::HeartbeatMonitor(net::Network& network, std::string node_id,
                                   std::vector<std::string> targets,
                                   common::Duration period,
                                   common::Duration probe_timeout)
    : network_(network),
      node_(network, std::move(node_id)),
      targets_(std::move(targets)),
      period_(period),
      probe_timeout_(probe_timeout) {
  if (targets_.empty()) {
    throw std::invalid_argument("HeartbeatMonitor: no targets to monitor");
  }
  if (period_ <= 0) {
    throw std::invalid_argument("HeartbeatMonitor: period must be positive");
  }
  if (probe_timeout_ <= 0) {
    throw std::invalid_argument("HeartbeatMonitor: probe timeout must be positive");
  }
  if (probe_timeout_ >= period_) {
    // Otherwise unanswered probes outlive the probing period: probes
    // pile up against a dead target and liveness judgements lag by
    // however many are in flight.
    throw std::invalid_argument(
        "HeartbeatMonitor: probe timeout must be shorter than the period");
  }
}

HeartbeatMonitor::~HeartbeatMonitor() { running_ = false; }

void HeartbeatMonitor::start() {
  if (running_) return;
  running_ = true;
  probe_all();
  schedule_next();
}

void HeartbeatMonitor::stop() { running_ = false; }

void HeartbeatMonitor::probe_all() {
  // Liveness can flip to *dead* purely by time passing (last reply went
  // stale), so re-derive at every probing tick, not only on responses.
  note_liveness_change();
  for (const std::string& target : targets_) {
    ++probes_sent_;
    node_.call(target, "ping", "", probe_timeout_,
               [this, target, alive = std::weak_ptr<char>(alive_)](
                   std::optional<std::string> response) {
                 if (alive.expired()) return;
                 if (response.has_value()) {
                   last_seen_[target] = network_.simulator().now();
                 }
                 // Fires on replies AND timeouts: a reply may flip the
                 // target up, a timeout may have let it go stale.
                 note_liveness_change();
               });
  }
}

void HeartbeatMonitor::schedule_next() {
  network_.simulator().schedule(
      period_, [this, alive = std::weak_ptr<char>(alive_)]() {
        if (alive.expired() || !running_) return;
        probe_all();
        schedule_next();
      });
}

void HeartbeatMonitor::note_liveness_change() {
  bool changed = false;
  for (const std::string& target : targets_) {
    const bool now_alive = is_alive(target);
    auto [it, inserted] = was_alive_.try_emplace(target, false);
    if (it->second != now_alive) {
      it->second = now_alive;
      ++transitions_observed_;
      changed = true;
    }
  }
  if (changed && change_listener_) change_listener_();
}

bool HeartbeatMonitor::is_alive(const std::string& target) const {
  const auto it = last_seen_.find(target);
  if (it == last_seen_.end()) return false;
  // Fresh = answered within the last two periods.
  return network_.simulator().now() - it->second <= 2 * period_;
}

std::vector<std::string> HeartbeatMonitor::preferred_order() const {
  std::vector<std::string> out;
  for (const std::string& t : targets_) {
    if (is_alive(t)) out.push_back(t);
  }
  for (const std::string& t : targets_) {
    if (!is_alive(t)) out.push_back(t);
  }
  return out;
}

std::uint64_t HeartbeatMonitor::register_metrics(obs::Registry& registry) const {
  return registry.add_collector([this](obs::MetricSink& sink) {
    sink.counter("mdac_heartbeat_probes_sent_total",
                 "Heartbeat probes sent across all targets.",
                 static_cast<double>(probes_sent()));
    sink.counter("mdac_heartbeat_transitions_total",
                 "Liveness transitions observed (either direction).",
                 static_cast<double>(transitions_observed()));
    for (const std::string& target : targets_) {
      sink.gauge("mdac_heartbeat_alive",
                 "1 while the target's last heartbeat reply is fresh.",
                 is_alive(target) ? 1.0 : 0.0, {{"target", target}});
    }
  });
}

}  // namespace mdac::dependability
