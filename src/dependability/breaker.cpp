#include "dependability/breaker.hpp"

namespace mdac::dependability {

CircuitBreaker::Gate CircuitBreaker::admit() {
  switch (state_) {
    case State::kClosed:
      return Gate::kAllow;
    case State::kHalfOpen:
      // One probe is already in flight; everyone else waits for its
      // verdict — a half-open breaker must not re-admit a thundering
      // herd against a node that may still be down.
      ++stats_.blocks;
      return Gate::kBlock;
    case State::kOpen:
      if (clock_.now() - opened_at_ >= config_.open_for) {
        state_ = State::kHalfOpen;
        ++stats_.probes;
        return Gate::kProbe;
      }
      ++stats_.blocks;
      return Gate::kBlock;
  }
  return Gate::kBlock;
}

void CircuitBreaker::record_success() {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

bool CircuitBreaker::record_failure() {
  switch (state_) {
    case State::kHalfOpen:
      // The probe failed: back to a full cooldown.
      open_now();
      return true;
    case State::kClosed:
      ++consecutive_failures_;
      if (consecutive_failures_ >= config_.failure_threshold) {
        open_now();
        return true;
      }
      return false;
    case State::kOpen:
      // A try admitted while closed can report its failure after another
      // try already tripped the breaker. Don't refresh the cooldown:
      // stragglers must not push the probe point out indefinitely.
      return false;
  }
  return false;
}

void CircuitBreaker::open_now() {
  state_ = State::kOpen;
  opened_at_ = clock_.now();
  consecutive_failures_ = 0;
  ++stats_.opens;
}

}  // namespace mdac::dependability
