// Per-replica circuit breaker: the self-healing dispatcher's memory of
// which PDP replicas are currently hurting it.
//
// A closed breaker passes traffic through. Consecutive failures (RPC
// timeouts, undecodable replies) trip it open; while open, the
// dispatcher skips the replica entirely — the point is that a dead node
// costs a bounded number of timeouts, not one per request. After a
// cooldown the breaker admits exactly one half-open probe; a success
// closes it again, a failure re-opens it for another cooldown.
//
// Deterministic: time comes from an injected common::Clock (the
// simulator's clock in tests/benches), and there is no internal
// randomness. Single-threaded by contract, like the dispatcher it
// serves.
#pragma once

#include <cstddef>

#include "common/clock.hpp"

namespace mdac::dependability {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Config {
    /// Consecutive failures that trip the breaker open.
    std::size_t failure_threshold = 3;
    /// Cooldown before an open breaker admits a half-open probe (ms).
    common::Duration open_for = 1000;
  };

  /// Outcome of asking the breaker for admission.
  enum class Gate {
    kAllow,  ///< closed: normal traffic
    kProbe,  ///< open past its cooldown: this one try is the probe
    kBlock,  ///< open (or probing already): skip the replica, no traffic
  };

  struct Stats {
    std::size_t opens = 0;   ///< closed/half-open -> open transitions
    std::size_t probes = 0;  ///< half-open probes admitted
    std::size_t blocks = 0;  ///< tries suppressed while open
  };

  explicit CircuitBreaker(const common::Clock& clock)
      : CircuitBreaker(clock, Config{}) {}
  CircuitBreaker(const common::Clock& clock, Config config)
      : clock_(clock), config_(config) {}

  /// Asks to send one try now. kProbe/kAllow MUST be followed by exactly
  /// one record_success()/record_failure() for that try's outcome.
  Gate admit();

  void record_success();
  /// Returns true when this failure tripped the breaker open.
  bool record_failure();

  State state() const { return state_; }
  std::size_t consecutive_failures() const { return consecutive_failures_; }
  const Stats& stats() const { return stats_; }

 private:
  void open_now();

  const common::Clock& clock_;
  Config config_;
  State state_ = State::kClosed;
  std::size_t consecutive_failures_ = 0;
  common::TimePoint opened_at_ = 0;
  Stats stats_;
};

}  // namespace mdac::dependability
