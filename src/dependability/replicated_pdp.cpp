#include "dependability/replicated_pdp.hpp"

#include <algorithm>
#include <cmath>

#include "core/serialization.hpp"
#include "dependability/heartbeat.hpp"
#include "obs/registry.hpp"

namespace mdac::dependability {

ReplicatedPdpClient::ReplicatedPdpClient(net::Network& network, std::string node_id,
                                         std::vector<std::string> replica_ids,
                                         DispatchStrategy strategy,
                                         DispatchConfig config)
    : node_(network, std::move(node_id)),
      replicas_(std::move(replica_ids)),
      known_replicas_(replicas_),
      strategy_(strategy),
      config_(config),
      jitter_rng_(config.seed) {
  std::sort(known_replicas_.begin(), known_replicas_.end());
  known_replicas_.erase(
      std::unique(known_replicas_.begin(), known_replicas_.end()),
      known_replicas_.end());
  for (const std::string& id : known_replicas_) {
    breakers_.emplace(id, CircuitBreaker(network.simulator().clock(),
                                         config_.breaker));
  }
}

ReplicatedPdpClient::ReplicatedPdpClient(net::Network& network, std::string node_id,
                                         std::vector<std::string> replica_ids,
                                         DispatchStrategy strategy,
                                         common::Duration per_try_timeout)
    : ReplicatedPdpClient(network, std::move(node_id), std::move(replica_ids),
                          strategy, [&] {
                            DispatchConfig c;
                            c.per_try_timeout = per_try_timeout;
                            return c;
                          }()) {}

std::size_t ReplicatedPdpClient::set_replica_order(
    std::vector<std::string> replica_ids) {
  // Validate against the construction-time set: ids this client never
  // knew are dropped (previously they were silently accepted, and the
  // dispatcher would send authorization traffic to arbitrary node ids).
  // Duplicates are dropped too — keeping the first occurrence — which
  // also caps the installed list at the known-set size, so a confused
  // health feed cannot inflate one evaluate() into thousands of retries
  // against the same dead node.
  std::vector<std::string> seen;
  std::erase_if(replica_ids, [this, &seen](const std::string& id) {
    if (!std::binary_search(known_replicas_.begin(), known_replicas_.end(), id)) {
      return true;
    }
    if (std::find(seen.begin(), seen.end(), id) != seen.end()) return true;
    seen.push_back(id);
    return false;
  });
  replicas_ = std::move(replica_ids);
  return replicas_.size();
}

void ReplicatedPdpClient::attach_health_feed(HeartbeatMonitor& monitor) {
  health_ = &monitor;
  monitor.set_change_listener([this, alive = std::weak_ptr<char>(alive_)] {
    if (alive.expired()) return;
    refresh_from_health_feed();
  });
  refresh_from_health_feed();
}

void ReplicatedPdpClient::refresh_from_health_feed() {
  if (health_ == nullptr) return;
  set_replica_order(health_->preferred_order());
  ++stats_.health_reorders;
}

const CircuitBreaker* ReplicatedPdpClient::breaker(
    const std::string& replica_id) const {
  const auto it = breakers_.find(replica_id);
  return it != breakers_.end() ? &it->second : nullptr;
}

CircuitBreaker& ReplicatedPdpClient::breaker_for(const std::string& replica_id) {
  return breakers_.at(replica_id);
}

common::Duration ReplicatedPdpClient::jittered_backoff(common::Duration backoff) {
  if (backoff <= 0) return 0;
  const double jitter = config_.backoff_jitter;
  if (jitter <= 0) return backoff;
  const double factor = 1.0 + jitter_rng_.uniform_double(-jitter, jitter);
  return std::max<common::Duration>(
      1, static_cast<common::Duration>(std::llround(backoff * factor)));
}

std::uint64_t ReplicatedPdpClient::sim_now_ns() {
  return static_cast<std::uint64_t>(node_.network().simulator().clock().now()) *
         1'000'000ull;
}

void ReplicatedPdpClient::begin_trace(std::uint64_t& trace_id,
                                      std::unique_ptr<obs::Trace>& trace) {
  if (config_.tracer == nullptr) return;
  const obs::TraceHandle handle = config_.tracer->admit();
  trace_id = handle.id;
  if (!handle.sampled) return;
  trace = std::make_unique<obs::Trace>();
  trace->trace_id = handle.id;
  trace->started_ns = sim_now_ns();
  trace->record(obs::SpanKind::kAdmission, trace->started_ns);
}

void ReplicatedPdpClient::publish_outcome(std::uint64_t trace_id,
                                          std::unique_ptr<obs::Trace>& trace,
                                          const core::Decision& decision) {
  obs::DecisionTracer* tracer = config_.tracer;
  if (tracer == nullptr || trace_id == 0) return;
  const bool failsafe = is_dispatch_failsafe(decision);
  const bool anomaly = decision.is_indeterminate();
  if (trace == nullptr) {
    // Tail sampling: unsampled dispatches that end in a fail-safe (or
    // any indeterminate) still get a trace — the path summary is what
    // the operator needs, and the dispatch path is never hot enough for
    // one allocation to matter.
    if (!anomaly || !tracer->always_sample_anomalies()) return;
    trace = std::make_unique<obs::Trace>();
    trace->trace_id = trace_id;
    trace->started_ns = sim_now_ns();
    trace->record(obs::SpanKind::kAdmission, trace->started_ns);
  }
  trace->anomaly = anomaly;
  trace->finished_ns = sim_now_ns();
  trace->decision = decision.type;
  trace->outcome =
      failsafe ? obs::TraceOutcome::kFailsafe : obs::TraceOutcome::kDecided;
  if (obs::Span* s = trace->record(obs::SpanKind::kOutcome, trace->finished_ns)) {
    s->set_tag(failsafe ? "failsafe" : core::to_string(decision.type));
  }
  tracer->publish(*trace);
  trace.reset();
}

void ReplicatedPdpClient::deliver_failsafe(DecisionCallback& callback,
                                           std::string message,
                                           std::uint64_t trace_id,
                                           std::unique_ptr<obs::Trace>& trace) {
  ++stats_.failsafe;
  core::Decision d = core::Decision::indeterminate(
      core::IndeterminateExtent::kDP,
      core::Status::processing_error(std::move(message)));
  publish_outcome(trace_id, trace, d);
  callback(std::move(d));
}

void ReplicatedPdpClient::evaluate(const core::RequestContext& request,
                                   DecisionCallback callback) {
  ++stats_.requests;
  std::string request_xml = core::request_to_string(request);
  if (strategy_ == DispatchStrategy::kQuorum) {
    evaluate_quorum(std::move(request_xml), std::move(callback));
    return;
  }
  auto call = std::make_shared<FailoverCall>();
  call->request_xml =
      std::make_shared<const std::string>(std::move(request_xml));
  call->callback = std::move(callback);
  call->next_backoff = config_.base_backoff;
  begin_trace(call->trace_id, call->trace);
  start_wave(call);
}

void ReplicatedPdpClient::start_wave(const std::shared_ptr<FailoverCall>& call) {
  // Snapshot the current preference order: a health-feed reorder between
  // waves is picked up here, so wave 2 tries the replicas the monitor
  // now believes are alive first.
  call->order = replicas_;
  call->position = 0;
  if (call->order.empty()) {
    if (call->wave == 1) {
      deliver_failsafe(call->callback,
                       "dispatch-no-replicas: no PDP replicas configured",
                       call->trace_id, call->trace);
    } else {
      ++stats_.exhausted;
      deliver_failsafe(call->callback,
                       "dispatch-exhausted: replica list became empty after " +
                           std::to_string(call->attempts) + " tries",
                       call->trace_id, call->trace);
    }
    return;
  }
  try_next(call);
}

void ReplicatedPdpClient::try_next(const std::shared_ptr<FailoverCall>& call) {
  while (call->position < call->order.size()) {
    if (call->attempts >= config_.max_attempts) {
      ++stats_.exhausted;
      deliver_failsafe(call->callback,
                       "dispatch-exhausted: retry budget spent (" +
                           std::to_string(call->attempts) + " tries over " +
                           std::to_string(call->wave) +
                           " waves, no replica answered definitively)",
                       call->trace_id, call->trace);
      return;
    }
    const std::string id = call->order[call->position++];
    switch (breaker_for(id).admit()) {
      case CircuitBreaker::Gate::kBlock:
        ++stats_.breaker_skips;
        if (call->trace != nullptr) {
          if (obs::Span* s =
                  call->trace->record(obs::SpanKind::kBreakerEvent, sim_now_ns())) {
            s->set_tag(id);
            s->a = static_cast<std::uint64_t>(obs::BreakerEvent::kSkip);
          }
        }
        continue;  // no traffic to a node we know is down
      case CircuitBreaker::Gate::kProbe:
        ++stats_.breaker_probes;
        if (call->trace != nullptr) {
          if (obs::Span* s =
                  call->trace->record(obs::SpanKind::kBreakerEvent, sim_now_ns())) {
            s->set_tag(id);
            s->a = static_cast<std::uint64_t>(obs::BreakerEvent::kProbe);
          }
        }
        break;
      case CircuitBreaker::Gate::kAllow:
        break;
    }

    if (call->attempts > 0) ++stats_.failovers;
    if (call->wave > 1) ++stats_.retries;
    ++call->attempts;
    ++stats_.tries;
    ++stats_.tries_by_replica[id];
    if (call->trace != nullptr) {
      if (obs::Span* s = call->trace->record(obs::SpanKind::kDispatchTry, sim_now_ns())) {
        s->set_tag(id);
        s->a = call->wave;
      }
    }

    node_.call(
        id, pep::kAuthzRequestType, *call->request_xml, config_.per_try_timeout,
        [this, call, id, alive = std::weak_ptr<char>(alive_)](
            std::optional<std::string> response) {
          if (alive.expired()) return;  // client destroyed mid-flight
          const auto record_reply = [&](obs::ReplyEvent event) {
            if (call->trace == nullptr) return;
            if (obs::Span* s =
                    call->trace->record(obs::SpanKind::kDispatchReply, sim_now_ns())) {
              s->set_tag(id);
              s->a = static_cast<std::uint64_t>(event);
            }
          };
          const auto record_open = [&] {
            ++stats_.breaker_opens;
            if (call->trace == nullptr) return;
            if (obs::Span* s =
                    call->trace->record(obs::SpanKind::kBreakerEvent, sim_now_ns())) {
              s->set_tag(id);
              s->a = static_cast<std::uint64_t>(obs::BreakerEvent::kOpen);
            }
          };
          if (!response.has_value()) {
            record_reply(obs::ReplyEvent::kTimeout);
            if (breaker_for(id).record_failure()) record_open();
            try_next(call);
            return;
          }
          core::Decision decision;
          try {
            decision = core::decision_from_string(*response);
          } catch (const std::exception&) {
            // Undecodable reply: transport corruption or a broken
            // replica — either way a failure signal for the breaker.
            ++stats_.undecodable_replies;
            record_reply(obs::ReplyEvent::kUndecodable);
            if (breaker_for(id).record_failure()) record_open();
            try_next(call);
            return;
          }
          // The replica answered decodably: it is alive, whatever it
          // said — the breaker only tracks reachability.
          breaker_for(id).record_success();
          if (pep::classify_reply(decision) == pep::ReplyClass::kRetryable) {
            // Overload shed / not-provisioned / corrupted-request echo:
            // try the next replica immediately (no backoff — the node is
            // up, this request just can't be served THERE right now).
            ++stats_.retryable_replies;
            record_reply(obs::ReplyEvent::kRetryable);
            try_next(call);
            return;
          }
          if (decision.is_permit() || decision.is_deny()) ++stats_.decided;
          record_reply(obs::ReplyEvent::kDecided);
          publish_outcome(call->trace_id, call->trace, decision);
          call->callback(std::move(decision));
        });
    return;  // wait for the RPC callback
  }
  finish_wave(call);
}

void ReplicatedPdpClient::finish_wave(const std::shared_ptr<FailoverCall>& call) {
  if (call->wave >= config_.max_waves || call->attempts >= config_.max_attempts) {
    ++stats_.exhausted;
    deliver_failsafe(call->callback,
                     "dispatch-exhausted: retry budget spent (" +
                         std::to_string(call->attempts) + " tries over " +
                         std::to_string(call->wave) +
                         " waves, no replica answered definitively)",
                     call->trace_id, call->trace);
    return;
  }
  ++call->wave;
  ++stats_.backoffs;
  const common::Duration delay = jittered_backoff(call->next_backoff);
  call->next_backoff =
      std::min(config_.max_backoff, call->next_backoff * 2);
  if (call->trace != nullptr) {
    if (obs::Span* s = call->trace->record(obs::SpanKind::kBackoff, sim_now_ns())) {
      s->a = static_cast<std::uint64_t>(delay);
      s->b = call->wave;
    }
  }
  node_.network().simulator().schedule(
      delay, [this, call, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) return;
        start_wave(call);
      });
}

void ReplicatedPdpClient::evaluate_quorum(std::string request_xml,
                                          DecisionCallback callback) {
  struct Pending {
    std::size_t remaining = 0;
    std::size_t permits = 0;
    std::size_t denies = 0;
    std::size_t electorate = 0;
    bool resolved = false;
    DecisionCallback callback;
    // First decision of each kind, kept whole so obligations survive.
    core::Decision first_permit;
    core::Decision first_deny;
    std::uint64_t trace_id = 0;
    std::unique_ptr<obs::Trace> trace;
  };

  auto pending = std::make_shared<Pending>();
  begin_trace(pending->trace_id, pending->trace);
  // The electorate is the KNOWN replica set (or an explicit override),
  // not the current preference list: a health feed shrinking the order
  // to the live replicas must not shrink the majority bar with it and
  // make a single slow replica indecisive (the degraded-quorum bug).
  pending->electorate =
      config_.quorum_votes > 0 ? config_.quorum_votes : known_replicas_.size();
  pending->callback = std::move(callback);

  const auto maybe_finish = [this, pending] {
    if (pending->resolved) return;
    const std::size_t majority = pending->electorate / 2 + 1;
    if (pending->permits >= majority) {
      pending->resolved = true;
      ++stats_.decided;
      publish_outcome(pending->trace_id, pending->trace, pending->first_permit);
      pending->callback(pending->first_permit);
      return;
    }
    if (pending->denies >= majority) {
      pending->resolved = true;
      ++stats_.decided;
      publish_outcome(pending->trace_id, pending->trace, pending->first_deny);
      pending->callback(pending->first_deny);
      return;
    }
    // Not decidable yet; if nothing is outstanding, give up.
    if (pending->remaining == 0) {
      pending->resolved = true;
      ++stats_.quorum_indecisive;
      deliver_failsafe(pending->callback,
                       "dispatch-no-quorum: no majority among PDP replicas "
                       "(permits=" + std::to_string(pending->permits) +
                           ", denies=" + std::to_string(pending->denies) +
                           ", electorate=" + std::to_string(pending->electorate) +
                           ")",
                       pending->trace_id, pending->trace);
    }
  };

  if (known_replicas_.empty()) {
    deliver_failsafe(pending->callback,
                     "dispatch-no-replicas: no PDP replicas configured",
                     pending->trace_id, pending->trace);
    return;
  }

  // Quorum queries the whole known set — the preference order is a
  // failover concept; votes need reach. Open breakers still suppress
  // traffic (a dead node costs nothing); the skipped replica simply
  // contributes no vote against the fixed electorate.
  std::vector<std::string> targets;
  for (const std::string& id : known_replicas_) {
    switch (breaker_for(id).admit()) {
      case CircuitBreaker::Gate::kBlock:
        ++stats_.breaker_skips;
        if (pending->trace != nullptr) {
          if (obs::Span* s =
                  pending->trace->record(obs::SpanKind::kBreakerEvent, sim_now_ns())) {
            s->set_tag(id);
            s->a = static_cast<std::uint64_t>(obs::BreakerEvent::kSkip);
          }
        }
        continue;
      case CircuitBreaker::Gate::kProbe:
        ++stats_.breaker_probes;
        if (pending->trace != nullptr) {
          if (obs::Span* s =
                  pending->trace->record(obs::SpanKind::kBreakerEvent, sim_now_ns())) {
            s->set_tag(id);
            s->a = static_cast<std::uint64_t>(obs::BreakerEvent::kProbe);
          }
        }
        break;
      case CircuitBreaker::Gate::kAllow:
        break;
    }
    targets.push_back(id);
  }
  pending->remaining = targets.size();
  if (targets.empty()) {
    maybe_finish();  // everything breaker-blocked: immediate fail-safe
    return;
  }

  for (const std::string& id : targets) {
    ++stats_.tries;
    ++stats_.tries_by_replica[id];
    if (pending->trace != nullptr) {
      if (obs::Span* s =
              pending->trace->record(obs::SpanKind::kDispatchTry, sim_now_ns())) {
        s->set_tag(id);
        s->a = 1;  // quorum is a single wave
      }
    }
    node_.call(
        id, pep::kAuthzRequestType, request_xml, config_.per_try_timeout,
        [this, pending, maybe_finish, id,
         alive = std::weak_ptr<char>(alive_)](std::optional<std::string> response) {
          if (alive.expired()) return;  // client destroyed mid-flight
          --pending->remaining;
          const auto record_reply = [&](obs::ReplyEvent event) {
            if (pending->trace == nullptr) return;
            if (obs::Span* s = pending->trace->record(obs::SpanKind::kDispatchReply,
                                                      sim_now_ns())) {
              s->set_tag(id);
              s->a = static_cast<std::uint64_t>(event);
            }
          };
          const auto record_open = [&] {
            ++stats_.breaker_opens;
            if (pending->trace == nullptr) return;
            if (obs::Span* s = pending->trace->record(obs::SpanKind::kBreakerEvent,
                                                      sim_now_ns())) {
              s->set_tag(id);
              s->a = static_cast<std::uint64_t>(obs::BreakerEvent::kOpen);
            }
          };
          if (response.has_value()) {
            try {
              core::Decision d = core::decision_from_string(*response);
              breaker_for(id).record_success();
              if (pep::classify_reply(d) == pep::ReplyClass::kRetryable) {
                ++stats_.retryable_replies;  // alive but not serving: no vote
                record_reply(obs::ReplyEvent::kRetryable);
              } else if (d.is_permit()) {
                record_reply(obs::ReplyEvent::kDecided);
                if (pending->permits == 0) pending->first_permit = std::move(d);
                ++pending->permits;
              } else if (d.is_deny()) {
                record_reply(obs::ReplyEvent::kDecided);
                if (pending->denies == 0) pending->first_deny = std::move(d);
                ++pending->denies;
              }
            } catch (const std::exception&) {
              // Undecodable replica answer counts as no vote.
              ++stats_.undecodable_replies;
              record_reply(obs::ReplyEvent::kUndecodable);
              if (breaker_for(id).record_failure()) record_open();
            }
          } else {
            record_reply(obs::ReplyEvent::kTimeout);
            if (breaker_for(id).record_failure()) record_open();
          }
          maybe_finish();
        });
  }
}

std::uint64_t ReplicatedPdpClient::register_metrics(obs::Registry& registry) const {
  // Single-threaded by contract (like the dispatcher itself): the
  // collector must run on the thread driving the simulator, which is
  // exactly how the tools/tests expose after sim_.run().
  return registry.add_collector([this](obs::MetricSink& sink) {
    const DispatchStats& s = stats_;
    sink.counter("mdac_dispatch_requests_total", "evaluate() calls dispatched.",
                 static_cast<double>(s.requests));
    sink.counter("mdac_dispatch_decided_total",
                 "Definitive permit/deny decisions delivered.",
                 static_cast<double>(s.decided));
    sink.counter("mdac_dispatch_failsafe_total",
                 "Explicit fail-safe indeterminates delivered.",
                 static_cast<double>(s.failsafe));
    sink.counter("mdac_dispatch_tries_total", "RPC tries actually sent.",
                 static_cast<double>(s.tries));
    sink.counter("mdac_dispatch_failovers_total",
                 "Tries beyond a request's first.",
                 static_cast<double>(s.failovers));
    sink.counter("mdac_dispatch_retries_total",
                 "Tries in waves after the first (post-backoff).",
                 static_cast<double>(s.retries));
    sink.counter("mdac_dispatch_backoffs_total",
                 "Backoff waits scheduled between waves.",
                 static_cast<double>(s.backoffs));
    sink.counter("mdac_dispatch_retryable_replies_total",
                 "Shed / not-ready replies skipped past.",
                 static_cast<double>(s.retryable_replies));
    sink.counter("mdac_dispatch_undecodable_replies_total",
                 "Replies whose decision failed to parse.",
                 static_cast<double>(s.undecodable_replies));
    sink.counter("mdac_dispatch_breaker_skips_total",
                 "Sends suppressed by open breakers.",
                 static_cast<double>(s.breaker_skips));
    sink.counter("mdac_dispatch_health_reorders_total",
                 "Automatic reorders from the health feed.",
                 static_cast<double>(s.health_reorders));
    sink.counter("mdac_dispatch_exhausted_total",
                 "Failover dispatches that spent their retry budget.",
                 static_cast<double>(s.exhausted));
    sink.counter("mdac_dispatch_quorum_indecisive_total",
                 "Quorum dispatches that reached no majority.",
                 static_cast<double>(s.quorum_indecisive));
    for (const auto& [replica, tries] : s.tries_by_replica) {
      sink.counter("mdac_dispatch_tries_by_replica_total",
                   "RPC tries per replica id.", static_cast<double>(tries),
                   {{"replica", replica}});
    }
    for (const auto& [replica, breaker] : breakers_) {
      const char* state = breaker.state() == CircuitBreaker::State::kClosed
                              ? "closed"
                              : breaker.state() == CircuitBreaker::State::kOpen
                                    ? "open"
                                    : "half-open";
      sink.gauge("mdac_breaker_open",
                 "1 when the replica's circuit breaker is open or half-open.",
                 breaker.state() == CircuitBreaker::State::kClosed ? 0.0 : 1.0,
                 {{"replica", replica}, {"state", state}});
      sink.counter("mdac_breaker_opens_total", "Breaker trips per replica.",
                   static_cast<double>(breaker.stats().opens),
                   {{"replica", replica}});
      sink.counter("mdac_breaker_probes_total",
                   "Half-open probes admitted per replica.",
                   static_cast<double>(breaker.stats().probes),
                   {{"replica", replica}});
      sink.counter("mdac_breaker_blocks_total",
                   "Tries suppressed while open, per replica.",
                   static_cast<double>(breaker.stats().blocks),
                   {{"replica", replica}});
    }
  });
}

}  // namespace mdac::dependability
