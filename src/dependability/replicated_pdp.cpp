#include "dependability/replicated_pdp.hpp"

#include <algorithm>
#include <cmath>

#include "core/serialization.hpp"
#include "dependability/heartbeat.hpp"

namespace mdac::dependability {

ReplicatedPdpClient::ReplicatedPdpClient(net::Network& network, std::string node_id,
                                         std::vector<std::string> replica_ids,
                                         DispatchStrategy strategy,
                                         DispatchConfig config)
    : node_(network, std::move(node_id)),
      replicas_(std::move(replica_ids)),
      known_replicas_(replicas_),
      strategy_(strategy),
      config_(config),
      jitter_rng_(config.seed) {
  std::sort(known_replicas_.begin(), known_replicas_.end());
  known_replicas_.erase(
      std::unique(known_replicas_.begin(), known_replicas_.end()),
      known_replicas_.end());
  for (const std::string& id : known_replicas_) {
    breakers_.emplace(id, CircuitBreaker(network.simulator().clock(),
                                         config_.breaker));
  }
}

ReplicatedPdpClient::ReplicatedPdpClient(net::Network& network, std::string node_id,
                                         std::vector<std::string> replica_ids,
                                         DispatchStrategy strategy,
                                         common::Duration per_try_timeout)
    : ReplicatedPdpClient(network, std::move(node_id), std::move(replica_ids),
                          strategy, [&] {
                            DispatchConfig c;
                            c.per_try_timeout = per_try_timeout;
                            return c;
                          }()) {}

std::size_t ReplicatedPdpClient::set_replica_order(
    std::vector<std::string> replica_ids) {
  // Validate against the construction-time set: ids this client never
  // knew are dropped (previously they were silently accepted, and the
  // dispatcher would send authorization traffic to arbitrary node ids).
  // Duplicates are dropped too — keeping the first occurrence — which
  // also caps the installed list at the known-set size, so a confused
  // health feed cannot inflate one evaluate() into thousands of retries
  // against the same dead node.
  std::vector<std::string> seen;
  std::erase_if(replica_ids, [this, &seen](const std::string& id) {
    if (!std::binary_search(known_replicas_.begin(), known_replicas_.end(), id)) {
      return true;
    }
    if (std::find(seen.begin(), seen.end(), id) != seen.end()) return true;
    seen.push_back(id);
    return false;
  });
  replicas_ = std::move(replica_ids);
  return replicas_.size();
}

void ReplicatedPdpClient::attach_health_feed(HeartbeatMonitor& monitor) {
  health_ = &monitor;
  monitor.set_change_listener([this, alive = std::weak_ptr<char>(alive_)] {
    if (alive.expired()) return;
    refresh_from_health_feed();
  });
  refresh_from_health_feed();
}

void ReplicatedPdpClient::refresh_from_health_feed() {
  if (health_ == nullptr) return;
  set_replica_order(health_->preferred_order());
  ++stats_.health_reorders;
}

const CircuitBreaker* ReplicatedPdpClient::breaker(
    const std::string& replica_id) const {
  const auto it = breakers_.find(replica_id);
  return it != breakers_.end() ? &it->second : nullptr;
}

CircuitBreaker& ReplicatedPdpClient::breaker_for(const std::string& replica_id) {
  return breakers_.at(replica_id);
}

common::Duration ReplicatedPdpClient::jittered_backoff(common::Duration backoff) {
  if (backoff <= 0) return 0;
  const double jitter = config_.backoff_jitter;
  if (jitter <= 0) return backoff;
  const double factor = 1.0 + jitter_rng_.uniform_double(-jitter, jitter);
  return std::max<common::Duration>(
      1, static_cast<common::Duration>(std::llround(backoff * factor)));
}

void ReplicatedPdpClient::deliver_failsafe(DecisionCallback& callback,
                                           std::string message) {
  ++stats_.failsafe;
  callback(core::Decision::indeterminate(
      core::IndeterminateExtent::kDP,
      core::Status::processing_error(std::move(message))));
}

void ReplicatedPdpClient::evaluate(const core::RequestContext& request,
                                   DecisionCallback callback) {
  ++stats_.requests;
  std::string request_xml = core::request_to_string(request);
  if (strategy_ == DispatchStrategy::kQuorum) {
    evaluate_quorum(std::move(request_xml), std::move(callback));
    return;
  }
  auto call = std::make_shared<FailoverCall>();
  call->request_xml =
      std::make_shared<const std::string>(std::move(request_xml));
  call->callback = std::move(callback);
  call->next_backoff = config_.base_backoff;
  start_wave(call);
}

void ReplicatedPdpClient::start_wave(const std::shared_ptr<FailoverCall>& call) {
  // Snapshot the current preference order: a health-feed reorder between
  // waves is picked up here, so wave 2 tries the replicas the monitor
  // now believes are alive first.
  call->order = replicas_;
  call->position = 0;
  if (call->order.empty()) {
    if (call->wave == 1) {
      deliver_failsafe(call->callback,
                       "dispatch-no-replicas: no PDP replicas configured");
    } else {
      ++stats_.exhausted;
      deliver_failsafe(call->callback,
                       "dispatch-exhausted: replica list became empty after " +
                           std::to_string(call->attempts) + " tries");
    }
    return;
  }
  try_next(call);
}

void ReplicatedPdpClient::try_next(const std::shared_ptr<FailoverCall>& call) {
  while (call->position < call->order.size()) {
    if (call->attempts >= config_.max_attempts) {
      ++stats_.exhausted;
      deliver_failsafe(call->callback,
                       "dispatch-exhausted: retry budget spent (" +
                           std::to_string(call->attempts) + " tries over " +
                           std::to_string(call->wave) +
                           " waves, no replica answered definitively)");
      return;
    }
    const std::string id = call->order[call->position++];
    switch (breaker_for(id).admit()) {
      case CircuitBreaker::Gate::kBlock:
        ++stats_.breaker_skips;
        continue;  // no traffic to a node we know is down
      case CircuitBreaker::Gate::kProbe:
        ++stats_.breaker_probes;
        break;
      case CircuitBreaker::Gate::kAllow:
        break;
    }

    if (call->attempts > 0) ++stats_.failovers;
    if (call->wave > 1) ++stats_.retries;
    ++call->attempts;
    ++stats_.tries;
    ++stats_.tries_by_replica[id];

    node_.call(
        id, pep::kAuthzRequestType, *call->request_xml, config_.per_try_timeout,
        [this, call, id, alive = std::weak_ptr<char>(alive_)](
            std::optional<std::string> response) {
          if (alive.expired()) return;  // client destroyed mid-flight
          if (!response.has_value()) {
            if (breaker_for(id).record_failure()) ++stats_.breaker_opens;
            try_next(call);
            return;
          }
          core::Decision decision;
          try {
            decision = core::decision_from_string(*response);
          } catch (const std::exception&) {
            // Undecodable reply: transport corruption or a broken
            // replica — either way a failure signal for the breaker.
            ++stats_.undecodable_replies;
            if (breaker_for(id).record_failure()) ++stats_.breaker_opens;
            try_next(call);
            return;
          }
          // The replica answered decodably: it is alive, whatever it
          // said — the breaker only tracks reachability.
          breaker_for(id).record_success();
          if (pep::classify_reply(decision) == pep::ReplyClass::kRetryable) {
            // Overload shed / not-provisioned / corrupted-request echo:
            // try the next replica immediately (no backoff — the node is
            // up, this request just can't be served THERE right now).
            ++stats_.retryable_replies;
            try_next(call);
            return;
          }
          if (decision.is_permit() || decision.is_deny()) ++stats_.decided;
          call->callback(std::move(decision));
        });
    return;  // wait for the RPC callback
  }
  finish_wave(call);
}

void ReplicatedPdpClient::finish_wave(const std::shared_ptr<FailoverCall>& call) {
  if (call->wave >= config_.max_waves || call->attempts >= config_.max_attempts) {
    ++stats_.exhausted;
    deliver_failsafe(call->callback,
                     "dispatch-exhausted: retry budget spent (" +
                         std::to_string(call->attempts) + " tries over " +
                         std::to_string(call->wave) +
                         " waves, no replica answered definitively)");
    return;
  }
  ++call->wave;
  ++stats_.backoffs;
  const common::Duration delay = jittered_backoff(call->next_backoff);
  call->next_backoff =
      std::min(config_.max_backoff, call->next_backoff * 2);
  node_.network().simulator().schedule(
      delay, [this, call, alive = std::weak_ptr<char>(alive_)] {
        if (alive.expired()) return;
        start_wave(call);
      });
}

void ReplicatedPdpClient::evaluate_quorum(std::string request_xml,
                                          DecisionCallback callback) {
  struct Pending {
    std::size_t remaining = 0;
    std::size_t permits = 0;
    std::size_t denies = 0;
    std::size_t electorate = 0;
    bool resolved = false;
    DecisionCallback callback;
    // First decision of each kind, kept whole so obligations survive.
    core::Decision first_permit;
    core::Decision first_deny;
  };

  auto pending = std::make_shared<Pending>();
  // The electorate is the KNOWN replica set (or an explicit override),
  // not the current preference list: a health feed shrinking the order
  // to the live replicas must not shrink the majority bar with it and
  // make a single slow replica indecisive (the degraded-quorum bug).
  pending->electorate =
      config_.quorum_votes > 0 ? config_.quorum_votes : known_replicas_.size();
  pending->callback = std::move(callback);

  const auto maybe_finish = [this, pending] {
    if (pending->resolved) return;
    const std::size_t majority = pending->electorate / 2 + 1;
    if (pending->permits >= majority) {
      pending->resolved = true;
      ++stats_.decided;
      pending->callback(pending->first_permit);
      return;
    }
    if (pending->denies >= majority) {
      pending->resolved = true;
      ++stats_.decided;
      pending->callback(pending->first_deny);
      return;
    }
    // Not decidable yet; if nothing is outstanding, give up.
    if (pending->remaining == 0) {
      pending->resolved = true;
      ++stats_.quorum_indecisive;
      deliver_failsafe(pending->callback,
                       "dispatch-no-quorum: no majority among PDP replicas "
                       "(permits=" + std::to_string(pending->permits) +
                           ", denies=" + std::to_string(pending->denies) +
                           ", electorate=" + std::to_string(pending->electorate) +
                           ")");
    }
  };

  if (known_replicas_.empty()) {
    deliver_failsafe(pending->callback,
                     "dispatch-no-replicas: no PDP replicas configured");
    return;
  }

  // Quorum queries the whole known set — the preference order is a
  // failover concept; votes need reach. Open breakers still suppress
  // traffic (a dead node costs nothing); the skipped replica simply
  // contributes no vote against the fixed electorate.
  std::vector<std::string> targets;
  for (const std::string& id : known_replicas_) {
    switch (breaker_for(id).admit()) {
      case CircuitBreaker::Gate::kBlock:
        ++stats_.breaker_skips;
        continue;
      case CircuitBreaker::Gate::kProbe:
        ++stats_.breaker_probes;
        break;
      case CircuitBreaker::Gate::kAllow:
        break;
    }
    targets.push_back(id);
  }
  pending->remaining = targets.size();
  if (targets.empty()) {
    maybe_finish();  // everything breaker-blocked: immediate fail-safe
    return;
  }

  for (const std::string& id : targets) {
    ++stats_.tries;
    ++stats_.tries_by_replica[id];
    node_.call(
        id, pep::kAuthzRequestType, request_xml, config_.per_try_timeout,
        [this, pending, maybe_finish, id,
         alive = std::weak_ptr<char>(alive_)](std::optional<std::string> response) {
          if (alive.expired()) return;  // client destroyed mid-flight
          --pending->remaining;
          if (response.has_value()) {
            try {
              core::Decision d = core::decision_from_string(*response);
              breaker_for(id).record_success();
              if (pep::classify_reply(d) == pep::ReplyClass::kRetryable) {
                ++stats_.retryable_replies;  // alive but not serving: no vote
              } else if (d.is_permit()) {
                if (pending->permits == 0) pending->first_permit = std::move(d);
                ++pending->permits;
              } else if (d.is_deny()) {
                if (pending->denies == 0) pending->first_deny = std::move(d);
                ++pending->denies;
              }
            } catch (const std::exception&) {
              // Undecodable replica answer counts as no vote.
              ++stats_.undecodable_replies;
              if (breaker_for(id).record_failure()) ++stats_.breaker_opens;
            }
          } else {
            if (breaker_for(id).record_failure()) ++stats_.breaker_opens;
          }
          maybe_finish();
        });
  }
}

}  // namespace mdac::dependability
