#include "dependability/replicated_pdp.hpp"

#include <algorithm>

#include "core/serialization.hpp"

namespace mdac::dependability {

ReplicatedPdpClient::ReplicatedPdpClient(net::Network& network, std::string node_id,
                                         std::vector<std::string> replica_ids,
                                         DispatchStrategy strategy,
                                         common::Duration per_try_timeout)
    : node_(network, std::move(node_id)),
      replicas_(std::move(replica_ids)),
      known_replicas_(replicas_),
      strategy_(strategy),
      per_try_timeout_(per_try_timeout) {
  std::sort(known_replicas_.begin(), known_replicas_.end());
}

std::size_t ReplicatedPdpClient::set_replica_order(
    std::vector<std::string> replica_ids) {
  // Validate against the construction-time set: ids this client never
  // knew are dropped (previously they were silently accepted, and the
  // dispatcher would send authorization traffic to arbitrary node ids).
  // Duplicates are dropped too — keeping the first occurrence — which
  // also caps the installed list at the known-set size, so a confused
  // health feed cannot inflate one evaluate() into thousands of retries
  // against the same dead node.
  std::vector<std::string> seen;
  std::erase_if(replica_ids, [this, &seen](const std::string& id) {
    if (!std::binary_search(known_replicas_.begin(), known_replicas_.end(), id)) {
      return true;
    }
    if (std::find(seen.begin(), seen.end(), id) != seen.end()) return true;
    seen.push_back(id);
    return false;
  });
  replicas_ = std::move(replica_ids);
  return replicas_.size();
}

void ReplicatedPdpClient::evaluate(const core::RequestContext& request,
                                   DecisionCallback callback) {
  ++stats_.requests;
  const std::string request_xml = core::request_to_string(request);
  if (replicas_.empty()) {
    callback(core::Decision::indeterminate(
        core::IndeterminateExtent::kDP,
        core::Status::processing_error("no PDP replicas configured")));
    return;
  }
  if (strategy_ == DispatchStrategy::kFailover) {
    evaluate_failover(std::make_shared<const std::string>(request_xml), 0,
                      std::move(callback));
  } else {
    evaluate_quorum(request_xml, std::move(callback));
  }
}

void ReplicatedPdpClient::evaluate_failover(
    std::shared_ptr<const std::string> request_xml, std::size_t index,
    DecisionCallback callback) {
  if (index >= replicas_.size()) {
    ++stats_.exhausted;
    callback(core::Decision::indeterminate(
        core::IndeterminateExtent::kDP,
        core::Status::processing_error("all PDP replicas unreachable")));
    return;
  }
  if (index > 0) ++stats_.failovers;

  node_.call(replicas_[index], pep::kAuthzRequestType, *request_xml,
             per_try_timeout_,
             [this, request_xml, index, callback](std::optional<std::string> response) {
               if (!response.has_value()) {
                 evaluate_failover(request_xml, index + 1, callback);
                 return;
               }
               core::Decision decision;
               try {
                 decision = core::decision_from_string(*response);
               } catch (const std::exception&) {
                 evaluate_failover(request_xml, index + 1, callback);
                 return;
               }
               if (decision.is_permit() || decision.is_deny()) ++stats_.decided;
               callback(std::move(decision));
             });
}

void ReplicatedPdpClient::evaluate_quorum(const std::string& request_xml,
                                          DecisionCallback callback) {
  struct Pending {
    std::size_t remaining;
    std::size_t permits = 0;
    std::size_t denies = 0;
    std::size_t total;
    bool resolved = false;
    DecisionCallback callback;
    // First decision of each kind, kept whole so obligations survive.
    core::Decision first_permit;
    core::Decision first_deny;
    DispatchStats* stats;

    void maybe_finish() {
      if (resolved) return;
      const std::size_t majority = total / 2 + 1;
      if (permits >= majority) {
        resolved = true;
        ++stats->decided;
        callback(first_permit);
        return;
      }
      if (denies >= majority) {
        resolved = true;
        ++stats->decided;
        callback(first_deny);
        return;
      }
      // Not decidable yet; if nothing is outstanding, give up.
      if (remaining == 0) {
        resolved = true;
        ++stats->quorum_indecisive;
        callback(core::Decision::indeterminate(
            core::IndeterminateExtent::kDP,
            core::Status::processing_error(
                "no majority among PDP replicas (permits=" +
                std::to_string(permits) + ", denies=" + std::to_string(denies) +
                ")")));
      }
    }
  };

  auto pending = std::make_shared<Pending>();
  pending->remaining = replicas_.size();
  pending->total = replicas_.size();
  pending->callback = std::move(callback);
  pending->stats = &stats_;

  for (const std::string& replica : replicas_) {
    node_.call(replica, pep::kAuthzRequestType, request_xml, per_try_timeout_,
               [pending](std::optional<std::string> response) {
                 --pending->remaining;
                 if (response.has_value()) {
                   try {
                     core::Decision d = core::decision_from_string(*response);
                     if (d.is_permit()) {
                       if (pending->permits == 0) pending->first_permit = d;
                       ++pending->permits;
                     } else if (d.is_deny()) {
                       if (pending->denies == 0) pending->first_deny = d;
                       ++pending->denies;
                     }
                   } catch (const std::exception&) {
                     // Undecodable replica answer counts as no vote.
                   }
                 }
                 pending->maybe_finish();
               });
  }
}

}  // namespace mdac::dependability
