// Heartbeat-based health monitoring for PDP replicas: the discovery
// mechanism §3.2 calls for when "a static binding between enforcement
// and decision points may not be feasible". The monitor pings targets on
// a fixed period; a target is alive while its last reply is fresh. A
// failover client can consult `preferred_order()` to try live replicas
// first.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/rpc.hpp"

namespace mdac::dependability {

class HeartbeatMonitor {
 public:
  HeartbeatMonitor(net::Network& network, std::string node_id,
                   std::vector<std::string> targets, common::Duration period = 100,
                   common::Duration probe_timeout = 50);
  ~HeartbeatMonitor();

  /// Begins the periodic probing loop on the simulator.
  void start();
  void stop();

  bool is_alive(const std::string& target) const;

  /// All targets, live ones first (stable within each group).
  std::vector<std::string> preferred_order() const;

  std::size_t probes_sent() const { return probes_sent_; }

 private:
  void probe_all();
  void schedule_next();

  net::Network& network_;
  net::RpcNode node_;
  std::vector<std::string> targets_;
  common::Duration period_;
  common::Duration probe_timeout_;
  std::map<std::string, common::TimePoint> last_seen_;
  bool running_ = false;
  std::size_t probes_sent_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace mdac::dependability
