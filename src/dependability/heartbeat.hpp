// Heartbeat-based health monitoring for PDP replicas: the discovery
// mechanism §3.2 calls for when "a static binding between enforcement
// and decision points may not be feasible". The monitor pings targets on
// a fixed period; a target is alive while its last reply is fresh. A
// failover client can consult `preferred_order()` to try live replicas
// first — or subscribe with set_change_listener to be told whenever the
// monitor observes a liveness transition (ReplicatedPdpClient::
// attach_health_feed uses this to reorder its replica list
// automatically).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/rpc.hpp"

namespace mdac::obs {
class Registry;
}

namespace mdac::dependability {

class HeartbeatMonitor {
 public:
  /// Fired (synchronously, from simulator events) after any target's
  /// observed liveness flips — up→down or down→up.
  using ChangeListener = std::function<void()>;

  /// Throws std::invalid_argument on an unusable configuration: empty
  /// target list, non-positive period/probe_timeout, or a probe timeout
  /// that is not shorter than the period (probes would pile up and a
  /// reply could never be judged stale before the next probe fires).
  HeartbeatMonitor(net::Network& network, std::string node_id,
                   std::vector<std::string> targets, common::Duration period = 100,
                   common::Duration probe_timeout = 50);
  ~HeartbeatMonitor();

  /// Begins the periodic probing loop on the simulator.
  void start();
  void stop();

  bool is_alive(const std::string& target) const;

  /// All targets, live ones first (stable within each group).
  std::vector<std::string> preferred_order() const;

  /// Installs (or clears, with nullptr) the liveness-transition
  /// listener. At most one; the previous listener is replaced.
  void set_change_listener(ChangeListener listener) {
    change_listener_ = std::move(listener);
  }

  std::size_t probes_sent() const { return probes_sent_; }
  /// Liveness transitions observed so far (either direction).
  std::size_t transitions_observed() const { return transitions_observed_; }

  /// Registers liveness gauges (per target) plus probe/transition
  /// counters with a metrics registry (mdac_heartbeat_*); returns the
  /// collector id. Single-threaded like the monitor itself: expose()
  /// must run on the simulator-driving thread.
  std::uint64_t register_metrics(obs::Registry& registry) const;

 private:
  void probe_all();
  void schedule_next();
  /// Re-derives every target's liveness flag and fires the change
  /// listener if any flipped since the last check.
  void note_liveness_change();

  net::Network& network_;
  net::RpcNode node_;
  std::vector<std::string> targets_;
  common::Duration period_;
  common::Duration probe_timeout_;
  std::map<std::string, common::TimePoint> last_seen_;
  std::map<std::string, bool> was_alive_;
  ChangeListener change_listener_;
  bool running_ = false;
  std::size_t probes_sent_ = 0;
  std::size_t transitions_observed_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace mdac::dependability
