#include "pep/pep.hpp"

namespace mdac::pep {

void EnforcementPoint::register_obligation_handler(const std::string& obligation_id,
                                                   ObligationHandler handler) {
  handlers_[obligation_id] = std::move(handler);
}

bool EnforcementPoint::fulfil(
    const std::vector<core::ObligationInstance>& obligations,
    std::vector<std::string>* fulfilled, std::string* failure) {
  for (const core::ObligationInstance& ob : obligations) {
    const auto it = handlers_.find(ob.id);
    if (it == handlers_.end()) {
      *failure = "no handler for obligation '" + ob.id + "'";
      return false;
    }
    if (!it->second(ob)) {
      *failure = "obligation '" + ob.id + "' failed";
      return false;
    }
    fulfilled->push_back(ob.id);
  }
  return true;
}

Enforcement EnforcementPoint::enforce(const core::RequestContext& request) {
  ++enforcements_;
  Enforcement result;

  if (cache_ != nullptr) {
    // Delegate to CachingEvaluator so the caching policy (fingerprint
    // once, cache only definitive decisions) lives in exactly one place.
    cache::CachingEvaluator cached(
        *cache_, [this](const core::RequestContext& r) { return source_(r); });
    result.decision = cached(request);
  } else {
    result.decision = source_(request);
  }

  switch (result.decision.type) {
    case core::DecisionType::kPermit: {
      std::string failure;
      if (!fulfil(result.decision.obligations, &result.obligations_fulfilled,
                  &failure)) {
        // A permit whose obligations cannot be discharged must not be
        // enforced as permit.
        ++denials_by_obligation_;
        result.allowed = false;
        result.reason = failure;
        return result;
      }
      result.allowed = true;
      return result;
    }
    case core::DecisionType::kDeny: {
      // Deny obligations (e.g. notify security) are best-effort; their
      // failure cannot make the outcome *more* permissive.
      std::string ignored;
      fulfil(result.decision.obligations, &result.obligations_fulfilled, &ignored);
      result.allowed = false;
      result.reason = "denied by policy";
      return result;
    }
    case core::DecisionType::kNotApplicable:
    case core::DecisionType::kIndeterminate: {
      result.allowed = config_.bias == Bias::kPermit;
      if (!result.allowed) {
        ++denials_by_bias_;
        result.reason = std::string("fail-safe deny (") +
                        core::to_string(result.decision.type) + ")";
      }
      return result;
    }
  }
  result.allowed = false;
  result.reason = "unreachable";
  return result;
}

namespace obligations {

ObligationHandler audit_to(std::vector<std::string>* sink) {
  return [sink](const core::ObligationInstance& ob) {
    std::string line = ob.id;
    for (const auto& [key, value] : ob.assignments) {
      line += " " + key + "=" + value.to_text();
    }
    sink->push_back(std::move(line));
    return true;
  };
}

ObligationHandler no_op() {
  return [](const core::ObligationInstance&) { return true; };
}

ObligationHandler always_fail() {
  return [](const core::ObligationInstance&) { return false; };
}

}  // namespace obligations

}  // namespace mdac::pep
