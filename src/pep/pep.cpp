#include "pep/pep.hpp"

namespace mdac::pep {

void EnforcementPoint::register_obligation_handler(const std::string& obligation_id,
                                                   ObligationHandler handler) {
  handlers_[obligation_id] = std::move(handler);
}

bool EnforcementPoint::fulfil(
    const std::vector<core::ObligationInstance>& obligations,
    std::vector<std::string>* fulfilled, std::string* failure, obs::Trace* trace) {
  for (const core::ObligationInstance& ob : obligations) {
    const auto it = handlers_.find(ob.id);
    const bool ok = it != handlers_.end() && it->second(ob);
    if (trace != nullptr) {
      if (obs::Span* s = trace->record(obs::SpanKind::kObligation, obs::monotonic_ns())) {
        s->set_tag(ob.id);
        s->a = ok ? 1 : 0;
      }
    }
    if (!ok) {
      *failure = it == handlers_.end()
                     ? "no handler for obligation '" + ob.id + "'"
                     : "obligation '" + ob.id + "' failed";
      return false;
    }
    fulfilled->push_back(ob.id);
  }
  return true;
}

Enforcement EnforcementPoint::enforce(const core::RequestContext& request) {
  ++enforcements_;
  Enforcement result;

  // The PEP is single-threaded by contract, so a sampled trace lives on
  // this stack frame and publishes before enforce() returns.
  obs::Trace trace_storage;
  obs::Trace* trace = nullptr;
  if (tracer_ != nullptr) {
    const obs::TraceHandle handle = tracer_->admit();
    result.trace_id = handle.id;
    if (handle.sampled) {
      trace = &trace_storage;
      trace->trace_id = handle.id;
      trace->started_ns = obs::monotonic_ns();
      trace->record(obs::SpanKind::kAdmission, trace->started_ns);
    }
  }

  bool cache_hit = false;
  if (cache_ != nullptr) {
    // Delegate to CachingEvaluator so the caching policy (fingerprint
    // once, cache only definitive decisions) lives in exactly one place.
    cache::CachingEvaluator cached(
        *cache_, [this](const core::RequestContext& r) { return source_(r); });
    result.decision = cached.evaluate_with_probe(request, &cache_hit);
    if (trace != nullptr) {
      if (obs::Span* s = trace->record(obs::SpanKind::kCacheProbe, obs::monotonic_ns())) {
        s->a = cache_hit ? 2 : 0;  // the PEP-side cache is a shared level
      }
    }
  } else {
    result.decision = source_(request);
  }

  switch (result.decision.type) {
    case core::DecisionType::kPermit: {
      std::string failure;
      if (!fulfil(result.decision.obligations, &result.obligations_fulfilled,
                  &failure, trace)) {
        // A permit whose obligations cannot be discharged must not be
        // enforced as permit.
        ++denials_by_obligation_;
        result.allowed = false;
        result.reason = failure;
      } else {
        result.allowed = true;
      }
      break;
    }
    case core::DecisionType::kDeny: {
      // Deny obligations (e.g. notify security) are best-effort; their
      // failure cannot make the outcome *more* permissive.
      std::string ignored;
      fulfil(result.decision.obligations, &result.obligations_fulfilled, &ignored,
             trace);
      result.allowed = false;
      result.reason = "denied by policy";
      break;
    }
    case core::DecisionType::kNotApplicable:
    case core::DecisionType::kIndeterminate: {
      result.allowed = config_.bias == Bias::kPermit;
      if (!result.allowed) {
        ++denials_by_bias_;
        result.reason = std::string("fail-safe deny (") +
                        core::to_string(result.decision.type) + ")";
      }
      break;
    }
  }

  if (tracer_ != nullptr && result.trace_id != 0) {
    const bool anomaly = result.decision.is_indeterminate();
    if (trace == nullptr && anomaly && tracer_->always_sample_anomalies()) {
      // Tail sampling: the PEP reads no clock at untraced admission, so
      // a synthesized anomaly trace has zero measured latency — the path
      // summary (outcome, fail-safe cause) is what matters here.
      trace = &trace_storage;
      trace->trace_id = result.trace_id;
      trace->started_ns = obs::monotonic_ns();
      trace->record(obs::SpanKind::kAdmission, trace->started_ns);
    }
    if (trace != nullptr) {
      trace->anomaly = anomaly;
      trace->finished_ns = obs::monotonic_ns();
      trace->decision = result.decision.type;
      trace->cache_level = cache_hit ? 2 : 0;
      trace->outcome = obs::TraceOutcome::kDecided;
      if (obs::Span* s = trace->record(obs::SpanKind::kOutcome, trace->finished_ns)) {
        s->set_tag(result.allowed ? "permit" : "deny");
      }
      tracer_->publish(*trace);
    }
  }
  return result;
}

namespace obligations {

ObligationHandler audit_to(std::vector<std::string>* sink) {
  return [sink](const core::ObligationInstance& ob) {
    std::string line = ob.id;
    for (const auto& [key, value] : ob.assignments) {
      line += " " + key + "=" + value.to_text();
    }
    sink->push_back(std::move(line));
    return true;
  };
}

ObligationHandler no_op() {
  return [](const core::ObligationInstance&) { return true; };
}

ObligationHandler always_fail() {
  return [](const core::ObligationInstance&) { return false; };
}

}  // namespace obligations

}  // namespace mdac::pep
