#include "pep/remote.hpp"

#include "core/serialization.hpp"
#include "runtime/engine.hpp"

namespace mdac::pep {

PdpService::PdpService(net::Network& network, std::string node_id,
                       std::shared_ptr<core::Pdp> pdp)
    : node_(network, std::move(node_id)), pdp_(std::move(pdp)) {
  node_.set_request_handler([this](const std::string& type,
                                   const std::string& payload,
                                   const std::string& /*from*/) {
    ++requests_served_;
    if (type == "ping") return std::string("pong");  // heartbeat probe
    if (type != kAuthzRequestType) {
      return core::decision_to_string(core::Decision::indeterminate(
          core::IndeterminateExtent::kDP,
          core::Status::processing_error("unknown request type '" + type + "'")));
    }
    core::Decision decision;
    try {
      const core::RequestContext request = core::request_from_string(payload);
      if (name_filter_) {
        // Validate the wire vocabulary before evaluation: reject the
        // whole request on the first attribute name outside the
        // domain's allowlist (fail-safe — the PEP's deny bias applies).
        // Walks the two entry vectors directly — order is irrelevant
        // here and entries_by_name() allocates.
        const std::string* rejected = nullptr;
        for (const core::RequestContext::Entry& entry : request.attributes()) {
          if (!name_filter_(entry.name())) {
            rejected = &entry.name();
            break;
          }
        }
        for (const core::RequestContext::Entry& entry : request.side_attributes()) {
          if (rejected != nullptr) break;
          if (!name_filter_(entry.name())) rejected = &entry.name();
        }
        if (rejected != nullptr) {
          ++filter_rejections_;
          return core::decision_to_string(core::Decision::indeterminate(
              core::IndeterminateExtent::kDP,
              core::Status::syntax_error("attribute name not in domain vocabulary: '" +
                                         *rejected + "'")));
        }
      }
      if (engine_ != nullptr) {
        // Multi-threaded path: hand the request to the runtime's worker
        // pool and wait for completion. Sheds already carry a fail-safe
        // Indeterminate{DP} decision, so they encode like any other.
        decision = std::move(engine_->submit(request).get().decision);
      } else {
        decision = pdp_->evaluate(request);
      }
    } catch (const std::exception& e) {
      decision = core::Decision::indeterminate(
          core::IndeterminateExtent::kDP,
          core::Status::syntax_error(std::string(kBadRequestStatusPrefix) + ": " +
                                     e.what()));
    }
    return core::decision_to_string(decision);
  });
}

ReplyClass classify_reply(const core::Decision& decision) {
  if (!decision.is_indeterminate()) return ReplyClass::kDeliverable;
  const std::string& message = decision.status.message;
  if (runtime::is_shed_status(message)) return ReplyClass::kRetryable;
  if (message == runtime::kNoSnapshotMessage) return ReplyClass::kRetryable;
  if (decision.status.code == core::StatusCode::kSyntaxError &&
      message.starts_with(kBadRequestStatusPrefix)) {
    return ReplyClass::kRetryable;
  }
  return ReplyClass::kDeliverable;
}

RemotePdpClient::RemotePdpClient(net::Network& network, std::string node_id,
                                 std::string pdp_node_id, common::Duration timeout)
    : node_(network, std::move(node_id)),
      pdp_node_(std::move(pdp_node_id)),
      timeout_(timeout) {}

void RemotePdpClient::evaluate(const core::RequestContext& request,
                               DecisionCallback callback) {
  node_.call(pdp_node_, kAuthzRequestType, core::request_to_string(request),
             timeout_, [callback](std::optional<std::string> response) {
               if (!response.has_value()) {
                 callback(core::Decision::indeterminate(
                     core::IndeterminateExtent::kDP,
                     core::Status::processing_error("decision query timed out")));
                 return;
               }
               try {
                 callback(core::decision_from_string(*response));
               } catch (const std::exception& e) {
                 callback(core::Decision::indeterminate(
                     core::IndeterminateExtent::kDP,
                     core::Status::syntax_error(
                         std::string("undecodable decision: ") + e.what())));
               }
             });
}

}  // namespace mdac::pep
