// The pull model over the network (paper Fig. 3): the PEP describes the
// intercepted access as an XACML request context, sends it to a remote
// PDP service, and conforms to the response. A PdpService exposes a
// core::Pdp as a network node answering "authz-request".
//
// The agent model (paper §2.2) is the degenerate case: a PEP whose
// DecisionSource calls a colocated Pdp directly — no network required,
// which is exactly the architectural trade-off the C5 bench measures.
#pragma once

#include <functional>
#include <memory>
#include <string_view>

#include "core/pdp.hpp"
#include "net/rpc.hpp"

namespace mdac::runtime {
class DecisionEngine;
}  // namespace mdac::runtime

namespace mdac::pep {

inline constexpr const char* kAuthzRequestType = "authz-request";

/// Status-message prefix PdpService stamps on replies to requests whose
/// payload failed to parse. Part of the retryable-reply contract: the
/// PEP serialised the request itself, so a "bad request context" answer
/// proves the payload was mangled in transit (corruption), not that the
/// PEP sent garbage — a replicated dispatcher retries elsewhere instead
/// of enforcing it.
inline constexpr const char* kBadRequestStatusPrefix = "bad request context";

/// How a replicated dispatcher should treat a decoded reply.
enum class ReplyClass {
  /// A real decision (or an evaluation-produced indeterminate): enforce
  /// it. Identical to what the fault-free oracle would return.
  kDeliverable,
  /// A transient replica-side condition — engine overload shed, replica
  /// not yet provisioned with a snapshot, or a transport-corrupted
  /// request echo. Another replica may well answer; failing over is
  /// safe because no policy evaluation produces these statuses.
  kRetryable,
};

/// Classifies a decoded PDP reply (see ReplyClass). The rule, in order:
/// permits/denies/not-applicable are always deliverable; indeterminates
/// are retryable iff their status is an engine shed
/// (runtime::is_shed_status), the engine's "no snapshot published"
/// bring-up status, or a kBadRequestStatusPrefix syntax error.
ReplyClass classify_reply(const core::Decision& decision);

/// Network-facing PDP: decodes request contexts, evaluates, encodes
/// decisions. Malformed requests yield Indeterminate{DP} — a broken
/// caller must not crash the decision service.
class PdpService {
 public:
  /// Accepts a wire attribute name, or rejects the request carrying it.
  using AttributeNameFilter = std::function<bool(std::string_view)>;

  PdpService(net::Network& network, std::string node_id,
             std::shared_ptr<core::Pdp> pdp);

  const std::string& node_id() const { return node_.id(); }
  core::Pdp& pdp() { return *pdp_; }
  std::size_t requests_served() const { return requests_served_; }

  /// Optional allowlist gate on wire attribute names (typically bound to
  /// pap::PolicyRepository::attribute_allowed for this domain): when set,
  /// a request naming any attribute the filter rejects is answered
  /// Indeterminate{DP} without evaluation. Unset = open vocabulary.
  void set_attribute_name_filter(AttributeNameFilter filter) {
    name_filter_ = std::move(filter);
  }

  std::size_t requests_rejected_by_filter() const { return filter_rejections_; }

  /// Routes evaluation through a multi-threaded runtime engine instead
  /// of the service's own (single-threaded) Pdp: the request is
  /// submitted to the engine's queue and the handler blocks for the
  /// completion, so N worker replicas serve the wire traffic and
  /// overload is shed deterministically (sheds come back as
  /// Indeterminate{DP} with the engine's distinct shed status — the
  /// caller's fail-safe deny bias applies). Not owned; must outlive the
  /// service. Pass nullptr to go back to the local Pdp.
  void set_engine(runtime::DecisionEngine* engine) { engine_ = engine; }
  runtime::DecisionEngine* engine() const { return engine_; }

 private:
  net::RpcNode node_;
  std::shared_ptr<core::Pdp> pdp_;
  runtime::DecisionEngine* engine_ = nullptr;
  AttributeNameFilter name_filter_;
  std::size_t requests_served_ = 0;
  std::size_t filter_rejections_ = 0;
};

/// PEP-side client for a remote PDP. Asynchronous (simulator-driven):
/// the callback receives the decision, or fail-safe Indeterminate on
/// timeout / undecodable response.
class RemotePdpClient {
 public:
  using DecisionCallback = std::function<void(core::Decision)>;

  RemotePdpClient(net::Network& network, std::string node_id,
                  std::string pdp_node_id, common::Duration timeout = 500);

  void evaluate(const core::RequestContext& request, DecisionCallback callback);

  /// Re-points the client at a different PDP node (used by failover).
  void set_pdp_node(std::string pdp_node_id) { pdp_node_ = std::move(pdp_node_id); }
  const std::string& pdp_node() const { return pdp_node_; }

  std::size_t timeouts() const { return node_.timeouts(); }
  net::RpcNode& node() { return node_; }

 private:
  net::RpcNode node_;
  std::string pdp_node_;
  common::Duration timeout_;
};

}  // namespace mdac::pep
