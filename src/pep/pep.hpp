// Policy Enforcement Point (paper §2.2, component 1).
//
// The PEP "creates a barrier around the resource it protects and mediates
// all accesses"; it *conforms* to PDP decisions and fulfils their
// obligations. Key dependability property implemented here: fail-safe
// bias — NotApplicable, Indeterminate, unreachable PDP, or an obligation
// the PEP cannot discharge all collapse to deny (configurable).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cache/decision_cache.hpp"
#include "core/decision.hpp"
#include "core/request.hpp"
#include "obs/trace.hpp"

namespace mdac::pep {

/// Discharges one obligation instance; returns false if it cannot.
using ObligationHandler = std::function<bool(const core::ObligationInstance&)>;

enum class Bias { kDeny, kPermit };

struct PepConfig {
  /// Applied to NotApplicable / Indeterminate decisions.
  Bias bias = Bias::kDeny;
};

/// Result of one enforcement: the gate outcome plus its provenance.
struct Enforcement {
  bool allowed = false;
  core::Decision decision;
  std::vector<std::string> obligations_fulfilled;
  std::string reason;  // set when allowed == false
  /// Trace id assigned at PEP admission when a tracer is configured
  /// (0 otherwise) — correlate with the tracer's explain ring.
  std::uint64_t trace_id = 0;
};

/// One enforcement gate. Not thread-safe: enforce() bumps counters and
/// consults the handler map without synchronisation — run one
/// EnforcementPoint per thread, or serialise calls externally (the
/// decision source behind it may itself be shared and thread-safe, e.g.
/// runtime::engine_decision_source).
class EnforcementPoint {
 public:
  /// The decision source: a local PDP call, a remote RPC, a cached
  /// evaluator or the multi-threaded engine — the PEP does not care
  /// (paper's modularity requirement). Must outlive the PEP.
  using DecisionSource = std::function<core::Decision(const core::RequestContext&)>;

  EnforcementPoint(DecisionSource source, PepConfig config = {})
      : source_(std::move(source)), config_(config) {}

  /// Registers a handler for an obligation id. Unhandled obligations on a
  /// permit make the PEP deny (an obligation it cannot understand must
  /// not be silently skipped — XACML semantics, paper §2.3).
  void register_obligation_handler(const std::string& obligation_id,
                                   ObligationHandler handler);

  /// Optional decision cache (paper §3.2); not owned.
  void set_cache(cache::DecisionCache* cache) { cache_ = cache; }

  /// Optional decision tracer (not owned; must outlive the PEP). Every
  /// enforce() is admitted (Enforcement::trace_id); sampled ones record
  /// admission / cache-probe / obligation / outcome spans, and denials
  /// are tail-sampled as anomalies per the tracer's policy.
  void set_tracer(obs::DecisionTracer* tracer) { tracer_ = tracer; }

  /// Decides (cache first, then the source) and enforces: a Permit is
  /// allowed only after every obligation is discharged; everything else
  /// follows the configured bias. Never throws on policy errors — an
  /// errored decision is an Indeterminate and the bias applies.
  Enforcement enforce(const core::RequestContext& request);

  // Counters for the benches.
  std::size_t enforcements() const { return enforcements_; }
  std::size_t denials_by_bias() const { return denials_by_bias_; }
  std::size_t denials_by_obligation() const { return denials_by_obligation_; }

 private:
  /// Runs handlers for all obligations; returns false if any obligation
  /// is unhandled or its handler fails. Records a kObligation span per
  /// attempt when `trace` is non-null.
  bool fulfil(const std::vector<core::ObligationInstance>& obligations,
              std::vector<std::string>* fulfilled, std::string* failure,
              obs::Trace* trace);

  DecisionSource source_;
  PepConfig config_;
  std::map<std::string, ObligationHandler> handlers_;
  cache::DecisionCache* cache_ = nullptr;
  obs::DecisionTracer* tracer_ = nullptr;
  std::size_t enforcements_ = 0;
  std::size_t denials_by_bias_ = 0;
  std::size_t denials_by_obligation_ = 0;
};

/// Standard obligation handlers used across examples and benches.
namespace obligations {

/// Appends a line per obligation to `sink` ("audit-log" style).
ObligationHandler audit_to(std::vector<std::string>* sink);

/// Always succeeds, does nothing (for advice-like obligations).
ObligationHandler no_op();

/// Always fails (for failure-injection tests).
ObligationHandler always_fail();

}  // namespace obligations

}  // namespace mdac::pep
