#include "analysis/analysis.hpp"

#include <algorithm>

#include "core/combining.hpp"
#include "core/compiled.hpp"
#include "core/evaluation.hpp"
#include "core/functions.hpp"
#include "core/request.hpp"

namespace mdac::analysis {

namespace {

// ---------------------------------------------------------------------
// Equality-fragment projection
// ---------------------------------------------------------------------

/// Constraint map plus a flag for structure outside the equality
/// fragment. When `approximate` is false the map is *exactly* the
/// target's admitted space; when true it over-approximates it (dropped
/// conjuncts only ever widen the space).
struct ExtractedTarget {
  std::map<AttributeKey, std::set<std::string>> constraints;
  bool approximate = false;
};

/// Projects a target onto the equality fragment. Each AnyOf whose AllOfs
/// are single string-equality matches over one attribute becomes a
/// constraint (attribute -> value set). Anything else — non-equality
/// functions, multi-match AllOfs, cross-attribute disjunctions — sets
/// `approximate`. A must-be-present match keeps its constraint (the
/// admitted space is the same) but also sets `approximate`: the match
/// can go Indeterminate instead of NoMatch on an absent attribute, which
/// the shadowing proofs must treat as outside the fragment.
ExtractedTarget project_target(const core::Target& target) {
  ExtractedTarget out;
  for (const core::AnyOf& any : target.any_ofs) {
    bool viable = !any.all_ofs.empty();
    std::optional<AttributeKey> key;
    std::set<std::string> values;
    for (const core::AllOf& all : any.all_ofs) {
      if (all.matches.size() != 1) {
        viable = false;
        break;
      }
      const core::Match& m = all.matches[0];
      if (m.function_id != "string-equal" || !m.literal.is_string()) {
        viable = false;
        break;
      }
      if (m.must_be_present) out.approximate = true;
      const AttributeKey k{m.category, m.attribute_id};
      if (!key.has_value()) {
        key = k;
      } else if (*key != k) {
        viable = false;
        break;
      }
      values.insert(m.literal.as_string());
    }
    if (!viable || !key.has_value()) {
      out.approximate = true;
      continue;
    }
    // Conjunction with an existing constraint on the same key intersects.
    auto [it, inserted] = out.constraints.emplace(*key, values);
    if (!inserted) {
      std::set<std::string> intersection;
      for (const std::string& v : values) {
        if (it->second.count(v) > 0) intersection.insert(v);
      }
      it->second = std::move(intersection);
    }
  }
  return out;
}

/// Merges (conjoins) b into a.
void intersect_into(std::map<AttributeKey, std::set<std::string>>* a,
                    const std::map<AttributeKey, std::set<std::string>>& b) {
  for (const auto& [key, values] : b) {
    auto [it, inserted] = a->emplace(key, values);
    if (!inserted) {
      std::set<std::string> intersection;
      for (const std::string& v : values) {
        if (it->second.count(v) > 0) intersection.insert(v);
      }
      it->second = std::move(intersection);
    }
  }
}

/// True if some constraint admits no value at all (the atom can never
/// apply and is dropped from overlap analysis).
bool unsatisfiable(const std::map<AttributeKey, std::set<std::string>>& c) {
  for (const auto& [key, values] : c) {
    if (values.empty()) return true;
  }
  return false;
}

/// covers(a, b): every request admitted by b's constraints is admitted
/// by a's — a constrains a subset of b's keys, each with a superset of
/// b's values. Exact when both projections are exact.
bool covers(const std::map<AttributeKey, std::set<std::string>>& a,
            const std::map<AttributeKey, std::set<std::string>>& b) {
  for (const auto& [key, a_values] : a) {
    const auto b_it = b.find(key);
    if (b_it == b.end()) return false;
    if (!std::includes(a_values.begin(), a_values.end(), b_it->second.begin(),
                       b_it->second.end())) {
      return false;
    }
  }
  return true;
}

/// Overlap test with witness: every attribute constrained by BOTH sides
/// must share at least one admitted value; one-sided constraints always
/// overlap (the other side admits anything).
bool overlap_witness(const std::map<AttributeKey, std::set<std::string>>& a,
                     const std::map<AttributeKey, std::set<std::string>>& b,
                     std::map<AttributeKey, std::string>* witness) {
  for (const auto& [key, a_values] : a) {
    const auto b_it = b.find(key);
    if (b_it == b.end()) {
      if (!a_values.empty()) witness->emplace(key, *a_values.begin());
      continue;
    }
    bool found = false;
    for (const std::string& v : a_values) {
      if (b_it->second.count(v) > 0) {
        witness->emplace(key, v);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  for (const auto& [key, b_values] : b) {
    if (a.count(key) == 0 && !b_values.empty()) {
      witness->emplace(key, *b_values.begin());
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Tree walk: atoms, per-policy rule projections, set children, edges
// ---------------------------------------------------------------------

/// A rule's own-target projection, used by the shadowing pass: sibling
/// rules share their policy/set context, so coverage between them is
/// decided on the rule-level targets alone (the shared context cancels).
struct RuleInfo {
  const core::Rule* rule = nullptr;
  std::string path;  // root/.../policy/rule
  ExtractedTarget own;
  bool has_condition = false;
  /// Full-path atom satisfiability + exactness (for dead-rule findings).
  bool satisfiable = true;
  bool exact_path = false;
};

struct PolicyInfo {
  const core::Policy* policy = nullptr;
  std::string root_id;
  std::string path;  // root/.../policy
  std::vector<RuleInfo> rules;
};

/// One direct child of a PolicySet, as the set-level shadowing and
/// only-one-applicable passes see it.
struct ChildInfo {
  const core::PolicyTreeNode* node = nullptr;
  std::string id;
  bool is_policy = false;
  bool is_reference = false;
  /// Projection of the child's *own* target (sibling context cancels).
  ExtractedTarget own;
  /// Child is a Policy that always yields a decision when its target
  /// matches: exact own target, a known combining algorithm, and an
  /// unconditional catch-all rule.
  bool always_decides = false;
};

struct SetInfo {
  const core::PolicySet* set = nullptr;
  std::string root_id;
  std::string path;
  std::vector<ChildInfo> children;
};

struct RefEdge {
  std::string root_id;
  std::string path;
  std::string ref_id;
};

struct Collection {
  std::vector<Atom> atoms;        // satisfiable only (overlap analysis)
  std::vector<PolicyInfo> policies;
  std::vector<SetInfo> sets;
  std::vector<RefEdge> refs;
};

bool known_combining(const std::string& name) {
  return core::CombiningRegistry::standard().find(name) != nullptr;
}

void collect_policy(const core::Policy& policy, const std::string& root_id,
                    const std::string& path, const ExtractedTarget& inherited,
                    Collection* out) {
  ExtractedTarget context = inherited;
  const ExtractedTarget own_policy = project_target(policy.target_spec);
  intersect_into(&context.constraints, own_policy.constraints);
  context.approximate = context.approximate || own_policy.approximate;

  PolicyInfo info;
  info.policy = &policy;
  info.root_id = root_id;
  info.path = path;

  for (const core::Rule& rule : policy.rules) {
    RuleInfo ri;
    ri.rule = &rule;
    ri.path = path + "/" + rule.id;
    if (rule.target.has_value()) ri.own = project_target(*rule.target);
    ri.has_condition = rule.condition != nullptr;

    Atom atom;
    atom.root_id = root_id;
    atom.policy_id = policy.policy_id;
    atom.rule_id = rule.id;
    atom.path = ri.path;
    atom.effect = rule.effect;
    atom.constraints = context.constraints;
    atom.approximate = context.approximate;
    intersect_into(&atom.constraints, ri.own.constraints);
    atom.approximate = atom.approximate || ri.own.approximate;
    atom.exact_target = !atom.approximate;
    if (rule.condition) {
      // Conditions are outside the equality fragment entirely.
      atom.approximate = true;
    }
    atom.has_condition = ri.has_condition;

    ri.exact_path = atom.exact_target;
    ri.satisfiable = !unsatisfiable(atom.constraints);
    info.rules.push_back(std::move(ri));
    if (info.rules.back().satisfiable) out->atoms.push_back(std::move(atom));
  }
  out->policies.push_back(std::move(info));
}

void collect_node(const core::PolicyTreeNode& node, const std::string& root_id,
                  const std::string& path, const ExtractedTarget& inherited,
                  Collection* out) {
  if (const auto* policy = dynamic_cast<const core::Policy*>(&node)) {
    collect_policy(*policy, root_id, path, inherited, out);
    return;
  }
  if (const auto* ref = dynamic_cast<const core::PolicyReference*>(&node)) {
    out->refs.push_back(RefEdge{root_id, path, ref->id()});
    return;
  }
  const auto* set = dynamic_cast<const core::PolicySet*>(&node);
  if (set == nullptr) return;

  ExtractedTarget context = inherited;
  const ExtractedTarget own_set = project_target(set->target_spec);
  intersect_into(&context.constraints, own_set.constraints);
  context.approximate = context.approximate || own_set.approximate;

  SetInfo si;
  si.set = set;
  si.root_id = root_id;
  si.path = path;
  for (const core::PolicyNodePtr& child : set->children()) {
    ChildInfo ci;
    ci.node = child.get();
    ci.id = child->id();
    if (const auto* p = dynamic_cast<const core::Policy*>(child.get())) {
      ci.is_policy = true;
      ci.own = project_target(p->target_spec);
      if (!ci.own.approximate && known_combining(p->rule_combining)) {
        for (const core::Rule& r : p->rules) {
          if (!r.target.has_value() && !r.condition) {
            ci.always_decides = true;
            break;
          }
        }
      }
    } else if (dynamic_cast<const core::PolicyReference*>(child.get())) {
      ci.is_reference = true;
      ci.own.approximate = true;  // target unknown statically
    } else if (const auto* s = dynamic_cast<const core::PolicySet*>(child.get())) {
      ci.own = project_target(s->target_spec);
    }
    si.children.push_back(std::move(ci));
    collect_node(*child, root_id, path + "/" + child->id(), context, out);
  }
  out->sets.push_back(std::move(si));
}

// ---------------------------------------------------------------------
// Report assembly (with per-pass materialisation caps)
// ---------------------------------------------------------------------

class ReportBuilder {
 public:
  explicit ReportBuilder(std::size_t cap) : cap_(cap) {}

  void add(Finding f) {
    switch (f.severity) {
      case Severity::kError: ++report_.error_count; break;
      case Severity::kWarning: ++report_.warning_count; break;
      case Severity::kInfo: ++report_.info_count; break;
    }
    auto& materialised = per_pass_[static_cast<int>(f.pass)];
    if (cap_ != 0 && materialised >= cap_) {
      ++suppressed_[static_cast<int>(f.pass)];
      ++report_.suppressed;
      return;
    }
    ++materialised;
    report_.findings.push_back(std::move(f));
  }

  AnalysisReport finish() {
    for (const auto& [pass, n] : suppressed_) {
      Finding f;
      f.pass = static_cast<Pass>(pass);
      f.severity = Severity::kInfo;
      f.code = "findings-truncated";
      f.message = std::to_string(n) + " further " +
                  to_string(static_cast<Pass>(pass)) +
                  " finding(s) counted but not materialised (per-pass cap)";
      ++report_.info_count;
      report_.findings.push_back(std::move(f));
    }
    return std::move(report_);
  }

 private:
  std::size_t cap_;
  AnalysisReport report_;
  std::map<int, std::size_t> per_pass_;
  std::map<int, std::size_t> suppressed_;
};

std::string describe_constraints(
    const std::map<AttributeKey, std::set<std::string>>& c) {
  if (c.empty()) return "any request";
  std::string out;
  for (const auto& [key, values] : c) {
    if (!out.empty()) out += ", ";
    out += key.second + " in {";
    bool first = true;
    for (const std::string& v : values) {
      if (!first) out += ",";
      out += v;
      first = false;
    }
    out += "}";
  }
  return out;
}

// ---------------------------------------------------------------------
// Pass: shadowing / unreachability
// ---------------------------------------------------------------------

void shadow_rules(const PolicyInfo& pi, ReportBuilder* rb) {
  const std::string& combining = pi.policy->rule_combining;
  const bool first_applicable = combining == "first-applicable";
  const bool deny_wins =
      combining == "deny-overrides" || combining == "ordered-deny-overrides";
  const bool permit_wins =
      combining == "permit-overrides" || combining == "ordered-permit-overrides";
  if (!first_applicable && !deny_wins && !permit_wins) return;

  const auto& rules = pi.rules;
  for (std::size_t j = 0; j < rules.size(); ++j) {
    const RuleInfo& cand = rules[j];
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (i == j) continue;
      const RuleInfo& cov = rules[i];
      // The coverer must provably decide whenever its target matches:
      // exact projection, no condition.
      if (cov.own.approximate || cov.has_condition) continue;
      if (first_applicable && i >= j) continue;
      if (deny_wins && !(cov.rule->effect == core::Effect::kDeny &&
                         cand.rule->effect == core::Effect::kPermit)) {
        continue;
      }
      if (permit_wins && !(cov.rule->effect == core::Effect::kPermit &&
                           cand.rule->effect == core::Effect::kDeny)) {
        continue;
      }
      if (!covers(cov.own.constraints, cand.own.constraints)) continue;
      // An unconstrained coverer applies to every request the candidate
      // could ever see, so the candidate is unreachable regardless of
      // its own structure. A constrained coverer needs the candidate's
      // projection exact too: an approximate candidate target could go
      // Indeterminate on requests outside the coverer's space.
      if (!cov.own.constraints.empty() && cand.own.approximate) continue;

      Finding f;
      f.pass = Pass::kShadowing;
      f.severity = Severity::kWarning;
      f.code = "rule-shadowed";
      f.root_id = pi.root_id;
      f.path = cand.path;
      f.other_root_id = pi.root_id;
      f.other_path = cov.path;
      f.message =
          first_applicable
              ? "rule can never decide: every request it admits is decided by "
                "earlier rule '" +
                    cov.rule->id + "' (first-applicable)"
              : "rule effect can never surface: rule '" + cov.rule->id +
                    "' covers its admitted space under " + combining;
      rb->add(std::move(f));
      break;
    }
  }
}

void shadow_set_children(const SetInfo& si, ReportBuilder* rb) {
  if (si.set->policy_combining != "first-applicable") return;
  std::vector<const ChildInfo*> deciders;
  for (const ChildInfo& child : si.children) {
    for (const ChildInfo* d : deciders) {
      if (!covers(d->own.constraints, child.own.constraints)) continue;
      // Constrained deciders need the candidate exact (same
      // Indeterminate-leak argument as for rules); an unconstrained
      // decider short-circuits every later sibling outright.
      if (!d->own.constraints.empty() &&
          (child.own.approximate || !child.is_policy)) {
        continue;
      }
      Finding f;
      f.pass = Pass::kShadowing;
      f.severity = Severity::kWarning;
      f.code = "policy-shadowed";
      f.root_id = si.root_id;
      f.path = si.path + "/" + child.id;
      f.other_root_id = si.root_id;
      f.other_path = si.path + "/" + d->id;
      f.message = "child can never decide: earlier sibling '" + d->id +
                  "' always yields a decision for every request it admits "
                  "(first-applicable)";
      rb->add(std::move(f));
      break;
    }
    if (child.always_decides) deciders.push_back(&child);
  }
}

void only_one_applicable_overlaps(const SetInfo& si, ReportBuilder* rb) {
  if (si.set->policy_combining != "only-one-applicable") return;
  for (std::size_t i = 0; i < si.children.size(); ++i) {
    for (std::size_t j = i + 1; j < si.children.size(); ++j) {
      const ChildInfo& a = si.children[i];
      const ChildInfo& b = si.children[j];
      std::map<AttributeKey, std::string> witness;
      if (!overlap_witness(a.own.constraints, b.own.constraints, &witness)) {
        continue;
      }
      const bool approx = a.own.approximate || b.own.approximate;
      Finding f;
      f.pass = Pass::kModalityConflict;
      f.severity = approx ? Severity::kWarning : Severity::kError;
      f.code = "only-one-applicable-overlap";
      f.root_id = si.root_id;
      f.path = si.path + "/" + a.id;
      f.other_root_id = si.root_id;
      f.other_path = si.path + "/" + b.id;
      f.witness = std::move(witness);
      f.approximate = approx;
      f.message = "children '" + a.id + "' and '" + b.id +
                  "' can both apply; only-one-applicable then yields "
                  "Indeterminate at runtime";
      rb->add(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------
// Pass: cross-root modality conflicts (bucketed)
// ---------------------------------------------------------------------

void conflict_finding(const Atom& a, const Atom& b, ReportBuilder* rb) {
  std::map<AttributeKey, std::string> witness;
  if (!overlap_witness(a.constraints, b.constraints, &witness)) return;
  const Atom& permit = a.effect == core::Effect::kPermit ? a : b;
  const Atom& deny = a.effect == core::Effect::kPermit ? b : a;
  const bool approx = a.approximate || b.approximate;
  Finding f;
  f.pass = Pass::kModalityConflict;
  f.severity = approx ? Severity::kWarning : Severity::kError;
  f.code = "modality-conflict";
  f.root_id = permit.root_id;
  f.path = permit.path;
  f.other_root_id = deny.root_id;
  f.other_path = deny.path;
  f.witness = std::move(witness);
  f.approximate = approx;
  f.message = "permit rule '" + permit.rule_id + "' and deny rule '" +
              deny.rule_id + "' of independently issued trees overlap on " +
              describe_constraints(permit.constraints) +
              (approx ? " (approximate)" : "");
  rb->add(std::move(f));
}

bool conflict_candidates(const Atom& a, const Atom& b) {
  return a.effect != b.effect && a.root_id != b.root_id;
}

/// Pairwise over all cross-root opposite-effect atoms, partitioned by
/// the most discriminating singleton equality constraint so
/// domain-structured corpora (thousands of policies, each pinned to one
/// domain/role/resource) stay far from quadratic: two atoms pinned to
/// different values of the partition key can never overlap.
void cross_root_conflicts(const std::vector<Atom>& atoms, ReportBuilder* rb) {
  std::map<AttributeKey, std::size_t> singleton_counts;
  for (const Atom& atom : atoms) {
    for (const auto& [key, values] : atom.constraints) {
      if (values.size() == 1) ++singleton_counts[key];
    }
  }
  const AttributeKey* partition_key = nullptr;
  std::size_t best = 0;
  for (const auto& [key, n] : singleton_counts) {
    if (n > best) {
      best = n;
      partition_key = &key;
    }
  }

  std::map<std::string, std::vector<const Atom*>> buckets;
  std::vector<const Atom*> global;
  for (const Atom& atom : atoms) {
    const auto it = partition_key != nullptr
                        ? atom.constraints.find(*partition_key)
                        : atom.constraints.end();
    if (it != atom.constraints.end() && it->second.size() == 1) {
      buckets[*it->second.begin()].push_back(&atom);
    } else {
      global.push_back(&atom);
    }
  }

  const auto compare_within = [&](const std::vector<const Atom*>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t j = i + 1; j < v.size(); ++j) {
        if (conflict_candidates(*v[i], *v[j])) conflict_finding(*v[i], *v[j], rb);
      }
    }
  };
  const auto compare_across = [&](const std::vector<const Atom*>& a,
                                  const std::vector<const Atom*>& b) {
    for (const Atom* x : a) {
      for (const Atom* y : b) {
        if (conflict_candidates(*x, *y)) conflict_finding(*x, *y, rb);
      }
    }
  };
  for (const auto& [value, bucket] : buckets) {
    compare_within(bucket);
    compare_across(bucket, global);
  }
  compare_within(global);
}

// ---------------------------------------------------------------------
// Pass: references
// ---------------------------------------------------------------------

void reference_pass(const Collection& col,
                    const std::vector<AnalysisInput>& roots,
                    const AnalyzerOptions& options, ReportBuilder* rb) {
  std::set<std::string> root_ids;
  for (const AnalysisInput& input : roots) {
    if (input.node != nullptr) root_ids.insert(input.node->id());
  }
  const auto resolves = [&](const std::string& id) {
    if (options.resolves) return options.resolves(id);
    return root_ids.count(id) > 0;
  };

  for (const RefEdge& edge : col.refs) {
    if (resolves(edge.ref_id)) continue;
    const bool withdrawn = options.withdrawn && options.withdrawn(edge.ref_id);
    Finding f;
    f.pass = Pass::kReference;
    f.severity = Severity::kError;
    f.code = withdrawn ? "reference-withdrawn" : "reference-dangling";
    f.root_id = edge.root_id;
    f.path = edge.path;
    f.other_root_id = edge.ref_id;
    f.message = std::string("policy reference '") + edge.ref_id +
                (withdrawn ? "' names a withdrawn policy"
                           : "' does not resolve");
    rb->add(std::move(f));
  }

  // Cycles among the analysed roots (a reference closure that loops
  // yields runtime reference-cycle Indeterminates). Edges restricted to
  // roots: a reference to an id outside the analysed set was reported
  // above or resolves outside the cycle-relevant graph.
  std::map<std::string, std::vector<std::string>> edges;
  for (const AnalysisInput& input : roots) {
    if (input.node == nullptr) continue;
    for (const std::string& ref : core::referenced_policy_ids(*input.node)) {
      if (root_ids.count(ref) > 0) edges[input.node->id()].push_back(ref);
    }
  }
  std::set<std::set<std::string>> reported;
  std::set<std::string> done;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  // Iterative DFS with an explicit child cursor.
  for (const auto& [start, _] : edges) {
    if (done.count(start) > 0) continue;
    std::vector<std::pair<std::string, std::size_t>> frames{{start, 0}};
    stack.push_back(start);
    on_stack.insert(start);
    while (!frames.empty()) {
      auto& [id, cursor] = frames.back();
      const auto it = edges.find(id);
      if (it == edges.end() || cursor >= it->second.size()) {
        done.insert(id);
        on_stack.erase(id);
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string next = it->second[cursor++];
      if (on_stack.count(next) > 0) {
        // Back edge: the cycle is the stack suffix from `next`.
        const auto begin =
            std::find(stack.begin(), stack.end(), next);
        std::set<std::string> members(begin, stack.end());
        if (reported.insert(members).second) {
          std::string chain;
          for (auto itc = begin; itc != stack.end(); ++itc) {
            chain += *itc + " -> ";
          }
          chain += next;
          Finding f;
          f.pass = Pass::kReference;
          f.severity = Severity::kError;
          f.code = "reference-cycle";
          f.root_id = next;
          f.other_root_id = id;
          f.message = "policy reference cycle: " + chain;
          rb->add(std::move(f));
        }
        continue;
      }
      if (done.count(next) > 0) continue;
      frames.emplace_back(next, 0);
      stack.push_back(next);
      on_stack.insert(next);
    }
  }
}

// ---------------------------------------------------------------------
// Pass: types + dead code (expression walks)
// ---------------------------------------------------------------------

struct ExprScan {
  bool has_designator = false;
  bool foldable = true;  // no designators/refs, all functions well-formed
};

void scan_expr(const core::Expression& expr, bool higher_order_parent,
               const std::string& root_id, const std::string& path,
               ExprScan* scan, ReportBuilder* rb) {
  const auto typed = [&](std::string code, std::string message) {
    Finding f;
    f.pass = Pass::kTypes;
    f.severity = Severity::kError;
    f.code = std::move(code);
    f.root_id = root_id;
    f.path = path;
    f.message = std::move(message);
    rb->add(std::move(f));
  };

  switch (expr.kind()) {
    case core::ExprKind::kLiteral:
      return;
    case core::ExprKind::kDesignator:
      scan->has_designator = true;
      scan->foldable = false;
      return;
    case core::ExprKind::kFunctionRef: {
      scan->foldable = false;
      const auto& ref = static_cast<const core::FunctionRefExpr&>(expr);
      if (!higher_order_parent) {
        typed("function-ref-misplaced",
              "function reference '" + ref.function_id() +
                  "' outside a higher-order apply always errors");
      } else if (core::FunctionRegistry::standard().find(ref.function_id()) ==
                 nullptr) {
        typed("unknown-function",
              "unknown function '" + ref.function_id() + "'");
      }
      return;
    }
    case core::ExprKind::kApply: {
      const auto& apply = static_cast<const core::ApplyExpr&>(expr);
      const core::FunctionDef* fn =
          core::FunctionRegistry::standard().find(apply.function_id());
      if (fn == nullptr) {
        scan->foldable = false;
        typed("unknown-function",
              "unknown function '" + apply.function_id() + "'");
      } else {
        if (fn->higher_order) scan->foldable = false;
        if (fn->arity >= 0 &&
            apply.args().size() != static_cast<std::size_t>(fn->arity)) {
          scan->foldable = false;
          typed("function-arity",
                "function '" + apply.function_id() + "' expects " +
                    std::to_string(fn->arity) + " argument(s), got " +
                    std::to_string(apply.args().size()));
        }
      }
      const bool ho = fn != nullptr && fn->higher_order;
      for (const core::ExprPtr& arg : apply.args()) {
        scan_expr(*arg, ho, root_id, path, scan, rb);
      }
      return;
    }
  }
}

/// Folds a designator-free condition with the real evaluator and reports
/// always-true (redundant) / always-false (dead rule) / always-error.
void fold_condition(const core::Expression& condition, const std::string& root_id,
                    const std::string& path, ReportBuilder* rb) {
  static const core::RequestContext empty_request =
      core::RequestContext::make("", "", "");
  core::EvaluationContext ctx(empty_request, core::FunctionRegistry::standard());
  const core::ExprResult result = condition.evaluate(ctx);

  Finding f;
  f.pass = Pass::kDeadCode;
  f.root_id = root_id;
  f.path = path;
  if (!result.ok()) {
    f.severity = Severity::kWarning;
    f.code = "condition-always-error";
    f.message = "condition evaluates to a constant error (" +
                result.status.message + "): the rule is always Indeterminate";
  } else if (result.bag.singleton() && result.bag.at(0).is_boolean()) {
    if (result.bag.at(0).as_boolean()) {
      f.severity = Severity::kInfo;
      f.code = "condition-always-true";
      f.message = "condition is constantly true and can be removed";
    } else {
      f.severity = Severity::kWarning;
      f.code = "condition-always-false";
      f.message = "condition is constantly false: the rule can never apply";
    }
  } else {
    f.severity = Severity::kWarning;
    f.code = "condition-not-boolean";
    f.message = "condition folds to a non-boolean constant: the rule is "
                "always Indeterminate";
  }
  rb->add(std::move(f));
}

void scan_obligations(const std::vector<core::ObligationExpr>& obligations,
                      const std::string& root_id, const std::string& path,
                      ReportBuilder* rb) {
  for (const core::ObligationExpr& ob : obligations) {
    for (const core::AttributeAssignmentExpr& assignment : ob.assignments) {
      if (assignment.expr == nullptr) continue;
      ExprScan scan;
      scan_expr(*assignment.expr, false, root_id, path + "/" + ob.id, &scan, rb);
    }
  }
}

void scan_target_functions(const core::Target& target, const std::string& root_id,
                           const std::string& path, ReportBuilder* rb) {
  for (const core::AnyOf& any : target.any_ofs) {
    for (const core::AllOf& all : any.all_ofs) {
      for (const core::Match& m : all.matches) {
        const core::FunctionDef* fn =
            core::FunctionRegistry::standard().find(m.function_id);
        std::string code, message;
        if (fn == nullptr) {
          code = "unknown-match-function";
          message = "unknown match function '" + m.function_id + "'";
        } else if (fn->higher_order) {
          code = "higher-order-match-function";
          message = "higher-order match function '" + m.function_id +
                    "' is not usable in a target";
        } else {
          continue;
        }
        Finding f;
        f.pass = Pass::kTypes;
        f.severity = Severity::kError;
        f.code = std::move(code);
        f.root_id = root_id;
        f.path = path;
        f.message = std::move(message);
        rb->add(std::move(f));
      }
    }
  }
}

void unknown_combining_finding(const std::string& name, const char* kind,
                               const std::string& root_id, const std::string& path,
                               ReportBuilder* rb) {
  if (known_combining(name)) return;
  Finding f;
  f.pass = Pass::kTypes;
  f.severity = Severity::kError;
  f.code = "unknown-combining-algorithm";
  f.root_id = root_id;
  f.path = path;
  f.message = std::string("unknown ") + kind + " combining algorithm '" + name +
              "': the node evaluates to Indeterminate";
  rb->add(std::move(f));
}

void types_and_dead_code(const core::PolicyTreeNode& node,
                         const std::string& root_id, const std::string& path,
                         bool types, bool dead_code, ReportBuilder* rb) {
  if (const auto* policy = dynamic_cast<const core::Policy*>(&node)) {
    if (types) {
      unknown_combining_finding(policy->rule_combining, "rule", root_id, path, rb);
      scan_target_functions(policy->target_spec, root_id, path, rb);
      scan_obligations(policy->obligations, root_id, path, rb);
    }
    for (const core::Rule& rule : policy->rules) {
      const std::string rule_path = path + "/" + rule.id;
      if (types) {
        if (rule.target.has_value()) {
          scan_target_functions(*rule.target, root_id, rule_path, rb);
        }
        scan_obligations(rule.obligations, root_id, rule_path, rb);
      }
      if (rule.condition != nullptr) {
        ExprScan scan;
        if (types) {
          scan_expr(*rule.condition, false, root_id, rule_path, &scan, rb);
        } else {
          ReportBuilder scratch(0);
          scan_expr(*rule.condition, false, root_id, rule_path, &scan, &scratch);
        }
        if (dead_code && scan.foldable) {
          fold_condition(*rule.condition, root_id, rule_path, rb);
        }
      }
    }
    return;
  }
  if (const auto* set = dynamic_cast<const core::PolicySet*>(&node)) {
    if (types) {
      unknown_combining_finding(set->policy_combining, "policy", root_id, path,
                                rb);
      scan_target_functions(set->target_spec, root_id, path, rb);
      scan_obligations(set->obligations, root_id, path, rb);
    }
    for (const core::PolicyNodePtr& child : set->children()) {
      types_and_dead_code(*child, root_id, path + "/" + child->id(), types,
                          dead_code, rb);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Atom extraction (legacy flat API + tree API)
// ---------------------------------------------------------------------

std::vector<Atom> extract_atoms(const core::PolicyTreeNode& node) {
  Collection col;
  collect_node(node, node.id(), node.id(), ExtractedTarget{}, &col);
  return std::move(col.atoms);
}

std::vector<Atom> extract_atoms(const core::Policy& policy) {
  return extract_atoms(static_cast<const core::PolicyTreeNode&>(policy));
}

std::vector<Conflict> find_modality_conflicts(const std::vector<Atom>& atoms) {
  std::vector<Conflict> out;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      const Atom& a = atoms[i];
      const Atom& b = atoms[j];
      if (a.effect == b.effect) continue;
      std::map<AttributeKey, std::string> witness;
      if (!overlap_witness(a.constraints, b.constraints, &witness)) continue;
      Conflict conflict;
      conflict.permit_index = a.effect == core::Effect::kPermit ? i : j;
      conflict.deny_index = a.effect == core::Effect::kPermit ? j : i;
      conflict.witness = std::move(witness);
      conflict.approximate = a.approximate || b.approximate;
      out.push_back(std::move(conflict));
    }
  }
  return out;
}

AnalysisResult analyse(const std::vector<const core::Policy*>& policies) {
  AnalysisResult result;
  for (const core::Policy* p : policies) {
    std::vector<Atom> extracted = extract_atoms(*p);
    result.atoms.insert(result.atoms.end(),
                        std::make_move_iterator(extracted.begin()),
                        std::make_move_iterator(extracted.end()));
  }
  result.conflicts = find_modality_conflicts(result.atoms);
  return result;
}

// ---------------------------------------------------------------------
// The linter
// ---------------------------------------------------------------------

bool is_unreachability_code(const std::string& code) {
  return code == "rule-shadowed" || code == "policy-shadowed" ||
         code == "rule-never-applicable" || code == "condition-always-false";
}

AnalysisReport analyse_roots(const std::vector<AnalysisInput>& roots,
                             const AnalyzerOptions& options) {
  ReportBuilder rb(options.max_findings_per_pass);

  Collection col;
  for (const AnalysisInput& input : roots) {
    if (input.node == nullptr) continue;
    collect_node(*input.node, input.node->id(), input.node->id(),
                 ExtractedTarget{}, &col);
  }

  if (options.shadowing) {
    for (const PolicyInfo& pi : col.policies) shadow_rules(pi, &rb);
    for (const SetInfo& si : col.sets) shadow_set_children(si, &rb);
  }
  if (options.conflicts) {
    for (const SetInfo& si : col.sets) only_one_applicable_overlaps(si, &rb);
    cross_root_conflicts(col.atoms, &rb);
  }
  if (options.references) reference_pass(col, roots, options, &rb);

  for (const AnalysisInput& input : roots) {
    if (input.node == nullptr) continue;
    const std::string root_id = input.node->id();
    if (options.types || options.dead_code) {
      types_and_dead_code(*input.node, root_id, root_id, options.types,
                          options.dead_code, &rb);
    }
    if (options.dead_code) {
      // Provably never-applicable rules: an exact target chain whose
      // intersection admits no value at all.
      for (const PolicyInfo& pi : col.policies) {
        if (pi.root_id != root_id) continue;
        if (pi.policy == nullptr) continue;
        for (const RuleInfo& ri : pi.rules) {
          if (ri.satisfiable || !ri.exact_path) continue;
          Finding f;
          f.pass = Pass::kDeadCode;
          f.severity = Severity::kWarning;
          f.code = "rule-never-applicable";
          f.root_id = root_id;
          f.path = ri.path;
          f.message =
              "the rule's combined set/policy/rule target admits no request";
          rb.add(std::move(f));
        }
      }
    }
    if (options.vocabulary != nullptr) {
      std::set<std::string> seen;
      for (const std::string& name :
           core::referenced_attribute_names(*input.node)) {
        if (!seen.insert(name).second) continue;
        if (options.vocabulary->find(name) != options.vocabulary->end()) continue;
        Finding f;
        f.pass = Pass::kVocabulary;
        f.severity = Severity::kWarning;
        f.code = "unknown-attribute";
        f.root_id = root_id;
        f.path = root_id;
        f.message = "attribute '" + name +
                    "' is not in the domain vocabulary: requests gated on the "
                    "allowlist can never carry it";
        rb.add(std::move(f));
      }
    }
    if (input.compiled != nullptr) {
      for (const std::string& diagnostic : input.compiled->diagnostics()) {
        Finding f;
        f.pass = Pass::kTypes;
        f.severity = Severity::kInfo;
        f.code = "compile-diagnostic";
        f.root_id = root_id;
        f.path = root_id;
        f.message = diagnostic;
        rb.add(std::move(f));
      }
    }
  }

  // Deduplicate the walk-collected policies once more? Not needed: each
  // root walked once; findings reference stable paths.
  return rb.finish();
}

AnalysisReport analyse_store(const core::PolicyStore& store,
                             const AnalyzerOptions& options) {
  std::vector<AnalysisInput> roots;
  std::vector<std::shared_ptr<const core::CompiledPolicyTree>> keep_alive;
  for (const core::PolicyTreeNode* node : store.top_level()) {
    AnalysisInput input;
    input.node = node;
    auto compiled = store.compiled(node->id());
    if (compiled != nullptr) {
      keep_alive.push_back(compiled);
      input.compiled = keep_alive.back().get();
    }
    roots.push_back(input);
  }
  AnalyzerOptions opts = options;
  if (!opts.resolves) {
    opts.resolves = [&store](const std::string& id) {
      return store.find(id) != nullptr;
    };
  }
  return analyse_roots(roots, opts);
}

// ---------------------------------------------------------------------
// Meta-policies
// ---------------------------------------------------------------------

namespace {

const std::set<std::string>* constraint_of(const Atom& atom,
                                           const AttributeKey& key) {
  const auto it = atom.constraints.find(key);
  if (it == atom.constraints.end()) return nullptr;
  return &it->second;
}

/// Does the atom permit (resource, action)?
bool permits(const Atom& atom, const std::string& resource,
             const std::string& action) {
  if (atom.effect != core::Effect::kPermit) return false;
  const AttributeKey res_key{core::Category::kResource, core::attrs::kResourceId};
  const AttributeKey act_key{core::Category::kAction, core::attrs::kActionId};
  const auto* res = constraint_of(atom, res_key);
  const auto* act = constraint_of(atom, act_key);
  if (res != nullptr && res->count(resource) == 0) return false;
  if (act != nullptr && act->count(action) == 0) return false;
  return true;
}

}  // namespace

std::vector<SodViolation> check_sod(const std::vector<Atom>& atoms,
                                    const std::vector<SodMetaPolicy>& metas) {
  std::vector<SodViolation> out;
  const AttributeKey subj_key{core::Category::kSubject, core::attrs::kSubjectId};
  for (std::size_t m = 0; m < metas.size(); ++m) {
    const SodMetaPolicy& meta = metas[m];
    for (std::size_t ia = 0; ia < atoms.size(); ++ia) {
      const Atom& a = atoms[ia];
      if (!permits(a, meta.resource_a, meta.action_a)) continue;
      for (std::size_t ib = 0; ib < atoms.size(); ++ib) {
        const Atom& b = atoms[ib];
        if (!permits(b, meta.resource_b, meta.action_b)) continue;
        // Subject overlap: unconstrained on either side = everyone.
        const auto* sa = constraint_of(a, subj_key);
        const auto* sb = constraint_of(b, subj_key);
        std::set<std::string> overlap;
        bool overlapping = false;
        if (sa == nullptr && sb == nullptr) {
          overlapping = true;
        } else if (sa == nullptr) {
          overlapping = !sb->empty();
          overlap = *sb;
        } else if (sb == nullptr) {
          overlapping = !sa->empty();
          overlap = *sa;
        } else {
          for (const std::string& s : *sa) {
            if (sb->count(s) > 0) overlap.insert(s);
          }
          overlapping = !overlap.empty();
        }
        if (!overlapping) continue;
        out.push_back(SodViolation{m, ia, ib, std::move(overlap)});
      }
    }
  }
  return out;
}

}  // namespace mdac::analysis
