// Static policy analysis (paper §3.1, "Policy Conflict Resolution",
// following Lupu & Sloman [51]) — the issue-time linter over whole
// policy trees and their compiled artifacts.
//
// The analysis projects each rule to an *atom*: its effect plus, per
// (category, attribute), the set of string-equality values its combined
// set+policy+rule target chain admits. Structure the equality fragment
// cannot capture (conditions, non-equality matches, must-be-present
// matches, cross-attribute disjunctions) marks the atom `approximate`:
// its constraint map then *over*-approximates the admitted request
// space, so overlap-based passes stay sound — they may report a
// possible conflict that is not real, but never silently miss one.
//
// Passes (see AnalyzerOptions to toggle):
//   * shadowing      — combining-algorithm-aware unreachability: under
//                      first-applicable, a rule covered by an earlier
//                      *exact* rule can never decide; under
//                      deny-overrides (resp. permit-overrides), a permit
//                      (resp. deny) rule covered by an exact opposite
//                      rule can never surface. First-applicable
//                      PolicySets get the same check across sibling
//                      policies. Coverage is only claimed when it is
//                      provable (both targets inside the fragment), so
//                      a flagged rule provably never decides — the
//                      dynamic oracle test pins this.
//   * conflicts      — modality conflicts *across* top-level trees
//                      (no combiner above them resolves the
//                      disagreement), with witness assignments; inside
//                      one tree every standard combiner resolves
//                      overlaps deterministically, except
//                      only-one-applicable, whose overlapping children
//                      yield runtime Indeterminate and are flagged.
//   * references     — dangling, withdrawn and cyclic PolicyReference
//                      edges (core::referenced_policy_ids semantics).
//   * types          — unknown/higher-order match functions, unknown
//                      condition/obligation functions, arity
//                      mismatches, unknown combining algorithms —
//                      compile-time diagnostic strings promoted to
//                      typed findings (compiled-artifact diagnostics
//                      are folded in as info findings).
//   * vocabulary     — attribute names a tree references that are
//                      absent from the supplied per-domain vocabulary.
//   * dead code      — constant-foldable conditions: always-false
//                      (rule unreachable) and always-true (redundant
//                      condition), folded with the real evaluator over
//                      designator-free expressions.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/finding.hpp"
#include "core/policy.hpp"

namespace mdac::core {
class CompiledPolicyTree;
}  // namespace mdac::core

namespace mdac::analysis {

// ---------------------------------------------------------------------
// Atoms: the equality-fragment projection
// ---------------------------------------------------------------------

struct Atom {
  /// Top-level tree this rule lives under (== policy_id for flat
  /// policies).
  std::string root_id;
  /// The enclosing policy and rule.
  std::string policy_id;
  std::string rule_id;
  /// Slash-separated provenance: "root/.../policy/rule".
  std::string path;
  core::Effect effect = core::Effect::kPermit;
  /// Admitted values per attribute; an absent key admits *any* value.
  std::map<AttributeKey, std::set<std::string>> constraints;
  /// True if the rule (or any target on its set/policy path) has
  /// structure the equality fragment cannot capture: the constraint map
  /// then over-approximates the admitted space.
  bool approximate = false;
  /// True if every target on the path projected exactly (no dropped
  /// conjuncts, equality matches only, no must-be-present): the
  /// constraint map is then *precisely* the admitted target space —
  /// the property shadowing coverage proofs need.
  bool exact_target = false;
  bool has_condition = false;
};

/// Extracts analysis atoms from a flat policy. The policy-level target
/// is intersected into every rule's constraints — including rules
/// without a target of their own and rules whose projection is
/// approximate (a condition or non-equality match must never drop the
/// policy-level constraints; see the regression test).
std::vector<Atom> extract_atoms(const core::Policy& policy);

/// Extracts atoms from a whole tree (PolicySet targets intersected down
/// the path, PolicyReference children contribute no atoms — their
/// referents are analysed as their own roots).
std::vector<Atom> extract_atoms(const core::PolicyTreeNode& node);

struct Conflict {
  /// Indices into the atom vector the analysis ran over.
  std::size_t permit_index = 0;
  std::size_t deny_index = 0;
  /// A concrete witness (one value per constrained attribute) on which
  /// both atoms apply.
  std::map<AttributeKey, std::string> witness;
  bool approximate = false;  // involves an approximate atom
};

/// All pairwise modality conflicts among `atoms` (every opposite-effect
/// overlapping pair, regardless of root — the legacy cross-policy
/// analysis shape).
std::vector<Conflict> find_modality_conflicts(const std::vector<Atom>& atoms);

struct AnalysisResult {
  std::vector<Atom> atoms;
  std::vector<Conflict> conflicts;  // indices refer into `atoms`
};

/// Convenience: extract + analyse a set of policies.
AnalysisResult analyse(const std::vector<const core::Policy*>& policies);

// ---------------------------------------------------------------------
// The linter
// ---------------------------------------------------------------------

struct AnalyzerOptions {
  /// Returns true if a policy reference to `id` resolves. Unresolvable
  /// references are "reference-dangling" (or "reference-withdrawn" when
  /// `withdrawn` claims the id). Unset: ids among the analysed roots
  /// resolve, everything else dangles.
  std::function<bool(const std::string&)> resolves;
  /// Returns true if `id` is known but currently withdrawn — refines
  /// the dangling-reference finding for repository-backed analysis.
  std::function<bool(const std::string&)> withdrawn;
  /// Per-domain attribute vocabulary; null disables the vocabulary pass.
  const std::set<std::string, std::less<>>* vocabulary = nullptr;

  bool shadowing = true;
  bool conflicts = true;
  bool references = true;
  bool types = true;
  bool dead_code = true;

  /// Materialisation cap per pass: severity totals stay exact, but at
  /// most this many findings per pass are kept (plus one summary info
  /// finding recording the truncation). 0 = unlimited.
  std::size_t max_findings_per_pass = 10000;
};

/// One top-level tree to analyse, optionally with its compiled artifact
/// (whose compile diagnostics are folded into the report).
struct AnalysisInput {
  const core::PolicyTreeNode* node = nullptr;
  const core::CompiledPolicyTree* compiled = nullptr;
};

/// Runs every enabled pass over `roots` and returns the report.
AnalysisReport analyse_roots(const std::vector<AnalysisInput>& roots,
                             const AnalyzerOptions& options = {});

/// Analyses a store's top-level trees (with their attached compiled
/// artifacts); references resolve against the store.
AnalysisReport analyse_store(const core::PolicyStore& store,
                             const AnalyzerOptions& options = {});

/// Finding codes the shadowing/dead-code passes emit for rules (or
/// whole policies) that provably can never decide — the set the dynamic
/// soundness oracle replays (tests/analysis_oracle_test.cpp): removing
/// a flagged rule must never change any decision.
bool is_unreachability_code(const std::string& code);

// ---------------------------------------------------------------------
// Meta-policies (§3.1)
// ---------------------------------------------------------------------

/// "No subject may be permitted both A and B" — the paper's SoD example.
struct SodMetaPolicy {
  std::string name;
  std::string resource_a;
  std::string action_a;
  std::string resource_b;
  std::string action_b;
};

struct SodViolation {
  std::size_t meta_index = 0;      // into the metas vector
  std::size_t permit_a_index = 0;  // into the atoms vector
  std::size_t permit_b_index = 0;
  /// Subject constraint overlap enabling both permissions; empty set
  /// means "any subject".
  std::set<std::string> overlapping_subjects;
};

/// Finds permit-atom pairs granting both halves of a SoD constraint to an
/// overlapping subject population.
std::vector<SodViolation> check_sod(const std::vector<Atom>& atoms,
                                    const std::vector<SodMetaPolicy>& metas);

}  // namespace mdac::analysis
