// Structured findings for the static policy analyser (paper §3.1,
// "Policy Conflict Resolution").
//
// A Finding names *where* (root tree, slash-separated provenance path
// down to the rule), *what* (a stable machine-readable code plus a
// human message), *how bad* (severity — errors gate issuance when
// PapConfig::lint_gate is on, warnings/infos only inform) and, for
// conflict-shaped findings, a concrete witness assignment on which both
// sides apply. `approximate` marks findings derived through the
// over-approximating projection: they *may* be false positives, but the
// analysis never silently misses a pair (soundness direction).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/attribute.hpp"

namespace mdac::analysis {

/// A request attribute slot: (category, attribute id).
using AttributeKey = std::pair<core::Category, std::string>;

enum class Severity { kInfo, kWarning, kError };

inline const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

/// Which analyser pass produced a finding.
enum class Pass {
  kShadowing,
  kModalityConflict,
  kReference,
  kVocabulary,
  kTypes,
  kDeadCode,
};

inline const char* to_string(Pass p) {
  switch (p) {
    case Pass::kShadowing: return "shadowing";
    case Pass::kModalityConflict: return "modality-conflict";
    case Pass::kReference: return "reference";
    case Pass::kVocabulary: return "vocabulary";
    case Pass::kTypes: return "types";
    case Pass::kDeadCode: return "dead-code";
  }
  return "?";
}

struct Finding {
  Pass pass = Pass::kTypes;
  Severity severity = Severity::kWarning;
  /// Stable slug, e.g. "rule-shadowed", "modality-conflict",
  /// "reference-dangling", "unknown-function", "condition-always-false".
  std::string code;
  /// Id of the top-level tree the finding is about.
  std::string root_id;
  /// Provenance inside that tree: "set-id/policy-id/rule-id" (ids never
  /// contain '/'). Empty = the root node itself.
  std::string path;
  /// Counterpart tree/path for pairwise findings (conflicts, shadowing).
  std::string other_root_id;
  std::string other_path;
  std::string message;
  /// Concrete per-attribute witness on which both sides apply
  /// (conflict-shaped findings only).
  std::map<AttributeKey, std::string> witness;
  /// Derived through the over-approximating projection: may not be a
  /// real defect, but cannot be ruled out statically.
  bool approximate = false;
};

/// One analyser run's output. Severity totals are counted over *all*
/// findings the passes produced, including any that were suppressed past
/// `max_findings_per_pass` — ok() never lies because a cap truncated the
/// materialised list.
struct AnalysisReport {
  std::vector<Finding> findings;
  std::size_t error_count = 0;
  std::size_t warning_count = 0;
  std::size_t info_count = 0;
  /// Findings counted above but not materialised in `findings` (per-pass
  /// cap; a summary finding records the truncation explicitly).
  std::size_t suppressed = 0;

  bool ok() const { return error_count == 0; }
  std::size_t total() const { return error_count + warning_count + info_count; }
};

}  // namespace mdac::analysis
