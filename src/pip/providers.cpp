#include "pip/providers.hpp"

#include "core/attribute.hpp"

namespace mdac::pip {

std::optional<std::string> request_entity_id(const core::RequestContext& request,
                                             core::Category category,
                                             const std::string& id) {
  const core::Bag* bag = request.get(category, id);
  if (bag == nullptr) return std::nullopt;
  for (const core::AttributeValue& v : bag->values()) {
    if (v.is_string()) return v.as_string();
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------
// DirectoryProvider
// ---------------------------------------------------------------------

void DirectoryProvider::add_subject_attribute(const std::string& subject_id,
                                              const std::string& attribute_id,
                                              core::AttributeValue value) {
  subjects_[subject_id][attribute_id].add(std::move(value));
}

void DirectoryProvider::add_resource_attribute(const std::string& resource_id,
                                               const std::string& attribute_id,
                                               core::AttributeValue value) {
  resources_[resource_id][attribute_id].add(std::move(value));
}

std::optional<core::Bag> DirectoryProvider::resolve(
    core::Category category, const std::string& id,
    const core::RequestContext& request) {
  ++lookups_;
  const std::map<std::string, std::map<std::string, core::Bag>>* table = nullptr;
  std::optional<std::string> entity;
  if (category == core::Category::kSubject) {
    table = &subjects_;
    entity = request_entity_id(request, core::Category::kSubject,
                               core::attrs::kSubjectId);
  } else if (category == core::Category::kResource) {
    table = &resources_;
    entity = request_entity_id(request, core::Category::kResource,
                               core::attrs::kResourceId);
  } else {
    return std::nullopt;
  }
  if (!entity) return std::nullopt;
  const auto entry = table->find(*entity);
  if (entry == table->end()) return std::nullopt;
  const auto attr = entry->second.find(id);
  if (attr == entry->second.end()) return std::nullopt;
  return attr->second;
}

// ---------------------------------------------------------------------
// EnvironmentProvider
// ---------------------------------------------------------------------

void EnvironmentProvider::set_fact(const std::string& attribute_id,
                                   core::AttributeValue value) {
  facts_[attribute_id] = core::Bag(std::move(value));
}

std::optional<core::Bag> EnvironmentProvider::resolve(
    core::Category category, const std::string& id, const core::RequestContext&) {
  if (category != core::Category::kEnvironment) return std::nullopt;
  if (id == core::attrs::kCurrentTime) {
    return core::Bag(core::AttributeValue(core::TimeValue{clock_.now()}));
  }
  const auto it = facts_.find(id);
  if (it == facts_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------
// CompositeResolver
// ---------------------------------------------------------------------

std::optional<core::Bag> CompositeResolver::resolve(
    core::Category category, const std::string& id,
    const core::RequestContext& request) {
  for (core::AttributeResolver* provider : providers_) {
    if (auto bag = provider->resolve(category, id, request)) return bag;
  }
  return std::nullopt;
}

}  // namespace mdac::pip
