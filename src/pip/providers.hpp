// Policy Information Point (paper §2.2, component 4).
//
// Attribute providers supply what the PEP did not put in the request:
// subject profiles from a directory (the LDAP/IdP stand-in), resource
// metadata, environment facts such as the current time, and access
// history. A CompositeResolver chains providers; the PDP sees one
// AttributeResolver.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "core/evaluation.hpp"

namespace mdac::pip {

/// Directory of subject and resource attributes, keyed by the request's
/// subject-id / resource-id. The in-memory stand-in for an LDAP or IdP
/// profile store.
class DirectoryProvider final : public core::AttributeResolver {
 public:
  void add_subject_attribute(const std::string& subject_id,
                             const std::string& attribute_id,
                             core::AttributeValue value);
  void add_resource_attribute(const std::string& resource_id,
                              const std::string& attribute_id,
                              core::AttributeValue value);

  std::optional<core::Bag> resolve(core::Category category, const std::string& id,
                                   const core::RequestContext& request) override;

  std::size_t lookup_count() const { return lookups_; }

 private:
  // entity id -> attribute id -> bag
  std::map<std::string, std::map<std::string, core::Bag>> subjects_;
  std::map<std::string, std::map<std::string, core::Bag>> resources_;
  std::size_t lookups_ = 0;
};

/// Supplies environment attributes: `current-time` from the injected clock
/// plus any fixed facts registered by the deployment.
class EnvironmentProvider final : public core::AttributeResolver {
 public:
  explicit EnvironmentProvider(const common::Clock& clock) : clock_(clock) {}

  void set_fact(const std::string& attribute_id, core::AttributeValue value);

  std::optional<core::Bag> resolve(core::Category category, const std::string& id,
                                   const core::RequestContext& request) override;

 private:
  const common::Clock& clock_;
  std::map<std::string, core::Bag> facts_;
};

/// Chains providers; the first one that knows the attribute wins.
class CompositeResolver final : public core::AttributeResolver {
 public:
  /// Providers are not owned; they must outlive the resolver.
  void add(core::AttributeResolver* provider) { providers_.push_back(provider); }

  std::optional<core::Bag> resolve(core::Category category, const std::string& id,
                                   const core::RequestContext& request) override;

  std::size_t provider_count() const { return providers_.size(); }

 private:
  std::vector<core::AttributeResolver*> providers_;
};

/// Extracts the first string value of (category, id) from a request —
/// shared helper for providers that key off subject-id / resource-id.
std::optional<std::string> request_entity_id(const core::RequestContext& request,
                                             core::Category category,
                                             const std::string& id);

}  // namespace mdac::pip
