// Access-history tracking, exposed to policies as attributes.
//
// The paper (§2.2, [29]) notes PDPs may consult "a possible history of
// previous access requests" — this is the substrate for dynamic
// separation-of-duty and Chinese-Wall meta-policies (§3.1): a policy can
// reference the `accessed-resources` / `accessed-companies` bags of the
// requesting subject.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "core/evaluation.hpp"

namespace mdac::pip {

struct AccessRecord {
  std::string subject;
  std::string resource;
  std::string action;
  common::TimePoint at = 0;
};

/// Append-only access log with per-subject projections.
class AccessHistory {
 public:
  void record(const std::string& subject, const std::string& resource,
              const std::string& action, common::TimePoint at);

  const std::vector<AccessRecord>& all() const { return records_; }
  std::vector<AccessRecord> for_subject(const std::string& subject) const;

  /// Distinct resources this subject has touched.
  std::vector<std::string> resources_touched(const std::string& subject) const;

  std::size_t size() const { return records_.size(); }
  void clear();

 private:
  std::vector<AccessRecord> records_;
  std::map<std::string, std::vector<std::size_t>> by_subject_;
};

/// Exposes history as subject attributes:
///   accessed-resources : bag of resource ids the subject touched
///   access-count       : integer
class HistoryProvider final : public core::AttributeResolver {
 public:
  explicit HistoryProvider(const AccessHistory& history) : history_(history) {}

  std::optional<core::Bag> resolve(core::Category category, const std::string& id,
                                   const core::RequestContext& request) override;

  static constexpr const char* kAccessedResources = "accessed-resources";
  static constexpr const char* kAccessCount = "access-count";

 private:
  const AccessHistory& history_;
};

}  // namespace mdac::pip
