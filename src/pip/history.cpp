#include "pip/history.hpp"

#include <algorithm>

#include "pip/providers.hpp"

namespace mdac::pip {

void AccessHistory::record(const std::string& subject, const std::string& resource,
                           const std::string& action, common::TimePoint at) {
  by_subject_[subject].push_back(records_.size());
  records_.push_back(AccessRecord{subject, resource, action, at});
}

std::vector<AccessRecord> AccessHistory::for_subject(const std::string& subject) const {
  std::vector<AccessRecord> out;
  const auto it = by_subject_.find(subject);
  if (it == by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t i : it->second) out.push_back(records_[i]);
  return out;
}

std::vector<std::string> AccessHistory::resources_touched(
    const std::string& subject) const {
  std::vector<std::string> out;
  for (const AccessRecord& r : for_subject(subject)) {
    if (std::find(out.begin(), out.end(), r.resource) == out.end()) {
      out.push_back(r.resource);
    }
  }
  return out;
}

void AccessHistory::clear() {
  records_.clear();
  by_subject_.clear();
}

std::optional<core::Bag> HistoryProvider::resolve(
    core::Category category, const std::string& id,
    const core::RequestContext& request) {
  if (category != core::Category::kSubject) return std::nullopt;
  const auto subject = request_entity_id(request, core::Category::kSubject,
                                         core::attrs::kSubjectId);
  if (!subject) return std::nullopt;

  if (id == kAccessedResources) {
    core::Bag bag;
    for (const std::string& res : history_.resources_touched(*subject)) {
      bag.add(core::AttributeValue(res));
    }
    return bag;
  }
  if (id == kAccessCount) {
    return core::Bag(core::AttributeValue(
        static_cast<std::int64_t>(history_.for_subject(*subject).size())));
  }
  return std::nullopt;
}

}  // namespace mdac::pip
