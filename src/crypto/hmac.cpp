#include "crypto/hmac.hpp"

namespace mdac::crypto {

Digest hmac_sha256(const common::Bytes& key, const common::Bytes& message) {
  constexpr std::size_t kBlockSize = 64;

  common::Bytes k = key;
  if (k.size() > kBlockSize) {
    const Digest d = Sha256::hash(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlockSize, 0);

  common::Bytes ipad(kBlockSize), opad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Digest hmac_sha256(std::string_view key, std::string_view message) {
  return hmac_sha256(common::to_bytes(key), common::to_bytes(message));
}

}  // namespace mdac::crypto
