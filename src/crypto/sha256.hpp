// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for message digests in signatures, the CTR keystream cipher, and
// content fingerprints in the policy repository's audit log.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace mdac::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  void update(const std::uint8_t* data, std::size_t len);
  void update(const common::Bytes& data);
  void update(std::string_view data);

  /// Finalises and returns the digest. The hasher must not be reused after.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(const common::Bytes& data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

common::Bytes digest_to_bytes(const Digest& d);
std::string digest_hex(const Digest& d);

}  // namespace mdac::crypto
