#include "crypto/keys.hpp"

#include "crypto/hmac.hpp"

namespace mdac::crypto {

namespace {

// Process-wide verification-material registry (simulates public-key math;
// see the header comment). Guarded for thread safety.
class KeyDirectory {
 public:
  static KeyDirectory& instance() {
    static KeyDirectory dir;
    return dir;
  }

  void register_key(const std::string& key_id, const common::Bytes& secret) {
    std::lock_guard<std::mutex> lock(mutex_);
    material_[key_id] = secret;
  }

  bool verify(std::string_view message, const Signature& sig) const {
    common::Bytes secret;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = material_.find(sig.key_id);
      if (it == material_.end()) return false;
      secret = it->second;
    }
    const Digest expected = hmac_sha256(secret, common::to_bytes(message));
    if (sig.tag.size() != expected.size()) return false;
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      diff |= static_cast<std::uint8_t>(sig.tag[i] ^ expected[i]);
    }
    return diff == 0;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, common::Bytes> material_;
};

}  // namespace

KeyPair KeyPair::generate(std::string_view seed) {
  // Secret = SHA256("mdac-key" || seed); fingerprint = SHA256(secret).
  Sha256 h;
  h.update(std::string_view("mdac-key:"));
  h.update(seed);
  const Digest secret_digest = h.finish();
  common::Bytes secret(secret_digest.begin(), secret_digest.end());

  const Digest fp = Sha256::hash(secret);
  PublicKey pub{digest_hex(fp).substr(0, 32)};
  KeyDirectory::instance().register_key(pub.key_id, secret);
  return KeyPair(std::move(pub), std::move(secret));
}

Signature sign(const KeyPair& key, std::string_view message) {
  const Digest tag = hmac_sha256(key.secret(), common::to_bytes(message));
  return Signature{key.public_key().key_id,
                   common::Bytes(tag.begin(), tag.end())};
}

bool verify_signature(std::string_view message, const Signature& sig) {
  return KeyDirectory::instance().verify(message, sig);
}

}  // namespace mdac::crypto
