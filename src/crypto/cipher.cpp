#include "crypto/cipher.hpp"

#include "crypto/sha256.hpp"

namespace mdac::crypto {

namespace {

// Produces the i-th 32-byte keystream block.
Digest keystream_block(const common::Bytes& key, const common::Bytes& nonce,
                       std::uint64_t counter) {
  Sha256 h;
  h.update(key);
  h.update(nonce);
  std::uint8_t ctr_be[8];
  for (int i = 0; i < 8; ++i) {
    ctr_be[i] = static_cast<std::uint8_t>((counter >> (56 - i * 8)) & 0xff);
  }
  h.update(ctr_be, 8);
  return h.finish();
}

common::Bytes xor_keystream(const common::Bytes& key, const common::Bytes& nonce,
                            const common::Bytes& input) {
  common::Bytes out(input.size());
  std::uint64_t counter = 0;
  std::size_t offset = 0;
  while (offset < input.size()) {
    const Digest block = keystream_block(key, nonce, counter++);
    const std::size_t take = std::min(block.size(), input.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      out[offset + i] = static_cast<std::uint8_t>(input[offset + i] ^ block[i]);
    }
    offset += take;
  }
  return out;
}

}  // namespace

EncryptedPayload ctr_encrypt(const common::Bytes& key, const common::Bytes& nonce,
                             const common::Bytes& plaintext) {
  return EncryptedPayload{nonce, xor_keystream(key, nonce, plaintext)};
}

common::Bytes ctr_decrypt(const common::Bytes& key, const EncryptedPayload& payload) {
  return xor_keystream(key, payload.nonce, payload.ciphertext);
}

}  // namespace mdac::crypto
