#include "crypto/certificate.hpp"

#include <sstream>

namespace mdac::crypto {

std::string Certificate::to_signed_payload() const {
  std::ostringstream os;
  os << "cert|" << subject << '|' << issuer << '|' << subject_key_id << '|'
     << issuer_key_id << '|' << not_before << '|' << not_after << '|' << serial;
  return os.str();
}

const char* to_string(ChainStatus s) {
  switch (s) {
    case ChainStatus::kValid: return "valid";
    case ChainStatus::kExpired: return "expired";
    case ChainStatus::kNotYetValid: return "not-yet-valid";
    case ChainStatus::kRevoked: return "revoked";
    case ChainStatus::kBadSignature: return "bad-signature";
    case ChainStatus::kUntrustedAnchor: return "untrusted-anchor";
    case ChainStatus::kBrokenChain: return "broken-chain";
  }
  return "?";
}

CertificateAuthority::CertificateAuthority(std::string name, std::string_view key_seed)
    : name_(std::move(name)), key_(KeyPair::generate(key_seed)) {}

Certificate CertificateAuthority::root_certificate(common::TimePoint not_before,
                                                   common::TimePoint not_after) const {
  Certificate cert;
  cert.subject = name_;
  cert.issuer = name_;
  cert.subject_key_id = key_.public_key().key_id;
  cert.issuer_key_id = key_.public_key().key_id;
  cert.not_before = not_before;
  cert.not_after = not_after;
  cert.serial = 0;
  cert.signature = sign(key_, cert.to_signed_payload());
  return cert;
}

Certificate CertificateAuthority::issue(const std::string& subject,
                                        const PublicKey& subject_key,
                                        common::TimePoint not_before,
                                        common::TimePoint not_after) {
  Certificate cert;
  cert.subject = subject;
  cert.issuer = name_;
  cert.subject_key_id = subject_key.key_id;
  cert.issuer_key_id = key_.public_key().key_id;
  cert.not_before = not_before;
  cert.not_after = not_after;
  cert.serial = next_serial_++;
  cert.signature = sign(key_, cert.to_signed_payload());
  return cert;
}

Certificate CertificateAuthority::issue_ca(const CertificateAuthority& child,
                                           common::TimePoint not_before,
                                           common::TimePoint not_after) {
  return issue(child.name(), child.key().public_key(), not_before, not_after);
}

ChainStatus validate_chain(const std::vector<Certificate>& chain,
                           const TrustStore& anchors,
                           const std::set<std::uint64_t>& revoked,
                           common::TimePoint now) {
  if (chain.empty()) return ChainStatus::kBrokenChain;

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    if (now < cert.not_before) return ChainStatus::kNotYetValid;
    if (now > cert.not_after) return ChainStatus::kExpired;
    if (cert.serial != 0 && revoked.count(cert.serial) > 0) {
      return ChainStatus::kRevoked;
    }
    // Structural linkage: each certificate must name the next one as its
    // issuer, and the final certificate must be self-issued (a root).
    if (i + 1 < chain.size()) {
      const Certificate& parent = chain[i + 1];
      if (cert.issuer_key_id != parent.subject_key_id ||
          cert.issuer != parent.subject) {
        return ChainStatus::kBrokenChain;
      }
    } else if (cert.issuer_key_id != cert.subject_key_id) {
      return ChainStatus::kBrokenChain;
    }
    // Cryptographic validity of every link ("the math").
    if (!verify_signature(cert.to_signed_payload(), cert.signature)) {
      return ChainStatus::kBadSignature;
    }
    if (cert.signature.key_id != cert.issuer_key_id) {
      return ChainStatus::kBadSignature;
    }
  }
  // Trust decision: the root's key must be one of our anchors.
  if (!anchors.is_trusted(chain.back().subject_key_id)) {
    return ChainStatus::kUntrustedAnchor;
  }
  return ChainStatus::kValid;
}

}  // namespace mdac::crypto
