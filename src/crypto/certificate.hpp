// X.509-flavoured certificates and chains.
//
// The paper's trust model (§3.1, "Heterogeneity and Distribution of
// Subjects") rests on PKI: identity providers and capability services are
// trusted because their certificates chain to a trust anchor. This module
// provides subject certificates, CA issuance, chain building and
// validation (expiry, revocation, signature, anchor membership).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "crypto/keys.hpp"

namespace mdac::crypto {

struct Certificate {
  std::string subject;          // distinguished name, e.g. "cn=idp,o=hospital"
  std::string issuer;           // issuer DN
  std::string subject_key_id;   // fingerprint of the subject's public key
  std::string issuer_key_id;    // fingerprint of the key that signed this
  common::TimePoint not_before = 0;
  common::TimePoint not_after = 0;
  std::uint64_t serial = 0;
  Signature signature;  // over to_signed_payload()

  /// Canonical byte string covered by the signature.
  std::string to_signed_payload() const;
};

/// Result of validating a chain.
enum class ChainStatus {
  kValid,
  kExpired,
  kNotYetValid,
  kRevoked,
  kBadSignature,
  kUntrustedAnchor,
  kBrokenChain,
};

const char* to_string(ChainStatus s);

/// A certificate authority: holds a signing key and issues certificates.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, std::string_view key_seed);

  const std::string& name() const { return name_; }
  const KeyPair& key() const { return key_; }

  /// Self-signed root certificate for this CA.
  Certificate root_certificate(common::TimePoint not_before,
                               common::TimePoint not_after) const;

  /// Issues a certificate binding `subject` to `subject_key`.
  Certificate issue(const std::string& subject, const PublicKey& subject_key,
                    common::TimePoint not_before, common::TimePoint not_after);

  /// Issues an intermediate-CA certificate to another CA.
  Certificate issue_ca(const CertificateAuthority& child,
                       common::TimePoint not_before, common::TimePoint not_after);

  void revoke(std::uint64_t serial) { revoked_.insert(serial); }
  bool is_revoked(std::uint64_t serial) const { return revoked_.count(serial) > 0; }

 private:
  std::string name_;
  KeyPair key_;
  std::uint64_t next_serial_ = 1;
  std::set<std::uint64_t> revoked_;
};

/// Validates `chain` (leaf first, root last) at time `now`.
///
/// `anchors` holds the key material of trusted roots; `revocation` is the
/// union of revoked serials published by the involved CAs (a CRL stand-in).
ChainStatus validate_chain(const std::vector<Certificate>& chain,
                           const TrustStore& anchors,
                           const std::set<std::uint64_t>& revoked,
                           common::TimePoint now);

}  // namespace mdac::crypto
