// HMAC-SHA-256 (RFC 2104). The primitive behind SimSigner signatures and
// derived keys for the CTR cipher.
#pragma once

#include <string_view>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace mdac::crypto {

Digest hmac_sha256(const common::Bytes& key, const common::Bytes& message);
Digest hmac_sha256(std::string_view key, std::string_view message);

}  // namespace mdac::crypto
