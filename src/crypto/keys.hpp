// Key pairs, digital signatures and the trust store.
//
// SUBSTITUTION (see DESIGN.md): we do not ship a bignum RSA/ECDSA.
// A KeyPair holds an opaque 32-byte secret; signing is HMAC-SHA-256 over
// the message with that secret. In a real PKI *anyone* can verify any
// signature given the public key — that mathematical fact is simulated by
// a process-wide KeyDirectory which records verification material when a
// key pair is generated. Verification through the directory is therefore
// "the math"; it confers no trust.
//
// Trust is policy and lives in TrustStore: a set of key ids a component
// has chosen to trust (its anchors). The failure modes are preserved
// exactly: tampered message -> verify fails; unknown key -> verify fails;
// valid signature by an untrusted key -> TrustStore rejects it.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace mdac::crypto {

/// Public half of a key pair: an identifier derived from the secret.
struct PublicKey {
  std::string key_id;  // hex fingerprint

  bool operator==(const PublicKey&) const = default;
  auto operator<=>(const PublicKey&) const = default;
};

/// Full key pair. Treat `secret` as private key material.
class KeyPair {
 public:
  /// Deterministically derives a key pair from a seed string (useful for
  /// reproducible experiments); the fingerprint is SHA256(secret).
  /// Registers the verification material in the process KeyDirectory.
  static KeyPair generate(std::string_view seed);

  const PublicKey& public_key() const { return public_key_; }
  const common::Bytes& secret() const { return secret_; }

 private:
  KeyPair(PublicKey pub, common::Bytes secret)
      : public_key_(std::move(pub)), secret_(std::move(secret)) {}

  PublicKey public_key_;
  common::Bytes secret_;
};

/// A detached signature: the signer's key id plus the tag bytes.
struct Signature {
  std::string key_id;
  common::Bytes tag;

  bool operator==(const Signature&) const = default;
};

/// Signs a message with a private key.
Signature sign(const KeyPair& key, std::string_view message);

/// "The math": true iff `sig` is a valid signature over `message` by the
/// key it names. Confers no trust in the signer.
bool verify_signature(std::string_view message, const Signature& sig);

/// Policy layer: the set of public keys a component trusts.
class TrustStore {
 public:
  void add_trusted_key(const PublicKey& key) { trusted_.insert(key.key_id); }
  void add_trusted_key(const KeyPair& key) { trusted_.insert(key.public_key().key_id); }
  void remove_trusted_key(const std::string& key_id) { trusted_.erase(key_id); }
  bool is_trusted(const std::string& key_id) const { return trusted_.count(key_id) > 0; }

  /// True iff the signature is cryptographically valid AND by a trusted key.
  bool verify(std::string_view message, const Signature& sig) const {
    return is_trusted(sig.key_id) && verify_signature(message, sig);
  }

  std::size_t size() const { return trusted_.size(); }

 private:
  std::set<std::string> trusted_;
};

}  // namespace mdac::crypto
