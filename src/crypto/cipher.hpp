// Symmetric encryption for message confidentiality (the XML-Encryption
// stand-in, see DESIGN.md substitutions).
//
// CTR-mode keystream built from SHA-256: block_i = SHA256(key || nonce || i).
// Real cipher structure with real avalanche behaviour; not intended to be
// a vetted primitive, but it exercises exactly the code paths (key
// distribution, nonce handling, size overhead) the paper's security
// challenge discusses.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace mdac::crypto {

struct EncryptedPayload {
  common::Bytes nonce;       // 16 bytes
  common::Bytes ciphertext;  // same length as plaintext
};

/// Encrypts with a fresh caller-supplied nonce (16 bytes recommended).
EncryptedPayload ctr_encrypt(const common::Bytes& key, const common::Bytes& nonce,
                             const common::Bytes& plaintext);

/// Decrypts; CTR is symmetric so this is encryption with the same keystream.
common::Bytes ctr_decrypt(const common::Bytes& key, const EncryptedPayload& payload);

}  // namespace mdac::crypto
