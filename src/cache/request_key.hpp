// 128-bit request fingerprints — the decision-cache key.
//
// `canonical_request_key` (decision_cache.hpp) materialises a canonical
// *string* per call: one ostringstream, one vector of lexical forms and a
// sort, every time a PEP touches the cache. At wire rate that string
// build dominates the cached-decision fast path (measured by the
// `request_key_*` rows in BENCH_pdp.json). The fingerprint below replaces
// it: an incremental 128-bit hash over the request's entries computed
// with zero heap allocations.
//
// Canonicalisation properties (matching the string key's):
//   * semantically equal requests — attributes and bag values added in
//     any order — produce equal fingerprints (request storage is sorted
//     by (category, symbol); bag contents are combined commutatively);
//   * the value's data type is part of the hash, so "1" != int(1);
//   * distinct requests collide only with ~2^-128 probability.
//
// The fingerprint hashes interner *symbols*, not attribute-name bytes,
// so it is only stable within one process — exactly the lifetime of the
// in-memory DecisionCache it keys. Anything persisted or sent on the
// wire must use the canonical string form instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/request.hpp"

namespace mdac::cache {

struct RequestKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const RequestKey&) const = default;
};

/// Computes the fingerprint of a request. Allocation-free.
RequestKey fingerprint(const core::RequestContext& request);

}  // namespace mdac::cache

template <>
struct std::hash<mdac::cache::RequestKey> {
  std::size_t operator()(const mdac::cache::RequestKey& k) const noexcept {
    // lo/hi are already well-mixed; fold them so both halves matter.
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9E3779B97F4A7C15ULL));
  }
};
