// Decision caching at the enforcement point (paper §3.2, "Communication
// Performance", citing Woo & Lam's caching proposal [61]).
//
// The cache key is the request's 128-bit fingerprint (request_key.hpp);
// the value is the full decision including obligations. Storage is an
// N-way sharded TTL+LRU cache (sharded_cache.hpp) so a multi-threaded
// PEP scales across cores. The paper's warning — stale entries cause
// false permits / false denies — is exactly what experiment C1
// quantifies, using `StalenessProbe` to compare cached answers against a
// fresh oracle.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "cache/request_key.hpp"
#include "cache/sharded_cache.hpp"
#include "core/decision.hpp"
#include "core/request.hpp"

namespace mdac::cache {

/// Canonical string form of a request (deterministic: attributes are
/// stored sorted). Two semantically equal requests produce equal keys.
/// Kept for serialisation/diagnostics; the cache itself keys on the
/// allocation-free `fingerprint()`.
std::string canonical_request_key(const core::RequestContext& request);

class DecisionCache {
 public:
  /// `capacity` is the total across all shards (rounded up to a multiple
  /// of the shard count, see ShardedTtlLruCache); `shards` is rounded up
  /// to a power of two.
  DecisionCache(const common::Clock& clock, common::Duration ttl,
                std::size_t capacity = 4096, std::size_t shards = 8)
      : cache_(clock, ttl, capacity, shards) {}

  std::optional<core::Decision> lookup(const core::RequestContext& request) {
    return lookup(fingerprint(request));
  }

  void insert(const core::RequestContext& request, const core::Decision& decision) {
    insert(fingerprint(request), decision);
  }

  /// Key-level overloads so callers probing and then filling (the
  /// CachingEvaluator / PEP shape) fingerprint the request only once.
  std::optional<core::Decision> lookup(const RequestKey& key) {
    return cache_.lookup(key);
  }

  void insert(const RequestKey& key, const core::Decision& decision) {
    cache_.insert(key, decision);
  }

  /// Policy-change notification: drop everything.
  void invalidate_all() { cache_.invalidate_all(); }

  /// Targeted invalidation (e.g. a revoked subject).
  bool invalidate(const core::RequestContext& request) {
    return cache_.invalidate(fingerprint(request));
  }

  /// Aggregated over all shards; a snapshot, not a live reference.
  CacheStats stats() const { return cache_.stats(); }
  std::size_t size() const { return cache_.size(); }
  std::size_t shard_count() const { return cache_.shard_count(); }

 private:
  ShardedTtlLruCache<RequestKey, core::Decision> cache_;
};

/// Wraps an evaluation function with the cache: the shape a PEP uses.
class CachingEvaluator {
 public:
  using Evaluate = std::function<core::Decision(const core::RequestContext&)>;

  CachingEvaluator(DecisionCache& cache, Evaluate evaluate)
      : cache_(cache), evaluate_(std::move(evaluate)) {}

  core::Decision operator()(const core::RequestContext& request) {
    const RequestKey key = fingerprint(request);
    if (auto hit = cache_.lookup(key)) return *hit;
    core::Decision d = evaluate_(request);
    // Only definitive decisions are cacheable; Indeterminate may be a
    // transient infrastructure failure and NotApplicable may flip when
    // new policies arrive (conservative choice).
    if (d.is_permit() || d.is_deny()) cache_.insert(key, d);
    return d;
  }

 private:
  DecisionCache& cache_;
  Evaluate evaluate_;
};

/// Compares cached decisions against a fresh oracle, counting the
/// paper's two failure modes of caching.
struct StalenessProbe {
  std::size_t false_permits = 0;  // cache said permit, oracle says deny/NA
  std::size_t false_denies = 0;   // cache said deny, oracle says permit
  std::size_t agreements = 0;

  void observe(const core::Decision& cached, const core::Decision& fresh);
};

}  // namespace mdac::cache
