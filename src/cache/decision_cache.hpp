// Decision caching at the enforcement point (paper §3.2, "Communication
// Performance", citing Woo & Lam's caching proposal [61]).
//
// The cache key is the request's 128-bit fingerprint (request_key.hpp)
// plus the snapshot version the decision was computed under — so
// republication implicitly invalidates, and `evict_older_than` reclaims
// entries of withdrawn versions. Two storage modes behind one facade:
//
//   * kMutexSharded — the original N-way sharded TTL+LRU cache
//     (sharded_cache.hpp). Exact LRU and TTL, one mutex per shard. This
//     is what a multi-threaded PEP uses (CachingEvaluator stays here).
//   * kTwoLevel — the shared L2 of the engine's two-level design: a
//     seqlock slot table (seqlock_cache.hpp) whose hit path is
//     lock-free, optionally split into independent placement *groups*
//     (one per NUMA-ish worker group; a decision cached in one group is
//     invisible to the others — duplication across groups is the point,
//     it keeps each group's slots local to the workers that hit them).
//     The per-worker L1 in front of it is `WorkerL1Cache` below, owned
//     by the engine's worker state, not by this facade.
//
// The paper's warning — stale entries cause false permits / false denies
// — is exactly what experiment C1 quantifies, using `StalenessProbe` to
// compare cached answers against a fresh oracle.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/request_key.hpp"
#include "cache/seqlock_cache.hpp"
#include "cache/sharded_cache.hpp"
#include "core/decision.hpp"
#include "core/request.hpp"

namespace mdac::obs {
class Registry;
}

namespace mdac::cache {

/// Canonical string form of a request (deterministic: attributes are
/// stored sorted). Two semantically equal requests produce equal keys.
/// Kept for serialisation/diagnostics; the cache itself keys on the
/// allocation-free `fingerprint()`.
std::string canonical_request_key(const core::RequestContext& request);

/// (fingerprint, snapshot version) — the storage key for both modes.
struct VersionedKey {
  RequestKey key;
  std::uint64_t version = 0;

  bool operator==(const VersionedKey&) const = default;
};

struct VersionedKeyHash {
  std::size_t operator()(const VersionedKey& k) const noexcept {
    return static_cast<std::size_t>(k.key.lo ^ (k.key.hi * 0x9E3779B97F4A7C15ULL) ^
                                    ((k.version + 1) * 0xFF51AFD7ED558CCDULL));
  }
};

class DecisionCache {
 public:
  enum class Mode { kMutexSharded, kTwoLevel };

  struct TwoLevelConfig {
    std::size_t capacity = 4096;  // total slots across all groups
    std::size_t groups = 1;       // independent seqlock instances
  };

  /// Mutex-sharded mode (the PEP/CachingEvaluator default). `capacity`
  /// is the total across all shards (rounded up to a multiple of the
  /// shard count, see ShardedTtlLruCache); `shards` is rounded up to a
  /// power of two.
  DecisionCache(const common::Clock& clock, common::Duration ttl,
                std::size_t capacity = 4096, std::size_t shards = 8)
      : mode_(Mode::kMutexSharded),
        sharded_(std::make_unique<ShardedStore>(clock, ttl, capacity, shards)) {}

  /// Two-level mode (the engine's shared L2). No TTL: version-carrying
  /// keys plus the version sweep make time-based expiry redundant, and
  /// the slot table's capacity bounds memory.
  explicit DecisionCache(const TwoLevelConfig& config) : mode_(Mode::kTwoLevel) {
    const std::size_t groups = config.groups == 0 ? 1 : config.groups;
    const std::size_t per_group = (config.capacity + groups - 1) / groups;
    groups_.reserve(groups);
    for (std::size_t i = 0; i < groups; ++i) {
      groups_.push_back(std::make_unique<SeqlockDecisionCache>(per_group));
    }
  }

  // ---- unversioned API (PEP-side callers; stored under version 0) ----

  std::optional<core::Decision> lookup(const core::RequestContext& request) {
    return lookup(fingerprint(request), 0);
  }

  void insert(const core::RequestContext& request, const core::Decision& decision) {
    insert(fingerprint(request), 0, decision);
  }

  /// Key-level overloads so callers probing and then filling (the
  /// CachingEvaluator / PEP shape) fingerprint the request only once.
  std::optional<core::Decision> lookup(const RequestKey& key) { return lookup(key, 0); }

  void insert(const RequestKey& key, const core::Decision& decision) {
    insert(key, 0, decision);
  }

  // ---- versioned API (the engine) ----

  /// `group` selects the placement group in two-level mode (ignored —
  /// there is one store — in mutex mode). In two-level mode seqlock
  /// read retries are *added* to `*l2_retries` when non-null.
  std::optional<core::Decision> lookup(const RequestKey& key, std::uint64_t version,
                                       std::size_t group = 0,
                                       std::uint64_t* l2_retries = nullptr) {
    if (mode_ == Mode::kMutexSharded) {
      return sharded_->lookup(VersionedKey{key, version});
    }
    core::Decision d;
    if (group_at(group).lookup(key, version, d, l2_retries)) return d;
    return std::nullopt;
  }

  void insert(const RequestKey& key, std::uint64_t version, const core::Decision& decision,
              std::size_t group = 0) {
    if (mode_ == Mode::kMutexSharded) {
      sharded_->insert(VersionedKey{key, version}, decision);
      return;
    }
    group_at(group).insert(key, version, decision);
  }

  /// Version sweep: drops every entry cached under a snapshot version
  /// < `version` (all groups in two-level mode). Returns the number of
  /// entries reclaimed. The engine calls this on snapshot adoption with
  /// the minimum version any worker still serves.
  std::size_t evict_older_than(std::uint64_t version) {
    if (mode_ == Mode::kMutexSharded) {
      return sharded_->evict_if(
          [version](const VersionedKey& k) { return k.version < version; });
    }
    std::size_t removed = 0;
    for (auto& g : groups_) removed += g->evict_older_than(version);
    return removed;
  }

  /// Policy-change notification: drop everything.
  void invalidate_all() {
    if (mode_ == Mode::kMutexSharded) {
      sharded_->invalidate_all();
      return;
    }
    for (auto& g : groups_) g->clear();
  }

  /// Targeted invalidation (e.g. a revoked subject). Mutex mode only —
  /// two-level entries are version-scoped and swept wholesale; returns
  /// false there.
  bool invalidate(const core::RequestContext& request) {
    if (mode_ != Mode::kMutexSharded) return false;
    return sharded_->invalidate(VersionedKey{fingerprint(request), 0});
  }

  /// Aggregated counters, a snapshot, not a live reference. In mutex
  /// mode these are the exact per-shard hit/miss counters. In two-level
  /// mode only *writer-side* counters exist (evictions, invalidations =
  /// version sweeps + clears) — the lock-free read path deliberately
  /// counts nothing shared; hits/misses live in the engine's per-worker
  /// metrics.
  CacheStats stats() const {
    if (mode_ == Mode::kMutexSharded) return sharded_->stats();
    CacheStats s;
    const SeqlockCacheStats sl = seqlock_stats();
    s.evictions = sl.evictions;
    s.invalidations = sl.version_evictions + sl.invalidations;
    return s;
  }

  /// Two-level mode writer-side counters summed over groups (all zero in
  /// mutex mode).
  SeqlockCacheStats seqlock_stats() const {
    SeqlockCacheStats total;
    for (const auto& g : groups_) total += g->stats();
    return total;
  }

  std::size_t size() const {
    if (mode_ == Mode::kMutexSharded) return sharded_->size();
    std::size_t total = 0;
    for (const auto& g : groups_) total += g->size();
    return total;
  }

  std::size_t shard_count() const {
    return mode_ == Mode::kMutexSharded ? sharded_->shard_count() : 0;
  }

  Mode mode() const { return mode_; }
  std::size_t group_count() const { return groups_.size(); }

  /// Registers the cache's counters (mdac_cache_*: store hits/misses in
  /// mutex mode, seqlock writer-side counters in two-level mode, size)
  /// with a metrics registry; returns the collector id. The cache must
  /// outlive the registry or be unregistered first.
  std::uint64_t register_metrics(obs::Registry& registry) const;

 private:
  using ShardedStore = ShardedTtlLruCache<VersionedKey, core::Decision, VersionedKeyHash>;

  SeqlockDecisionCache& group_at(std::size_t group) {
    return *groups_[group < groups_.size() ? group : 0];
  }

  Mode mode_;
  std::unique_ptr<ShardedStore> sharded_;               // kMutexSharded
  std::vector<std::unique_ptr<SeqlockDecisionCache>> groups_;  // kTwoLevel
};

/// The per-worker L1: a bounded LRU with ZERO synchronisation. Each
/// engine worker owns one, allocated on the worker thread itself at
/// startup (first-touch places it on the worker's NUMA node). All
/// entries are keyed under the single snapshot version the worker has
/// adopted; `flush()` — called on adoption — drops them wholesale, which
/// is both the correctness story (a worker can never L1-hit a decision
/// from a version it no longer serves) and the memory bound (no dead
/// versions linger). Hits splice within the LRU list: no allocation on
/// the hot path.
class WorkerL1Cache {
 public:
  explicit WorkerL1Cache(std::size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the cached decision or nullptr. A `version` different from
  /// the one the entries were cached under misses (callers flush on
  /// adoption, so in the engine this only happens transiently).
  const core::Decision* lookup(const RequestKey& key, std::uint64_t version) {
    if (version != version_) return nullptr;
    const auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
  }

  void insert(const RequestKey& key, std::uint64_t version, core::Decision decision) {
    if (version != version_) flush_to(version);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(decision);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (map_.size() >= capacity_ && !lru_.empty()) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
    lru_.emplace_front(key, std::move(decision));
    map_.emplace(key, lru_.begin());
  }

  /// Drops everything (snapshot adoption).
  void flush() { flush_to(version_); }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  void flush_to(std::uint64_t version) {
    if (!map_.empty()) ++flushes_;
    map_.clear();
    lru_.clear();
    version_ = version;
  }

  std::size_t capacity_;
  std::uint64_t version_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<std::pair<RequestKey, core::Decision>> lru_;
  std::unordered_map<RequestKey, std::list<std::pair<RequestKey, core::Decision>>::iterator>
      map_;
};

/// Wraps an evaluation function with the cache: the shape a PEP uses.
/// Deliberately stays on the single-level (mutex-sharded) path — a PEP's
/// threads are not the engine's workers; they have no worker-local state
/// to hang an L1 off, and no snapshot-version stream to flush it on.
class CachingEvaluator {
 public:
  using Evaluate = std::function<core::Decision(const core::RequestContext&)>;

  CachingEvaluator(DecisionCache& cache, Evaluate evaluate)
      : cache_(cache), evaluate_(std::move(evaluate)) {}

  core::Decision operator()(const core::RequestContext& request) {
    return evaluate_with_probe(request, nullptr);
  }

  /// As operator(), additionally reporting whether the cache served the
  /// decision — the distinction a PEP explain-trace's cache-probe span
  /// records.
  core::Decision evaluate_with_probe(const core::RequestContext& request,
                                     bool* cache_hit) {
    const RequestKey key = fingerprint(request);
    if (auto hit = cache_.lookup(key)) {
      if (cache_hit != nullptr) *cache_hit = true;
      return *hit;
    }
    if (cache_hit != nullptr) *cache_hit = false;
    core::Decision d = evaluate_(request);
    // Only definitive decisions are cacheable; Indeterminate may be a
    // transient infrastructure failure and NotApplicable may flip when
    // new policies arrive (conservative choice).
    if (d.is_permit() || d.is_deny()) cache_.insert(key, d);
    return d;
  }

 private:
  DecisionCache& cache_;
  Evaluate evaluate_;
};

/// Compares cached decisions against a fresh oracle, counting the
/// paper's two failure modes of caching.
struct StalenessProbe {
  std::size_t false_permits = 0;  // cache said permit, oracle says deny/NA
  std::size_t false_denies = 0;   // cache said deny, oracle says permit
  std::size_t agreements = 0;

  void observe(const core::Decision& cached, const core::Decision& fresh);
};

}  // namespace mdac::cache
