// N-way sharded TTL+LRU cache.
//
// The single-lock TtlLruCache serialises every PEP thread on one mutex;
// under the paper's "heavy traffic" assumption the lock, not the lookup,
// becomes the bottleneck. Sharding stripes the key space over N
// independent TtlLruCache instances, each behind its own mutex, so
// concurrent lookups of different keys proceed in parallel and a miss
// inserting on one shard never blocks hits on the others.
//
// Stats are kept per shard (each under its shard lock, so the counters
// stay exact) and aggregated on demand by `stats()`. `invalidate_all`
// locks shards one at a time: the cache is a cache — a lookup racing the
// sweep may still see a not-yet-swept entry on another shard, which is
// indistinguishable from the lookup having happened just before the
// sweep began.
#pragma once

#include <bit>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cache/ttl_cache.hpp"
#include "common/clock.hpp"

namespace mdac::cache {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedTtlLruCache {
 public:
  /// `shard_count` is rounded up to a power of two (minimum 1).
  /// `capacity` is the total across shards, rounded *up* to the next
  /// multiple of the shard count (each shard holds at least one entry),
  /// so the effective capacity is in [capacity, capacity + shards - 1]
  /// and never below what the caller asked for.
  ShardedTtlLruCache(const common::Clock& clock, common::Duration ttl,
                     std::size_t capacity, std::size_t shard_count)
      : mask_(std::bit_ceil(shard_count == 0 ? std::size_t{1} : shard_count) - 1) {
    const std::size_t shards = mask_ + 1;
    const std::size_t per_shard = std::max<std::size_t>(1, (capacity + shards - 1) / shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(clock, ttl, per_shard));
    }
  }

  std::optional<Value> lookup(const Key& key) {
    Shard& s = shard_of(key);
    std::lock_guard lock(s.mutex);
    return s.cache.lookup(key);
  }

  void insert(const Key& key, Value value) {
    Shard& s = shard_of(key);
    std::lock_guard lock(s.mutex);
    s.cache.insert(key, std::move(value));
  }

  bool invalidate(const Key& key) {
    Shard& s = shard_of(key);
    std::lock_guard lock(s.mutex);
    return s.cache.invalidate(key);
  }

  void invalidate_all() {
    for (auto& s : shards_) {
      std::lock_guard lock(s->mutex);
      s->cache.invalidate_all();
    }
  }

  /// Aggregated counter snapshot across shards.
  ///
  /// Relaxed-consistency contract: each shard is read under its own lock,
  /// one shard at a time — there is no instant at which all shards were
  /// simultaneously in the returned state. Each *per-shard* contribution
  /// is exact, and every counter is monotonically non-decreasing, so the
  /// result is a valid lower bound per shard; but cross-shard relations
  /// (e.g. hits+misses == lookups issued) may be off by operations that
  /// landed on already-read shards while later shards were being read.
  /// Callers wanting exact totals must quiesce writers first (the
  /// engine's metrics snapshot does; the bench harness reads after
  /// joining its threads). Aggregation is overflow-safe: CacheStats
  /// counters are uint64 and summed via operator+=.
  CacheStats stats() const {
    CacheStats total;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mutex);
      total += s->cache.stats();
    }
    return total;
  }

  /// Sweeps every shard, dropping entries whose key satisfies `pred`;
  /// returns the total removed. Shards are swept one at a time (same
  /// relaxed consistency as invalidate_all).
  template <typename Pred>
  std::size_t evict_if(const Pred& pred) {
    std::size_t removed = 0;
    for (auto& s : shards_) {
      std::lock_guard lock(s->mutex);
      removed += s->cache.evict_if(pred);
    }
    return removed;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mutex);
      total += s->cache.size();
    }
    return total;
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    Shard(const common::Clock& clock, common::Duration ttl, std::size_t capacity)
        : cache(clock, ttl, capacity) {}
    mutable std::mutex mutex;
    TtlLruCache<Key, Value, Hash> cache;
  };

  Shard& shard_of(const Key& key) const {
    // Remix the hash before masking so shard choice uses different bits
    // than the per-shard hash table (keys in one shard would otherwise
    // share their low hash bits).
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return *shards_[static_cast<std::size_t>(h) & mask_];
  }

  std::size_t mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mdac::cache
