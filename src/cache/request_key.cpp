#include "cache/request_key.hpp"

#include <bit>
#include <random>
#include <string_view>

namespace mdac::cache {
namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over raw bytes (strings are the only variable-length input).
std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

struct H128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Hashes one typed value under a secret per-process key. The DataType
/// tag is folded in so equal lexical forms of different types stay
/// distinct. Keying each *value* hash (not just the chaining state) is
/// what makes the commutative bag sums attacker-opaque: with unkeyed
/// value hashes the sums would be computable offline regardless of any
/// seed applied later in the chain.
H128 hash_value(const core::AttributeValue& v, std::uint64_t key) {
  const auto tag = (static_cast<std::uint64_t>(v.type()) << 56) ^ key;
  std::uint64_t raw = 0;
  switch (v.type()) {
    case core::DataType::kString:
      raw = hash_bytes(v.as_string(), /*seed=*/tag);
      break;
    case core::DataType::kBoolean:
      raw = v.as_boolean() ? 1 : 2;
      break;
    case core::DataType::kInteger:
      raw = static_cast<std::uint64_t>(v.as_integer());
      break;
    case core::DataType::kDouble:
      raw = std::bit_cast<std::uint64_t>(v.as_double());
      break;
    case core::DataType::kTime:
      raw = static_cast<std::uint64_t>(v.as_time().millis);
      break;
  }
  H128 h;
  h.lo = mix64(tag ^ raw);
  h.hi = mix64(h.lo ^ key ^ 0xA5A5A5A55A5A5A5AULL);
  return h;
}

/// Per-process random seeds: `a`/`b` key the chaining state and `a` also
/// keys every per-value hash. The mixers above are not cryptographic:
/// with fixed constants an adversary controlling multi-valued attributes
/// could search offline (Wagner k-sum) for colliding value multisets —
/// the bag combination is a commutative sum — and have one principal
/// served another's cached decision. Secret keys force any such search
/// through the live process, which cannot observe fingerprints. Costs
/// nothing per call; the fingerprint was already documented as
/// process-local.
struct Seeds {
  std::uint64_t a;
  std::uint64_t b;
  static const Seeds& get() {
    static const Seeds s = [] {
      std::random_device rd;
      const auto word = [&rd] {
        return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
      };
      return Seeds{mix64(word() ^ 0x7D0C45BD10F8E791ULL),
                   mix64(word() ^ 0x93A4F1B26E05C3DAULL)};
    }();
    return s;
  }
};

}  // namespace

RequestKey fingerprint(const core::RequestContext& request) {
  // Entries iterate in canonical (category, symbol) order, so chaining
  // order-dependently across entries is deterministic; *within* a bag the
  // per-value hashes are summed, making the bag a commutative multiset.
  const Seeds& seeds = Seeds::get();
  RequestKey key{seeds.a, seeds.b};
  for (const core::RequestContext::Entry& entry : request.attributes()) {
    std::uint64_t bag_lo = 0;
    std::uint64_t bag_hi = 0;
    for (const core::AttributeValue& v : entry.bag.values()) {
      const H128 hv = hash_value(v, seeds.a);
      bag_lo += hv.lo;
      bag_hi += hv.hi;
    }
    const std::uint64_t slot =
        (static_cast<std::uint64_t>(entry.category) << 32) | entry.id;
    key.lo = mix64(key.lo ^ slot ^ bag_lo);
    key.hi = mix64(key.hi ^ std::rotl(key.lo, 32) ^ bag_hi ^
                   (entry.bag.size() * 0xC2B2AE3D27D4EB4FULL));
  }
  return key;
}

}  // namespace mdac::cache
