#include "cache/request_key.hpp"

#include <bit>
#include <random>
#include <string_view>

namespace mdac::cache {
namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

struct H128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Two independently keyed/multiplied 64-bit digests in one pass over the
/// bytes. The halves of a 128-bit value hash must not be functions of one
/// another, or a single 64-bit collision collapses the whole key.
H128 hash_bytes2(std::string_view bytes, std::uint64_t seed_lo,
                 std::uint64_t seed_hi) {
  std::uint64_t a = seed_lo ^ 0xCBF29CE484222325ULL;
  std::uint64_t b = seed_hi ^ 0x84222325CBF29CE4ULL;
  for (const char c : bytes) {
    const auto byte = static_cast<unsigned char>(c);
    a = (a ^ byte) * 0x100000001B3ULL;
    b = (b ^ byte) * 0x9DDFEA08EB382D69ULL;
  }
  return {a, b};
}

/// Hashes one typed value under two secret per-process keys. The DataType
/// tag is folded in so equal lexical forms of different types stay
/// distinct. Keying each *value* hash (not just the chaining state) is
/// what makes the commutative bag sums attacker-opaque: with unkeyed
/// value hashes the sums would be computable offline regardless of any
/// seed applied later in the chain. For fixed-width types the raw value
/// is injective, so deriving hi from lo is safe; strings get two
/// independent digests so the key keeps ~128-bit collision resistance
/// for the only input an attacker can vary freely.
H128 hash_value(const core::AttributeValue& v, std::uint64_t key_lo,
                std::uint64_t key_hi) {
  const auto tag = (static_cast<std::uint64_t>(v.type()) << 56) ^ key_lo;
  if (v.type() == core::DataType::kString) {
    const H128 raw = hash_bytes2(
        v.as_string(), /*seed_lo=*/tag,
        /*seed_hi=*/(static_cast<std::uint64_t>(v.type()) << 56) ^ key_hi);
    return {mix64(tag ^ raw.lo), mix64(key_hi ^ raw.hi)};
  }
  std::uint64_t raw = 0;
  switch (v.type()) {
    case core::DataType::kString:
      break;  // handled above
    case core::DataType::kBoolean:
      raw = v.as_boolean() ? 1 : 2;
      break;
    case core::DataType::kInteger:
      raw = static_cast<std::uint64_t>(v.as_integer());
      break;
    case core::DataType::kDouble:
      raw = std::bit_cast<std::uint64_t>(v.as_double());
      break;
    case core::DataType::kTime:
      raw = static_cast<std::uint64_t>(v.as_time().millis);
      break;
  }
  H128 h;
  h.lo = mix64(tag ^ raw);
  h.hi = mix64(h.lo ^ key_hi ^ 0xA5A5A5A55A5A5A5AULL);
  return h;
}

/// Per-process random seeds: `a`/`b` key the chaining state and `a` also
/// keys every per-value hash. The mixers above are not cryptographic:
/// with fixed constants an adversary controlling multi-valued attributes
/// could search offline (Wagner k-sum) for colliding value multisets —
/// the bag combination is a commutative sum — and have one principal
/// served another's cached decision. Secret keys force any such search
/// through the live process, which cannot observe fingerprints. Costs
/// nothing per call; the fingerprint was already documented as
/// process-local.
struct Seeds {
  std::uint64_t a;
  std::uint64_t b;
  static const Seeds& get() {
    static const Seeds s = [] {
      std::random_device rd;
      const auto word = [&rd] {
        return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
      };
      return Seeds{mix64(word() ^ 0x7D0C45BD10F8E791ULL),
                   mix64(word() ^ 0x93A4F1B26E05C3DAULL)};
    }();
    return s;
  }
};

}  // namespace

RequestKey fingerprint(const core::RequestContext& request) {
  // Entries iterate in canonical (category, symbol) order, so chaining
  // order-dependently across entries is deterministic; *within* a bag the
  // per-value hashes are summed, making the bag a commutative multiset.
  const Seeds& seeds = Seeds::get();
  RequestKey key{seeds.a, seeds.b};
  const auto chain = [&](std::uint64_t slot_lo, std::uint64_t slot_hi,
                         const core::Bag& bag) {
    std::uint64_t bag_lo = 0;
    std::uint64_t bag_hi = 0;
    for (const core::AttributeValue& v : bag.values()) {
      const H128 hv = hash_value(v, seeds.a, seeds.b);
      bag_lo += hv.lo;
      bag_hi += hv.hi;
    }
    key.lo = mix64(key.lo ^ slot_lo ^ bag_lo);
    key.hi = mix64(key.hi ^ std::rotl(key.lo, 32) ^ slot_hi ^ bag_hi ^
                   (bag.size() * 0xC2B2AE3D27D4EB4FULL));
  };
  for (const core::RequestContext::Entry& entry : request.attributes()) {
    // Interned slots are injective (distinct (category, symbol) never
    // collide), so a hi-half slot contribution is unnecessary.
    chain((static_cast<std::uint64_t>(entry.category) << 32) | entry.id,
          /*slot_hi=*/0, entry.bag);
  }
  // Un-interned side entries have no symbol; their slot is the keyed hash
  // of the name bytes — two independent digests, like string values: the
  // name is attacker-chosen, so a single 64-bit digest feeding both
  // halves would collapse the key's collision resistance to 64 bits.
  // Side entries iterate in canonical (category, name) order, and a
  // request with no side entries — the steady state — pays nothing here.
  // Two requests that differ only in *where* a name is stored (interned
  // vs side) hash differently, which costs a cache miss, never a wrong
  // hit.
  for (const core::RequestContext::Entry& entry : request.side_attributes()) {
    const std::uint64_t category_tag = static_cast<std::uint64_t>(entry.category)
                                       << 32;
    const H128 name_hash =
        hash_bytes2(entry.uninterned_name, seeds.b ^ category_tag,
                    mix64(seeds.a) ^ category_tag);
    chain(mix64(name_hash.lo), mix64(name_hash.hi), entry.bag);
  }
  return key;
}

}  // namespace mdac::cache
