#include "cache/seqlock_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace mdac::cache {

// ---------------------------------------------------------------------
// Decision codec
//
// Layout (all multi-byte integers little-endian via memcpy):
//   u8   (type << 2) | extent
//   u8   status code
//   u8   status message length, bytes
//   u8   obligation count
//     per obligation: u8 id length, bytes; u8 assignment count
//       per assignment: u8 name length, bytes; u8 value tag; value
//   u8   advice count (same encoding as obligations)
// Value tags: 0 string (u8 len + bytes), 1 bool (u8), 2 int64 (8 bytes),
// 3 double (8 bytes), 4 time (8 bytes of TimePoint millis).
// ---------------------------------------------------------------------

namespace {

struct Writer {
  std::uint8_t* out;
  std::size_t cap;
  std::size_t pos = 0;

  bool u8(std::uint8_t b) {
    if (pos >= cap) return false;
    out[pos++] = b;
    return true;
  }
  bool raw(const void* p, std::size_t n) {
    if (cap - pos < n) return false;
    std::memcpy(out + pos, p, n);
    pos += n;
    return true;
  }
  bool str(const std::string& s) {
    if (s.size() > 255) return false;
    return u8(static_cast<std::uint8_t>(s.size())) && raw(s.data(), s.size());
  }
  bool value(const core::AttributeValue& v) {
    switch (v.type()) {
      case core::DataType::kString:
        return u8(0) && str(v.as_string());
      case core::DataType::kBoolean:
        return u8(1) && u8(v.as_boolean() ? 1 : 0);
      case core::DataType::kInteger: {
        const std::int64_t x = v.as_integer();
        return u8(2) && raw(&x, sizeof x);
      }
      case core::DataType::kDouble: {
        const double x = v.as_double();
        return u8(3) && raw(&x, sizeof x);
      }
      case core::DataType::kTime: {
        const common::TimePoint x = v.as_time().millis;
        return u8(4) && raw(&x, sizeof x);
      }
    }
    return false;
  }
  bool obligations(const std::vector<core::ObligationInstance>& os) {
    if (os.size() > 255) return false;
    if (!u8(static_cast<std::uint8_t>(os.size()))) return false;
    for (const auto& o : os) {
      if (!str(o.id)) return false;
      if (o.assignments.size() > 255) return false;
      if (!u8(static_cast<std::uint8_t>(o.assignments.size()))) return false;
      for (const auto& [name, val] : o.assignments) {
        if (!str(name) || !value(val)) return false;
      }
    }
    return true;
  }
};

struct Reader {
  const std::uint8_t* data;
  std::size_t len;
  std::size_t pos = 0;

  bool u8(std::uint8_t& b) {
    if (pos >= len) return false;
    b = data[pos++];
    return true;
  }
  bool raw(void* p, std::size_t n) {
    if (len - pos < n) return false;
    std::memcpy(p, data + pos, n);
    pos += n;
    return true;
  }
  bool str(std::string& s) {
    std::uint8_t n = 0;
    if (!u8(n)) return false;
    if (len - pos < n) return false;
    s.assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
  bool value(core::AttributeValue& v) {
    std::uint8_t tag = 0;
    if (!u8(tag)) return false;
    switch (tag) {
      case 0: {
        std::string s;
        if (!str(s)) return false;
        v = core::AttributeValue(std::move(s));
        return true;
      }
      case 1: {
        std::uint8_t b = 0;
        if (!u8(b)) return false;
        v = core::AttributeValue(b != 0);
        return true;
      }
      case 2: {
        std::int64_t x = 0;
        if (!raw(&x, sizeof x)) return false;
        v = core::AttributeValue(x);
        return true;
      }
      case 3: {
        double x = 0;
        if (!raw(&x, sizeof x)) return false;
        v = core::AttributeValue(x);
        return true;
      }
      case 4: {
        common::TimePoint x = 0;
        if (!raw(&x, sizeof x)) return false;
        v = core::AttributeValue(core::TimeValue{x});
        return true;
      }
      default:
        return false;
    }
  }
  bool obligations(std::vector<core::ObligationInstance>& os) {
    std::uint8_t count = 0;
    if (!u8(count)) return false;
    os.clear();
    os.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      core::ObligationInstance o;
      if (!str(o.id)) return false;
      std::uint8_t assignments = 0;
      if (!u8(assignments)) return false;
      o.assignments.reserve(assignments);
      for (std::size_t j = 0; j < assignments; ++j) {
        std::string name;
        core::AttributeValue val;
        if (!str(name) || !value(val)) return false;
        o.assignments.emplace_back(std::move(name), std::move(val));
      }
      os.push_back(std::move(o));
    }
    return true;
  }
};

}  // namespace

std::optional<std::size_t> encode_decision(const core::Decision& d,
                                           std::uint8_t* out, std::size_t cap) {
  Writer w{out, cap};
  const auto type = static_cast<std::uint8_t>(d.type);
  const auto extent = static_cast<std::uint8_t>(d.extent);
  if (!w.u8(static_cast<std::uint8_t>((type << 2) | extent))) return std::nullopt;
  if (!w.u8(static_cast<std::uint8_t>(d.status.code))) return std::nullopt;
  if (!w.str(d.status.message)) return std::nullopt;
  if (!w.obligations(d.obligations)) return std::nullopt;
  if (!w.obligations(d.advice)) return std::nullopt;
  return w.pos;
}

bool decode_decision(const std::uint8_t* data, std::size_t len, core::Decision& out) {
  Reader r{data, len};
  std::uint8_t head = 0;
  std::uint8_t status_code = 0;
  if (!r.u8(head) || !r.u8(status_code)) return false;
  const std::uint8_t type = head >> 2;
  const std::uint8_t extent = head & 0x3;
  if (type > static_cast<std::uint8_t>(core::DecisionType::kIndeterminate)) return false;
  if (status_code > static_cast<std::uint8_t>(core::StatusCode::kProcessingError)) return false;
  out.type = static_cast<core::DecisionType>(type);
  out.extent = static_cast<core::IndeterminateExtent>(extent);
  out.status.code = static_cast<core::StatusCode>(status_code);
  if (!r.str(out.status.message)) return false;
  if (!r.obligations(out.obligations)) return false;
  if (!r.obligations(out.advice)) return false;
  return r.pos == len;  // trailing garbage ⇒ not ours
}

// ---------------------------------------------------------------------
// SeqlockDecisionCache
// ---------------------------------------------------------------------

SeqlockDecisionCache::SeqlockDecisionCache(std::size_t capacity) {
  const std::size_t want_buckets = (std::max<std::size_t>(capacity, kWays) + kWays - 1) / kWays;
  const std::size_t buckets = std::bit_ceil(want_buckets);
  bucket_mask_ = buckets - 1;
  const std::size_t shards = std::min(kMaxWriteShards, buckets);  // both powers of two
  shard_mask_ = shards - 1;
  slots_ = std::make_unique<Slot[]>(buckets * kWays);
  shards_ = std::make_unique<WriteShard[]>(shards);
}

std::uint64_t SeqlockDecisionCache::slot_hash(const RequestKey& key, std::uint64_t version) {
  std::uint64_t h = key.lo ^ (key.hi * 0x9E3779B97F4A7C15ULL) ^
                    ((version + 1) * 0xFF51AFD7ED558CCDULL);
  h ^= h >> 33;
  h *= 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  return h;
}

bool SeqlockDecisionCache::lookup(const RequestKey& key, std::uint64_t version,
                                  core::Decision& out, std::uint64_t* retries) const {
  const std::size_t bucket = static_cast<std::size_t>(slot_hash(key, version)) & bucket_mask_;
  std::uint64_t local_retries = 0;
  bool hit = false;
  for (std::size_t way = 0; way < kWays && !hit; ++way) {
    const Slot& slot = slots_[bucket * kWays + way];
    for (std::size_t attempt = 0; attempt < kMaxReadAttempts; ++attempt) {
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0) break;  // never written
      if (s1 & 1) {        // writer mid-flight
        ++local_retries;
        continue;
      }
      if (slot.key_lo.load(std::memory_order_acquire) != key.lo ||
          slot.key_hi.load(std::memory_order_acquire) != key.hi ||
          slot.version.load(std::memory_order_acquire) != version) {
        // Mismatch — but it may be a torn view of a write that is
        // installing exactly our key. Re-check the sequence to tell a
        // stable other-key slot (move on) from an in-flight one (retry).
        if (slot.seq.load(std::memory_order_relaxed) != s1) {
          ++local_retries;
          continue;
        }
        break;
      }
      const std::uint64_t len = slot.meta.load(std::memory_order_acquire);
      std::uint64_t buf[kPayloadWords];
      if (len != 0 && len <= kMaxEncodedBytes) {
        const std::size_t words = (static_cast<std::size_t>(len) + 7) / 8;
        for (std::size_t i = 0; i < words; ++i) {
          buf[i] = slot.payload[i].load(std::memory_order_acquire);
        }
      }
      // The payload loads above are acquire, so this re-check cannot be
      // hoisted before them; see the header for why a torn payload read
      // always forces s2 != s1 here.
      if (slot.seq.load(std::memory_order_relaxed) != s1) {
        ++local_retries;
        continue;
      }
      if (len == 0 || len > kMaxEncodedBytes) break;  // cleared slot
      if (!decode_decision(reinterpret_cast<const std::uint8_t*>(buf),
                           static_cast<std::size_t>(len), out)) {
        break;  // cannot happen for slots we wrote; treat as a miss
      }
      hit = true;
      break;
    }
  }
  if (retries != nullptr) *retries += local_retries;
  return hit;
}

bool SeqlockDecisionCache::insert(const RequestKey& key, std::uint64_t version,
                                  const core::Decision& d) {
  std::uint8_t buf[kMaxEncodedBytes];
  const auto encoded = encode_decision(d, buf, sizeof buf);
  const std::size_t bucket = static_cast<std::size_t>(slot_hash(key, version)) & bucket_mask_;
  WriteShard& ws = shard_for(bucket);
  std::lock_guard lock(ws.mutex);
  if (!encoded) {
    ++ws.stats.rejected_oversize;
    return false;
  }

  // Slot choice: exact (key, version) match > empty > round-robin victim.
  Slot* target = nullptr;
  bool existing = false;
  bool empty = false;
  for (std::size_t way = 0; way < kWays; ++way) {
    Slot& s = slots_[bucket * kWays + way];
    // Relaxed loads are exact here: all writes to this bucket happen
    // under the shard mutex we hold.
    if (s.meta.load(std::memory_order_relaxed) == 0) {
      if (target == nullptr) {
        target = &s;
        empty = true;
      }
      continue;
    }
    if (s.key_lo.load(std::memory_order_relaxed) == key.lo &&
        s.key_hi.load(std::memory_order_relaxed) == key.hi &&
        s.version.load(std::memory_order_relaxed) == version) {
      target = &s;
      existing = true;
      empty = false;
      break;
    }
  }
  if (target == nullptr) {
    target = &slots_[bucket * kWays + (ws.victim_counter++ % kWays)];
  }

  const std::uint64_t s0 = target->seq.load(std::memory_order_relaxed);
  target->seq.store(s0 + 1, std::memory_order_relaxed);  // odd: write begins
  // Release stores: any reader that observes one of these new values
  // synchronizes-with it and therefore also sees the odd seq above.
  target->key_lo.store(key.lo, std::memory_order_release);
  target->key_hi.store(key.hi, std::memory_order_release);
  target->version.store(version, std::memory_order_release);
  target->meta.store(static_cast<std::uint64_t>(*encoded), std::memory_order_release);
  const std::size_t words = (*encoded + 7) / 8;
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t w = 0;
    const std::size_t n = std::min<std::size_t>(8, *encoded - i * 8);
    std::memcpy(&w, buf + i * 8, n);
    target->payload[i].store(w, std::memory_order_release);
  }
  target->seq.store(s0 + 2, std::memory_order_release);  // even: published

  if (existing) {
    ++ws.stats.updates;
  } else {
    ++ws.stats.inserts;
    if (empty) {
      ++ws.occupied;
    } else {
      ++ws.stats.evictions;
    }
  }
  return true;
}

void SeqlockDecisionCache::clear_slot(Slot& slot) {
  // Same write protocol as insert; seq stays monotonic (never back to 0)
  // so a concurrent reader can never pair a pre-clear s1 with a
  // post-refill s2 of equal value (the ABA a seq reset would reopen).
  const std::uint64_t s0 = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(s0 + 1, std::memory_order_relaxed);
  slot.key_lo.store(0, std::memory_order_release);
  slot.key_hi.store(0, std::memory_order_release);
  slot.version.store(0, std::memory_order_release);
  slot.meta.store(0, std::memory_order_release);
  slot.seq.store(s0 + 2, std::memory_order_release);
}

std::size_t SeqlockDecisionCache::evict_older_than(std::uint64_t version) {
  std::size_t removed = 0;
  const std::size_t shards = shard_mask_ + 1;
  for (std::size_t si = 0; si < shards; ++si) {
    WriteShard& ws = shards_[si];
    std::lock_guard lock(ws.mutex);
    for (std::size_t bucket = si; bucket <= bucket_mask_; bucket += shards) {
      for (std::size_t way = 0; way < kWays; ++way) {
        Slot& s = slots_[bucket * kWays + way];
        if (s.meta.load(std::memory_order_relaxed) == 0) continue;
        if (s.version.load(std::memory_order_relaxed) >= version) continue;
        clear_slot(s);
        ++removed;
        ++ws.stats.version_evictions;
        --ws.occupied;
      }
    }
  }
  return removed;
}

std::size_t SeqlockDecisionCache::clear() {
  std::size_t removed = 0;
  const std::size_t shards = shard_mask_ + 1;
  for (std::size_t si = 0; si < shards; ++si) {
    WriteShard& ws = shards_[si];
    std::lock_guard lock(ws.mutex);
    for (std::size_t bucket = si; bucket <= bucket_mask_; bucket += shards) {
      for (std::size_t way = 0; way < kWays; ++way) {
        Slot& s = slots_[bucket * kWays + way];
        if (s.meta.load(std::memory_order_relaxed) == 0) continue;
        clear_slot(s);
        ++removed;
        ++ws.stats.invalidations;
        --ws.occupied;
      }
    }
  }
  return removed;
}

SeqlockCacheStats SeqlockDecisionCache::stats() const {
  SeqlockCacheStats total;
  const std::size_t shards = shard_mask_ + 1;
  for (std::size_t si = 0; si < shards; ++si) {
    WriteShard& ws = shards_[si];
    std::lock_guard lock(ws.mutex);
    total += ws.stats;
  }
  return total;
}

std::size_t SeqlockDecisionCache::size() const {
  std::size_t total = 0;
  const std::size_t shards = shard_mask_ + 1;
  for (std::size_t si = 0; si < shards; ++si) {
    WriteShard& ws = shards_[si];
    std::lock_guard lock(ws.mutex);
    total += ws.occupied;
  }
  return total;
}

}  // namespace mdac::cache
