// Generic TTL + LRU cache used for decisions (PEP side) and policy
// documents (PDP side) — the paper's §3.2 answer to communication cost,
// with the staleness risk it warns about made measurable via explicit
// expiry and invalidation.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/clock.hpp"

namespace mdac::cache {

// Counters are explicitly 64-bit (not std::size_t) so aggregation across
// shards and long-running engines cannot overflow on 32-bit targets: at
// 5M cached hits/s a 32-bit counter wraps in under 15 minutes.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expirations = 0;  // lookups that found only a stale entry
  std::uint64_t evictions = 0;    // capacity-driven removals
  std::uint64_t invalidations = 0;

  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    expirations += other.expirations;
    evictions += other.evictions;
    invalidations += other.invalidations;
    return *this;
  }

  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class TtlLruCache {
 public:
  /// `ttl` in milliseconds; `capacity` in entries.
  TtlLruCache(const common::Clock& clock, common::Duration ttl, std::size_t capacity)
      : clock_(clock), ttl_(ttl), capacity_(capacity) {}

  std::optional<Value> lookup(const Key& key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    if (clock_.now() >= it->second.expires_at) {
      ++stats_.expirations;
      ++stats_.misses;
      lru_.erase(it->second.lru_position);
      entries_.erase(it);
      return std::nullopt;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    return it->second.value;
  }

  void insert(const Key& key, Value value) {
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.value = std::move(value);
      it->second.expires_at = clock_.now() + ttl_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return;
    }
    if (entries_.size() >= capacity_ && !lru_.empty()) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(value), clock_.now() + ttl_, lru_.begin()});
  }

  /// Drops one entry (e.g. a revoked principal's decisions).
  bool invalidate(const Key& key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
    ++stats_.invalidations;
    return true;
  }

  /// Drops everything (e.g. after a policy update notification).
  void invalidate_all() {
    stats_.invalidations += entries_.size();
    entries_.clear();
    lru_.clear();
  }

  /// Drops every entry whose key satisfies `pred`; returns the count
  /// removed. Used by the version sweep: decisions keyed under withdrawn
  /// snapshot versions are unreachable (lookups always carry the current
  /// version) but would otherwise sit in the LRU until capacity pressure
  /// happens to cycle them out.
  template <typename Pred>
  std::size_t evict_if(const Pred& pred) {
    std::size_t removed = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (pred(*it)) {
        entries_.erase(*it);
        it = lru_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    stats_.invalidations += removed;
    return removed;
  }

  std::size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    Value value;
    common::TimePoint expires_at;
    typename std::list<Key>::iterator lru_position;
  };

  const common::Clock& clock_;
  common::Duration ttl_;
  std::size_t capacity_;
  std::unordered_map<Key, Entry, Hash> entries_;
  std::list<Key> lru_;
  CacheStats stats_;
};

}  // namespace mdac::cache
