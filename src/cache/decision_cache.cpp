#include "cache/decision_cache.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mdac::cache {

std::string canonical_request_key(const core::RequestContext& request) {
  // Wire-stable (category, attribute-name) order — see entries_by_name().
  std::ostringstream os;
  for (const core::RequestContext::Entry* entry_ptr : request.entries_by_name()) {
    const core::RequestContext::Entry& entry = *entry_ptr;
    os << core::to_string(entry.category) << '|' << entry.name() << '=';
    // Bags are canonicalised by sorting the lexical forms.
    std::vector<std::string> values;
    values.reserve(entry.bag.size());
    for (const core::AttributeValue& v : entry.bag.values()) {
      values.push_back(std::string(core::to_string(v.type())) + ":" + v.to_text());
    }
    std::sort(values.begin(), values.end());
    for (const std::string& v : values) os << v << ',';
    os << ';';
  }
  return os.str();
}

void StalenessProbe::observe(const core::Decision& cached,
                             const core::Decision& fresh) {
  if (cached.type == fresh.type) {
    ++agreements;
    return;
  }
  if (cached.is_permit()) {
    ++false_permits;
  } else if (cached.is_deny() && fresh.is_permit()) {
    ++false_denies;
  } else {
    // Disagreement not involving an unsafe grant (e.g. NA vs deny).
    ++agreements;
  }
}

}  // namespace mdac::cache
