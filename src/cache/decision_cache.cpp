#include "cache/decision_cache.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "obs/registry.hpp"

namespace mdac::cache {

std::string canonical_request_key(const core::RequestContext& request) {
  // Wire-stable (category, attribute-name) order — see entries_by_name().
  std::ostringstream os;
  for (const core::RequestContext::Entry* entry_ptr : request.entries_by_name()) {
    const core::RequestContext::Entry& entry = *entry_ptr;
    os << core::to_string(entry.category) << '|' << entry.name() << '=';
    // Bags are canonicalised by sorting the lexical forms.
    std::vector<std::string> values;
    values.reserve(entry.bag.size());
    for (const core::AttributeValue& v : entry.bag.values()) {
      values.push_back(std::string(core::to_string(v.type())) + ":" + v.to_text());
    }
    std::sort(values.begin(), values.end());
    for (const std::string& v : values) os << v << ',';
    os << ';';
  }
  return os.str();
}

void StalenessProbe::observe(const core::Decision& cached,
                             const core::Decision& fresh) {
  if (cached.type == fresh.type) {
    ++agreements;
    return;
  }
  if (cached.is_permit()) {
    ++false_permits;
  } else if (cached.is_deny() && fresh.is_permit()) {
    ++false_denies;
  } else {
    // Disagreement not involving an unsafe grant (e.g. NA vs deny).
    ++agreements;
  }
}

std::uint64_t DecisionCache::register_metrics(obs::Registry& registry) const {
  return registry.add_collector([this](obs::MetricSink& sink) {
    const char* mode = mode_ == Mode::kMutexSharded ? "mutex-sharded" : "two-level";
    sink.gauge("mdac_cache_size", "Entries currently cached.",
               static_cast<double>(size()), {{"mode", mode}});
    const CacheStats s = stats();
    sink.counter("mdac_cache_store_hits_total",
                 "Store-level hits (mutex-sharded mode only; two-level hit "
                 "counts live in the engine metrics).",
                 static_cast<double>(s.hits), {{"mode", mode}});
    sink.counter("mdac_cache_store_misses_total",
                 "Store-level misses (mutex-sharded mode only).",
                 static_cast<double>(s.misses), {{"mode", mode}});
    sink.counter("mdac_cache_expirations_total", "Entries dropped by TTL expiry.",
                 static_cast<double>(s.expirations), {{"mode", mode}});
    sink.counter("mdac_cache_evictions_total", "Entries evicted for capacity.",
                 static_cast<double>(s.evictions), {{"mode", mode}});
    sink.counter("mdac_cache_invalidations_total",
                 "Entries dropped by invalidate_all or the version sweep.",
                 static_cast<double>(s.invalidations), {{"mode", mode}});
    if (mode_ == Mode::kTwoLevel) {
      const SeqlockCacheStats sl = seqlock_stats();
      sink.counter("mdac_cache_seqlock_inserts_total",
                   "Seqlock slot writes for new keys.",
                   static_cast<double>(sl.inserts), {{"mode", mode}});
      sink.counter("mdac_cache_seqlock_updates_total",
                   "Seqlock in-place updates of existing keys.",
                   static_cast<double>(sl.updates), {{"mode", mode}});
      sink.counter("mdac_cache_seqlock_rejected_oversize_total",
                   "Decisions too large for a slot, not cached.",
                   static_cast<double>(sl.rejected_oversize), {{"mode", mode}});
    }
  });
}

}  // namespace mdac::cache
