// Seqlock-slot decision cache — the shared L2 of the two-level decision
// cache (ARCHITECTURE.md §"Decision cache").
//
// The mutex-per-shard cache (sharded_cache.hpp) serialises readers of
// *hot* keys: the whole point of a decision cache is that a few
// fingerprints absorb most traffic, and those all hash to the same shard
// mutex. Here the hit path takes no lock at all. Each slot is a seqlock:
//
//   reader   s1 = seq.load(acquire)           // odd ⇒ writer active ⇒ retry
//            key/len/payload loads (acquire)
//            s2 = seq.load(relaxed)           // s1 != s2 ⇒ torn ⇒ retry
//   writer   (under per-shard mutex, so writers never race each other)
//            seq.store(s+1)                   // odd: readers back off
//            key/len/payload stores (release)
//            seq.store(s+2, release)          // even: publish
//
// Why this is TSan-clean *and* correct without std::atomic_thread_fence
// (which TSan does not model): every slot word is individually atomic, so
// there is no data race by construction; and if a reader observes any
// payload word from an in-flight write, that acquire load
// synchronizes-with the writer's release store, which makes the odd
// sequence number written *before* the payload visible — so the trailing
// seq re-check (ordered after the payload loads by their acquire
// semantics) cannot return s1, and the reader retries. The sequence
// counter is 64-bit and strictly monotonic (slots are cleared by writing
// zeroed keys, never by resetting seq), so s1 == s2 can never be an ABA
// false positive.
//
// Decisions are stored *inline* as a compact binary encoding packed into
// the slot's atomic words — no pointers, so there is no reclamation race
// between sequence validation and dereference. Decisions that encode to
// more than kMaxEncodedDecisionBytes are simply not cached (the evaluator
// recomputes them); the hot permit/deny + stamp-obligation shapes fit
// with room to spare.
//
// Keys are (request fingerprint, snapshot version): republication
// implicitly invalidates, and `evict_older_than` reclaims the slots of
// withdrawn versions. Reader-side hit/miss/retry counters are
// deliberately NOT kept here — shared atomics on the read path would
// reintroduce the cache-line contention the seqlock removes. Readers
// accumulate retries via the out-parameter; the engine counts hits in its
// per-worker padded counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

#include "cache/request_key.hpp"
#include "core/decision.hpp"

namespace mdac::cache {

/// Compact binary decision codec used by the seqlock slots. Exposed for
/// tests (round-trip) and anything else that wants a bounded, allocation-
/// free decision wire form. All counts and string lengths must fit one
/// byte; total encoded size must fit `cap`. Returns the encoded length,
/// or nullopt if the decision does not fit.
std::optional<std::size_t> encode_decision(const core::Decision& d,
                                           std::uint8_t* out, std::size_t cap);

/// Decodes a buffer produced by encode_decision. Returns false on any
/// malformed/truncated input (the decision is left unspecified).
bool decode_decision(const std::uint8_t* data, std::size_t len, core::Decision& out);

/// Writer-side counters. Maintained under the shard write mutexes, so
/// they are exact; aggregated on demand by stats().
struct SeqlockCacheStats {
  std::uint64_t inserts = 0;            // new entries written
  std::uint64_t updates = 0;            // same (key, version) overwritten
  std::uint64_t evictions = 0;          // bucket-full victim displaced
  std::uint64_t version_evictions = 0;  // reclaimed by evict_older_than
  std::uint64_t invalidations = 0;      // cleared by clear()
  std::uint64_t rejected_oversize = 0;  // decision too large to inline

  SeqlockCacheStats& operator+=(const SeqlockCacheStats& o) {
    inserts += o.inserts;
    updates += o.updates;
    evictions += o.evictions;
    version_evictions += o.version_evictions;
    invalidations += o.invalidations;
    rejected_oversize += o.rejected_oversize;
    return *this;
  }
};

class SeqlockDecisionCache {
 public:
  // Slot layout: 5 header words + 11 payload words = 128 bytes, two cache
  // lines, so a hit touches at most two lines and slots never share a
  // line (no reader/writer false sharing between neighbouring slots).
  static constexpr std::size_t kPayloadWords = 11;
  static constexpr std::size_t kMaxEncodedBytes = kPayloadWords * 8;  // 88
  static constexpr std::size_t kWays = 4;  // set-associative bucket width

  /// `capacity` is the total slot budget; rounded up so the bucket count
  /// is a power of two (minimum one bucket of kWays slots). Storage is
  /// allocated eagerly — a slot table, no per-entry allocation ever.
  explicit SeqlockDecisionCache(std::size_t capacity = 4096);

  SeqlockDecisionCache(const SeqlockDecisionCache&) = delete;
  SeqlockDecisionCache& operator=(const SeqlockDecisionCache&) = delete;

  /// Lock-free lookup. On a hit decodes into `out` and returns true. If
  /// `retries` is non-null, the number of seqlock re-reads performed is
  /// *added* to it (callers keep per-worker tallies). A slot being
  /// rewritten more than kMaxReadAttempts times in a row is treated as a
  /// miss — a livelock bound, not an error.
  bool lookup(const RequestKey& key, std::uint64_t version, core::Decision& out,
              std::uint64_t* retries = nullptr) const;

  /// Inserts (or refreshes) a decision. Takes the bucket's shard write
  /// mutex; readers are never blocked. Returns false if the decision is
  /// too large to inline (not cached).
  bool insert(const RequestKey& key, std::uint64_t version, const core::Decision& d);

  /// Reclaims every slot whose snapshot version is < `version`; returns
  /// the number of slots cleared. Called by the engine on snapshot
  /// adoption with the minimum version any worker still serves.
  std::size_t evict_older_than(std::uint64_t version);

  /// Drops everything (tests / explicit policy-change notification).
  std::size_t clear();

  SeqlockCacheStats stats() const;
  std::size_t slot_count() const { return bucket_count() * kWays; }
  std::size_t size() const;  // occupied slots (exact: summed under locks)

 private:
  static constexpr std::size_t kMaxReadAttempts = 64;
  static constexpr std::size_t kMaxWriteShards = 16;

  // All words atomic: no data race is possible, only *torn snapshots*,
  // which the sequence protocol detects. meta == 0 marks an empty slot
  // (no decision encodes to zero bytes); seq is never reset.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> key_lo{0};
    std::atomic<std::uint64_t> key_hi{0};
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> meta{0};  // encoded byte length; 0 = empty
    std::atomic<std::uint64_t> payload[kPayloadWords] = {};
  };
  static_assert(sizeof(std::atomic<std::uint64_t>) == 8);

  struct alignas(64) WriteShard {
    std::mutex mutex;
    std::uint64_t victim_counter = 0;  // round-robin victim pick
    std::uint64_t occupied = 0;
    SeqlockCacheStats stats;
  };

  std::size_t bucket_count() const { return bucket_mask_ + 1; }
  WriteShard& shard_for(std::size_t bucket) const {
    return shards_[bucket & shard_mask_];
  }
  static std::uint64_t slot_hash(const RequestKey& key, std::uint64_t version);
  /// Clears one slot via the write protocol (caller holds its shard lock).
  static void clear_slot(Slot& slot);

  std::size_t bucket_mask_;
  std::size_t shard_mask_;
  std::unique_ptr<Slot[]> slots_;
  mutable std::unique_ptr<WriteShard[]> shards_;
};

}  // namespace mdac::cache
