#include "tokens/attribute_certificate.hpp"

#include <stdexcept>

#include "common/bytes.hpp"

namespace mdac::tokens {

std::string Fqan::to_text() const {
  if (role.empty()) return group;
  return group + "/Role=" + role;
}

Fqan Fqan::parse(const std::string& text) {
  const std::size_t marker = text.find("/Role=");
  if (marker == std::string::npos) return Fqan{text, ""};
  return Fqan{text.substr(0, marker), text.substr(marker + 6)};
}

std::string AttributeCertificate::canonical_form() const {
  std::string out = "ac|" + holder + '|' + issuer + '|' + std::to_string(serial) +
                    '|' + std::to_string(not_before) + '|' + std::to_string(not_after);
  for (const Fqan& f : fqans) {
    out += '|';
    out += f.to_text();
  }
  return out;
}

std::string AttributeCertificate::to_wire() const {
  xml::Element e("AttributeCertificate");
  e.set_attr("Holder", holder);
  e.set_attr("Issuer", issuer);
  e.set_attr("Serial", std::to_string(serial));
  e.set_attr("NotBefore", std::to_string(not_before));
  e.set_attr("NotAfter", std::to_string(not_after));
  for (const Fqan& f : fqans) {
    e.add_child("Fqan").text = f.to_text();
  }
  xml::Element& sig = e.add_child("Signature");
  sig.set_attr("KeyId", signature.key_id);
  sig.text = common::base64_encode(signature.tag);
  return xml::to_string(e);
}

AttributeCertificate AttributeCertificate::from_wire(const std::string& wire) {
  const xml::Element e = xml::parse(wire);
  if (e.name != "AttributeCertificate") {
    throw std::runtime_error("expected <AttributeCertificate>");
  }
  AttributeCertificate ac;
  const auto req = [&](const char* key) {
    const auto v = e.attr(key);
    if (!v) throw std::runtime_error(std::string("missing '") + key + "'");
    return *v;
  };
  ac.holder = req("Holder");
  ac.issuer = req("Issuer");
  ac.serial = std::stoull(req("Serial"));
  ac.not_before = std::stoll(req("NotBefore"));
  ac.not_after = std::stoll(req("NotAfter"));
  for (const xml::Element* f : e.children_named("Fqan")) {
    ac.fqans.push_back(Fqan::parse(f->text));
  }
  const xml::Element* sig = e.child("Signature");
  if (sig == nullptr) throw std::runtime_error("missing <Signature>");
  ac.signature.key_id = sig->attr_or("KeyId", "");
  const auto tag = common::base64_decode(sig->text);
  if (!tag) throw std::runtime_error("bad signature encoding");
  ac.signature.tag = *tag;
  return ac;
}

AttributeCertificate issue_attribute_certificate(
    const std::string& holder, const std::string& issuer, std::uint64_t serial,
    common::TimePoint not_before, common::TimePoint not_after,
    std::vector<Fqan> fqans, const crypto::KeyPair& issuer_key) {
  AttributeCertificate ac;
  ac.holder = holder;
  ac.issuer = issuer;
  ac.serial = serial;
  ac.not_before = not_before;
  ac.not_after = not_after;
  ac.fqans = std::move(fqans);
  ac.signature = crypto::sign(issuer_key, ac.canonical_form());
  return ac;
}

const char* to_string(AcValidity v) {
  switch (v) {
    case AcValidity::kValid: return "valid";
    case AcValidity::kExpired: return "expired";
    case AcValidity::kNotYetValid: return "not-yet-valid";
    case AcValidity::kBadSignature: return "bad-signature";
    case AcValidity::kUntrustedIssuer: return "untrusted-issuer";
  }
  return "?";
}

AcValidity validate(const AttributeCertificate& ac, const crypto::TrustStore& trust,
                    common::TimePoint now) {
  if (!crypto::verify_signature(ac.canonical_form(), ac.signature)) {
    return AcValidity::kBadSignature;
  }
  if (!trust.is_trusted(ac.signature.key_id)) return AcValidity::kUntrustedIssuer;
  if (now < ac.not_before) return AcValidity::kNotYetValid;
  if (now > ac.not_after) return AcValidity::kExpired;
  return AcValidity::kValid;
}

}  // namespace mdac::tokens
