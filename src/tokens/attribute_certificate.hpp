// VOMS-style attribute certificates (paper §2.2: VOMS "uses extended
// X.509 certificates" to push membership attributes with the request).
//
// An AttributeCertificate binds a holder to a set of FQANs — fully
// qualified attribute names like "/vo-physics/analysis/Role=submitter" —
// for a validity window, signed by the VO membership service.
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "crypto/keys.hpp"
#include "xml/xml.hpp"

namespace mdac::tokens {

struct Fqan {
  std::string group;  // e.g. "/vo-physics/analysis"
  std::string role;   // e.g. "submitter"; empty = member

  std::string to_text() const;
  static Fqan parse(const std::string& text);

  bool operator==(const Fqan&) const = default;
};

struct AttributeCertificate {
  std::string holder;     // subject DN
  std::string issuer;     // VOMS server DN
  std::uint64_t serial = 0;
  common::TimePoint not_before = 0;
  common::TimePoint not_after = 0;
  std::vector<Fqan> fqans;
  crypto::Signature signature;

  std::string canonical_form() const;
  std::string to_wire() const;
  static AttributeCertificate from_wire(const std::string& wire);  // throws
};

AttributeCertificate issue_attribute_certificate(
    const std::string& holder, const std::string& issuer, std::uint64_t serial,
    common::TimePoint not_before, common::TimePoint not_after,
    std::vector<Fqan> fqans, const crypto::KeyPair& issuer_key);

enum class AcValidity { kValid, kExpired, kNotYetValid, kBadSignature, kUntrustedIssuer };

const char* to_string(AcValidity v);

AcValidity validate(const AttributeCertificate& ac, const crypto::TrustStore& trust,
                    common::TimePoint now);

}  // namespace mdac::tokens
