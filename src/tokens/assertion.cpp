#include "tokens/assertion.hpp"

#include <stdexcept>

#include "common/bytes.hpp"

namespace mdac::tokens {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("assertion error: " + message);
}

std::string require_attr(const xml::Element& e, const std::string& key) {
  if (auto v = e.attr(key)) return *v;
  fail("<" + e.name + "> missing '" + key + "'");
}

std::int64_t parse_int(const std::string& s) {
  try {
    return std::stoll(s);
  } catch (const std::exception&) {
    fail("bad integer '" + s + "'");
  }
}

const char* decision_name(core::DecisionType d) { return core::to_string(d); }

core::DecisionType parse_decision(const std::string& s) {
  if (s == "permit") return core::DecisionType::kPermit;
  if (s == "deny") return core::DecisionType::kDeny;
  if (s == "not-applicable") return core::DecisionType::kNotApplicable;
  if (s == "indeterminate") return core::DecisionType::kIndeterminate;
  fail("bad decision '" + s + "'");
}

}  // namespace

xml::Element Assertion::to_xml() const {
  xml::Element e("Assertion");
  e.set_attr("AssertionId", assertion_id);
  e.set_attr("Issuer", issuer);
  e.set_attr("Subject", subject);
  e.set_attr("IssueInstant", std::to_string(issue_instant));

  xml::Element& cond = e.add_child("Conditions");
  cond.set_attr("NotBefore", std::to_string(conditions.not_before));
  cond.set_attr("NotOnOrAfter", std::to_string(conditions.not_on_or_after));
  if (!conditions.audience.empty()) cond.set_attr("Audience", conditions.audience);

  if (!attributes.empty()) {
    xml::Element& stmt = e.add_child("AttributeStatement");
    for (const auto& [id, bag] : attributes) {
      xml::Element attr("Attribute");
      attr.set_attr("AttributeId", id);
      for (const core::AttributeValue& v : bag.values()) {
        xml::Element value("Value");
        value.set_attr("DataType", core::to_string(v.type()));
        value.text = v.to_text();
        attr.add_child(std::move(value));
      }
      stmt.add_child(std::move(attr));
    }
  }

  if (authz.has_value()) {
    xml::Element& stmt = e.add_child("AuthzDecisionStatement");
    stmt.set_attr("Resource", authz->resource);
    stmt.set_attr("Action", authz->action);
    stmt.set_attr("Decision", decision_name(authz->decision));
  }
  return e;
}

Assertion Assertion::from_xml(const xml::Element& element) {
  if (element.name != "Assertion") fail("expected <Assertion>");
  Assertion a;
  a.assertion_id = require_attr(element, "AssertionId");
  a.issuer = require_attr(element, "Issuer");
  a.subject = require_attr(element, "Subject");
  a.issue_instant = parse_int(require_attr(element, "IssueInstant"));

  if (const xml::Element* cond = element.child("Conditions")) {
    a.conditions.not_before = parse_int(cond->attr_or("NotBefore", "0"));
    a.conditions.not_on_or_after = parse_int(cond->attr_or("NotOnOrAfter", "0"));
    a.conditions.audience = cond->attr_or("Audience", "");
  }

  if (const xml::Element* stmt = element.child("AttributeStatement")) {
    for (const xml::Element* attr : stmt->children_named("Attribute")) {
      const std::string id = require_attr(*attr, "AttributeId");
      core::Bag bag;
      for (const xml::Element* value : attr->children_named("Value")) {
        const auto type =
            core::data_type_from_string(value->attr_or("DataType", "string"));
        if (!type) fail("bad data type in attribute '" + id + "'");
        const auto v = core::AttributeValue::from_text(*type, value->text);
        if (!v) fail("bad value in attribute '" + id + "'");
        bag.add(*v);
      }
      a.attributes[id] = std::move(bag);
    }
  }

  if (const xml::Element* stmt = element.child("AuthzDecisionStatement")) {
    AuthzDecisionStatement s;
    s.resource = require_attr(*stmt, "Resource");
    s.action = require_attr(*stmt, "Action");
    s.decision = parse_decision(require_attr(*stmt, "Decision"));
    a.authz = std::move(s);
  }
  return a;
}

std::string Assertion::canonical_form() const { return xml::to_string(to_xml()); }

std::string SignedAssertion::to_wire() const {
  xml::Element e("SignedAssertion");
  e.add_child(assertion.to_xml());
  xml::Element& sig = e.add_child("Signature");
  sig.set_attr("KeyId", signature.key_id);
  sig.text = common::base64_encode(signature.tag);
  return xml::to_string(e);
}

SignedAssertion SignedAssertion::from_wire(const std::string& wire) {
  const xml::Element e = xml::parse(wire);
  if (e.name != "SignedAssertion") fail("expected <SignedAssertion>");
  const xml::Element* assertion_el = e.child("Assertion");
  const xml::Element* sig_el = e.child("Signature");
  if (assertion_el == nullptr || sig_el == nullptr) {
    fail("missing <Assertion> or <Signature>");
  }
  SignedAssertion out;
  out.assertion = Assertion::from_xml(*assertion_el);
  out.signature.key_id = require_attr(*sig_el, "KeyId");
  const auto tag = common::base64_decode(sig_el->text);
  if (!tag) fail("bad signature encoding");
  out.signature.tag = *tag;
  return out;
}

SignedAssertion sign_assertion(Assertion assertion, const crypto::KeyPair& issuer_key) {
  SignedAssertion out;
  out.signature = crypto::sign(issuer_key, assertion.canonical_form());
  out.assertion = std::move(assertion);
  return out;
}

const char* to_string(TokenValidity v) {
  switch (v) {
    case TokenValidity::kValid: return "valid";
    case TokenValidity::kExpired: return "expired";
    case TokenValidity::kNotYetValid: return "not-yet-valid";
    case TokenValidity::kWrongAudience: return "wrong-audience";
    case TokenValidity::kBadSignature: return "bad-signature";
    case TokenValidity::kUntrustedIssuer: return "untrusted-issuer";
  }
  return "?";
}

TokenValidity validate(const SignedAssertion& token, const crypto::TrustStore& trust,
                       common::TimePoint now, const std::string& expected_audience) {
  // Signature first: nothing in an unauthenticated token can be trusted.
  if (!crypto::verify_signature(token.assertion.canonical_form(), token.signature)) {
    return TokenValidity::kBadSignature;
  }
  if (!trust.is_trusted(token.signature.key_id)) {
    return TokenValidity::kUntrustedIssuer;
  }
  const Conditions& c = token.assertion.conditions;
  if (now < c.not_before) return TokenValidity::kNotYetValid;
  if (c.not_on_or_after != 0 && now >= c.not_on_or_after) {
    return TokenValidity::kExpired;
  }
  if (!c.audience.empty() && c.audience != expected_audience) {
    return TokenValidity::kWrongAudience;
  }
  return TokenValidity::kValid;
}

}  // namespace mdac::tokens
