// SAML-shaped security assertions (paper §2.3: "capabilities are usually
// encoded as SAML assertions" in Web-Service environments).
//
// An Assertion binds a subject to attribute statements and/or an
// authorisation-decision statement, under conditions (validity window,
// audience restriction), vouched for by an issuer's signature over the
// canonical XML form. Validation reproduces the failure modes the paper's
// capability architecture depends on: expiry, audience mismatch,
// tampering, untrusted issuer.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/clock.hpp"
#include "core/attribute.hpp"
#include "core/decision.hpp"
#include "crypto/keys.hpp"
#include "xml/xml.hpp"

namespace mdac::tokens {

struct Conditions {
  common::TimePoint not_before = 0;
  common::TimePoint not_on_or_after = 0;
  std::string audience;  // empty = unrestricted

  bool operator==(const Conditions&) const = default;
};

/// SAML AuthzDecisionStatement equivalent.
struct AuthzDecisionStatement {
  std::string resource;
  std::string action;
  core::DecisionType decision = core::DecisionType::kPermit;

  bool operator==(const AuthzDecisionStatement&) const = default;
};

struct Assertion {
  std::string assertion_id;
  std::string issuer;
  std::string subject;
  common::TimePoint issue_instant = 0;
  Conditions conditions;
  /// AttributeStatement: attribute id -> values.
  std::map<std::string, core::Bag> attributes;
  std::optional<AuthzDecisionStatement> authz;

  xml::Element to_xml() const;
  static Assertion from_xml(const xml::Element& element);  // throws

  /// Canonical byte string covered by the signature.
  std::string canonical_form() const;

  bool operator==(const Assertion&) const = default;
};

struct SignedAssertion {
  Assertion assertion;
  crypto::Signature signature;

  /// Wire form: <SignedAssertion><Assertion .../><Signature .../></...>.
  std::string to_wire() const;
  static SignedAssertion from_wire(const std::string& wire);  // throws
};

SignedAssertion sign_assertion(Assertion assertion, const crypto::KeyPair& issuer_key);

enum class TokenValidity {
  kValid,
  kExpired,
  kNotYetValid,
  kWrongAudience,
  kBadSignature,
  kUntrustedIssuer,
};

const char* to_string(TokenValidity v);

/// Validates against the verifier's trust store, clock and own audience
/// identifier (empty `expected_audience` accepts unrestricted tokens only).
TokenValidity validate(const SignedAssertion& token, const crypto::TrustStore& trust,
                       common::TimePoint now, const std::string& expected_audience);

}  // namespace mdac::tokens
