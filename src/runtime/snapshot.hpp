// Snapshot-published policy state — the read side of the mdac::runtime
// decision-engine (paper §3: one decision service, many domains' PEPs).
//
// The core thread-safety contract (core/pdp.hpp) is per-thread: a Pdp
// replica must never observe its PolicyStore mutating. The single-
// threaded reproduction satisfied that trivially; a multi-threaded
// runtime cannot, so policy state crosses the PAP→worker boundary as an
// immutable *snapshot*:
//
//   * `PolicySnapshot` — a frozen PolicyStore (with its compile-on-issue
//     artifact attachments — plain policies and compiled PolicySet trees
//     alike) plus a monotonically increasing version. Nothing mutates a
//     store after it is wrapped in a snapshot; every worker-side Pdp
//     replica bound to it therefore only ever reads, which the store
//     supports concurrently. Compiled PolicyReference nodes resolve
//     against this same frozen store, so a decision's whole reference
//     closure comes from one snapshot.
//   * `SnapshotPublisher` — the single writer-side cell. `publish()`
//     atomically replaces the current snapshot; readers take a
//     shared_ptr copy at batch boundaries (runtime::DecisionEngine) and
//     keep evaluating against their copy until the next boundary. The
//     shared_ptr *is* the RCU grace period: the old snapshot stays alive
//     exactly as long as some worker still holds it, so a PAP update can
//     never destroy a policy node an in-flight evaluation references —
//     the UB the old contract warned about is structurally gone.
//   * `RepositoryPublisher` — the PAP edge: wraps a pap::PolicyRepository
//     so that every successful issue/update/withdraw republishes the
//     issued policy set as a fresh snapshot (compiled artifacts are
//     shared across snapshots via the store attachments, so republishing
//     does not recompile unchanged policies).
//
// Workers adopting "the latest snapshot at a batch boundary" is the
// consistency model: a decision is always computed against exactly one
// published snapshot — never a half-updated store — which is what the
// churn test (tests/runtime_churn_test.cpp) pins down.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/policy.hpp"
#include "pap/repository.hpp"

namespace mdac::runtime {

/// An immutable, versioned policy working set. The wrapped store must
/// not be mutated after construction (the constructor takes ownership of
/// the caller's last non-const reference by convention); every accessor
/// is then safe from any number of threads.
class PolicySnapshot {
 public:
  PolicySnapshot(std::uint64_t version, std::shared_ptr<core::PolicyStore> store,
                 std::uint64_t source_revision,
                 std::shared_ptr<const analysis::AnalysisReport> findings = nullptr)
      : version_(version),
        source_revision_(source_revision),
        store_(std::move(store)),
        findings_(std::move(findings)) {}

  /// Monotonic publication number (1 = first snapshot ever published).
  std::uint64_t version() const { return version_; }

  /// The pap::PolicyRepository::revision() this snapshot was built from,
  /// or 0 for directly published stores.
  std::uint64_t source_revision() const { return source_revision_; }

  /// The frozen store. Returned as the shared_ptr core::Pdp wants;
  /// holders must honour the no-mutation convention.
  const std::shared_ptr<core::PolicyStore>& store() const { return store_; }

  std::size_t policy_count() const { return store_->size(); }

  /// The issue-time static-analysis report this snapshot was published
  /// under (pap::PolicyRepository::lint_report()), or null when the
  /// source repository never linted / the store was published directly.
  /// Lets replicas surface analyser findings alongside the exact policy
  /// state they execute.
  const std::shared_ptr<const analysis::AnalysisReport>& findings() const {
    return findings_;
  }

 private:
  std::uint64_t version_;
  std::uint64_t source_revision_;
  std::shared_ptr<core::PolicyStore> store_;
  std::shared_ptr<const analysis::AnalysisReport> findings_;
};

/// The single cell through which policy state reaches the runtime.
/// Publishing and reading are both thread-safe; readers get an immutable
/// shared_ptr and publication never blocks on readers (RCU-by-shared_ptr:
/// replaced snapshots die when their last reader drops them).
class SnapshotPublisher {
 public:
  /// Wraps `store` in the next-versioned snapshot and makes it current.
  /// The caller must not mutate `store` afterwards. Returns the snapshot.
  /// `findings` optionally carries the issue-time lint report the store
  /// was built under (publish_from threads it through automatically).
  std::shared_ptr<const PolicySnapshot> publish(
      std::shared_ptr<core::PolicyStore> store, std::uint64_t source_revision = 0,
      std::shared_ptr<const analysis::AnalysisReport> findings = nullptr);

  /// Materialises `repository`'s issued policy set (with compiled
  /// artifacts — the repository has already recompiled reference
  /// dependents by the time any mutation returns, so the attachments are
  /// mutually consistent) into a fresh store and publishes it. Must be
  /// called from the thread that owns the repository (PolicyRepository
  /// itself is single-threaded).
  std::shared_ptr<const PolicySnapshot> publish_from(
      const pap::PolicyRepository& repository);

  /// The current snapshot, or null before the first publish().
  std::shared_ptr<const PolicySnapshot> current() const;

  /// Version of the current snapshot (0 before the first publish). Lock
  /// free — the worker batch-boundary staleness probe reads only this.
  std::uint64_t current_version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Publications are 1:1 with versions (versions start at 1), so this
  /// is the version counter by another, intent-revealing name.
  std::uint64_t publications() const { return current_version(); }

  /// Registers a hook invoked after every publish with the new snapshot
  /// version — the version-based flush signal for *single-consumer*
  /// caches outside the engine (a PEP-side DecisionCache can
  /// `evict_older_than(version)` or `invalidate_all()` here). Hooks run
  /// on the publishing thread, under the publisher's lock: they must be
  /// cheap, must not throw, and must not call back into this publisher.
  /// The engine's workers deliberately do NOT use this — each worker
  /// flushes its own L1 at its batch-boundary adoption, and the shared
  /// L2 is swept with the *minimum* version any worker still serves
  /// (flushing at publish time would evict entries that lagging workers
  /// are still legitimately hitting).
  void add_publish_hook(std::function<void(std::uint64_t)> hook);

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const PolicySnapshot> current_;
  std::vector<std::function<void(std::uint64_t)>> hooks_;
  std::atomic<std::uint64_t> version_{0};
};

/// PAP-side administrative facade: a PolicyRepository whose successful
/// mutations republish the issued set through a SnapshotPublisher, so
/// workers converge on the new policy state at their next batch
/// boundary. Updating = submit(new version) + issue(), exactly the
/// repository's own lifecycle. Not thread-safe (the repository is not);
/// run it on the one PAP thread — concurrency is the *publisher's* job.
class RepositoryPublisher {
 public:
  RepositoryPublisher(pap::PolicyRepository& repository, SnapshotPublisher& publisher)
      : repository_(repository), publisher_(publisher) {}

  /// Drafts never affect the issued set: no republish.
  pap::RepoOutcome submit(const std::string& document, const std::string& author) {
    return repository_.submit(document, author);
  }

  pap::RepoOutcome issue(const std::string& policy_id, const std::string& actor);
  pap::RepoOutcome withdraw(const std::string& policy_id, const std::string& actor);

  /// Unconditional republish (e.g. after out-of-band repository edits).
  std::shared_ptr<const PolicySnapshot> republish() {
    return publisher_.publish_from(repository_);
  }

  pap::PolicyRepository& repository() { return repository_; }
  SnapshotPublisher& publisher() { return publisher_; }

 private:
  pap::PolicyRepository& repository_;
  SnapshotPublisher& publisher_;
};

}  // namespace mdac::runtime
