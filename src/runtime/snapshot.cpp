#include "runtime/snapshot.hpp"

namespace mdac::runtime {

std::shared_ptr<const PolicySnapshot> SnapshotPublisher::publish(
    std::shared_ptr<core::PolicyStore> store, std::uint64_t source_revision,
    std::shared_ptr<const analysis::AnalysisReport> findings) {
  std::lock_guard lock(mutex_);
  const std::uint64_t version = version_.load(std::memory_order_relaxed) + 1;
  auto snapshot = std::make_shared<const PolicySnapshot>(
      version, std::move(store), source_revision, std::move(findings));
  current_ = snapshot;
  // Release-ordered after current_ is in place: a reader that observes
  // version v through current_version() will observe a current() whose
  // version is >= v (current() synchronises through the mutex).
  version_.store(version, std::memory_order_release);
  for (const auto& hook : hooks_) hook(version);
  return snapshot;
}

void SnapshotPublisher::add_publish_hook(std::function<void(std::uint64_t)> hook) {
  std::lock_guard lock(mutex_);
  hooks_.push_back(std::move(hook));
}

std::shared_ptr<const PolicySnapshot> SnapshotPublisher::publish_from(
    const pap::PolicyRepository& repository) {
  auto store = std::make_shared<core::PolicyStore>();
  repository.load_into(store.get());
  return publish(std::move(store), repository.revision(),
                 repository.lint_report());
}

std::shared_ptr<const PolicySnapshot> SnapshotPublisher::current() const {
  std::lock_guard lock(mutex_);
  return current_;
}

pap::RepoOutcome RepositoryPublisher::issue(const std::string& policy_id,
                                            const std::string& actor) {
  pap::RepoOutcome outcome = repository_.issue(policy_id, actor);
  if (outcome) publisher_.publish_from(repository_);
  return outcome;
}

pap::RepoOutcome RepositoryPublisher::withdraw(const std::string& policy_id,
                                               const std::string& actor) {
  pap::RepoOutcome outcome = repository_.withdraw(policy_id, actor);
  if (outcome) publisher_.publish_from(repository_);
  return outcome;
}

}  // namespace mdac::runtime
