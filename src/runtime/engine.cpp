#include "runtime/engine.hpp"

#include <bit>
#include <cmath>
#include <string>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "cache/request_key.hpp"
#include "common/logging.hpp"
#include "obs/registry.hpp"

namespace mdac::runtime {

const char* to_string(CompletionStatus s) {
  switch (s) {
    case CompletionStatus::kDecided: return "decided";
    case CompletionStatus::kShedQueueFull: return "shed-queue-full";
    case CompletionStatus::kShedDeadline: return "shed-deadline";
    case CompletionStatus::kShutdown: return "shutdown";
  }
  return "?";
}

// ---------------------------------------------------------------------
// EngineMetrics
// ---------------------------------------------------------------------

EngineMetrics::EngineMetrics(std::size_t workers, std::size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<WorkerCounters>());
  }
}

void EngineMetrics::record_shed(CompletionStatus cause) {
  switch (cause) {
    case CompletionStatus::kShedQueueFull:
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CompletionStatus::kShedDeadline:
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CompletionStatus::kShutdown:
      shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CompletionStatus::kDecided:
      break;  // not a shed
  }
}

void EngineMetrics::record_batch(std::size_t worker, std::size_t batch_size) {
  WorkerCounters& w = *workers_[worker];
  w.batches.fetch_add(1, std::memory_order_relaxed);
  w.batched_requests.fetch_add(batch_size, std::memory_order_relaxed);
}

void EngineMetrics::record_decided(std::size_t worker, std::uint64_t latency_ns) {
  decided_.fetch_add(1, std::memory_order_relaxed);
  workers_[worker]->ops.fetch_add(1, std::memory_order_relaxed);
  // bit_width maps [2^(i-1), 2^i) to bucket i; 0 -> bucket 0.
  const std::size_t bucket =
      std::min<std::size_t>(std::bit_width(latency_ns), kLatencyBuckets - 1);
  latency_histogram_[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_sum_ns_.fetch_add(latency_ns, std::memory_order_relaxed);
}

namespace {

/// Representative latency of log2 bucket `i` (the bucket's midpoint).
double bucket_value(std::size_t i) {
  if (i == 0) return 0.0;
  return 1.5 * std::ldexp(1.0, static_cast<int>(i) - 1);
}

}  // namespace

void EngineMetrics::reset() {
  submitted_.store(0, std::memory_order_relaxed);
  decided_.store(0, std::memory_order_relaxed);
  version_evictions_.store(0, std::memory_order_relaxed);
  shed_queue_full_.store(0, std::memory_order_relaxed);
  shed_deadline_.store(0, std::memory_order_relaxed);
  shed_shutdown_.store(0, std::memory_order_relaxed);
  adoptions_.store(0, std::memory_order_relaxed);
  queue_depth_.store(0, std::memory_order_relaxed);
  for (const auto& w : workers_) {
    w->ops.store(0, std::memory_order_relaxed);
    w->batches.store(0, std::memory_order_relaxed);
    w->batched_requests.store(0, std::memory_order_relaxed);
    w->l1_hits.store(0, std::memory_order_relaxed);
    w->l2_hits.store(0, std::memory_order_relaxed);
    w->cache_misses.store(0, std::memory_order_relaxed);
    w->l2_retries.store(0, std::memory_order_relaxed);
  }
  for (auto& bucket : latency_histogram_) bucket.store(0, std::memory_order_relaxed);
  latency_sum_ns_.store(0, std::memory_order_relaxed);
}

EngineMetrics::Snapshot EngineMetrics::snapshot() const {
  Snapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.decided = decided_.load(std::memory_order_relaxed);
  s.version_evictions = version_evictions_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_shutdown = shed_shutdown_.load(std::memory_order_relaxed);
  s.snapshot_adoptions = adoptions_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.queue_capacity = queue_capacity_;

  std::uint64_t batches = 0;
  std::uint64_t batched = 0;
  s.worker_ops.reserve(workers_.size());
  for (const auto& w : workers_) {
    s.worker_ops.push_back(w->ops.load(std::memory_order_relaxed));
    batches += w->batches.load(std::memory_order_relaxed);
    batched += w->batched_requests.load(std::memory_order_relaxed);
    s.l1_hits += w->l1_hits.load(std::memory_order_relaxed);
    s.l2_hits += w->l2_hits.load(std::memory_order_relaxed);
    s.cache_misses += w->cache_misses.load(std::memory_order_relaxed);
    s.l2_read_retries += w->l2_retries.load(std::memory_order_relaxed);
  }
  s.cache_hits = s.l1_hits + s.l2_hits;
  s.batches = batches;
  s.mean_batch_size =
      batches > 0 ? static_cast<double>(batched) / static_cast<double>(batches) : 0.0;

  std::array<std::uint64_t, kLatencyBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    counts[i] = latency_histogram_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  s.latency_buckets = counts;
  s.latency_sum_ns = latency_sum_ns_.load(std::memory_order_relaxed);
  if (total > 0) {
    const auto percentile = [&](double q) {
      const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
      std::uint64_t seen = 0;
      for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
        seen += counts[i];
        if (seen > target) return bucket_value(i);
      }
      return bucket_value(kLatencyBuckets - 1);
    };
    s.latency_p50_ns = percentile(0.50);
    s.latency_p90_ns = percentile(0.90);
    s.latency_p99_ns = percentile(0.99);
  }
  return s;
}

// ---------------------------------------------------------------------
// DecisionEngine
// ---------------------------------------------------------------------

DecisionEngine::DecisionEngine(SnapshotPublisher& publisher, EngineConfig config,
                               cache::DecisionCache* cache)
    : publisher_(publisher),
      config_(config),
      cache_(cache),
      metrics_(std::max<std::size_t>(1, config.workers),
               std::max<std::size_t>(1, config.queue_capacity)) {
  config_.workers = std::max<std::size_t>(1, config_.workers);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  adopted_versions_ = std::make_unique<AdoptedVersion[]>(config_.workers);
  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

DecisionEngine::~DecisionEngine() { shutdown(Drain::kDrain); }

EngineResult DecisionEngine::shed_result(CompletionStatus status) {
  EngineResult r;
  r.status = status;
  const char* message = kShutdownMessage;
  if (status == CompletionStatus::kShedQueueFull) message = kShedQueueFullMessage;
  if (status == CompletionStatus::kShedDeadline) message = kShedDeadlineMessage;
  r.decision = core::Decision::indeterminate(core::IndeterminateExtent::kDP,
                                             core::Status::processing_error(message));
  return r;
}

std::future<EngineResult> DecisionEngine::submit(core::RequestContext request) {
  return submit(std::move(request), config_.default_deadline_ms);
}

std::future<EngineResult> DecisionEngine::submit(core::RequestContext request,
                                                 common::Duration deadline_ms) {
  auto promise = std::make_shared<std::promise<EngineResult>>();
  std::future<EngineResult> result = promise->get_future();
  submit(
      std::move(request),
      [promise](EngineResult r) { promise->set_value(std::move(r)); }, deadline_ms);
  return result;
}

void DecisionEngine::submit(core::RequestContext request, Callback callback) {
  submit(std::move(request), std::move(callback), config_.default_deadline_ms);
}

void DecisionEngine::submit(core::RequestContext request, Callback callback,
                            common::Duration deadline_ms) {
  metrics_.record_submitted();

  const auto now = SteadyClock::now();
  Job job;
  job.request = std::move(request);
  job.callback = std::move(callback);
  job.enqueued = now;
  job.deadline = deadline_ms > 0 ? now + std::chrono::milliseconds(deadline_ms)
                                 : SteadyClock::time_point::max();
  if (config_.tracer != nullptr) {
    // Admission: one relaxed fetch_add on the untraced path; only a
    // head-sampled request allocates its span recorder.
    const obs::TraceHandle handle = config_.tracer->admit();
    job.trace_id = handle.id;
    if (handle.sampled) {
      job.trace = std::make_unique<obs::Trace>();
      job.trace->trace_id = handle.id;
      job.trace->started_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now.time_since_epoch())
              .count());
      job.trace->record(obs::SpanKind::kAdmission, job.trace->started_ns);
    }
  }

  CompletionStatus shed = CompletionStatus::kDecided;
  {
    std::lock_guard lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      shed = CompletionStatus::kShutdown;
    } else if (queue_.size() >= config_.queue_capacity) {
      shed = CompletionStatus::kShedQueueFull;
    } else {
      queue_.push_back(std::move(job));
      metrics_.set_queue_depth(queue_.size());
    }
  }
  if (shed != CompletionStatus::kDecided) {
    // Deterministic admission control: the submitter learns immediately,
    // on its own thread, that this request was refused.
    metrics_.record_shed(shed);
    EngineResult result = shed_result(shed);
    result.trace_id = job.trace_id;
    publish_trace(job, result, obs::Trace::kNoWorker);
    invoke_callback(job.callback, std::move(result));
    return;
  }
  ready_.notify_one();
}

void DecisionEngine::shutdown(Drain drain) {
  std::lock_guard shutdown_lock(shutdown_mutex_);
  std::vector<Job> discarded;
  {
    std::lock_guard lock(mutex_);
    stopping_.store(true, std::memory_order_release);
    if (drain == Drain::kDiscard) {
      discarded.reserve(queue_.size());
      while (!queue_.empty()) {
        discarded.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics_.set_queue_depth(0);
    }
  }
  ready_.notify_all();
  for (Job& job : discarded) {
    metrics_.record_shed(CompletionStatus::kShutdown);
    EngineResult result = shed_result(CompletionStatus::kShutdown);
    result.trace_id = job.trace_id;
    publish_trace(job, result, obs::Trace::kNoWorker);
    invoke_callback(job.callback, std::move(result));
  }
  if (!joined_) {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    joined_ = true;
  }
}

std::size_t DecisionEngine::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

bool DecisionEngine::pop_batch(Worker& worker) {
  std::unique_lock lock(mutex_);
  ready_.wait(lock, [this] {
    return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
  });
  if (queue_.empty()) return false;  // stopping and drained
  const std::size_t n = std::min(config_.max_batch, queue_.size());
  worker.jobs.clear();
  worker.jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    worker.jobs.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  metrics_.set_queue_depth(queue_.size());
  // More work than one batch: wake a sibling before evaluating.
  const bool more = !queue_.empty();
  lock.unlock();
  if (more) ready_.notify_one();
  return true;
}

void DecisionEngine::adopt_snapshot(std::size_t index, Worker& worker) {
  const std::uint64_t version = publisher_.current_version();
  const std::uint64_t held = worker.snapshot ? worker.snapshot->version() : 0;
  if (held == version) return;
  auto latest = publisher_.current();
  if (latest == nullptr) return;  // nothing published yet
  if (worker.snapshot && latest->version() == worker.snapshot->version()) return;
  worker.snapshot = std::move(latest);
  // A fresh replica per snapshot honours core::Pdp's one-thread contract
  // and rebinds it to the new immutable store; dropping the old
  // shared_ptr is the RCU grace edge for the replaced snapshot.
  worker.pdp = std::make_unique<core::Pdp>(worker.snapshot->store(), config_.pdp);
  if (config_.resolver != nullptr) worker.pdp->set_resolver(config_.resolver);
  if (config_.functions != nullptr) worker.pdp->set_functions(config_.functions);
  metrics_.record_adoption();
  // The L1's entries all carry the replaced version — drop them now
  // (rather than letting version-mismatch lookups age them out) so the
  // memory is reclaimed at the adoption edge.
  worker.l1.flush();
  // Publish this worker's new floor, then sweep the shared cache up to
  // the *minimum* adopted version: entries under versions no worker
  // serves any more are unreachable and only waste slots.
  adopted_versions_[index].version.store(worker.snapshot->version(),
                                         std::memory_order_release);
  maybe_sweep_cache();
}

void DecisionEngine::maybe_sweep_cache() {
  if (cache_ == nullptr) return;
  std::uint64_t min_adopted = 0;
  for (std::size_t i = 0; i < config_.workers; ++i) {
    const std::uint64_t v = adopted_versions_[i].version.load(std::memory_order_acquire);
    if (v == 0) continue;  // never adopted: holds no cache entries
    if (min_adopted == 0 || v < min_adopted) min_adopted = v;
  }
  if (min_adopted == 0) return;
  // One adopting worker wins the CAS and runs the sweep; concurrent
  // adopters at the same or a lower watermark skip it. A worker lagging
  // on an old snapshot keeps the watermark down, so its L2 entries
  // survive until it moves on — the sweep is conservative by
  // construction.
  std::uint64_t prev = swept_below_.load(std::memory_order_relaxed);
  while (min_adopted > prev &&
         !swept_below_.compare_exchange_weak(prev, min_adopted,
                                             std::memory_order_acq_rel)) {
  }
  if (min_adopted > prev) {
    const std::size_t removed = cache_->evict_older_than(min_adopted);
    metrics_.record_version_evictions(removed);
  }
}

void DecisionEngine::complete(Job& job, EngineResult result, std::size_t worker_index,
                              bool count_as_decided) {
  if (count_as_decided) {
    const auto latency = SteadyClock::now() - job.enqueued;
    metrics_.record_decided(
        worker_index,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(latency).count()));
  } else {
    metrics_.record_shed(result.status);
  }
  result.trace_id = job.trace_id;
  publish_trace(job, result, static_cast<std::uint32_t>(worker_index));
  invoke_callback(job.callback, std::move(result));
}

void DecisionEngine::publish_trace(Job& job, const EngineResult& result,
                                   std::uint32_t worker) {
  obs::DecisionTracer* tracer = config_.tracer;
  if (tracer == nullptr || job.trace_id == 0) return;
  const bool anomaly = result.status != CompletionStatus::kDecided ||
                       result.decision.is_indeterminate();
  obs::Trace* trace = job.trace.get();
  obs::Trace synthesized;
  if (trace == nullptr) {
    // Tail sampling: the admission wasn't head-sampled, but the outcome
    // is one an operator always wants to see. Reconstruct the trace from
    // what this completion site knows; allocation on the anomaly path is
    // acceptable (anomalies are the exception, not the throughput).
    if (!anomaly || !tracer->always_sample_anomalies()) return;
    synthesized.trace_id = job.trace_id;
    synthesized.started_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            job.enqueued.time_since_epoch())
            .count());
    synthesized.record(obs::SpanKind::kAdmission, synthesized.started_ns);
    trace = &synthesized;
  }
  trace->anomaly = anomaly;
  trace->finished_ns = obs::monotonic_ns();
  trace->worker = worker;
  trace->snapshot_version = result.snapshot_version;
  trace->cache_level = result.cache_level;
  trace->decision = result.decision.type;
  switch (result.status) {
    case CompletionStatus::kDecided:
      trace->outcome = obs::TraceOutcome::kDecided;
      break;
    case CompletionStatus::kShedQueueFull:
      trace->outcome = obs::TraceOutcome::kShedQueueFull;
      break;
    case CompletionStatus::kShedDeadline:
      trace->outcome = obs::TraceOutcome::kShedDeadline;
      break;
    case CompletionStatus::kShutdown:
      trace->outcome = obs::TraceOutcome::kShutdown;
      break;
  }
  if (obs::Span* s = trace->record(obs::SpanKind::kOutcome, trace->finished_ns)) {
    s->set_tag(to_string(result.status));
  }
  tracer->publish(*trace);
  job.trace.reset();
}

void DecisionEngine::invoke_callback(Callback& callback, EngineResult result) {
  // A throwing completion callback must never take down its caller — a
  // worker (and with it every queued request), shutdown()'s discard
  // loop, or a submitter mid-shed. catch (...) on purpose: the promise
  // path never throws, and arbitrary user callbacks can throw anything.
  const std::uint64_t trace_id = result.trace_id;
  try {
    callback(std::move(result));
  } catch (const std::exception& e) {
    common::log_error("runtime: completion callback threw",
                      {{"trace", trace_id}, {"what", e.what()}});
  } catch (...) {
    common::log_error("runtime: completion callback threw a non-exception value",
                      {{"trace", trace_id}});
  }
}

void DecisionEngine::process_batch(std::size_t index, Worker& worker) {
  metrics_.record_batch(index, worker.jobs.size());
  adopt_snapshot(index, worker);
  const std::uint64_t version = worker.snapshot ? worker.snapshot->version() : 0;
  // Cache keys are (request fingerprint, snapshot version) in both
  // modes: a republication makes every old entry unreachable (and the
  // adoption-time sweep reclaims it) instead of serving decisions from
  // withdrawn policy — the "every decision is consistent with exactly
  // one snapshot" model extends to cache hits, with no invalidation
  // stampede on publish. The worker's private L1 is probed first (zero
  // synchronisation), then the shared store; an L2 hit is promoted into
  // the L1.
  const bool use_l1 = cache_ != nullptr && worker.l1_enabled &&
                      cache_->mode() == cache::DecisionCache::Mode::kTwoLevel;

  worker.requests.clear();
  worker.pending.clear();
  worker.pending_keys.clear();
  const auto now = SteadyClock::now();
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch())
          .count());
  for (std::size_t i = 0; i < worker.jobs.size(); ++i) {
    Job& job = worker.jobs[i];
    if (job.trace != nullptr) {  // null on the untraced hot path
      if (obs::Span* s = job.trace->record(obs::SpanKind::kQueueWait, now_ns)) {
        s->a = now_ns >= job.trace->started_ns ? now_ns - job.trace->started_ns : 0;
      }
      if (obs::Span* s = job.trace->record(obs::SpanKind::kBatch, now_ns)) {
        s->a = index;
        s->b = worker.jobs.size();
      }
    }
    if (job.deadline < now) {
      complete(job, shed_result(CompletionStatus::kShedDeadline), index,
               /*count_as_decided=*/false);
      continue;
    }
    if (cache_ != nullptr && worker.snapshot != nullptr) {
      const cache::RequestKey key = cache::fingerprint(job.request);
      if (use_l1) {
        if (const core::Decision* hit = worker.l1.lookup(key, version)) {
          metrics_.record_l1_hit(index);
          if (job.trace != nullptr) {
            if (obs::Span* s = job.trace->record(obs::SpanKind::kCacheProbe,
                                                 obs::monotonic_ns())) {
              s->a = 1;  // L1
            }
          }
          EngineResult r;
          r.decision = *hit;
          r.snapshot_version = version;
          r.cache_hit = true;
          r.cache_level = 1;
          complete(job, std::move(r), index, /*count_as_decided=*/true);
          continue;
        }
      }
      std::uint64_t retries = 0;
      if (auto hit = cache_->lookup(key, version, worker.group, &retries)) {
        metrics_.record_l2_hit(index, retries);
        if (use_l1) worker.l1.insert(key, version, *hit);
        if (job.trace != nullptr) {
          if (obs::Span* s = job.trace->record(obs::SpanKind::kCacheProbe,
                                               obs::monotonic_ns())) {
            s->a = 2;  // L2
            s->b = retries;
          }
        }
        EngineResult r;
        r.decision = std::move(*hit);
        r.snapshot_version = version;
        r.cache_hit = true;
        r.cache_level = 2;
        complete(job, std::move(r), index, /*count_as_decided=*/true);
        continue;
      }
      metrics_.record_cache_miss(index, retries);
      if (job.trace != nullptr) {
        if (obs::Span* s = job.trace->record(obs::SpanKind::kCacheProbe,
                                             obs::monotonic_ns())) {
          s->a = 0;  // miss
          s->b = retries;
        }
      }
      worker.pending_keys.push_back(key);
    }
    worker.pending.push_back(i);
    worker.requests.push_back(std::move(job.request));
  }
  if (worker.pending.empty()) return;

  if (worker.pdp == nullptr) {
    // No snapshot was ever published: answer fail-safe, don't crash the
    // service (the PEP's deny bias turns this into deny).
    for (std::size_t i = 0; i < worker.pending.size(); ++i) {
      EngineResult r;
      r.decision = core::Decision::indeterminate(
          core::IndeterminateExtent::kDP,
          core::Status::processing_error(kNoSnapshotMessage));
      complete(worker.jobs[worker.pending[i]], std::move(r), index,
               /*count_as_decided=*/true);
    }
    return;
  }

  // Evaluation failures are data (core::Status), so a throw here is
  // exceptional (resource exhaustion, a resolver bug). Either way the
  // worker must survive — catch (...) because a shared resolver is user
  // code and can throw anything — and the batch is answered fail-safe.
  std::vector<core::PdpResult> results;
  std::string evaluation_error;
  try {
    results = worker.pdp->evaluate_batch(std::span<const core::RequestContext>(
        worker.requests.data(), worker.requests.size()));
  } catch (const std::exception& e) {
    evaluation_error = std::string("evaluation failed: ") + e.what();
  } catch (...) {
    evaluation_error = "evaluation failed: non-exception value thrown";
  }
  if (!evaluation_error.empty()) {
    common::log_error("runtime: batch evaluation threw",
                      {{"worker", static_cast<std::uint64_t>(index)},
                       {"batch", static_cast<std::uint64_t>(worker.pending.size())},
                       {"error", evaluation_error}});
    for (const std::size_t job_index : worker.pending) {
      EngineResult r;
      r.decision = core::Decision::indeterminate(
          core::IndeterminateExtent::kDP,
          core::Status::processing_error(evaluation_error));
      complete(worker.jobs[job_index], std::move(r), index, /*count_as_decided=*/true);
    }
    return;
  }
  for (std::size_t i = 0; i < worker.pending.size(); ++i) {
    Job& evaluated = worker.jobs[worker.pending[i]];
    if (evaluated.trace != nullptr) {
      if (obs::Span* s =
              evaluated.trace->record(obs::SpanKind::kEvaluate, obs::monotonic_ns())) {
        s->a = index;
        s->b = results[i].partitions_probed;
        s->c = results[i].compile.compiled_policies;
      }
    }
    EngineResult r;
    r.decision = std::move(results[i].decision);
    r.snapshot_version = version;
    if (cache_ != nullptr && (r.decision.is_permit() || r.decision.is_deny())) {
      // pending_keys[i] was filled alongside pending[i] (cache_ non-null
      // implies the lookup path ran): the fingerprint is computed once
      // per request, shared by the probe and both fills.
      cache_->insert(worker.pending_keys[i], version, r.decision, worker.group);
      if (use_l1) worker.l1.insert(worker.pending_keys[i], version, r.decision);
    }
    complete(worker.jobs[worker.pending[i]], std::move(r), index,
             /*count_as_decided=*/true);
  }
}

namespace {

/// Pins the calling thread to `core`. Linux-only; other platforms are a
/// graceful no-op returning false.
bool pin_current_thread(std::size_t core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace

void DecisionEngine::worker_loop(std::size_t index) {
  // Placement first, allocation second: pinning before the Worker (Pdp
  // replica, L1, scratch) is constructed means first-touch lands every
  // worker-local page on the core the worker will run on. Pinning is
  // skipped wholesale when the host has fewer cores than workers —
  // oversubscribed workers must stay migratable or they serialise on
  // whatever cores the pins happen to share.
  if (config_.pin_workers) {
    const std::size_t cores = std::thread::hardware_concurrency();
    if (cores >= config_.workers && pin_current_thread(index % cores)) {
      pinned_workers_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  Worker worker(config_.l1_capacity);
  // Workers map onto the shared cache's placement groups in contiguous
  // blocks (workers 0..k-1 → group 0, …): each group's slot table is
  // only ever touched by its own workers, and duplication of hot
  // decisions across groups is the intended trade for locality.
  if (cache_ != nullptr && cache_->group_count() > 1) {
    worker.group = index * cache_->group_count() / config_.workers;
  }
  while (pop_batch(worker)) {
    process_batch(index, worker);
    worker.jobs.clear();
  }
}

std::uint64_t DecisionEngine::register_metrics(obs::Registry& registry) const {
  return registry.add_collector([this](obs::MetricSink& sink) {
    const EngineMetrics::Snapshot s = metrics_.snapshot();
    sink.counter("mdac_engine_submitted_total", "Requests submitted to the engine.",
                 static_cast<double>(s.submitted));
    sink.counter("mdac_engine_decided_total",
                 "Requests completed with a decision (evaluated or cache-served).",
                 static_cast<double>(s.decided));
    sink.counter("mdac_engine_cache_hits_total",
                 "Decision-cache hits by level (l1 = worker-private, l2 = shared).",
                 static_cast<double>(s.l1_hits), {{"level", "l1"}});
    sink.counter("mdac_engine_cache_hits_total",
                 "Decision-cache hits by level (l1 = worker-private, l2 = shared).",
                 static_cast<double>(s.l2_hits), {{"level", "l2"}});
    sink.counter("mdac_engine_cache_misses_total",
                 "Decision-cache lookups answered by evaluation.",
                 static_cast<double>(s.cache_misses));
    sink.counter("mdac_engine_l2_read_retries_total",
                 "Seqlock re-reads on the shared cache level.",
                 static_cast<double>(s.l2_read_retries));
    sink.counter("mdac_engine_version_evictions_total",
                 "Cache entries reclaimed by the snapshot-version sweep.",
                 static_cast<double>(s.version_evictions));
    sink.counter("mdac_engine_sheds_total", "Requests shed by cause.",
                 static_cast<double>(s.shed_queue_full), {{"cause", "queue-full"}});
    sink.counter("mdac_engine_sheds_total", "Requests shed by cause.",
                 static_cast<double>(s.shed_deadline), {{"cause", "deadline"}});
    sink.counter("mdac_engine_sheds_total", "Requests shed by cause.",
                 static_cast<double>(s.shed_shutdown), {{"cause", "shutdown"}});
    sink.counter("mdac_engine_batches_total", "Micro-batches drained by workers.",
                 static_cast<double>(s.batches));
    sink.counter("mdac_engine_snapshot_adoptions_total",
                 "Snapshot adoptions across all workers.",
                 static_cast<double>(s.snapshot_adoptions));
    sink.gauge("mdac_engine_queue_depth", "Instantaneous submission-queue depth.",
               static_cast<double>(s.queue_depth));
    sink.gauge("mdac_engine_queue_capacity", "Admission bound of the queue.",
               static_cast<double>(s.queue_capacity));
    for (std::size_t i = 0; i < s.worker_ops.size(); ++i) {
      sink.counter("mdac_engine_worker_ops_total", "Decisions completed per worker.",
                   static_cast<double>(s.worker_ops[i]),
                   {{"worker", std::to_string(i)}});
    }
    obs::Histogram::Snapshot latency;
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      latency.counts[i] = s.latency_buckets[i];
      latency.total += s.latency_buckets[i];
    }
    latency.sum = s.latency_sum_ns;
    sink.histogram("mdac_engine_latency_ns",
                   "Completion latency (enqueue to callback), log2 ns buckets.",
                   latency);
  });
}

std::function<core::Decision(const core::RequestContext&)> engine_decision_source(
    DecisionEngine& engine) {
  return [&engine](const core::RequestContext& request) {
    std::future<EngineResult> f = engine.submit(request);
    return std::move(f.get().decision);
  };
}

}  // namespace mdac::runtime
