// mdac::runtime::DecisionEngine — the multi-threaded decision-engine
// runtime over snapshot-published policy state (runtime/snapshot.hpp).
//
// The paper's dependability argument (§3) has one PDP service answering
// many domains' PEPs concurrently; core::Pdp is deliberately
// single-threaded (see the thread-safety contract in core/pdp.hpp). The
// engine bridges the two without weakening either side:
//
//   * N worker threads, each owning a *private* core::Pdp replica — the
//     documented one-Pdp-per-thread shape — bound to an immutable
//     PolicySnapshot. Workers adopt the latest snapshot only at batch
//     boundaries, so every decision is computed against exactly one
//     published policy state.
//   * A bounded MPMC submission queue with micro-batching: a worker
//     drains up to `max_batch` requests at once into
//     Pdp::evaluate_batch, which amortises the staleness probe and keeps
//     the per-request scratch warm.
//   * Deterministic overload shedding: a submission that finds the queue
//     at capacity is *immediately* completed with Indeterminate{DP} and
//     a distinct status message (kShedQueueFullMessage) instead of
//     queueing unboundedly — the PEP's fail-safe deny bias then applies
//     (pep::EnforcementPoint treats Indeterminate as deny). Per-request
//     deadlines shed the same way at dequeue time: a request that waited
//     past its deadline is answered, not silently evaluated late.
//   * Graceful drain on shutdown: `shutdown(Drain::kDrain)` stops
//     admission, lets the workers empty the queue, then joins them;
//     `Drain::kDiscard` completes queued requests with kShutdown.
//   * EngineMetrics: queue depth, sheds by cause, per-worker ops, batch
//     sizes and completion-latency percentiles — the saturation signals
//     a dependability::HeartbeatMonitor-style health check or the bench
//     harness reads to observe overload (shed_rate / saturation).
//
// An optional cache::DecisionCache is shared across all workers: hits
// complete without touching a Pdp, misses are filled with definitive
// decisions. Entries are keyed by (request fingerprint, snapshot
// version), so policy republication implicitly invalidates. Two shapes
// (see ARCHITECTURE.md §"Decision cache"):
//
//   * mutex-sharded mode — the original single-level path; every worker
//     hits the shared sharded store directly.
//   * two-level mode — each worker fronts the shared seqlock L2 with a
//     private zero-synchronisation L1 (cache::WorkerL1Cache), allocated
//     on the worker thread at startup (first-touch) and flushed at
//     snapshot adoption; L2 lookups are lock-free seqlock reads, and
//     workers map onto the cache's placement *groups* so a worker only
//     ever touches slots of its own group.
//
// In both modes the engine sweeps entries of withdrawn versions on
// snapshot adoption (DecisionCache::evict_older_than with the minimum
// version any worker still serves), so long-running engines don't
// accumulate unreachable entries.
//
// Completion callbacks run on a worker thread — except shed-on-submit
// (queue full / shutdown), which completes on the submitting thread
// before `submit` returns; that is what makes shedding deterministic.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "cache/decision_cache.hpp"
#include "common/clock.hpp"
#include "core/pdp.hpp"
#include "obs/trace.hpp"
#include "runtime/snapshot.hpp"

namespace mdac::runtime {

/// Status messages carried by shed decisions. Distinct from every
/// evaluation-produced status so a PEP (or operator) can tell "the
/// engine refused under load" from "the policy tree failed".
inline constexpr const char* kShedQueueFullMessage = "overload-shed: queue full";
inline constexpr const char* kShedDeadlineMessage = "overload-shed: deadline exceeded";
inline constexpr const char* kShutdownMessage = "overload-shed: engine shut down";
inline constexpr const char* kNoSnapshotMessage = "no policy snapshot published";

/// Every shed status above shares this prefix — the stable contract
/// remote dispatchers classify on (see pep::classify_reply): a shed is
/// the *replica* saying "alive but refusing under load", which is a
/// retryable signal for a replicated client, not a decision to enforce.
inline constexpr std::string_view kShedStatusPrefix = "overload-shed: ";

constexpr bool is_shed_status(std::string_view message) {
  return message.size() >= kShedStatusPrefix.size() &&
         message.substr(0, kShedStatusPrefix.size()) == kShedStatusPrefix;
}

enum class CompletionStatus {
  kDecided,        ///< evaluated (or served from the shared cache)
  kShedQueueFull,  ///< admission control: queue was at capacity
  kShedDeadline,   ///< waited past its deadline before a worker got to it
  kShutdown,       ///< engine stopped before this request was evaluated
};

const char* to_string(CompletionStatus s);

struct EngineResult {
  CompletionStatus status = CompletionStatus::kDecided;
  core::Decision decision;
  /// Version of the snapshot the decision was computed against (0 for
  /// sheds). Cache hits carry it too: cache keys are scoped to the
  /// snapshot version, so a hit is always an entry some worker filled
  /// under the SAME snapshot — a republication makes old entries
  /// unreachable instead of serving withdrawn policy.
  std::uint64_t snapshot_version = 0;
  bool cache_hit = false;
  /// Which cache level served the hit: 0 = evaluated (or not cached),
  /// 1 = worker-private L1, 2 = shared L2 / mutex-sharded store.
  std::uint8_t cache_level = 0;
  /// Trace id assigned at admission when an obs::DecisionTracer is
  /// configured (0 otherwise) — the correlation key for explain traces
  /// and structured log lines.
  std::uint64_t trace_id = 0;

  bool decided() const { return status == CompletionStatus::kDecided; }
};

/// Aggregated engine counters, all updated with relaxed atomics on the
/// hot path and read as a consistent-enough snapshot by health checks
/// and the bench harness.
class EngineMetrics {
 public:
  struct Snapshot {
    std::uint64_t submitted = 0;
    std::uint64_t decided = 0;
    /// l1_hits + l2_hits (l1 is always 0 for mutex-sharded caches, which
    /// count every hit as l2 — the shared level).
    std::uint64_t cache_hits = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t cache_misses = 0;      // lookups answered by evaluation
    std::uint64_t l2_read_retries = 0;   // seqlock re-reads (two-level mode)
    std::uint64_t version_evictions = 0; // entries reclaimed by the sweep
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t shed_shutdown = 0;
    std::uint64_t batches = 0;
    std::uint64_t snapshot_adoptions = 0;
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    std::vector<std::uint64_t> worker_ops;  // decided per worker
    double mean_batch_size = 0;
    /// Approximate completion-latency percentiles (enqueue → callback)
    /// from a log2-bucketed histogram: right within ~1.5x of a bucket.
    double latency_p50_ns = 0;
    double latency_p90_ns = 0;
    double latency_p99_ns = 0;
    /// Raw log2 latency buckets + sum — what the obs::Registry collector
    /// re-exports as a native Prometheus histogram.
    std::array<std::uint64_t, 64> latency_buckets{};
    std::uint64_t latency_sum_ns = 0;

    std::uint64_t sheds() const {
      return shed_queue_full + shed_deadline + shed_shutdown;
    }
    /// Fraction of submissions shed — the overload signal a
    /// HeartbeatMonitor-style health check keys on.
    double shed_rate() const {
      return submitted > 0 ? static_cast<double>(sheds()) / static_cast<double>(submitted)
                           : 0.0;
    }
    /// Instantaneous queue fill fraction (1.0 = at the admission bound).
    double saturation() const {
      return queue_capacity > 0
                 ? static_cast<double>(queue_depth) / static_cast<double>(queue_capacity)
                 : 0.0;
    }
  };

  EngineMetrics(std::size_t workers, std::size_t queue_capacity);

  void record_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void record_shed(CompletionStatus cause);
  /// Cache-path counters live in the padded per-worker blocks: the hit
  /// path must not rendezvous all workers on one shared counter line.
  void record_l1_hit(std::size_t worker) {
    workers_[worker]->l1_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void record_l2_hit(std::size_t worker, std::uint64_t retries) {
    WorkerCounters& w = *workers_[worker];
    w.l2_hits.fetch_add(1, std::memory_order_relaxed);
    if (retries != 0) w.l2_retries.fetch_add(retries, std::memory_order_relaxed);
  }
  void record_cache_miss(std::size_t worker, std::uint64_t retries) {
    WorkerCounters& w = *workers_[worker];
    w.cache_misses.fetch_add(1, std::memory_order_relaxed);
    if (retries != 0) w.l2_retries.fetch_add(retries, std::memory_order_relaxed);
  }
  void record_version_evictions(std::uint64_t count) {
    version_evictions_.fetch_add(count, std::memory_order_relaxed);
  }
  void record_batch(std::size_t worker, std::size_t batch_size);
  void record_decided(std::size_t worker, std::uint64_t latency_ns);
  void record_adoption() { adoptions_.fetch_add(1, std::memory_order_relaxed); }
  void set_queue_depth(std::size_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
  }

  Snapshot snapshot() const;

  /// Zeroes every counter and the latency histogram (queue capacity is
  /// configuration and stays). Benchmark support: call only while the
  /// engine is QUIESCENT (no submissions in flight, workers parked) so
  /// warmup traffic can be excluded from the measured window; resetting
  /// under load loses concurrent increments.
  void reset();

 private:
  static constexpr std::size_t kLatencyBuckets = 64;

  /// Padded per-worker counters so workers don't false-share a line.
  /// The cache counters live here too: in two-level mode the cache's
  /// read path is lock-free precisely so workers share nothing — a
  /// shared hit counter would put the contended line right back.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batched_requests{0};
    std::atomic<std::uint64_t> l1_hits{0};
    std::atomic<std::uint64_t> l2_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> l2_retries{0};
  };

  std::size_t queue_capacity_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> decided_{0};
  std::atomic<std::uint64_t> version_evictions_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_shutdown_{0};
  std::atomic<std::uint64_t> adoptions_{0};
  std::atomic<std::size_t> queue_depth_{0};
  std::vector<std::unique_ptr<WorkerCounters>> workers_;
  /// Completion latency, log2 ns buckets (bucket i covers [2^(i-1), 2^i)).
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> latency_histogram_{};
  std::atomic<std::uint64_t> latency_sum_ns_{0};
};

struct EngineConfig {
  /// Worker threads, each with a private core::Pdp replica.
  std::size_t workers = 2;
  /// Admission bound: submissions beyond this are shed deterministically.
  std::size_t queue_capacity = 1024;
  /// Max requests one worker drains per batch (micro-batching into
  /// Pdp::evaluate_batch).
  std::size_t max_batch = 32;
  /// Configuration for every worker's Pdp replica.
  core::PdpConfig pdp;
  /// Optional shared PIP hook wired into every replica. Unlike a
  /// single-threaded Pdp's resolver, this one is consulted from all
  /// worker threads concurrently — it MUST be thread-safe. Not owned.
  core::AttributeResolver* resolver = nullptr;
  /// Optional function registry override (not owned; default: standard).
  const core::FunctionRegistry* functions = nullptr;
  /// Default per-request deadline in ms, measured from submission;
  /// <= 0 means no deadline. A request still queued when its deadline
  /// passes is shed (kShedDeadline) instead of evaluated late.
  common::Duration default_deadline_ms = 0;
  /// Pin worker i to core i (pthread affinity). Placement pass for
  /// many-core hosts: keeps each worker's first-touch allocations (Pdp
  /// replica, L1, scratch) and its L2 slot traffic on one core's node.
  /// Graceful no-op on non-Linux platforms and on hosts with fewer
  /// cores than workers (oversubscribed workers must stay migratable);
  /// `DecisionEngine::workers_pinned()` reports what actually stuck.
  bool pin_workers = false;
  /// Per-worker L1 capacity (entries) when the shared cache is in
  /// two-level mode; 0 disables the L1 (L2-only). Ignored for
  /// mutex-sharded caches, which have no worker-local level.
  std::size_t l1_capacity = 256;
  /// Optional decision tracer (not owned; must outlive the engine).
  /// When set, every submission is assigned a trace id
  /// (EngineResult::trace_id) and the tracer's sampling policy decides
  /// which requests additionally record explain-trace spans. Untraced
  /// requests pay one relaxed fetch_add plus null checks — see the
  /// hot-path cost contract in obs/trace.hpp.
  obs::DecisionTracer* tracer = nullptr;
};

class DecisionEngine {
 public:
  using Callback = std::function<void(EngineResult)>;

  enum class Drain {
    kDrain,    ///< stop admission, finish everything queued, then join
    kDiscard,  ///< stop admission, complete queued requests as kShutdown
  };

  /// Workers start immediately and serve `publisher`'s current snapshot
  /// (requests submitted before the first publish are answered
  /// Indeterminate{DP} kNoSnapshotMessage — fail-safe, not a crash).
  /// `cache`, if given, is shared across all workers; it must outlive
  /// the engine, and its clock must be thread-safe (common::WallClock —
  /// see common/clock.hpp).
  explicit DecisionEngine(SnapshotPublisher& publisher, EngineConfig config = {},
                          cache::DecisionCache* cache = nullptr);

  /// Drains and joins (shutdown(Drain::kDrain)).
  ~DecisionEngine();

  DecisionEngine(const DecisionEngine&) = delete;
  DecisionEngine& operator=(const DecisionEngine&) = delete;

  /// Submits with the config's default deadline. The future completes
  /// with kDecided, or with a shed result whose decision is
  /// Indeterminate{DP} carrying the distinct shed status. All submit
  /// overloads are safe from any number of threads, including
  /// concurrently with shutdown().
  std::future<EngineResult> submit(core::RequestContext request);
  /// As above with an explicit deadline (ms from now; <= 0 = none).
  std::future<EngineResult> submit(core::RequestContext request,
                                   common::Duration deadline_ms);

  /// Callback forms. Decided / deadline-shed callbacks run on a worker
  /// thread; queue-full and shutdown sheds complete on the submitting
  /// thread before submit returns (deterministic admission control).
  void submit(core::RequestContext request, Callback callback);
  void submit(core::RequestContext request, Callback callback,
              common::Duration deadline_ms);

  /// Idempotent; safe to call concurrently with submissions (in-flight
  /// racers are either admitted and drained, or shed as kShutdown).
  void shutdown(Drain drain = Drain::kDrain);

  bool accepting() const { return !stopping_.load(std::memory_order_acquire); }
  std::size_t worker_count() const { return config_.workers; }
  std::size_t queue_capacity() const { return config_.queue_capacity; }
  std::size_t queue_depth() const;
  /// Workers whose core pinning actually took effect (0 when
  /// pin_workers is off, the platform is unsupported, or cores <
  /// workers — the graceful no-op cases).
  std::size_t workers_pinned() const {
    return pinned_workers_.load(std::memory_order_acquire);
  }

  /// Live counters; see EngineMetrics::Snapshot for the health-check
  /// surface (shed_rate, saturation, latency percentiles). Safe from any
  /// thread; the snapshot is consistent-enough (relaxed reads), not a
  /// linearisation point.
  EngineMetrics::Snapshot metrics() const { return metrics_.snapshot(); }

  /// See EngineMetrics::reset — quiescent engines only (bench warmup).
  void reset_metrics() { metrics_.reset(); }

  /// Registers the engine's counters, gauges and the completion-latency
  /// histogram with a metrics registry (mdac_engine_*); returns the
  /// collector id (obs::Registry::remove_collector). The engine must
  /// outlive the registry or be unregistered first.
  std::uint64_t register_metrics(obs::Registry& registry) const;

 private:
  using SteadyClock = std::chrono::steady_clock;

  struct Job {
    core::RequestContext request;
    Callback callback;
    SteadyClock::time_point enqueued;
    SteadyClock::time_point deadline;  // time_point::max() = none
    /// Trace id from tracer admission (0 = no tracer configured).
    std::uint64_t trace_id = 0;
    /// Span recorder, allocated only for head-sampled requests; null on
    /// the untraced hot path (spans gate on this pointer).
    std::unique_ptr<obs::Trace> trace;
  };

  /// One worker's execution state: the adopted snapshot and the private
  /// Pdp replica bound to it, plus reusable batch scratch and the
  /// zero-synchronisation L1. Constructed inside worker_loop — on the
  /// worker's own thread — so first-touch places all of it on the
  /// worker's NUMA node when pinning is on.
  struct Worker {
    explicit Worker(std::size_t l1_capacity)
        : l1(l1_capacity == 0 ? 1 : l1_capacity), l1_enabled(l1_capacity > 0) {}

    std::shared_ptr<const PolicySnapshot> snapshot;
    std::unique_ptr<core::Pdp> pdp;
    cache::WorkerL1Cache l1;
    bool l1_enabled;
    std::size_t group = 0;  // L2 placement group this worker hits
    std::vector<Job> jobs;
    std::vector<core::RequestContext> requests;  // contiguous, for evaluate_batch
    std::vector<std::size_t> pending;            // jobs[i] awaiting evaluation
    std::vector<cache::RequestKey> pending_keys; // fingerprints, parallel to pending
  };

  void worker_loop(std::size_t index);
  /// Pops up to max_batch jobs into `worker.jobs`; false = exit.
  bool pop_batch(Worker& worker);
  /// Re-binds `worker` to the newest snapshot if it changed (the batch
  /// boundary of the RCU scheme); flushes the worker's L1 and triggers
  /// the shared-cache version sweep on change.
  void adopt_snapshot(std::size_t index, Worker& worker);
  /// Sweeps shared-cache entries older than the minimum snapshot version
  /// any worker has adopted (lagging workers pin the watermark — their
  /// entries must survive until they move on).
  void maybe_sweep_cache();
  void process_batch(std::size_t index, Worker& worker);
  void complete(Job& job, EngineResult result, std::size_t worker_index,
                bool count_as_decided);
  /// Runs `callback`, containing anything it throws (every completion
  /// path — worker, shutdown discard, shed-on-submit — goes through
  /// here so no user callback can unwind engine internals).
  static void invoke_callback(Callback& callback, EngineResult result);
  static EngineResult shed_result(CompletionStatus status);
  /// Finalises and publishes the job's explain trace (if any): stamps
  /// outcome/summary fields, tail-synthesizes a trace for unsampled
  /// anomalies, no-op without a tracer. `worker` = Trace::kNoWorker for
  /// completions that never reached one (shed-on-submit, discard).
  void publish_trace(Job& job, const EngineResult& result, std::uint32_t worker);

  SnapshotPublisher& publisher_;
  EngineConfig config_;
  cache::DecisionCache* cache_;
  EngineMetrics metrics_;

  /// Per-worker adopted snapshot version, padded so the release store at
  /// adoption never contends with neighbours' slots. 0 = never adopted
  /// (excluded from the sweep minimum: a worker that has served nothing
  /// holds no cache entries, and its first adoption takes the newest
  /// version, which is never below an already-swept watermark).
  struct alignas(64) AdoptedVersion {
    std::atomic<std::uint64_t> version{0};
  };
  std::unique_ptr<AdoptedVersion[]> adopted_versions_;
  /// Versions below this have been swept from the shared cache; CAS'd
  /// so exactly one adopting worker runs each sweep.
  std::atomic<std::uint64_t> swept_below_{0};
  std::atomic<std::size_t> pinned_workers_{0};

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Job> queue_;
  std::atomic<bool> stopping_{false};
  bool joined_ = false;
  std::mutex shutdown_mutex_;  // serialises shutdown() callers
  std::vector<std::thread> threads_;
};

/// A pep::EnforcementPoint::DecisionSource that submits through the
/// engine and blocks for the result: the drop-in way to put an existing
/// PEP behind the runtime. Sheds surface as Indeterminate{DP}, so the
/// PEP's deny bias applies unchanged.
std::function<core::Decision(const core::RequestContext&)> engine_decision_source(
    DecisionEngine& engine);

}  // namespace mdac::runtime
