// Mandatory Access Control (paper §2.2): Bell–LaPadula over a label
// lattice. A label is a hierarchical level plus a set of compartments;
// `dominates` is the lattice order. Reads follow the simple security
// property (no read up); writes follow the star property (no write down).
#pragma once

#include <map>
#include <set>
#include <string>

namespace mdac::models {

struct Label {
  int level = 0;                         // e.g. 0=public .. 3=top-secret
  std::set<std::string> compartments;    // need-to-know categories

  bool operator==(const Label&) const = default;
};

/// True iff a.level >= b.level and a's compartments include b's.
bool dominates(const Label& a, const Label& b);

class BlpModel {
 public:
  void set_clearance(const std::string& subject, Label label);
  void set_classification(const std::string& object, Label label);

  const Label* clearance(const std::string& subject) const;
  const Label* classification(const std::string& object) const;

  /// Simple security property: subject may read iff clearance dominates
  /// the object's classification. Unknown subject/object -> false
  /// (fail-safe default).
  bool can_read(const std::string& subject, const std::string& object) const;

  /// Star property: subject may write iff the object's classification
  /// dominates the clearance (no leaking downward).
  bool can_write(const std::string& subject, const std::string& object) const;

 private:
  std::map<std::string, Label> clearances_;
  std::map<std::string, Label> classifications_;
};

}  // namespace mdac::models
