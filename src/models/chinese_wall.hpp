// Brewer–Nash "Chinese Wall" (paper §3.1, [22]): conflict-of-interest
// classes across a multi-domain environment. Once a subject touches one
// company's data, every other company in the same conflict class becomes
// off-limits to that subject — the meta-policy the paper proposes for
// VO-wide conflict containment.
#pragma once

#include <map>
#include <set>
#include <string>

namespace mdac::models {

class ChineseWall {
 public:
  /// Places a company's dataset inside a conflict-of-interest class.
  void add_company(const std::string& company, const std::string& conflict_class);

  /// Binds an object to a company's dataset.
  void assign_object(const std::string& object, const std::string& company);

  /// Brewer–Nash simple security: access is allowed iff the object's
  /// company is one the subject has already accessed, OR the subject has
  /// accessed no company in that conflict class yet. Unassigned objects
  /// are outside every wall and freely accessible.
  bool can_access(const std::string& subject, const std::string& object) const;

  /// Records a (permitted) access, updating the subject's wall state.
  void record_access(const std::string& subject, const std::string& object);

  /// Companies in `conflict_class` this subject is still allowed to touch.
  std::set<std::string> accessible_companies(const std::string& subject,
                                             const std::string& conflict_class) const;

 private:
  std::map<std::string, std::string> company_class_;  // company -> class
  std::map<std::string, std::string> object_company_; // object -> company
  // subject -> conflict class -> company chosen
  std::map<std::string, std::map<std::string, std::string>> chosen_;
};

}  // namespace mdac::models
