#include "models/chinese_wall.hpp"

namespace mdac::models {

void ChineseWall::add_company(const std::string& company,
                              const std::string& conflict_class) {
  company_class_[company] = conflict_class;
}

void ChineseWall::assign_object(const std::string& object,
                                const std::string& company) {
  object_company_[object] = company;
}

bool ChineseWall::can_access(const std::string& subject,
                             const std::string& object) const {
  const auto company_it = object_company_.find(object);
  if (company_it == object_company_.end()) return true;  // outside all walls
  const std::string& company = company_it->second;

  const auto class_it = company_class_.find(company);
  if (class_it == company_class_.end()) return true;  // no conflict class
  const std::string& conflict_class = class_it->second;

  const auto subject_it = chosen_.find(subject);
  if (subject_it == chosen_.end()) return true;  // clean slate
  const auto chosen = subject_it->second.find(conflict_class);
  if (chosen == subject_it->second.end()) return true;  // class untouched
  return chosen->second == company;  // may only continue with the same side
}

void ChineseWall::record_access(const std::string& subject,
                                const std::string& object) {
  const auto company_it = object_company_.find(object);
  if (company_it == object_company_.end()) return;
  const auto class_it = company_class_.find(company_it->second);
  if (class_it == company_class_.end()) return;
  chosen_[subject].emplace(class_it->second, company_it->second);
}

std::set<std::string> ChineseWall::accessible_companies(
    const std::string& subject, const std::string& conflict_class) const {
  std::set<std::string> out;
  const auto subject_it = chosen_.find(subject);
  const std::string* committed = nullptr;
  if (subject_it != chosen_.end()) {
    const auto chosen = subject_it->second.find(conflict_class);
    if (chosen != subject_it->second.end()) committed = &chosen->second;
  }
  for (const auto& [company, cls] : company_class_) {
    if (cls != conflict_class) continue;
    if (committed == nullptr || *committed == company) out.insert(company);
  }
  return out;
}

}  // namespace mdac::models
