#include "models/dac.hpp"

#include <algorithm>

namespace mdac::models {

const char* to_string(Right r) {
  switch (r) {
    case Right::kRead: return "read";
    case Right::kWrite: return "write";
    case Right::kExecute: return "execute";
  }
  return "?";
}

DacOutcome DacMatrix::create_object(const std::string& object,
                                    const std::string& owner) {
  if (owners_.count(object) > 0) {
    return DacOutcome::failure("object '" + object + "' already exists");
  }
  owners_[object] = owner;
  return DacOutcome::success();
}

bool DacMatrix::holds(const std::string& subject, const std::string& object,
                      Right right, bool needs_grant_option) const {
  const auto owner = owners_.find(object);
  if (owner != owners_.end() && owner->second == subject) return true;
  for (const Grant& g : grants_) {
    if (g.grantee == subject && g.object == object && g.right == right &&
        (!needs_grant_option || g.grant_option)) {
      return true;
    }
  }
  return false;
}

DacOutcome DacMatrix::grant(const std::string& grantor, const std::string& grantee,
                            const std::string& object, Right right,
                            bool with_grant_option) {
  if (owners_.count(object) == 0) {
    return DacOutcome::failure("unknown object '" + object + "'");
  }
  if (!holds(grantor, object, right, /*needs_grant_option=*/true)) {
    return DacOutcome::failure(grantor + " lacks grantable " +
                               std::string(to_string(right)) + " on " + object);
  }
  if (grantee == owners_.at(object)) {
    return DacOutcome::failure("owner already holds every right");
  }
  grants_.push_back(Grant{grantor, grantee, object, right, with_grant_option});
  return DacOutcome::success();
}

void DacMatrix::cascade_revoke(const std::string& grantee, const std::string& object,
                               Right right) {
  // If the grantee no longer holds the right with grant option, every
  // grant they made of that right on that object collapses.
  if (holds(grantee, object, right, /*needs_grant_option=*/true)) return;

  std::vector<std::string> orphaned;
  grants_.erase(std::remove_if(grants_.begin(), grants_.end(),
                               [&](const Grant& g) {
                                 if (g.grantor == grantee && g.object == object &&
                                     g.right == right) {
                                   orphaned.push_back(g.grantee);
                                   return true;
                                 }
                                 return false;
                               }),
                grants_.end());
  for (const std::string& next : orphaned) {
    cascade_revoke(next, object, right);
  }
}

DacOutcome DacMatrix::revoke(const std::string& revoker, const std::string& grantee,
                             const std::string& object, Right right) {
  const auto owner = owners_.find(object);
  if (owner == owners_.end()) {
    return DacOutcome::failure("unknown object '" + object + "'");
  }
  const bool is_owner = owner->second == revoker;
  const auto matches = [&](const Grant& g) {
    return g.grantee == grantee && g.object == object && g.right == right &&
           (is_owner || g.grantor == revoker);
  };
  const auto it = std::find_if(grants_.begin(), grants_.end(), matches);
  if (it == grants_.end()) {
    return DacOutcome::failure("no matching grant to revoke");
  }
  grants_.erase(std::remove_if(grants_.begin(), grants_.end(), matches),
                grants_.end());
  cascade_revoke(grantee, object, right);
  return DacOutcome::success();
}

bool DacMatrix::check(const std::string& subject, const std::string& object,
                      Right right) const {
  return holds(subject, object, right, /*needs_grant_option=*/false);
}

bool DacMatrix::has_grant_option(const std::string& subject,
                                 const std::string& object, Right right) const {
  return holds(subject, object, right, /*needs_grant_option=*/true);
}

const std::string* DacMatrix::owner_of(const std::string& object) const {
  const auto it = owners_.find(object);
  if (it == owners_.end()) return nullptr;
  return &it->second;
}

}  // namespace mdac::models
