// Discretionary Access Control (paper §2.2): an access matrix with
// ownership, grant-option delegation and cascading revocation — the
// classic Griffiths–Wade semantics. Subjects grant rights they hold with
// grant option; revoking a right recursively revokes every grant that
// depended on it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mdac::models {

enum class Right { kRead, kWrite, kExecute };

const char* to_string(Right r);

struct DacOutcome {
  bool ok = true;
  std::string reason;

  static DacOutcome success() { return {}; }
  static DacOutcome failure(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

class DacMatrix {
 public:
  /// Registers an object with its owner. The owner implicitly holds every
  /// right with grant option and cannot be revoked.
  DacOutcome create_object(const std::string& object, const std::string& owner);

  /// `grantor` gives `grantee` the right. Requires the grantor to hold the
  /// right *with grant option* on that object.
  DacOutcome grant(const std::string& grantor, const std::string& grantee,
                   const std::string& object, Right right, bool with_grant_option);

  /// `revoker` withdraws a grant they made (or the owner withdraws any).
  /// Grants the grantee made on the strength of this right cascade away.
  DacOutcome revoke(const std::string& revoker, const std::string& grantee,
                    const std::string& object, Right right);

  bool check(const std::string& subject, const std::string& object,
             Right right) const;
  bool has_grant_option(const std::string& subject, const std::string& object,
                        Right right) const;

  const std::string* owner_of(const std::string& object) const;

  /// Number of live (non-owner) grant edges — used by tests and benches.
  std::size_t grant_count() const { return grants_.size(); }

 private:
  struct Grant {
    std::string grantor;
    std::string grantee;
    std::string object;
    Right right;
    bool grant_option;
  };

  bool holds(const std::string& subject, const std::string& object, Right right,
             bool needs_grant_option) const;
  void cascade_revoke(const std::string& grantee, const std::string& object,
                      Right right);

  std::map<std::string, std::string> owners_;  // object -> owner
  std::vector<Grant> grants_;
};

}  // namespace mdac::models
