#include "models/mac.hpp"

#include <algorithm>

namespace mdac::models {

bool dominates(const Label& a, const Label& b) {
  if (a.level < b.level) return false;
  return std::includes(a.compartments.begin(), a.compartments.end(),
                       b.compartments.begin(), b.compartments.end());
}

void BlpModel::set_clearance(const std::string& subject, Label label) {
  clearances_[subject] = std::move(label);
}

void BlpModel::set_classification(const std::string& object, Label label) {
  classifications_[object] = std::move(label);
}

const Label* BlpModel::clearance(const std::string& subject) const {
  const auto it = clearances_.find(subject);
  return it == clearances_.end() ? nullptr : &it->second;
}

const Label* BlpModel::classification(const std::string& object) const {
  const auto it = classifications_.find(object);
  return it == classifications_.end() ? nullptr : &it->second;
}

bool BlpModel::can_read(const std::string& subject, const std::string& object) const {
  const Label* s = clearance(subject);
  const Label* o = classification(object);
  if (s == nullptr || o == nullptr) return false;
  return dominates(*s, *o);
}

bool BlpModel::can_write(const std::string& subject, const std::string& object) const {
  const Label* s = clearance(subject);
  const Label* o = classification(object);
  if (s == nullptr || o == nullptr) return false;
  return dominates(*o, *s);
}

}  // namespace mdac::models
