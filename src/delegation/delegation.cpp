#include "delegation/delegation.hpp"

#include "common/strings.hpp"

namespace mdac::delegation {

namespace {

/// Does every resource matching `inner` also match `outer`?
/// Patterns are the library's prefix wildcards ("x/*", "*", or exact).
bool pattern_covers(const std::string& outer, const std::string& inner) {
  if (outer == "*") return true;
  const bool outer_wild = !outer.empty() && outer.back() == '*';
  const bool inner_wild = !inner.empty() && inner.back() == '*';
  if (outer_wild) {
    const std::string_view prefix(outer.data(), outer.size() - 1);
    if (inner_wild) {
      return std::string_view(inner.data(), inner.size() - 1).substr(0, prefix.size()) ==
             prefix;
    }
    return common::wildcard_match(outer, inner);
  }
  // Exact outer only covers the identical exact inner.
  return !inner_wild && inner == outer;
}

}  // namespace

void DelegationRegistry::add_root(const std::string& authority) {
  roots_.insert(authority);
}

DelegationOutcome DelegationRegistry::grant(const AdminGrant& grant) {
  if (grant.grantor == grant.grantee) {
    return DelegationOutcome::failure("self-delegation is meaningless");
  }
  if (is_root(grant.grantor)) {
    grants_.push_back(grant);
    return DelegationOutcome::success();
  }
  // Non-root grantors must hold a covering, re-delegable grant with
  // enough remaining depth for this new hop. (Insertion check is
  // one-level; authorized() re-runs full reduction at decision time, so
  // later revocations upstream are still caught.)
  for (const AdminGrant& held : grants_) {
    if (held.grantee != grant.grantor) continue;
    if (!pattern_covers(held.scope_pattern, grant.scope_pattern)) continue;
    if (!held.allow_redelegation) continue;
    if (held.max_further_depth < grant.max_further_depth + 1) continue;
    grants_.push_back(grant);
    return DelegationOutcome::success();
  }
  return DelegationOutcome::failure(
      grant.grantor + " holds no re-delegable authority covering '" +
      grant.scope_pattern + "'");
}

void DelegationRegistry::revoke_grantee(const std::string& grantee) {
  std::erase_if(grants_, [&](const AdminGrant& g) { return g.grantee == grantee; });
}

bool DelegationRegistry::find_chain(const std::string& issuer,
                                    const std::string& resource,
                                    std::set<std::string>* visiting,
                                    std::vector<std::string>* chain) const {
  if (is_root(issuer)) {
    chain->push_back(issuer);
    return true;
  }
  if (!visiting->insert(issuer).second) return false;  // cycle guard

  for (const AdminGrant& g : grants_) {
    if (g.grantee != issuer) continue;
    if (!common::wildcard_match(g.scope_pattern, resource)) continue;
    std::vector<std::string> upper;
    if (find_chain(g.grantor, resource, visiting, &upper)) {
      // Depth/redelegation discipline: hops below this grant must be
      // covered by its budget. The hops below = chain built so far by
      // callers; validate at the end in reduction_chain.
      chain->insert(chain->end(), upper.begin(), upper.end());
      chain->push_back(issuer);
      visiting->erase(issuer);
      return true;
    }
  }
  visiting->erase(issuer);
  return false;
}

std::optional<std::vector<std::string>> DelegationRegistry::reduction_chain(
    const std::string& issuer, const std::string& resource) const {
  std::set<std::string> visiting;
  std::vector<std::string> chain;
  if (!find_chain(issuer, resource, &visiting, &chain)) return std::nullopt;

  // Validate redelegation flags and depth budgets along the found chain:
  // chain = [root, a1, ..., issuer]; the grant feeding a_k must allow
  // the (len-2-k) further hops below it.
  for (std::size_t k = 1; k < chain.size(); ++k) {
    const std::size_t further_hops = chain.size() - 1 - k;
    bool covered = false;
    for (const AdminGrant& g : grants_) {
      if (g.grantor != chain[k - 1] || g.grantee != chain[k]) continue;
      if (!common::wildcard_match(g.scope_pattern, resource)) continue;
      if (further_hops > 0 && !g.allow_redelegation) continue;
      if (static_cast<std::size_t>(g.max_further_depth) < further_hops) continue;
      covered = true;
      break;
    }
    if (!covered) return std::nullopt;
  }
  return chain;
}

bool DelegationRegistry::authorized(const std::string& issuer,
                                    const std::string& resource) const {
  return reduction_chain(issuer, resource).has_value();
}

namespace {

/// String literals compared to resource-id with string-equal in a target.
std::vector<std::string> target_resource_values(const core::Target* target) {
  std::vector<std::string> out;
  if (target == nullptr) return out;
  for (const core::AnyOf& any : target->any_ofs) {
    for (const core::AllOf& all : any.all_ofs) {
      for (const core::Match& m : all.matches) {
        if (m.category == core::Category::kResource &&
            m.attribute_id == core::attrs::kResourceId &&
            m.function_id == "string-equal" && m.literal.is_string()) {
          out.push_back(m.literal.as_string());
        }
      }
    }
  }
  return out;
}

const std::string* node_issuer(const core::PolicyTreeNode& node) {
  if (const auto* p = dynamic_cast<const core::Policy*>(&node)) return &p->issuer;
  if (const auto* ps = dynamic_cast<const core::PolicySet*>(&node)) return &ps->issuer;
  return nullptr;  // references carry no issuer of their own
}

}  // namespace

ReductionFilter filter_by_reduction(const core::PolicyStore& store,
                                    const DelegationRegistry& registry) {
  ReductionFilter out;
  for (const core::PolicyTreeNode* node : store.top_level()) {
    const std::string* issuer = node_issuer(*node);
    if (issuer == nullptr || issuer->empty()) {
      out.accepted.push_back(node);  // locally authored: trusted root
      continue;
    }
    const std::vector<std::string> resources = target_resource_values(node->target());
    if (resources.empty()) {
      // An issued policy with unbounded scope cannot pass reduction.
      out.rejected_ids.push_back(node->id());
      continue;
    }
    bool all_covered = true;
    for (const std::string& r : resources) {
      if (!registry.authorized(*issuer, r)) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) {
      out.accepted.push_back(node);
    } else {
      out.rejected_ids.push_back(node->id());
    }
  }
  return out;
}

}  // namespace mdac::delegation
