// Administrative delegation (paper §3.2 "Access Control Delegation" and
// the XACML Administration & Delegation profile [13]).
//
// A DelegationRegistry records *administrative policies*: who may issue
// access-control policy over which resource scope, granted by whom, with
// optional re-delegation and a depth limit. Validating a policy issued by
// a non-root issuer is *reduction*: finding a grant chain from a trusted
// root to the issuer whose every link covers the policy's scope and is
// not revoked. This is how "domains delegate some of the rights for
// resources that they own to other domains" while staying auditable.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace mdac::delegation {

struct AdminGrant {
  std::string grantor;        // issuing authority
  std::string grantee;        // who gains issuing power
  std::string scope_pattern;  // wildcard over resource ids, e.g. "domain-a/*"
  bool allow_redelegation = false;
  int max_further_depth = 0;  // additional hops the grantee may create
};

struct DelegationOutcome {
  bool ok = true;
  std::string reason;

  static DelegationOutcome success() { return {}; }
  static DelegationOutcome failure(std::string why) {
    return {false, std::move(why)};
  }
  explicit operator bool() const { return ok; }
};

class DelegationRegistry {
 public:
  /// Roots are authoritative for everything (typically the domain owner).
  void add_root(const std::string& authority);
  bool is_root(const std::string& authority) const { return roots_.count(authority) > 0; }

  /// Registers a grant. The grantor must be a root or hold a covering
  /// grant that allows re-delegation with remaining depth.
  DelegationOutcome grant(const AdminGrant& grant);

  /// Revokes every grant to `grantee` (the paper's revocation problem:
  /// chains *through* the grantee die with it).
  void revoke_grantee(const std::string& grantee);

  /// Can `issuer` issue policy governing `resource`?
  bool authorized(const std::string& issuer, const std::string& resource) const;

  /// The reduction evidence: the chain of authorities from a root to the
  /// issuer, or nullopt if none exists.
  std::optional<std::vector<std::string>> reduction_chain(
      const std::string& issuer, const std::string& resource) const;

  std::size_t grant_count() const { return grants_.size(); }

 private:
  /// DFS for a covering chain; returns the chain root-first.
  bool find_chain(const std::string& issuer, const std::string& resource,
                  std::set<std::string>* visiting,
                  std::vector<std::string>* chain) const;

  std::set<std::string> roots_;
  std::vector<AdminGrant> grants_;
};

/// Splits a store's policies into those whose issuer passes reduction
/// (kept) and those that fail (quarantined ids) — the validation step a
/// PDP runs before trusting third-party-issued policy.
struct ReductionFilter {
  std::vector<const core::PolicyTreeNode*> accepted;
  std::vector<std::string> rejected_ids;
};

ReductionFilter filter_by_reduction(const core::PolicyStore& store,
                                    const DelegationRegistry& registry);

}  // namespace mdac::delegation
