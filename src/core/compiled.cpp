#include "core/compiled.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "core/expression.hpp"
#include "core/functions.hpp"

namespace mdac::core {

// ---------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------

void* Arena::allocate(std::size_t size, std::size_t align) {
  constexpr std::size_t kMinChunk = 4096;
  Chunk* chunk = chunks_.empty() ? nullptr : &chunks_.back();
  std::size_t aligned = chunk == nullptr ? 0 : (chunk->used + align - 1) & ~(align - 1);
  if (chunk == nullptr || aligned + size > chunk->capacity) {
    const std::size_t capacity = std::max(kMinChunk, size + align);
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(capacity), capacity, 0});
    chunk = &chunks_.back();
    const auto base = reinterpret_cast<std::uintptr_t>(chunk->data.get());
    aligned = ((base + align - 1) & ~(align - 1)) - base;
  }
  void* out = chunk->data.get() + aligned;
  chunk->used = aligned + size;
  bytes_ += size;
  return out;
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

std::shared_ptr<const CompiledPolicyTree> CompiledPolicyTree::compile(
    const PolicyTreeNode& node, CompileOptions options) {
  // Not make_shared: the constructor is private and the object is big
  // enough that the separate control block is noise.
  std::shared_ptr<CompiledPolicyTree> out(new CompiledPolicyTree(node.clone_node()));
  out->build(options);
  return out;
}

common::Symbol CompiledPolicyTree::resolve_symbol(const std::string& name,
                                                  const CompileOptions& options) {
  if (const auto sym = common::interner().find(name)) return *sym;
  if (options.intern_names) {
    try {
      return common::interner().intern(name);
    } catch (const std::length_error&) {
      // Symbol table exhausted: degrade to the string-lookup path.
    }
  }
  ++stats_.unresolved_names;
  diagnostics_.push_back("attribute '" + name +
                         "' not resolved to a symbol at compile time");
  return CompiledMatch::kNoSymbol;
}

CompiledMatch CompiledPolicyTree::lower_match(const Match& match,
                                              const CompileOptions& options) {
  CompiledMatch out;
  out.function_id = &match.function_id;
  out.literal = &match.literal;
  out.attribute_name = &match.attribute_id;
  out.category = match.category;
  out.data_type = match.data_type;
  out.must_be_present = match.must_be_present;
  out.attribute_id = resolve_symbol(match.attribute_id, options);

  const FunctionDef* fn = FunctionRegistry::standard().find(match.function_id);
  if (fn == nullptr) {
    diagnostics_.push_back("unknown match function '" + match.function_id + "'");
  } else if (fn->higher_order) {
    diagnostics_.push_back("higher-order match function '" + match.function_id + "'");
    fn = nullptr;  // interpreter treats both as Indeterminate
  }
  out.function = fn;
  out.inline_string_equal = match.function_id == "string-equal" &&
                            match.data_type == DataType::kString &&
                            match.literal.is_string();
  return out;
}

CompiledTarget CompiledPolicyTree::lower_target(const Target& target,
                                                const CompileOptions& options) {
  std::vector<CompiledMatch> matches;
  std::vector<std::uint32_t> all_of_ends;
  std::vector<std::uint32_t> any_of_ends;
  for (const AnyOf& any : target.any_ofs) {
    for (const AllOf& all : any.all_ofs) {
      for (const Match& m : all.matches) matches.push_back(lower_match(m, options));
      all_of_ends.push_back(static_cast<std::uint32_t>(matches.size()));
    }
    any_of_ends.push_back(static_cast<std::uint32_t>(all_of_ends.size()));
  }
  CompiledTarget out;
  out.matches = arena_.copy_array(matches);
  out.all_of_ends = arena_.copy_array(all_of_ends);
  out.any_of_ends = arena_.copy_array(any_of_ends);
  stats_.matches += matches.size();
  return out;
}

void CompiledPolicyTree::emit_ast(const Expression& expr, std::vector<Instr>* code) {
  code->push_back(Instr{OpCode::kEvalAst,
                        static_cast<std::uint32_t>(ast_exprs_.size())});
  ast_exprs_.push_back(&expr);
}

void CompiledPolicyTree::lower_expr(const Expression& expr, std::vector<Instr>* code,
                                    const CompileOptions& options) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(expr);
      code->push_back(Instr{OpCode::kPushLiteral,
                            static_cast<std::uint32_t>(literals_.size())});
      literals_.push_back(&lit.bag());
      return;
    }
    case ExprKind::kDesignator: {
      const auto& d = static_cast<const DesignatorExpr&>(expr);
      CompiledDesignator cd;
      cd.name = &d.id();
      cd.symbol = resolve_symbol(d.id(), options);
      cd.category = d.category();
      cd.data_type = d.data_type();
      cd.must_be_present = d.must_be_present();
      code->push_back(Instr{OpCode::kLoadAttribute,
                            static_cast<std::uint32_t>(designators_.size())});
      designators_.push_back(cd);
      return;
    }
    case ExprKind::kFunctionRef:
      // Evaluates to the interpreter's "outside a higher-order apply"
      // error; keep that exact behaviour through the AST.
      emit_ast(expr, code);
      return;
    case ExprKind::kApply: {
      const auto& apply = static_cast<const ApplyExpr&>(expr);
      const FunctionDef* fn = FunctionRegistry::standard().find(apply.function_id());
      if (fn == nullptr) {
        // Unknown at compile time: the runtime registry may still know it
        // (or produce the interpreter's "unknown function" error).
        diagnostics_.push_back("unknown function '" + apply.function_id() +
                               "' kept as AST");
        ++stats_.ast_fallbacks;
        emit_ast(expr, code);
        return;
      }
      // Higher-order applies and arity mismatches keep interpreter
      // evaluation order (the interpreter raises the arity error before
      // evaluating any argument; a postfix program cannot).
      if (fn->higher_order ||
          (fn->arity >= 0 && static_cast<int>(apply.args().size()) != fn->arity) ||
          apply.args().size() > 0xffff) {
        ++stats_.ast_fallbacks;
        emit_ast(expr, code);
        return;
      }
      for (const ExprPtr& arg : apply.args()) lower_expr(*arg, code, options);
      code->push_back(Instr{OpCode::kApply,
                            static_cast<std::uint32_t>(applies_.size())});
      applies_.push_back(CompiledApply{fn, &apply.function_id(),
                                       static_cast<std::uint16_t>(apply.args().size())});
      return;
    }
  }
  emit_ast(expr, code);  // unreachable: future ExprKinds degrade safely
}

CompiledProgram CompiledPolicyTree::lower_program(const Expression& expr,
                                                 const CompileOptions& options) {
  std::vector<Instr> code;
  lower_expr(expr, &code, options);
  CompiledProgram out;
  out.code = arena_.copy_array(code);
  stats_.instructions += code.size();
  return out;
}

std::pair<std::uint32_t, std::uint32_t> CompiledPolicyTree::lower_obligations(
    const std::vector<ObligationExpr>& obligations, const CompileOptions& options) {
  const auto begin = static_cast<std::uint32_t>(obligations_.size());
  for (const ObligationExpr& ob : obligations) {
    CompiledObligation co;
    co.source = &ob;
    co.assignments_begin = static_cast<std::uint32_t>(assignments_.size());
    for (const AttributeAssignmentExpr& a : ob.assignments) {
      CompiledAssignment ca;
      ca.source = &a;
      // A null assignment expression stays an empty program and raises
      // the interpreter's null-assignment error at instantiation.
      if (a.expr) ca.program = lower_program(*a.expr, options);
      assignments_.push_back(ca);
    }
    co.assignments_end = static_cast<std::uint32_t>(assignments_.size());
    obligations_.push_back(co);
    ++stats_.obligations;
  }
  return {begin, static_cast<std::uint32_t>(obligations_.size())};
}

std::uint32_t CompiledPolicyTree::build_node(const PolicyTreeNode& node,
                                             const CompileOptions& options) {
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  TreeNode n;  // filled locally: recursion below may reallocate nodes_
  n.source = &node;

  if (const auto* policy = dynamic_cast<const Policy*>(&node)) {
    ++stats_.compiled_policies;
    n.kind = NodeKind::kPolicy;
    n.algorithm = CombiningRegistry::standard().find(policy->rule_combining);
    if (n.algorithm == nullptr) {
      diagnostics_.push_back("unknown rule-combining algorithm '" +
                             policy->rule_combining + "' in policy '" +
                             policy->policy_id + "'");
    }
    n.target = lower_target(policy->target_spec, options);
    n.rules_begin = static_cast<std::uint32_t>(rules_.size());
    for (const Rule& rule : policy->rules) {
      CompiledRule cr;
      cr.source = &rule;
      cr.effect = rule.effect;
      if (rule.target.has_value() && !rule.target->empty()) {
        cr.has_target = true;
        cr.target = lower_target(*rule.target, options);
      }
      if (rule.condition) {
        cr.has_condition = true;
        cr.condition = lower_program(*rule.condition, options);
      }
      std::tie(cr.obligations_begin, cr.obligations_end) =
          lower_obligations(rule.obligations, options);
      rules_.push_back(cr);
    }
    n.rules_end = static_cast<std::uint32_t>(rules_.size());
    std::tie(n.obligations_begin, n.obligations_end) =
        lower_obligations(policy->obligations, options);
  } else if (const auto* set = dynamic_cast<const PolicySet*>(&node)) {
    ++stats_.policy_sets;
    n.kind = NodeKind::kSet;
    n.algorithm = CombiningRegistry::standard().find(set->policy_combining);
    if (n.algorithm == nullptr) {
      diagnostics_.push_back("unknown policy-combining algorithm '" +
                             set->policy_combining + "' in policy set '" +
                             set->policy_set_id + "'");
    }
    n.target = lower_target(set->target_spec, options);
    std::tie(n.obligations_begin, n.obligations_end) =
        lower_obligations(set->obligations, options);
    // Children recurse into a local list first so this set's slice of
    // set_children_ stays contiguous despite nested sets appending their
    // own slices mid-recursion.
    std::vector<std::uint32_t> children;
    children.reserve(set->children().size());
    for (const PolicyNodePtr& child : set->children()) {
      children.push_back(build_node(*child, options));
    }
    n.children_begin = static_cast<std::uint32_t>(set_children_.size());
    set_children_.insert(set_children_.end(), children.begin(), children.end());
    n.children_end = static_cast<std::uint32_t>(set_children_.size());
  } else {
    // PolicyReference — and any future node kind, which degrades to the
    // same dynamic per-request resolution rather than a wrong decision.
    ++stats_.references;
    n.kind = NodeKind::kReference;
    if (options.reference_resolves && !options.reference_resolves(node.id())) {
      diagnostics_.push_back("policy reference '" + node.id() +
                             "' did not resolve at compile time (resolved "
                             "per request against the evaluation store)");
    }
  }

  nodes_[index] = n;
  return index;
}

void CompiledPolicyTree::build(const CompileOptions& options) {
  build_node(*source_, options);
  stats_.rules = rules_.size();

  // The once-materialised Combinable lists: what the interpreter rebuilt
  // on every Policy::evaluate (rules) and PolicySet::evaluate (children)
  // call. Pointers into rules_ / nodes_ are stable (fully built above,
  // never mutated again); `this` is stable because compiled trees only
  // live behind shared_ptr.
  rule_combinables_.reserve(rules_.size());
  rule_ptrs_.reserve(rules_.size());
  for (const CompiledRule& cr : rules_) {
    const CompiledRule* rule = &cr;
    rule_combinables_.push_back(Combinable{
        rule->source->id,
        [this, rule](EvaluationContext& ctx) { return rule_match(*rule, ctx); },
        [this, rule](EvaluationContext& ctx) { return evaluate_rule(*rule, ctx); }});
  }
  for (const Combinable& c : rule_combinables_) rule_ptrs_.push_back(&c);

  child_combinables_.reserve(set_children_.size());
  child_ptrs_.reserve(set_children_.size());
  for (const std::uint32_t child : set_children_) {
    const TreeNode* node = &nodes_[child];
    child_combinables_.push_back(Combinable{
        node->source->id(),
        [this, node](EvaluationContext& ctx) { return node_match(*node, ctx); },
        [this, node](EvaluationContext& ctx) { return node_evaluate(*node, ctx); }});
  }
  for (const Combinable& c : child_combinables_) child_ptrs_.push_back(&c);

  stats_.arena_bytes = arena_.bytes_allocated();
}

// ---------------------------------------------------------------------
// Evaluation (interpreter-equivalent; see core/policy.cpp for the
// reference implementations these mirror)
// ---------------------------------------------------------------------

MatchResult CompiledPolicyTree::eval_match(const CompiledMatch& match,
                                           EvaluationContext& ctx) const {
  const bool standard_registry = &ctx.functions() == &FunctionRegistry::standard();
  const FunctionDef* fn =
      standard_registry ? match.function : ctx.functions().find(*match.function_id);
  if (fn == nullptr || fn->higher_order) return MatchResult::kIndeterminate;

  // Request-supplied fast path. The symbol was resolved at compile time,
  // so the probe is a binary search over integers — no interner find, no
  // string hash (the ROADMAP's "interned symbols for Match attribute
  // ids" item). Falls back to the string-keyed probe only for names that
  // could not be resolved when this program was compiled.
  const Bag* bag = match.attribute_id != CompiledMatch::kNoSymbol
                       ? ctx.request().get(match.category, match.attribute_id)
                       : ctx.request().get(match.category, *match.attribute_name);
  // Seed the context's probe memo (as attribute_in_request does for the
  // interpreter) so the fast-path-miss -> attribute() fall-back reuses
  // this search instead of re-probing the request by string.
  ctx.remember_probe(match.category, *match.attribute_name, bag);
  if (bag != nullptr) {
    bool has_typed_value = false;
    for (const AttributeValue& v : bag->values()) {
      if (v.type() == match.data_type) {
        has_typed_value = true;
        break;
      }
    }
    if (has_typed_value) {
      ++ctx.metrics().attribute_lookups;
      if (match.inline_string_equal && standard_registry) {
        return detail::bag_contains_string(*bag, match.literal->as_string())
                   ? MatchResult::kMatch
                   : MatchResult::kNoMatch;
      }
      return detail::match_candidates_against(*fn, *match.literal, match.data_type,
                                              *bag, /*filter=*/true, ctx);
    }
  }

  // General path: resolver consultation, type filtering and
  // missing-attribute handling — delegated to the context, exactly as
  // the interpreted Match does.
  const ExprResult looked_up = ctx.attribute(match.category, *match.attribute_name,
                                             match.data_type, match.must_be_present);
  if (!looked_up.ok()) return MatchResult::kIndeterminate;
  return detail::match_candidates_against(*fn, *match.literal, match.data_type,
                                          looked_up.bag, /*filter=*/false, ctx);
}

MatchResult CompiledPolicyTree::eval_target(const CompiledTarget& target,
                                            EvaluationContext& ctx) const {
  ++ctx.metrics().targets_checked;
  bool saw_indeterminate = false;
  std::uint32_t group_begin = 0;
  for (const std::uint32_t group_end : target.any_of_ends) {
    // One conjunct: a disjunction over AllOf groups.
    MatchResult disjunction = MatchResult::kNoMatch;
    bool any_indeterminate = false;
    for (std::uint32_t g = group_begin;
         g < group_end && disjunction != MatchResult::kMatch; ++g) {
      const std::uint32_t match_begin = g == 0 ? 0 : target.all_of_ends[g - 1];
      const std::uint32_t match_end = target.all_of_ends[g];
      MatchResult conjunction = MatchResult::kMatch;
      bool all_indeterminate = false;
      for (std::uint32_t m = match_begin; m < match_end; ++m) {
        const MatchResult r = eval_match(target.matches[m], ctx);
        if (r == MatchResult::kNoMatch) {
          conjunction = MatchResult::kNoMatch;
          break;  // short-circuit, like AllOf::evaluate
        }
        if (r == MatchResult::kIndeterminate) all_indeterminate = true;
      }
      if (conjunction == MatchResult::kMatch && all_indeterminate) {
        conjunction = MatchResult::kIndeterminate;
      }
      if (conjunction == MatchResult::kMatch) {
        disjunction = MatchResult::kMatch;
      } else if (conjunction == MatchResult::kIndeterminate) {
        any_indeterminate = true;
      }
    }
    group_begin = group_end;
    if (disjunction == MatchResult::kMatch) continue;
    if (any_indeterminate) {
      saw_indeterminate = true;
      continue;
    }
    return MatchResult::kNoMatch;  // a failed conjunct fails the target
  }
  return saw_indeterminate ? MatchResult::kIndeterminate : MatchResult::kMatch;
}

ExprResult CompiledPolicyTree::run_program(const CompiledProgram& program,
                                           EvaluationContext& ctx,
                                           CompiledEvalScratch& scratch) const {
  // Execute above the caller's stack frames: re-entrant evaluation (a
  // resolver calling back into the PDP mid-condition) nests safely. The
  // guard restores the frame even if a user-supplied resolver or
  // function throws — the scratch is long-lived Pdp state, and callers
  // like pep::PdpService catch per-request exceptions and keep serving,
  // so a throw must not leave orphaned stack entries or a raised
  // args_depth behind.
  const std::size_t base = scratch.stack.size();
  struct FrameGuard {
    CompiledEvalScratch& scratch;
    std::size_t base;
    std::size_t args_depth;
    ~FrameGuard() {
      if (scratch.stack.size() > base) scratch.stack.resize(base);
      scratch.args_depth = args_depth;
    }
  } guard{scratch, base, scratch.args_depth};
  const auto fail = [&](Status status) {
    // Frame restoration is the guard's job; fail only shapes the result.
    return ExprResult::error(std::move(status));
  };

  for (const Instr& instr : program.code) {
    switch (instr.op) {
      case OpCode::kPushLiteral:
        scratch.stack.push_back(*literals_[instr.index]);
        break;
      case OpCode::kLoadAttribute: {
        const CompiledDesignator& d = designators_[instr.index];
        ExprResult r = ctx.attribute(d.category, *d.name, d.data_type,
                                     d.must_be_present);
        if (!r.ok()) return fail(std::move(r.status));
        scratch.stack.push_back(std::move(r.bag));
        break;
      }
      case OpCode::kApply: {
        const CompiledApply& apply = applies_[instr.index];
        // Arity was verified at compile time. The metrics bump lands
        // here (after the arguments ran) rather than before them as in
        // the interpreter, so when an argument errors the enclosing
        // apply goes uncounted and functions_invoked can read lower than
        // the interpreter's for the same request. Metrics are
        // diagnostics — the equivalence contract (and the differential
        // suite) covers decisions, obligations and fingerprints.
        ++ctx.metrics().functions_invoked;
        std::vector<Bag>& args = scratch.acquire_args();
        const std::size_t arg_base = scratch.stack.size() - apply.argc;
        for (std::size_t i = 0; i < apply.argc; ++i) {
          args.push_back(std::move(scratch.stack[arg_base + i]));
        }
        scratch.stack.resize(arg_base);
        ExprResult r = apply.function->invoke(ctx, args);
        scratch.release_args();
        if (!r.ok()) return fail(std::move(r.status));
        scratch.stack.push_back(std::move(r.bag));
        break;
      }
      case OpCode::kEvalAst: {
        ExprResult r = ast_exprs_[instr.index]->evaluate(ctx);
        if (!r.ok()) return fail(std::move(r.status));
        scratch.stack.push_back(std::move(r.bag));
        break;
      }
    }
  }
  ExprResult out = ExprResult::value(std::move(scratch.stack.back()));
  scratch.stack.pop_back();
  return out;
}

ExprResult CompiledPolicyTree::run_lowered(const CompiledProgram& program,
                                           const Expression& ast,
                                           EvaluationContext& ctx) const {
  if (&ctx.functions() != &FunctionRegistry::standard()) {
    // The program's function resolutions are against the standard
    // registry; a custom registry gets the AST, which consults it the
    // way the interpreter always did.
    return ast.evaluate(ctx);
  }
  if (CompiledEvalScratch* scratch = ctx.compiled_scratch()) {
    return run_program(program, ctx, *scratch);
  }
  CompiledEvalScratch local;
  return run_program(program, ctx, local);
}

Status CompiledPolicyTree::instantiate_obligation(const CompiledObligation& obligation,
                                                  EvaluationContext& ctx,
                                                  ObligationInstance* out) const {
  // Mirrors ObligationExpr::instantiate, with assignment values coming
  // from the lowered programs.
  out->id = obligation.source->id;
  out->assignments.clear();
  for (std::uint32_t i = obligation.assignments_begin; i < obligation.assignments_end;
       ++i) {
    const CompiledAssignment& a = assignments_[i];
    if (!a.source->expr) {
      return Status::processing_error("obligation '" + obligation.source->id +
                                      "': null assignment");
    }
    const ExprResult r = run_lowered(a.program, *a.source->expr, ctx);
    if (!r.ok()) return r.status;
    if (r.bag.size() != 1) {
      return Status::processing_error("obligation '" + obligation.source->id +
                                      "': assignment must yield one value");
    }
    out->assignments.emplace_back(a.source->attribute_id, r.bag.at(0));
  }
  return Status::okay();
}

void CompiledPolicyTree::attach_compiled_obligations(std::uint32_t begin,
                                                     std::uint32_t end,
                                                     EvaluationContext& ctx,
                                                     Decision* decision) const {
  // Mirrors attach_obligations (core/policy.cpp).
  if (decision->type != DecisionType::kPermit &&
      decision->type != DecisionType::kDeny) {
    return;
  }
  const Effect decided = decision->type == DecisionType::kPermit
                             ? Effect::kPermit
                             : Effect::kDeny;
  for (std::uint32_t i = begin; i < end; ++i) {
    const CompiledObligation& ob = obligations_[i];
    if (ob.source->fulfill_on != decided) continue;
    ObligationInstance instance;
    const Status s = instantiate_obligation(ob, ctx, &instance);
    if (!s.ok()) {
      const IndeterminateExtent extent = decided == Effect::kPermit
                                             ? IndeterminateExtent::kP
                                             : IndeterminateExtent::kD;
      *decision = Decision::indeterminate(extent, s);
      return;
    }
    if (ob.source->advice) {
      decision->advice.push_back(std::move(instance));
    } else {
      decision->obligations.push_back(std::move(instance));
    }
  }
}

MatchResult CompiledPolicyTree::rule_match(const CompiledRule& rule,
                                           EvaluationContext& ctx) const {
  if (!rule.has_target) return MatchResult::kMatch;
  return eval_target(rule.target, ctx);
}

Decision CompiledPolicyTree::evaluate_rule(const CompiledRule& rule,
                                           EvaluationContext& ctx) const {
  ++ctx.metrics().rules_evaluated;
  const IndeterminateExtent my_extent = rule.effect == Effect::kPermit
                                            ? IndeterminateExtent::kP
                                            : IndeterminateExtent::kD;

  switch (rule_match(rule, ctx)) {
    case MatchResult::kNoMatch:
      return Decision::not_applicable();
    case MatchResult::kIndeterminate:
      return Decision::indeterminate(
          my_extent,
          Status::processing_error("rule '" + rule.source->id + "': target error"));
    case MatchResult::kMatch:
      break;
  }

  if (rule.has_condition) {
    const ExprResult r = run_lowered(rule.condition, *rule.source->condition, ctx);
    if (!r.ok()) return Decision::indeterminate(my_extent, r.status);
    if (r.bag.size() != 1 || !r.bag.at(0).is_boolean()) {
      return Decision::indeterminate(
          my_extent, Status::processing_error("rule '" + rule.source->id +
                                              "': condition not boolean"));
    }
    if (!r.bag.at(0).as_boolean()) return Decision::not_applicable();
  }

  Decision d = rule.effect == Effect::kPermit ? Decision::permit() : Decision::deny();
  attach_compiled_obligations(rule.obligations_begin, rule.obligations_end, ctx, &d);
  return d;
}

MatchResult CompiledPolicyTree::node_match(const TreeNode& node,
                                           EvaluationContext& ctx) const {
  if (node.kind == NodeKind::kReference) return reference_match(node, ctx);
  if (node.target.empty()) return MatchResult::kMatch;
  return eval_target(node.target, ctx);
}

Decision CompiledPolicyTree::node_evaluate(const TreeNode& node,
                                           EvaluationContext& ctx) const {
  switch (node.kind) {
    case NodeKind::kPolicy:
      return evaluate_policy(node, ctx);
    case NodeKind::kSet:
      return evaluate_set(node, ctx);
    case NodeKind::kReference:
      return evaluate_reference(node, ctx);
  }
  return Decision::not_applicable();  // unreachable
}

Decision CompiledPolicyTree::evaluate_policy(const TreeNode& node,
                                             EvaluationContext& ctx) const {
  ++ctx.metrics().policies_evaluated;
  const auto& policy = static_cast<const Policy&>(*node.source);

  const MatchResult m = node_match(node, ctx);
  if (m == MatchResult::kNoMatch) return Decision::not_applicable();

  if (node.algorithm == nullptr) {
    return Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::syntax_error("policy '" + policy.policy_id +
                             "': unknown rule-combining algorithm '" +
                             policy.rule_combining + "'"));
  }

  Decision combined = node.algorithm->combine(
      std::span<const Combinable* const>(rule_ptrs_.data() + node.rules_begin,
                                         node.rules_end - node.rules_begin),
      ctx);

  if (m == MatchResult::kIndeterminate) {
    return detail::mask_by_indeterminate_target(std::move(combined),
                                                policy.policy_id);
  }
  attach_compiled_obligations(node.obligations_begin, node.obligations_end, ctx,
                              &combined);
  return combined;
}

Decision CompiledPolicyTree::evaluate_set(const TreeNode& node,
                                          EvaluationContext& ctx) const {
  ++ctx.metrics().policies_evaluated;
  const auto& set = static_cast<const PolicySet&>(*node.source);

  const MatchResult m = node_match(node, ctx);
  if (m == MatchResult::kNoMatch) return Decision::not_applicable();

  if (node.algorithm == nullptr) {
    return Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::syntax_error("policy set '" + set.policy_set_id +
                             "': unknown policy-combining algorithm '" +
                             set.policy_combining + "'"));
  }

  Decision combined = node.algorithm->combine(
      std::span<const Combinable* const>(child_ptrs_.data() + node.children_begin,
                                         node.children_end - node.children_begin),
      ctx);

  if (m == MatchResult::kIndeterminate) {
    return detail::mask_by_indeterminate_target(std::move(combined),
                                                set.policy_set_id);
  }
  attach_compiled_obligations(node.obligations_begin, node.obligations_end, ctx,
                              &combined);
  return combined;
}

MatchResult CompiledPolicyTree::reference_match(const TreeNode& node,
                                                EvaluationContext& ctx) const {
  // Mirrors PolicyReference::match: dynamic resolution through the
  // context's store, so the reference always follows the live working
  // set. When the store carries a compiled artifact for the referenced
  // id, that artifact runs (it is kept in sync with the node by
  // PolicyStore::add); otherwise the referenced node interprets.
  const std::string& ref_id = node.source->id();
  const PolicyTreeNode* target =
      ctx.store() == nullptr ? nullptr : ctx.store()->find(ref_id);
  if (target == nullptr) return MatchResult::kIndeterminate;
  if (!ctx.enter_reference(ref_id)) return MatchResult::kIndeterminate;
  MatchResult m;
  if (const auto attached = ctx.store()->compiled(ref_id)) {
    m = attached->match(ctx);
  } else {
    m = target->match(ctx);
  }
  ctx.leave_reference(ref_id);
  return m;
}

Decision CompiledPolicyTree::evaluate_reference(const TreeNode& node,
                                                EvaluationContext& ctx) const {
  // Mirrors PolicyReference::evaluate — resolution, cycle detection and
  // error texts included. See reference_match for the resolution notes.
  const std::string& ref_id = node.source->id();
  const PolicyTreeNode* target =
      ctx.store() == nullptr ? nullptr : ctx.store()->find(ref_id);
  if (target == nullptr) {
    return Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::processing_error("unresolved policy reference '" + ref_id + "'"));
  }
  if (!ctx.enter_reference(ref_id)) {
    return Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::processing_error("policy reference cycle at '" + ref_id + "'"));
  }
  Decision d;
  if (const auto attached = ctx.store()->compiled(ref_id)) {
    d = attached->evaluate(ctx);
  } else {
    d = target->evaluate(ctx);
  }
  ctx.leave_reference(ref_id);
  return d;
}

MatchResult CompiledPolicyTree::match(EvaluationContext& ctx) const {
  return node_match(nodes_.front(), ctx);
}

Decision CompiledPolicyTree::evaluate(EvaluationContext& ctx) const {
  return node_evaluate(nodes_.front(), ctx);
}

// ---------------------------------------------------------------------
// Vocabulary and reference extraction
// ---------------------------------------------------------------------

namespace {

void collect_expr_names(const Expression& expr, std::set<std::string>* out) {
  switch (expr.kind()) {
    case ExprKind::kDesignator:
      out->insert(static_cast<const DesignatorExpr&>(expr).id());
      return;
    case ExprKind::kApply: {
      for (const ExprPtr& arg : static_cast<const ApplyExpr&>(expr).args()) {
        collect_expr_names(*arg, out);
      }
      return;
    }
    case ExprKind::kLiteral:
    case ExprKind::kFunctionRef:
      return;
  }
}

void collect_target_names(const Target& target, std::set<std::string>* out) {
  for (const AnyOf& any : target.any_ofs) {
    for (const AllOf& all : any.all_ofs) {
      for (const Match& m : all.matches) out->insert(m.attribute_id);
    }
  }
}

void collect_obligation_names(const std::vector<ObligationExpr>& obligations,
                              std::set<std::string>* out) {
  for (const ObligationExpr& ob : obligations) {
    for (const AttributeAssignmentExpr& a : ob.assignments) {
      if (a.expr) collect_expr_names(*a.expr, out);
    }
  }
}

void collect_policy_names(const Policy& policy, std::set<std::string>* out) {
  collect_target_names(policy.target_spec, out);
  collect_obligation_names(policy.obligations, out);
  for (const Rule& rule : policy.rules) {
    if (rule.target.has_value()) collect_target_names(*rule.target, out);
    if (rule.condition) collect_expr_names(*rule.condition, out);
    collect_obligation_names(rule.obligations, out);
  }
}

void collect_node_names(const PolicyTreeNode& node, std::set<std::string>* out) {
  if (const auto* policy = dynamic_cast<const Policy*>(&node)) {
    collect_policy_names(*policy, out);
    return;
  }
  if (const auto* set = dynamic_cast<const PolicySet*>(&node)) {
    collect_target_names(set->target_spec, out);
    collect_obligation_names(set->obligations, out);
    for (const PolicyNodePtr& child : set->children()) {
      collect_node_names(*child, out);
    }
  }
  // PolicyReference: the referenced policy registers its own names when
  // it is issued; the reference itself mentions none.
}

void collect_reference_ids(const PolicyTreeNode& node, std::set<std::string>* out) {
  if (dynamic_cast<const Policy*>(&node) != nullptr) return;
  if (const auto* set = dynamic_cast<const PolicySet*>(&node)) {
    for (const PolicyNodePtr& child : set->children()) {
      collect_reference_ids(*child, out);
    }
    return;
  }
  out->insert(node.id());  // PolicyReference
}

}  // namespace

std::vector<std::string> referenced_attribute_names(const Policy& policy) {
  std::set<std::string> names;
  collect_policy_names(policy, &names);
  return std::vector<std::string>(names.begin(), names.end());
}

std::vector<std::string> referenced_attribute_names(const PolicyTreeNode& node) {
  std::set<std::string> names;
  collect_node_names(node, &names);
  return std::vector<std::string>(names.begin(), names.end());
}

std::vector<std::string> referenced_policy_ids(const PolicyTreeNode& node) {
  std::set<std::string> ids;
  collect_reference_ids(node, &ids);
  return std::vector<std::string>(ids.begin(), ids.end());
}

}  // namespace mdac::core
