// Evaluation context shared by every node in the policy tree during one
// decision, plus the AttributeResolver seam through which PIPs (paper
// §2.2, component 4) are consulted for attributes the PEP did not supply.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "core/attribute.hpp"
#include "core/request.hpp"
#include "core/status.hpp"

namespace mdac::core {

class FunctionRegistry;
class PolicyStore;
struct CompiledEvalScratch;

/// Result of evaluating an expression: a bag, or an error status.
struct ExprResult {
  Bag bag;
  Status status;

  bool ok() const { return status.ok(); }

  static ExprResult value(Bag b) { return {std::move(b), Status::okay()}; }
  static ExprResult single(AttributeValue v) { return {Bag(std::move(v)), Status::okay()}; }
  static ExprResult boolean(bool b) { return single(AttributeValue(b)); }
  static ExprResult error(Status s) { return {Bag(), std::move(s)}; }
};

/// Supplies attributes not present in the request (the PIP seam).
/// Implementations live in `mdac::pip`; the interface lives here so the
/// core has no dependency on any particular information source.
class AttributeResolver {
 public:
  virtual ~AttributeResolver() = default;

  /// Returns the bag for (category, id), or nullopt if this resolver has
  /// no knowledge of the attribute.
  virtual std::optional<Bag> resolve(Category category, const std::string& id,
                                     const RequestContext& request) = 0;
};

/// Counters exposed on every evaluation; the figure-4 bench reads these to
/// decompose decision cost.
struct EvaluationMetrics {
  std::size_t rules_evaluated = 0;
  std::size_t policies_evaluated = 0;
  std::size_t attribute_lookups = 0;
  std::size_t resolver_calls = 0;
  std::size_t functions_invoked = 0;
  std::size_t targets_checked = 0;
};

class EvaluationContext {
 public:
  /// `resolver` and `store` may be null (no PIP; no policy references).
  EvaluationContext(const RequestContext& request, const FunctionRegistry& functions,
                    AttributeResolver* resolver = nullptr,
                    const PolicyStore* store = nullptr);

  /// The context only *references* the request; binding a temporary would
  /// dangle by the first attribute lookup. Deleted to fail at compile
  /// time instead (found by the fuzz suite, kept impossible ever since).
  EvaluationContext(RequestContext&&, const FunctionRegistry&,
                    AttributeResolver* = nullptr, const PolicyStore* = nullptr) = delete;

  const RequestContext& request() const { return request_; }
  const FunctionRegistry& functions() const { return functions_; }
  const PolicyStore* store() const { return store_; }

  /// Designator lookup: request first, then the resolver (memoised).
  /// The returned bag contains only values of `expected` type. An empty
  /// bag with `must_be_present` yields a missing-attribute error status.
  ExprResult attribute(Category category, const std::string& id, DataType expected,
                       bool must_be_present);

  /// Allocation-free designator for target matching: if the *request
  /// itself* supplies (category, id) with at least one value of
  /// `expected` type, counts one attribute lookup and returns the
  /// request's bag in place (unfiltered — callers skip other-typed
  /// values while iterating). Returns nullptr otherwise; callers then
  /// fall back to the general attribute() path, which consults the
  /// resolver and reports missing-attribute errors. The raw probe result
  /// is memoised so that fall-back does not re-search the request's
  /// sorted bag vector for the same (category, id).
  const Bag* attribute_in_request(Category category, const std::string& id,
                                  DataType expected);

  /// Seeds the probe memo for a caller that already searched the request
  /// itself (the compiled match tables probe by pre-resolved symbol):
  /// the attribute() fall-back then reuses the result instead of
  /// re-searching by string — the same memoisation attribute_in_request
  /// performs for the interpreted path. `id` must outlive the next
  /// attribute() call (compiled programs pass owned-AST strings).
  void remember_probe(Category category, const std::string& id, const Bag* bag) {
    probe_id_ = &id;
    probe_category_ = category;
    probe_bag_ = bag;
  }

  EvaluationMetrics& metrics() { return metrics_; }
  const EvaluationMetrics& metrics() const { return metrics_; }

  /// Cycle detection for policy-set references. Returns false if `id` is
  /// already on the evaluation path.
  bool enter_reference(const std::string& id);
  void leave_reference(const std::string& id);

  /// Reusable condition-program buffers for compiled policy evaluation
  /// (core/compiled.hpp). The Pdp wires its persistent scratch in before
  /// evaluating; null makes compiled conditions fall back to a local
  /// buffer. Not owned; must outlive the context.
  CompiledEvalScratch* compiled_scratch() const { return compiled_scratch_; }
  void set_compiled_scratch(CompiledEvalScratch* scratch) {
    compiled_scratch_ = scratch;
  }

 private:
  const RequestContext& request_;
  const FunctionRegistry& functions_;
  AttributeResolver* resolver_;
  const PolicyStore* store_;
  CompiledEvalScratch* compiled_scratch_ = nullptr;

  // Memo of the last attribute_in_request() bag probe, so the Match
  // fast-path miss -> attribute() fall-back reuses the search instead of
  // re-probing. Safe to cache: request_ is immutable for the context's
  // lifetime. probe_bag_ may be null (attribute genuinely absent).
  const std::string* probe_id_ = nullptr;
  Category probe_category_{};
  const Bag* probe_bag_ = nullptr;

  std::map<std::pair<Category, std::string>, Bag> resolver_cache_;
  std::set<std::string> reference_path_;
  EvaluationMetrics metrics_;
};

}  // namespace mdac::core
