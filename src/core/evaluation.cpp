#include "core/evaluation.hpp"

namespace mdac::core {

EvaluationContext::EvaluationContext(const RequestContext& request,
                                     const FunctionRegistry& functions,
                                     AttributeResolver* resolver,
                                     const PolicyStore* store)
    : request_(request), functions_(functions), resolver_(resolver), store_(store) {}

namespace {

Bag filter_by_type(const Bag& in, DataType expected) {
  Bag out;
  for (const AttributeValue& v : in.values()) {
    if (v.type() == expected) out.add(v);
  }
  return out;
}

}  // namespace

const Bag* EvaluationContext::attribute_in_request(Category category,
                                                   const std::string& id,
                                                   DataType expected) {
  const Bag* bag = request_.get(category, id);
  probe_id_ = &id;
  probe_category_ = category;
  probe_bag_ = bag;
  if (bag == nullptr) return nullptr;
  for (const AttributeValue& v : bag->values()) {
    if (v.type() == expected) {
      ++metrics_.attribute_lookups;
      return bag;
    }
  }
  return nullptr;
}

ExprResult EvaluationContext::attribute(Category category, const std::string& id,
                                        DataType expected, bool must_be_present) {
  ++metrics_.attribute_lookups;

  // Reuse the bag probe attribute_in_request() just did for the same
  // (category, id) — the Match fast-path-miss call pattern — instead of
  // re-searching the request. Pointer equality settles the common case
  // (the Match passes the very same string object) without a compare.
  const Bag* in_request;
  if (probe_id_ != nullptr && probe_category_ == category &&
      (probe_id_ == &id || *probe_id_ == id)) {
    in_request = probe_bag_;
  } else {
    in_request = request_.get(category, id);
  }

  Bag found;
  if (in_request != nullptr) {
    found = filter_by_type(*in_request, expected);
  }

  if (found.empty() && resolver_ != nullptr) {
    const auto key = std::make_pair(category, id);
    const auto cached = resolver_cache_.find(key);
    if (cached != resolver_cache_.end()) {
      found = filter_by_type(cached->second, expected);
    } else {
      ++metrics_.resolver_calls;
      if (auto resolved = resolver_->resolve(category, id, request_)) {
        resolver_cache_[key] = *resolved;
        found = filter_by_type(*resolved, expected);
      } else {
        resolver_cache_[key] = Bag();
      }
    }
  }

  if (found.empty() && must_be_present) {
    return ExprResult::error(Status::missing_attribute(
        std::string(to_string(category)) + ":" + id));
  }
  return ExprResult::value(std::move(found));
}

bool EvaluationContext::enter_reference(const std::string& id) {
  return reference_path_.insert(id).second;
}

void EvaluationContext::leave_reference(const std::string& id) {
  reference_path_.erase(id);
}

}  // namespace mdac::core
