// XML (de)serialisation of policies, requests and responses — the
// XACML-shaped wire dialect (see DESIGN.md substitutions).
//
// This is what makes the architecture *interoperable* in the paper's
// sense (§3.2): every PAP→PDP policy retrieval, PEP→PDP decision query
// and syndication push crosses domains as one of these documents. The
// encoding is intentionally as verbose as XACML's, because that verbosity
// is itself measured by experiment C2.
#pragma once

#include <stdexcept>
#include <string>

#include "core/decision.hpp"
#include "core/pdp.hpp"
#include "core/policy.hpp"
#include "core/request.hpp"
#include "xml/xml.hpp"

namespace mdac::core {

class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& message)
      : std::runtime_error("serialization error: " + message) {}
};

// --- Expressions ------------------------------------------------------
xml::Element expr_to_xml(const Expression& expr);
ExprPtr expr_from_xml(const xml::Element& element);  // throws

// --- Policy trees ------------------------------------------------------
xml::Element target_to_xml(const Target& target);
Target target_from_xml(const xml::Element& element);

xml::Element rule_to_xml(const Rule& rule);
Rule rule_from_xml(const xml::Element& element);

xml::Element policy_to_xml(const Policy& policy);
Policy policy_from_xml(const xml::Element& element);

xml::Element policy_set_to_xml(const PolicySet& policy_set);
PolicySet policy_set_from_xml(const xml::Element& element);

/// Serialises any node (Policy, PolicySet or PolicyReference).
xml::Element node_to_xml(const PolicyTreeNode& node);
PolicyNodePtr node_from_xml(const xml::Element& element);

// --- Contexts ------------------------------------------------------------
xml::Element request_to_xml(const RequestContext& request);
RequestContext request_from_xml(const xml::Element& element);

xml::Element decision_to_xml(const Decision& decision);
Decision decision_from_xml(const xml::Element& element);

// --- Convenience string round-trips ---------------------------------------
std::string node_to_string(const PolicyTreeNode& node, bool pretty = false);
PolicyNodePtr node_from_string(const std::string& text);
std::string request_to_string(const RequestContext& request, bool pretty = false);
RequestContext request_from_string(const std::string& text);
std::string decision_to_string(const Decision& decision, bool pretty = false);
Decision decision_from_string(const std::string& text);

}  // namespace mdac::core
