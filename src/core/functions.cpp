#include "core/functions.hpp"

#include <algorithm>
#include <cmath>
#include <regex>
#include <set>

#include "common/strings.hpp"

namespace mdac::core {

namespace {

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

ExprResult type_error(const std::string& fn, const std::string& detail) {
  return ExprResult::error(
      Status::processing_error(fn + ": " + detail));
}

/// Extracts the single value of a bag, checking the expected type.
/// Returns nullopt and fills `err` on failure.
std::optional<AttributeValue> singleton_of(const std::string& fn, const Bag& bag,
                                           DataType expected, ExprResult* err) {
  if (bag.size() != 1) {
    *err = type_error(fn, "expected singleton bag, got " + std::to_string(bag.size()) +
                              " values");
    return std::nullopt;
  }
  const AttributeValue& v = bag.at(0);
  if (v.type() != expected) {
    *err = type_error(fn, std::string("expected ") + to_string(expected) + ", got " +
                              to_string(v.type()));
    return std::nullopt;
  }
  return v;
}

using Args = std::vector<Bag>;

/// Registers a binary function over two singleton values of fixed types.
template <typename F>
FunctionDef binary(std::string name, DataType lhs_type, DataType rhs_type, F body) {
  FunctionDef def;
  def.name = name;
  def.arity = 2;
  def.invoke = [name, lhs_type, rhs_type, body](EvaluationContext&,
                                                const Args& args) -> ExprResult {
    ExprResult err = ExprResult::boolean(false);
    const auto a = singleton_of(name, args[0], lhs_type, &err);
    if (!a) return err;
    const auto b = singleton_of(name, args[1], rhs_type, &err);
    if (!b) return err;
    return body(*a, *b);
  };
  return def;
}

/// Registers a unary function over one singleton value.
template <typename F>
FunctionDef unary(std::string name, DataType in_type, F body) {
  FunctionDef def;
  def.name = name;
  def.arity = 1;
  def.invoke = [name, in_type, body](EvaluationContext&, const Args& args) -> ExprResult {
    ExprResult err = ExprResult::boolean(false);
    const auto a = singleton_of(name, args[0], in_type, &err);
    if (!a) return err;
    return body(*a);
  };
  return def;
}

/// Variadic fold over singleton values of one type.
template <typename F>
FunctionDef fold(std::string name, DataType in_type, int min_args, F body) {
  FunctionDef def;
  def.name = name;
  def.arity = -1;
  def.invoke = [name, in_type, min_args, body](EvaluationContext&,
                                               const Args& args) -> ExprResult {
    if (static_cast<int>(args.size()) < min_args) {
      return type_error(name, "needs at least " + std::to_string(min_args) + " arguments");
    }
    std::vector<AttributeValue> vals;
    vals.reserve(args.size());
    ExprResult err = ExprResult::boolean(false);
    for (const Bag& b : args) {
      const auto v = singleton_of(name, b, in_type, &err);
      if (!v) return err;
      vals.push_back(*v);
    }
    return body(vals);
  };
  return def;
}

// Comparison family for a type with operator< on the projected value.
template <typename Proj>
void add_ordering(FunctionRegistry& reg, const std::string& prefix, DataType type,
                  Proj proj) {
  reg.add(binary(prefix + "-less-than", type, type,
                 [proj](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::boolean(proj(a) < proj(b));
                 }));
  reg.add(binary(prefix + "-less-than-or-equal", type, type,
                 [proj](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::boolean(!(proj(b) < proj(a)));
                 }));
  reg.add(binary(prefix + "-greater-than", type, type,
                 [proj](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::boolean(proj(b) < proj(a));
                 }));
  reg.add(binary(prefix + "-greater-than-or-equal", type, type,
                 [proj](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::boolean(!(proj(a) < proj(b)));
                 }));
}

void add_equality(FunctionRegistry& reg, const std::string& prefix, DataType type) {
  reg.add(binary(prefix + "-equal", type, type,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::boolean(a == b);
                 }));
}

FunctionRegistry build_standard() {
  FunctionRegistry reg;

  // --- Equality -----------------------------------------------------
  add_equality(reg, "string", DataType::kString);
  add_equality(reg, "boolean", DataType::kBoolean);
  add_equality(reg, "integer", DataType::kInteger);
  add_equality(reg, "double", DataType::kDouble);
  add_equality(reg, "time", DataType::kTime);

  // --- Ordering -----------------------------------------------------
  add_ordering(reg, "integer", DataType::kInteger,
               [](const AttributeValue& v) { return v.as_integer(); });
  add_ordering(reg, "double", DataType::kDouble,
               [](const AttributeValue& v) { return v.as_double(); });
  add_ordering(reg, "string", DataType::kString,
               [](const AttributeValue& v) { return v.as_string(); });
  add_ordering(reg, "time", DataType::kTime,
               [](const AttributeValue& v) { return v.as_time().millis; });

  {
    FunctionDef def;
    def.name = "time-in-range";
    def.arity = 3;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      ExprResult err = ExprResult::boolean(false);
      const auto t = singleton_of("time-in-range", args[0], DataType::kTime, &err);
      if (!t) return err;
      const auto lo = singleton_of("time-in-range", args[1], DataType::kTime, &err);
      if (!lo) return err;
      const auto hi = singleton_of("time-in-range", args[2], DataType::kTime, &err);
      if (!hi) return err;
      const auto v = t->as_time().millis;
      return ExprResult::boolean(lo->as_time().millis <= v && v <= hi->as_time().millis);
    };
    reg.add(std::move(def));
  }

  // --- Integer arithmetic --------------------------------------------
  reg.add(fold("integer-add", DataType::kInteger, 2,
               [](const std::vector<AttributeValue>& vs) {
                 std::int64_t acc = 0;
                 for (const auto& v : vs) acc += v.as_integer();
                 return ExprResult::single(AttributeValue(acc));
               }));
  reg.add(fold("integer-multiply", DataType::kInteger, 2,
               [](const std::vector<AttributeValue>& vs) {
                 std::int64_t acc = 1;
                 for (const auto& v : vs) acc *= v.as_integer();
                 return ExprResult::single(AttributeValue(acc));
               }));
  reg.add(binary("integer-subtract", DataType::kInteger, DataType::kInteger,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::single(AttributeValue(a.as_integer() - b.as_integer()));
                 }));
  reg.add(binary("integer-divide", DataType::kInteger, DataType::kInteger,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   if (b.as_integer() == 0) {
                     return type_error("integer-divide", "division by zero");
                   }
                   return ExprResult::single(AttributeValue(a.as_integer() / b.as_integer()));
                 }));
  reg.add(binary("integer-mod", DataType::kInteger, DataType::kInteger,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   if (b.as_integer() == 0) {
                     return type_error("integer-mod", "division by zero");
                   }
                   return ExprResult::single(AttributeValue(a.as_integer() % b.as_integer()));
                 }));
  reg.add(unary("integer-abs", DataType::kInteger, [](const AttributeValue& a) {
    const std::int64_t v = a.as_integer();
    return ExprResult::single(AttributeValue(v < 0 ? -v : v));
  }));

  // --- Double arithmetic ---------------------------------------------
  reg.add(fold("double-add", DataType::kDouble, 2,
               [](const std::vector<AttributeValue>& vs) {
                 double acc = 0;
                 for (const auto& v : vs) acc += v.as_double();
                 return ExprResult::single(AttributeValue(acc));
               }));
  reg.add(fold("double-multiply", DataType::kDouble, 2,
               [](const std::vector<AttributeValue>& vs) {
                 double acc = 1;
                 for (const auto& v : vs) acc *= v.as_double();
                 return ExprResult::single(AttributeValue(acc));
               }));
  reg.add(binary("double-subtract", DataType::kDouble, DataType::kDouble,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::single(AttributeValue(a.as_double() - b.as_double()));
                 }));
  reg.add(binary("double-divide", DataType::kDouble, DataType::kDouble,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   if (b.as_double() == 0.0) {
                     return type_error("double-divide", "division by zero");
                   }
                   return ExprResult::single(AttributeValue(a.as_double() / b.as_double()));
                 }));
  reg.add(unary("double-abs", DataType::kDouble, [](const AttributeValue& a) {
    return ExprResult::single(AttributeValue(std::fabs(a.as_double())));
  }));
  reg.add(unary("round", DataType::kDouble, [](const AttributeValue& a) {
    return ExprResult::single(AttributeValue(std::round(a.as_double())));
  }));
  reg.add(unary("floor", DataType::kDouble, [](const AttributeValue& a) {
    return ExprResult::single(AttributeValue(std::floor(a.as_double())));
  }));

  // --- Conversions ----------------------------------------------------
  reg.add(unary("integer-to-double", DataType::kInteger, [](const AttributeValue& a) {
    return ExprResult::single(AttributeValue(static_cast<double>(a.as_integer())));
  }));
  reg.add(unary("double-to-integer", DataType::kDouble, [](const AttributeValue& a) {
    return ExprResult::single(
        AttributeValue(static_cast<std::int64_t>(a.as_double())));
  }));
  reg.add(unary("string-to-integer", DataType::kString, [](const AttributeValue& a) {
    const auto parsed = AttributeValue::from_text(DataType::kInteger, a.as_string());
    if (!parsed) return type_error("string-to-integer", "'" + a.as_string() + "'");
    return ExprResult::single(*parsed);
  }));
  reg.add(unary("integer-to-string", DataType::kInteger, [](const AttributeValue& a) {
    return ExprResult::single(AttributeValue(std::to_string(a.as_integer())));
  }));

  // --- Logic ----------------------------------------------------------
  reg.add(fold("and", DataType::kBoolean, 0, [](const std::vector<AttributeValue>& vs) {
    for (const auto& v : vs) {
      if (!v.as_boolean()) return ExprResult::boolean(false);
    }
    return ExprResult::boolean(true);
  }));
  reg.add(fold("or", DataType::kBoolean, 0, [](const std::vector<AttributeValue>& vs) {
    for (const auto& v : vs) {
      if (v.as_boolean()) return ExprResult::boolean(true);
    }
    return ExprResult::boolean(false);
  }));
  reg.add(unary("not", DataType::kBoolean, [](const AttributeValue& a) {
    return ExprResult::boolean(!a.as_boolean());
  }));
  {
    FunctionDef def;
    def.name = "n-of";
    def.arity = -1;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      if (args.empty()) return type_error("n-of", "needs a threshold argument");
      ExprResult err = ExprResult::boolean(false);
      const auto n = singleton_of("n-of", args[0], DataType::kInteger, &err);
      if (!n) return err;
      std::int64_t count = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        const auto b = singleton_of("n-of", args[i], DataType::kBoolean, &err);
        if (!b) return err;
        if (b->as_boolean()) ++count;
      }
      return ExprResult::boolean(count >= n->as_integer());
    };
    reg.add(std::move(def));
  }

  // --- Strings ----------------------------------------------------------
  reg.add(fold("string-concatenate", DataType::kString, 2,
               [](const std::vector<AttributeValue>& vs) {
                 std::string out;
                 for (const auto& v : vs) out += v.as_string();
                 return ExprResult::single(AttributeValue(out));
               }));
  // True iff the first string contains the second.
  reg.add(binary("string-contains", DataType::kString, DataType::kString,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::boolean(a.as_string().find(b.as_string()) !=
                                              std::string::npos);
                 }));
  reg.add(binary("string-starts-with", DataType::kString, DataType::kString,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::boolean(
                       std::string_view(a.as_string()).starts_with(b.as_string()));
                 }));
  reg.add(binary("string-ends-with", DataType::kString, DataType::kString,
                 [](const AttributeValue& a, const AttributeValue& b) {
                   return ExprResult::boolean(
                       std::string_view(a.as_string()).ends_with(b.as_string()));
                 }));
  reg.add(unary("string-normalize-space", DataType::kString, [](const AttributeValue& a) {
    return ExprResult::single(
        AttributeValue(std::string(common::trim(a.as_string()))));
  }));
  reg.add(unary("string-to-lower", DataType::kString, [](const AttributeValue& a) {
    return ExprResult::single(AttributeValue(common::to_lower(a.as_string())));
  }));
  reg.add(unary("string-length", DataType::kString, [](const AttributeValue& a) {
    return ExprResult::single(
        AttributeValue(static_cast<std::int64_t>(a.as_string().size())));
  }));
  // regexp-match(pattern, string) with ECMAScript syntax, full match.
  reg.add(binary("regexp-match", DataType::kString, DataType::kString,
                 [](const AttributeValue& a, const AttributeValue& b) -> ExprResult {
                   try {
                     const std::regex re(a.as_string());
                     return ExprResult::boolean(std::regex_search(b.as_string(), re));
                   } catch (const std::regex_error& e) {
                     return type_error("regexp-match", e.what());
                   }
                 }));

  // --- Bags --------------------------------------------------------------
  {
    FunctionDef def;
    def.name = "one-and-only";
    def.arity = 1;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      if (args[0].size() != 1) {
        return type_error("one-and-only",
                          "bag has " + std::to_string(args[0].size()) + " values");
      }
      return ExprResult::single(args[0].at(0));
    };
    reg.add(std::move(def));
  }
  {
    FunctionDef def;
    def.name = "bag-size";
    def.arity = 1;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      return ExprResult::single(
          AttributeValue(static_cast<std::int64_t>(args[0].size())));
    };
    reg.add(std::move(def));
  }
  {
    // is-in(value, bag)
    FunctionDef def;
    def.name = "is-in";
    def.arity = 2;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      if (args[0].size() != 1) {
        return type_error("is-in", "first argument must be a single value");
      }
      return ExprResult::boolean(args[1].contains(args[0].at(0)));
    };
    reg.add(std::move(def));
  }
  {
    // bag(v1, ..., vn) -> bag of the argument values
    FunctionDef def;
    def.name = "bag";
    def.arity = -1;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      Bag out;
      for (const Bag& b : args) {
        for (const AttributeValue& v : b.values()) out.add(v);
      }
      return ExprResult::value(std::move(out));
    };
    reg.add(std::move(def));
  }
  {
    FunctionDef def;
    def.name = "union";
    def.arity = -1;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      Bag out;
      for (const Bag& b : args) {
        for (const AttributeValue& v : b.values()) {
          if (!out.contains(v)) out.add(v);
        }
      }
      return ExprResult::value(std::move(out));
    };
    reg.add(std::move(def));
  }
  {
    FunctionDef def;
    def.name = "intersection";
    def.arity = 2;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      Bag out;
      for (const AttributeValue& v : args[0].values()) {
        if (args[1].contains(v) && !out.contains(v)) out.add(v);
      }
      return ExprResult::value(std::move(out));
    };
    reg.add(std::move(def));
  }
  {
    // subset(a, b): every member of a is in b
    FunctionDef def;
    def.name = "subset";
    def.arity = 2;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      for (const AttributeValue& v : args[0].values()) {
        if (!args[1].contains(v)) return ExprResult::boolean(false);
      }
      return ExprResult::boolean(true);
    };
    reg.add(std::move(def));
  }
  {
    FunctionDef def;
    def.name = "set-equals";
    def.arity = 2;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      // Set semantics (duplicates ignored), per XACML.
      for (const AttributeValue& v : args[0].values()) {
        if (!args[1].contains(v)) return ExprResult::boolean(false);
      }
      for (const AttributeValue& v : args[1].values()) {
        if (!args[0].contains(v)) return ExprResult::boolean(false);
      }
      return ExprResult::boolean(true);
    };
    reg.add(std::move(def));
  }
  {
    FunctionDef def;
    def.name = "at-least-one-member-of";
    def.arity = 2;
    def.invoke = [](EvaluationContext&, const Args& args) -> ExprResult {
      for (const AttributeValue& v : args[0].values()) {
        if (args[1].contains(v)) return ExprResult::boolean(true);
      }
      return ExprResult::boolean(false);
    };
    reg.add(std::move(def));
  }

  // --- Higher-order (bodies live in ApplyExpr::evaluate) -----------------
  for (const char* name : {"any-of", "all-of", "any-of-any", "map"}) {
    FunctionDef def;
    def.name = name;
    def.arity = -1;
    def.higher_order = true;
    reg.add(std::move(def));
  }

  return reg;
}

}  // namespace

const FunctionRegistry& FunctionRegistry::standard() {
  static const FunctionRegistry reg = build_standard();
  return reg;
}

FunctionRegistry FunctionRegistry::standard_copy() { return build_standard(); }

void FunctionRegistry::add(FunctionDef def) {
  functions_[def.name] = std::move(def);
}

const FunctionDef* FunctionRegistry::find(std::string_view name) const {
  const auto it = functions_.find(name);
  if (it == functions_.end()) return nullptr;
  return &it->second;
}

}  // namespace mdac::core
