#include "core/attribute.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

namespace mdac::core {

const char* to_string(DataType t) {
  switch (t) {
    case DataType::kString: return "string";
    case DataType::kBoolean: return "boolean";
    case DataType::kInteger: return "integer";
    case DataType::kDouble: return "double";
    case DataType::kTime: return "time";
  }
  return "?";
}

std::optional<DataType> data_type_from_string(std::string_view s) {
  if (s == "string") return DataType::kString;
  if (s == "boolean") return DataType::kBoolean;
  if (s == "integer") return DataType::kInteger;
  if (s == "double") return DataType::kDouble;
  if (s == "time") return DataType::kTime;
  return std::nullopt;
}

DataType AttributeValue::type() const {
  switch (value_.index()) {
    case 0: return DataType::kString;
    case 1: return DataType::kBoolean;
    case 2: return DataType::kInteger;
    case 3: return DataType::kDouble;
    default: return DataType::kTime;
  }
}

std::string AttributeValue::to_text() const {
  switch (type()) {
    case DataType::kString:
      return as_string();
    case DataType::kBoolean:
      return as_boolean() ? "true" : "false";
    case DataType::kInteger:
      return std::to_string(as_integer());
    case DataType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << as_double();
      return os.str();
    }
    case DataType::kTime:
      return std::to_string(as_time().millis);
  }
  return {};
}

std::optional<AttributeValue> AttributeValue::from_text(DataType type,
                                                        std::string_view text) {
  switch (type) {
    case DataType::kString:
      return AttributeValue(std::string(text));
    case DataType::kBoolean:
      if (text == "true" || text == "1") return AttributeValue(true);
      if (text == "false" || text == "0") return AttributeValue(false);
      return std::nullopt;
    case DataType::kInteger: {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
      return AttributeValue(v);
    }
    case DataType::kDouble: {
      // std::from_chars for double is available in libstdc++ 11+.
      double v = 0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
      return AttributeValue(v);
    }
    case DataType::kTime: {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
      return AttributeValue(TimeValue{v});
    }
  }
  return std::nullopt;
}

bool Bag::contains(const AttributeValue& v) const {
  return std::find(values_.begin(), values_.end(), v) != values_.end();
}

bool Bag::set_equals(const Bag& other) const {
  if (values_.size() != other.values_.size()) return false;
  std::vector<AttributeValue> a = values_;
  std::vector<AttributeValue> b = other.values_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

const char* to_string(Category c) {
  switch (c) {
    case Category::kSubject: return "subject";
    case Category::kResource: return "resource";
    case Category::kAction: return "action";
    case Category::kEnvironment: return "environment";
    case Category::kDelegate: return "delegate";
  }
  return "?";
}

std::optional<Category> category_from_string(std::string_view s) {
  if (s == "subject") return Category::kSubject;
  if (s == "resource") return Category::kResource;
  if (s == "action") return Category::kAction;
  if (s == "environment") return Category::kEnvironment;
  if (s == "delegate") return Category::kDelegate;
  return std::nullopt;
}

const attrs::Symbols& attrs::Symbols::get() {
  static const Symbols instance{
      common::interner().intern(attrs::kSubjectId),
      common::interner().intern(attrs::kSubjectDomain),
      common::interner().intern(attrs::kRole),
      common::interner().intern(attrs::kClearance),
      common::interner().intern(attrs::kResourceId),
      common::interner().intern(attrs::kResourceDomain),
      common::interner().intern(attrs::kResourceOwner),
      common::interner().intern(attrs::kClassification),
      common::interner().intern(attrs::kActionId),
      common::interner().intern(attrs::kCurrentTime),
  };
  return instance;
}

}  // namespace mdac::core
