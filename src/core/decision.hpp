// Authorisation decisions, obligations and advice.
//
// Decisions use XACML 3.0 semantics including the *extended
// indeterminate* values Indeterminate{D}, Indeterminate{P} and
// Indeterminate{DP}: when part of the policy tree fails to evaluate, the
// combiner must know which effects the failed subtree *could* have
// produced. Getting this right is what makes combined decisions
// predictable under partial failure — the paper's dependability concern.
#pragma once

#include <string>
#include <vector>

#include "core/attribute.hpp"
#include "core/status.hpp"

namespace mdac::core {

enum class Effect { kPermit, kDeny };

inline const char* to_string(Effect e) {
  return e == Effect::kPermit ? "permit" : "deny";
}

enum class DecisionType { kPermit, kDeny, kNotApplicable, kIndeterminate };

inline const char* to_string(DecisionType d) {
  switch (d) {
    case DecisionType::kPermit: return "permit";
    case DecisionType::kDeny: return "deny";
    case DecisionType::kNotApplicable: return "not-applicable";
    case DecisionType::kIndeterminate: return "indeterminate";
  }
  return "?";
}

/// Which decisions an indeterminate subtree could have produced.
enum class IndeterminateExtent { kNone, kD, kP, kDP };

inline const char* to_string(IndeterminateExtent e) {
  switch (e) {
    case IndeterminateExtent::kNone: return "";
    case IndeterminateExtent::kD: return "D";
    case IndeterminateExtent::kP: return "P";
    case IndeterminateExtent::kDP: return "DP";
  }
  return "?";
}

/// An obligation (or advice) instance attached to a decision: the PEP must
/// (respectively, may) carry out the named action with the evaluated
/// attribute assignments before honouring the decision.
struct ObligationInstance {
  std::string id;
  std::vector<std::pair<std::string, AttributeValue>> assignments;

  bool operator==(const ObligationInstance&) const = default;
};

struct Decision {
  DecisionType type = DecisionType::kNotApplicable;
  IndeterminateExtent extent = IndeterminateExtent::kNone;
  Status status;
  std::vector<ObligationInstance> obligations;
  std::vector<ObligationInstance> advice;

  bool is_permit() const { return type == DecisionType::kPermit; }
  bool is_deny() const { return type == DecisionType::kDeny; }
  bool is_not_applicable() const { return type == DecisionType::kNotApplicable; }
  bool is_indeterminate() const { return type == DecisionType::kIndeterminate; }

  static Decision permit() { return {DecisionType::kPermit, IndeterminateExtent::kNone, Status::okay(), {}, {}}; }
  static Decision deny() { return {DecisionType::kDeny, IndeterminateExtent::kNone, Status::okay(), {}, {}}; }
  static Decision not_applicable() { return {}; }
  static Decision indeterminate(IndeterminateExtent extent, Status status) {
    Decision d;
    d.type = DecisionType::kIndeterminate;
    d.extent = extent;
    d.status = std::move(status);
    return d;
  }

  /// Human-readable form, e.g. "indeterminate{DP}: missing-attribute".
  std::string describe() const;

  bool operator==(const Decision&) const = default;
};

}  // namespace mdac::core
