// Expression AST for policy conditions and obligation assignments.
//
// Four node kinds, mirroring XACML: literals, attribute designators,
// function applications, and function references (the first argument of a
// higher-order apply). Expressions are immutable after construction and
// clonable so policies can be copied across repositories (syndication).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/attribute.hpp"
#include "core/evaluation.hpp"

namespace mdac::core {

enum class ExprKind { kLiteral, kDesignator, kApply, kFunctionRef };

class Expression;
using ExprPtr = std::unique_ptr<Expression>;

class Expression {
 public:
  virtual ~Expression() = default;
  virtual ExprKind kind() const = 0;
  virtual ExprResult evaluate(EvaluationContext& ctx) const = 0;
  virtual ExprPtr clone() const = 0;
};

/// A constant bag of values.
class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(Bag bag) : bag_(std::move(bag)) {}
  explicit LiteralExpr(AttributeValue v) : bag_(Bag(std::move(v))) {}

  ExprKind kind() const override { return ExprKind::kLiteral; }
  ExprResult evaluate(EvaluationContext&) const override {
    return ExprResult::value(bag_);
  }
  ExprPtr clone() const override { return std::make_unique<LiteralExpr>(bag_); }

  const Bag& bag() const { return bag_; }

 private:
  Bag bag_;
};

/// Looks an attribute up in the request context / PIP resolver.
class DesignatorExpr final : public Expression {
 public:
  DesignatorExpr(Category category, std::string id, DataType data_type,
                 bool must_be_present = false)
      : category_(category),
        id_(std::move(id)),
        data_type_(data_type),
        must_be_present_(must_be_present) {}

  ExprKind kind() const override { return ExprKind::kDesignator; }
  ExprResult evaluate(EvaluationContext& ctx) const override {
    return ctx.attribute(category_, id_, data_type_, must_be_present_);
  }
  ExprPtr clone() const override {
    return std::make_unique<DesignatorExpr>(category_, id_, data_type_,
                                            must_be_present_);
  }

  Category category() const { return category_; }
  const std::string& id() const { return id_; }
  DataType data_type() const { return data_type_; }
  bool must_be_present() const { return must_be_present_; }

 private:
  Category category_;
  std::string id_;
  DataType data_type_;
  bool must_be_present_;
};

/// Names a function, as the first argument of a higher-order apply.
class FunctionRefExpr final : public Expression {
 public:
  explicit FunctionRefExpr(std::string function_id)
      : function_id_(std::move(function_id)) {}

  ExprKind kind() const override { return ExprKind::kFunctionRef; }
  ExprResult evaluate(EvaluationContext&) const override {
    return ExprResult::error(Status::processing_error(
        "function reference '" + function_id_ + "' evaluated outside a higher-order apply"));
  }
  ExprPtr clone() const override {
    return std::make_unique<FunctionRefExpr>(function_id_);
  }

  const std::string& function_id() const { return function_id_; }

 private:
  std::string function_id_;
};

/// Applies a registered function to argument expressions.
class ApplyExpr final : public Expression {
 public:
  ApplyExpr(std::string function_id, std::vector<ExprPtr> args)
      : function_id_(std::move(function_id)), args_(std::move(args)) {}

  ExprKind kind() const override { return ExprKind::kApply; }
  ExprResult evaluate(EvaluationContext& ctx) const override;
  ExprPtr clone() const override;

  const std::string& function_id() const { return function_id_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 private:
  ExprResult evaluate_higher_order(EvaluationContext& ctx) const;

  std::string function_id_;
  std::vector<ExprPtr> args_;
};

// ----------------------------------------------------------------------
// Construction helpers (make policy-building code read declaratively).
// ----------------------------------------------------------------------

inline ExprPtr lit(AttributeValue v) { return std::make_unique<LiteralExpr>(std::move(v)); }
inline ExprPtr lit(const char* s) { return lit(AttributeValue(s)); }
inline ExprPtr lit(std::string s) { return lit(AttributeValue(std::move(s))); }
inline ExprPtr lit(std::int64_t i) { return lit(AttributeValue(i)); }
inline ExprPtr lit(bool b) { return lit(AttributeValue(b)); }
inline ExprPtr lit_bag(Bag b) { return std::make_unique<LiteralExpr>(std::move(b)); }

inline ExprPtr designator(Category c, std::string id, DataType t,
                          bool must_be_present = false) {
  return std::make_unique<DesignatorExpr>(c, std::move(id), t, must_be_present);
}

inline ExprPtr function_ref(std::string id) {
  return std::make_unique<FunctionRefExpr>(std::move(id));
}

// Named `make_apply` (not `apply`) deliberately: an unqualified `apply`
// would be ambiguous with std::apply through ADL, because ExprPtr is a
// std::unique_ptr.
template <typename... Ts>
ExprPtr make_apply(std::string function_id, Ts... args) {
  std::vector<ExprPtr> v;
  (v.push_back(std::move(args)), ...);
  return std::make_unique<ApplyExpr>(std::move(function_id), std::move(v));
}

inline ExprPtr make_apply_vec(std::string function_id, std::vector<ExprPtr> args) {
  return std::make_unique<ApplyExpr>(std::move(function_id), std::move(args));
}

}  // namespace mdac::core
