#include "core/pdp.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/functions.hpp"

namespace mdac::core {

Pdp::Pdp(std::shared_ptr<PolicyStore> store, PdpConfig config)
    : store_(std::move(store)),
      config_(std::move(config)),
      functions_(&FunctionRegistry::standard()),
      root_algorithm_(CombiningRegistry::standard().find(config_.root_combining)) {}

namespace {

/// If the target has a conjunct that is a pure disjunction of
/// string-equality matches on one attribute, returns that attribute and
/// the admitted values. Such a conjunct is a *necessary* condition for
/// the target to match, so indexing on it is sound.
struct SimpleConstraint {
  Category category;
  std::string attribute_id;
  std::vector<std::string> values;
};

std::optional<SimpleConstraint> extract_constraint(const Target* target) {
  if (target == nullptr || target->empty()) return std::nullopt;
  for (const AnyOf& any : target->any_ofs) {
    if (any.all_ofs.empty()) continue;
    SimpleConstraint c;
    bool first = true;
    bool viable = true;
    for (const AllOf& all : any.all_ofs) {
      if (all.matches.size() != 1) {
        viable = false;
        break;
      }
      const Match& m = all.matches[0];
      if (m.function_id != "string-equal" || m.must_be_present ||
          m.data_type != DataType::kString || !m.literal.is_string()) {
        viable = false;
        break;
      }
      if (first) {
        c.category = m.category;
        c.attribute_id = m.attribute_id;
        first = false;
      } else if (c.category != m.category || c.attribute_id != m.attribute_id) {
        viable = false;
        break;
      }
      c.values.push_back(m.literal.as_string());
    }
    if (viable && !c.values.empty()) return c;
  }
  return std::nullopt;
}

}  // namespace

void Pdp::rebuild_index() {
  ordered_nodes_ = store_->top_level();
  combinables_.clear();
  combinables_.reserve(ordered_nodes_.size());
  for (const PolicyTreeNode* node : ordered_nodes_) {
    combinables_.push_back(Combinable::of_node(*node));
  }
  index_entries_.clear();
  residual_.clear();
  selected_stamp_.assign(ordered_nodes_.size(), 0);
  select_epoch_ = 0;

  if (!config_.use_target_index) {
    for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) {
      residual_.push_back(static_cast<std::uint32_t>(i));
    }
    indexed_revision_ = store_->revision();
    return;
  }

  // One IndexEntry per distinct (category, attribute); the pair packs
  // into one integer because attribute names are interned.
  std::unordered_map<std::uint64_t, std::size_t> entry_of;
  for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) {
    const auto constraint = extract_constraint(ordered_nodes_[i]->target());
    if (!constraint) {
      residual_.push_back(static_cast<std::uint32_t>(i));
      continue;
    }
    common::Symbol attribute;
    try {
      attribute = common::interner().intern(constraint->attribute_id);
    } catch (const std::length_error&) {
      // Symbol table exhausted (wire-driven growth hit the cap). The
      // policy stays evaluable — it just isn't indexable, so treat it as
      // always-candidate instead of letting evaluate() throw.
      residual_.push_back(static_cast<std::uint32_t>(i));
      continue;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(constraint->category) << 32) | attribute;
    auto it = entry_of.find(key);
    if (it == entry_of.end()) {
      index_entries_.push_back(IndexEntry{constraint->category, attribute, {}});
      it = entry_of.emplace(key, index_entries_.size() - 1).first;
    }
    IndexEntry& entry = index_entries_[it->second];
    for (const std::string& v : constraint->values) {
      entry.by_value[v].push_back(static_cast<std::uint32_t>(i));
    }
  }
  indexed_revision_ = store_->revision();
}

void Pdp::select_candidates(const RequestContext& request, std::size_t* skipped) {
  ++select_epoch_;
  const std::uint64_t epoch = select_epoch_;

  for (const std::uint32_t i : residual_) selected_stamp_[i] = epoch;

  for (const IndexEntry& entry : index_entries_) {
    const Bag* bag = request.get(entry.category, entry.attribute_id);
    if (bag == nullptr) continue;
    for (const AttributeValue& v : bag->values()) {
      if (!v.is_string()) continue;
      const auto it = entry.by_value.find(std::string_view(v.as_string()));
      if (it == entry.by_value.end()) continue;
      for (const std::uint32_t i : it->second) selected_stamp_[i] = epoch;
    }
  }

  children_.clear();
  std::size_t skip_count = 0;
  for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) {
    if (selected_stamp_[i] == epoch) {
      children_.push_back(combinables_[i]);
    } else {
      ++skip_count;
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
}

Decision Pdp::evaluate(const RequestContext& request) {
  return evaluate_with_metrics(request).decision;
}

PdpResult Pdp::evaluate_with_metrics(const RequestContext& request) {
  ++evaluation_count_;
  rebuild_index_if_stale();
  return evaluate_prepared(request);
}

std::vector<PdpResult> Pdp::evaluate_batch(std::span<const RequestContext> requests) {
  rebuild_index_if_stale();
  std::vector<PdpResult> results;
  results.reserve(requests.size());
  for (const RequestContext& request : requests) {
    ++evaluation_count_;
    results.push_back(evaluate_prepared(request));
  }
  return results;
}

PdpResult Pdp::evaluate_prepared(const RequestContext& request) {
  PdpResult result;
  EvaluationContext ctx(request, *functions_, resolver_, store_.get());

  if (root_algorithm_ == nullptr) {
    result.decision = Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::syntax_error("unknown root combining algorithm '" +
                             config_.root_combining + "'"));
    return result;
  }

  if (in_evaluation_) {
    // Re-entrant evaluation (an AttributeResolver called back into this
    // Pdp while the outer combine() is iterating children_): fall back
    // to a local, unindexed child list. Correct — the index only prunes
    // provably non-matching targets — just not allocation-free, which is
    // fine for a path only resolvers can reach.
    std::vector<Combinable> local(combinables_.begin(), combinables_.end());
    result.decision = root_algorithm_->combine(local, ctx);
    result.metrics = ctx.metrics();
    return result;
  }

  select_candidates(request, &result.candidates_skipped);

  struct EvaluationGuard {
    bool& flag;
    explicit EvaluationGuard(bool& f) : flag(f) { flag = true; }
    ~EvaluationGuard() { flag = false; }
  } guard(in_evaluation_);
  result.decision = root_algorithm_->combine(children_, ctx);
  result.metrics = ctx.metrics();
  return result;
}

}  // namespace mdac::core
