#include "core/pdp.hpp"

#include <algorithm>

#include "core/functions.hpp"

namespace mdac::core {

Pdp::Pdp(std::shared_ptr<PolicyStore> store, PdpConfig config)
    : store_(std::move(store)),
      config_(std::move(config)),
      functions_(&FunctionRegistry::standard()) {}

namespace {

/// If the target has a conjunct that is a pure disjunction of
/// string-equality matches on one attribute, returns that attribute and
/// the admitted values. Such a conjunct is a *necessary* condition for
/// the target to match, so indexing on it is sound.
struct SimpleConstraint {
  Category category;
  std::string attribute_id;
  std::vector<std::string> values;
};

std::optional<SimpleConstraint> extract_constraint(const Target* target) {
  if (target == nullptr || target->empty()) return std::nullopt;
  for (const AnyOf& any : target->any_ofs) {
    if (any.all_ofs.empty()) continue;
    SimpleConstraint c;
    bool first = true;
    bool viable = true;
    for (const AllOf& all : any.all_ofs) {
      if (all.matches.size() != 1) {
        viable = false;
        break;
      }
      const Match& m = all.matches[0];
      if (m.function_id != "string-equal" || m.must_be_present ||
          m.data_type != DataType::kString || !m.literal.is_string()) {
        viable = false;
        break;
      }
      if (first) {
        c.category = m.category;
        c.attribute_id = m.attribute_id;
        first = false;
      } else if (c.category != m.category || c.attribute_id != m.attribute_id) {
        viable = false;
        break;
      }
      c.values.push_back(m.literal.as_string());
    }
    if (viable && !c.values.empty()) return c;
  }
  return std::nullopt;
}

}  // namespace

void Pdp::rebuild_index_if_stale() {
  if (indexed_revision_ == store_->revision()) return;

  ordered_nodes_ = store_->top_level();
  index_entries_.clear();
  residual_.clear();

  if (!config_.use_target_index) {
    for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) residual_.push_back(i);
    indexed_revision_ = store_->revision();
    return;
  }

  // One IndexEntry per distinct (category, attribute) seen.
  std::map<std::pair<Category, std::string>, std::size_t> entry_of;
  for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) {
    const auto constraint = extract_constraint(ordered_nodes_[i]->target());
    if (!constraint) {
      residual_.push_back(i);
      continue;
    }
    const auto key = std::make_pair(constraint->category, constraint->attribute_id);
    auto it = entry_of.find(key);
    if (it == entry_of.end()) {
      index_entries_.push_back(IndexEntry{constraint->category,
                                          constraint->attribute_id,
                                          {}});
      it = entry_of.emplace(key, index_entries_.size() - 1).first;
    }
    IndexEntry& entry = index_entries_[it->second];
    for (const std::string& v : constraint->values) {
      entry.by_value[v].push_back(i);
    }
  }
  indexed_revision_ = store_->revision();
}

std::vector<const PolicyTreeNode*> Pdp::select_candidates(
    const RequestContext& request, std::size_t* skipped) const {
  std::vector<bool> selected(ordered_nodes_.size(), false);
  for (const std::size_t i : residual_) selected[i] = true;

  for (const IndexEntry& entry : index_entries_) {
    const Bag* bag = request.get(entry.category, entry.attribute_id);
    if (bag == nullptr) continue;
    for (const AttributeValue& v : bag->values()) {
      if (!v.is_string()) continue;
      const auto it = entry.by_value.find(v.as_string());
      if (it == entry.by_value.end()) continue;
      for (const std::size_t i : it->second) selected[i] = true;
    }
  }

  std::vector<const PolicyTreeNode*> out;
  out.reserve(ordered_nodes_.size());
  std::size_t skip_count = 0;
  for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) {
    if (selected[i]) {
      out.push_back(ordered_nodes_[i]);
    } else {
      ++skip_count;
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  return out;
}

Decision Pdp::evaluate(const RequestContext& request) {
  return evaluate_with_metrics(request).decision;
}

PdpResult Pdp::evaluate_with_metrics(const RequestContext& request) {
  ++evaluation_count_;
  rebuild_index_if_stale();

  PdpResult result;
  EvaluationContext ctx(request, *functions_, resolver_, store_.get());

  const CombiningAlgorithm* alg =
      CombiningRegistry::standard().find(config_.root_combining);
  if (alg == nullptr) {
    result.decision = Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::syntax_error("unknown root combining algorithm '" +
                             config_.root_combining + "'"));
    return result;
  }

  const std::vector<const PolicyTreeNode*> candidates =
      select_candidates(request, &result.candidates_skipped);

  std::vector<Combinable> children;
  children.reserve(candidates.size());
  for (const PolicyTreeNode* node : candidates) {
    children.push_back(Combinable::of_node(*node));
  }

  result.decision = alg->combine(children, ctx);
  result.metrics = ctx.metrics();
  return result;
}

}  // namespace mdac::core
