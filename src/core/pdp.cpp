#include "core/pdp.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/functions.hpp"

namespace mdac::core {

/// If a target conjunct is a pure disjunction of string-equality matches
/// on one attribute, it is a *necessary* condition for the target to
/// match, so both partitioning and indexing on it are sound.
struct TargetConstraint {
  Category category;
  std::string attribute_id;
  std::vector<std::string> values;
};

Pdp::Pdp(std::shared_ptr<PolicyStore> store, PdpConfig config)
    : store_(std::move(store)),
      config_(std::move(config)),
      functions_(&FunctionRegistry::standard()),
      root_algorithm_(CombiningRegistry::standard().find(config_.root_combining)) {}

namespace {

/// Extracts every viable conjunct of the target (each one independently
/// necessary). The first conjunct on a domain attribute drives
/// partitioning; the first remaining one drives the per-partition value
/// index.
std::vector<TargetConstraint> extract_constraints(const Target* target) {
  std::vector<TargetConstraint> out;
  if (target == nullptr || target->empty()) return out;
  for (const AnyOf& any : target->any_ofs) {
    if (any.all_ofs.empty()) continue;
    TargetConstraint c;
    bool first = true;
    bool viable = true;
    for (const AllOf& all : any.all_ofs) {
      if (all.matches.size() != 1) {
        viable = false;
        break;
      }
      const Match& m = all.matches[0];
      if (m.function_id != "string-equal" || m.must_be_present ||
          m.data_type != DataType::kString || !m.literal.is_string()) {
        viable = false;
        break;
      }
      if (first) {
        c.category = m.category;
        c.attribute_id = m.attribute_id;
        first = false;
      } else if (c.category != m.category || c.attribute_id != m.attribute_id) {
        viable = false;
        break;
      }
      c.values.push_back(m.literal.as_string());
    }
    if (viable && !c.values.empty()) out.push_back(std::move(c));
  }
  return out;
}

/// The attributes whose target conjuncts name administrative domains.
bool is_domain_attribute(const std::string& id) {
  return id == attrs::kSubjectDomain || id == attrs::kResourceDomain;
}

}  // namespace

void Pdp::place_in_partition(Partition& partition, std::uint32_t position,
                             const TargetConstraint* constraint) {
  if (constraint == nullptr) {
    partition.residual.push_back(position);
    return;
  }
  common::Symbol attribute;
  try {
    attribute = common::interner().intern(constraint->attribute_id);
  } catch (const std::length_error&) {
    // Symbol table exhausted (wire-driven growth hit the cap). The
    // policy stays evaluable — it just isn't indexable, so treat it as
    // always-candidate instead of letting evaluate() throw.
    partition.residual.push_back(position);
    return;
  }
  // Partitions hold very few distinct (category, attribute) entries, so a
  // linear scan beats a map here.
  IndexEntry* entry = nullptr;
  for (IndexEntry& e : partition.entries) {
    if (e.category == constraint->category && e.attribute_id == attribute) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    partition.entries.push_back(IndexEntry{constraint->category, attribute, {}});
    entry = &partition.entries.back();
  }
  for (const std::string& v : constraint->values) {
    entry->by_value[v].push_back(position);
  }
}

void Pdp::rebuild_index() {
  ordered_nodes_ = store_->top_level();
  global_ = Partition{};
  partitions_.clear();
  selected_stamp_.assign(ordered_nodes_.size(), 0);
  select_epoch_ = 0;

  // Resolve each top-level node's execution program: a store-attached
  // compiled artifact (the PAP compiled it on issue; every replica
  // loading that repository shares the same object), a local compile —
  // plain policies and whole PolicySet trees alike — for nodes the
  // store has no artifact for, or the interpreted AST (use_compiled
  // off). The Combinables built here are what the root combining
  // algorithm receives — one materialisation per store revision, zero
  // per request.
  compile_stats_ = CompileStats{};
  combinables_.clear();
  combinables_.reserve(ordered_nodes_.size());
  // Cache rebuilt fresh each time so removed ids don't accumulate;
  // unchanged nodes (same id at the same store revision) carry their
  // artifact over, so one store mutation recompiles only the policies
  // it touched. The Combinable lambdas co-own each artifact — that is
  // what keeps a store-attached program alive for in-flight use even
  // after the repository recompiles.
  decltype(local_compile_cache_) next_cache;
  for (const PolicyTreeNode* node : ordered_nodes_) {
    std::shared_ptr<const CompiledPolicyTree> compiled;
    if (config_.use_compiled) {
      if (auto attached = store_->compiled(node->id())) {
        compiled = std::move(attached);
      } else {
        const std::uint64_t node_revision = store_->node_revision(node->id());
        const auto cached = local_compile_cache_.find(node->id());
        if (cached != local_compile_cache_.end() &&
            cached->second.first == node_revision) {
          compiled = cached->second.second;
        } else {
          CompileOptions options;
          options.reference_resolves = [this](const std::string& id) {
            return store_->find(id) != nullptr;
          };
          compiled = CompiledPolicyTree::compile(*node, std::move(options));
        }
        next_cache[node->id()] = {node_revision, compiled};
      }
    }
    if (compiled != nullptr) {
      compile_stats_.accumulate(compiled->stats());
      combinables_.push_back(Combinable{
          node->id(),
          [compiled](EvaluationContext& ctx) { return compiled->match(ctx); },
          [compiled](EvaluationContext& ctx) { return compiled->evaluate(ctx); }});
    } else {
      if (config_.use_compiled) ++compile_stats_.interpreted_nodes;
      combinables_.push_back(Combinable::of_node(*node));
    }
  }
  local_compile_cache_ = std::move(next_cache);

  if (!config_.use_target_index) {
    for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) {
      global_.residual.push_back(static_cast<std::uint32_t>(i));
    }
    indexed_revision_ = store_->revision();
    return;
  }

  for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) {
    const std::uint32_t position = static_cast<std::uint32_t>(i);
    const auto constraints = extract_constraints(ordered_nodes_[i]->target());

    // Partition on the first domain conjunct; index within the partition
    // on the first non-domain conjunct (it discriminates better inside a
    // single domain), falling back to the domain conjunct itself.
    const TargetConstraint* domain_constraint = nullptr;
    if (config_.partition_by_domain) {
      for (const TargetConstraint& c : constraints) {
        if (is_domain_attribute(c.attribute_id)) {
          domain_constraint = &c;
          break;
        }
      }
    }
    const TargetConstraint* index_constraint = nullptr;
    for (const TargetConstraint& c : constraints) {
      if (&c != domain_constraint) {
        index_constraint = &c;
        break;
      }
    }
    if (index_constraint == nullptr) index_constraint = domain_constraint;

    if (domain_constraint == nullptr) {
      place_in_partition(global_, position, index_constraint);
    } else {
      // A disjunctive domain conjunct (domain in {a, b}) places the node
      // in every admitted domain's partition; the epoch stamps dedup it
      // if a request names several of them.
      for (const std::string& domain : domain_constraint->values) {
        place_in_partition(partitions_[domain], position, index_constraint);
      }
    }
  }
  indexed_revision_ = store_->revision();
}

void Pdp::probe_partition(const Partition& partition, const RequestContext& request) {
  const std::uint64_t epoch = select_epoch_;
  for (const std::uint32_t i : partition.residual) selected_stamp_[i] = epoch;

  for (const IndexEntry& entry : partition.entries) {
    const Bag* bag = request.get(entry.category, entry.attribute_id);
    if (bag == nullptr) continue;
    for (const AttributeValue& v : bag->values()) {
      if (!v.is_string()) continue;
      const auto it = entry.by_value.find(std::string_view(v.as_string()));
      if (it == entry.by_value.end()) continue;
      for (const std::uint32_t i : it->second) selected_stamp_[i] = epoch;
    }
  }
}

void Pdp::select_candidates(const RequestContext& request, std::size_t* skipped,
                            std::size_t* partitions_probed) {
  ++select_epoch_;

  probe_partition(global_, request);

  std::size_t probed = 0;
  if (!partitions_.empty()) {
    const attrs::Symbols& syms = attrs::Symbols::get();
    const auto visit = [&](std::string_view domain) {
      const auto it = partitions_.find(domain);
      if (it == partitions_.end()) return;
      if (it->second.probe_epoch == select_epoch_) return;  // already routed
      it->second.probe_epoch = select_epoch_;
      probe_partition(it->second, request);
      ++probed;
    };
    const auto visit_bag = [&](const Bag& bag) {
      for (const AttributeValue& v : bag.values()) {
        if (v.is_string()) visit(v.as_string());
      }
    };
    // The domains a request names, wherever it names them: domain
    // attributes in any category route (selecting a superset is sound;
    // requests hold a handful of entries, so the scan is trivial).
    for (const RequestContext::Entry& entry : request.attributes()) {
      if (entry.id == syms.subject_domain || entry.id == syms.resource_domain) {
        visit_bag(entry.bag);
      }
    }
    for (const RequestContext::Entry& entry : request.side_attributes()) {
      if (is_domain_attribute(entry.uninterned_name)) visit_bag(entry.bag);
    }
  }
  partition_probes_ += probed;
  if (partitions_probed != nullptr) *partitions_probed = probed;

  children_.clear();
  std::size_t skip_count = 0;
  const std::uint64_t epoch = select_epoch_;
  for (std::size_t i = 0; i < ordered_nodes_.size(); ++i) {
    if (selected_stamp_[i] == epoch) {
      children_.push_back(&combinables_[i]);
    } else {
      ++skip_count;
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
}

Decision Pdp::evaluate(const RequestContext& request) {
  return evaluate_with_metrics(request).decision;
}

PdpResult Pdp::evaluate_with_metrics(const RequestContext& request) {
  debug_check_owner_thread();
  ++evaluation_count_;
  rebuild_index_if_stale();
  return evaluate_prepared(request);
}

std::vector<PdpResult> Pdp::evaluate_batch(std::span<const RequestContext> requests) {
  debug_check_owner_thread();
  rebuild_index_if_stale();
  std::vector<PdpResult> results;
  results.reserve(requests.size());
  for (const RequestContext& request : requests) {
    ++evaluation_count_;
    results.push_back(evaluate_prepared(request));
  }
  return results;
}

PdpResult Pdp::evaluate_prepared(const RequestContext& request) {
  PdpResult result;
  EvaluationContext ctx(request, *functions_, resolver_, store_.get());
  // Compiled condition programs execute above a saved stack base, so one
  // persistent scratch serves nested (resolver re-entrant) frames too.
  ctx.set_compiled_scratch(&compiled_scratch_);
  result.compile = compile_stats_;

  if (root_algorithm_ == nullptr) {
    result.decision = Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::syntax_error("unknown root combining algorithm '" +
                             config_.root_combining + "'"));
    return result;
  }

  if (in_evaluation_) {
    // Re-entrant evaluation (an AttributeResolver called back into this
    // Pdp while the outer combine() is iterating children_): fall back
    // to a local, unpartitioned child list. Correct — the index only
    // prunes provably non-matching targets — just not allocation-free,
    // which is fine for a path only resolvers can reach.
    std::vector<const Combinable*> local;
    local.reserve(combinables_.size());
    for (const Combinable& c : combinables_) local.push_back(&c);
    result.decision = root_algorithm_->combine(local, ctx);
    result.metrics = ctx.metrics();
    return result;
  }

  select_candidates(request, &result.candidates_skipped, &result.partitions_probed);

  struct EvaluationGuard {
    bool& flag;
    explicit EvaluationGuard(bool& f) : flag(f) { flag = true; }
    ~EvaluationGuard() { flag = false; }
  } guard(in_evaluation_);
  result.decision = root_algorithm_->combine(children_, ctx);
  result.metrics = ctx.metrics();
  return result;
}

}  // namespace mdac::core
