#include "core/decision.hpp"

namespace mdac::core {

std::string Decision::describe() const {
  std::string out = to_string(type);
  if (type == DecisionType::kIndeterminate && extent != IndeterminateExtent::kNone) {
    out += "{";
    out += to_string(extent);
    out += "}";
  }
  if (!status.ok()) {
    out += ": ";
    out += to_string(status.code);
    if (!status.message.empty()) {
      out += " (";
      out += status.message;
      out += ")";
    }
  }
  return out;
}

}  // namespace mdac::core
