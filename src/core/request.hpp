// The request context: the authorisation decision query a PEP sends to a
// PDP (paper Fig. 3/4, step II). Holds every attribute the PEP chose to
// disclose; anything else the PDP needs is pulled from PIPs at decision
// time through an AttributeResolver.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/attribute.hpp"

namespace mdac::core {

class RequestContext {
 public:
  /// Adds a value to the (category, id) bag, creating the bag if needed.
  void add(Category category, const std::string& id, AttributeValue value);

  /// Replaces the whole bag.
  void set(Category category, const std::string& id, Bag bag);

  /// Returns the bag, or nullptr if the attribute was not provided.
  const Bag* get(Category category, const std::string& id) const;

  bool has(Category category, const std::string& id) const {
    return get(category, id) != nullptr;
  }

  /// Flat view of all attributes, for serialisation and auditing.
  const std::map<std::pair<Category, std::string>, Bag>& attributes() const {
    return attributes_;
  }

  std::size_t size() const { return attributes_.size(); }

  bool operator==(const RequestContext&) const = default;

  // --- Convenience constructors -------------------------------------

  /// The canonical subject/resource/action triple request.
  static RequestContext make(const std::string& subject_id,
                             const std::string& resource_id,
                             const std::string& action_id);

 private:
  std::map<std::pair<Category, std::string>, Bag> attributes_;
};

/// Fluent builder for more involved requests.
class RequestBuilder {
 public:
  RequestBuilder& subject(const std::string& id);
  RequestBuilder& subject_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& resource(const std::string& id);
  RequestBuilder& resource_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& action(const std::string& id);
  RequestBuilder& action_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& environment_attr(const std::string& attr_id, AttributeValue v);

  RequestContext build() const { return ctx_; }

 private:
  RequestContext ctx_;
};

}  // namespace mdac::core
