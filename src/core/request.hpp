// The request context: the authorisation decision query a PEP sends to a
// PDP (paper Fig. 3/4, step II). Holds every attribute the PEP chose to
// disclose; anything else the PDP needs is pulled from PIPs at decision
// time through an AttributeResolver.
//
// Storage is a flat vector sorted by (category, interned name): lookups
// by pre-interned Symbol are a binary search over integers, which is
// what lets PDP candidate selection and cache-key fingerprinting stay
// allocation-free (see common/interner.hpp). Within one process,
// semantically equal requests — however their attributes were added —
// hold identical entry sequences.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.hpp"
#include "core/attribute.hpp"

namespace mdac::core {

class RequestContext {
 public:
  /// One (category, attribute) bag. `id` indexes the global interner.
  struct Entry {
    Category category;
    common::Symbol id;
    Bag bag;

    /// The attribute's name (resolved through the interner).
    const std::string& name() const { return common::interner().name(id); }

    bool operator==(const Entry&) const = default;
  };

  /// Adds a value to the (category, id) bag, creating the bag if needed.
  void add(Category category, const std::string& id, AttributeValue value);

  /// As above for callers that pre-interned the name (attrs::Symbols):
  /// skips the interner probe entirely.
  void add(Category category, common::Symbol id, AttributeValue value);

  /// Replaces the whole bag.
  void set(Category category, const std::string& id, Bag bag);

  /// Returns the bag, or nullptr if the attribute was not provided.
  const Bag* get(Category category, const std::string& id) const;

  /// Hot-path overload for callers that pre-interned the name (the PDP
  /// target index): two int compares per probe, no string hashing.
  const Bag* get(Category category, common::Symbol id) const;

  bool has(Category category, const std::string& id) const {
    return get(category, id) != nullptr;
  }

  /// Flat view of all attributes (sorted by category, then interned
  /// name), for serialisation, auditing and fingerprinting.
  const std::vector<Entry>& attributes() const { return entries_; }

  /// Entries re-sorted by (category, attribute *name*): the wire-stable
  /// order, independent of per-process interning order. Used by every
  /// serialised/canonical form (request_to_xml, canonical_request_key)
  /// so they cannot drift apart. Allocates; not for hot paths.
  std::vector<const Entry*> entries_by_name() const;

  std::size_t size() const { return entries_.size(); }

  bool operator==(const RequestContext&) const = default;

  // --- Convenience constructors -------------------------------------

  /// The canonical subject/resource/action triple request.
  static RequestContext make(const std::string& subject_id,
                             const std::string& resource_id,
                             const std::string& action_id);

 private:
  Entry& entry_for(Category category, common::Symbol id);

  std::vector<Entry> entries_;
};

/// Fluent builder for more involved requests.
class RequestBuilder {
 public:
  RequestBuilder& subject(const std::string& id);
  RequestBuilder& subject_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& resource(const std::string& id);
  RequestBuilder& resource_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& action(const std::string& id);
  RequestBuilder& action_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& environment_attr(const std::string& attr_id, AttributeValue v);

  RequestContext build() const { return ctx_; }

 private:
  RequestContext ctx_;
};

}  // namespace mdac::core
