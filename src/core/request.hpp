// The request context: the authorisation decision query a PEP sends to a
// PDP (paper Fig. 3/4, step II). Holds every attribute the PEP chose to
// disclose; anything else the PDP needs is pulled from PIPs at decision
// time through an AttributeResolver.
//
// Storage is a flat vector sorted by (category, interned name): lookups
// by pre-interned Symbol are a binary search over integers, which is
// what lets PDP candidate selection and cache-key fingerprinting stay
// allocation-free (see common/interner.hpp). Semantically equal requests
// built under the *same interner state* — however their attributes were
// added — hold identical entry sequences and compare equal. If a name is
// interned between two requests' construction, the earlier one carries
// it in the side table and the later one in the symbol-keyed storage:
// they then compare unequal and fingerprint differently, which costs a
// cache miss, never a wrong decision — callers must not use operator==
// across interner-state changes for request dedup.
//
// Interner boundary: adding an attribute never grows the process-global
// interner. Names that are already interned (the policy vocabulary,
// pre-registered ids) go into the sorted symbol-keyed storage; names
// nobody interned — which on the wire path means attacker-chosen names —
// are kept in a small per-request *side table* sorted by (category,
// name). This is what makes interner exhaustion a per-request nuisance
// instead of a process-wide denial of service: one abusive peer filling
// the symbol table cannot stop other peers' fresh attribute names from
// being carried and evaluated (they just ride the side table). Lookups
// fall back to the side table only when it is non-empty, so the hot path
// (all names known) pays nothing — a symbol-probe miss means absent.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.hpp"
#include "core/attribute.hpp"

namespace mdac::core {

class RequestContext {
 public:
  /// Sentinel `id` for side-table entries (the name was never interned).
  static constexpr common::Symbol kUninterned = static_cast<common::Symbol>(-1);

  /// One (category, attribute) bag. `id` indexes the global interner,
  /// except for side-table entries, which carry their own name and use
  /// the kUninterned sentinel id.
  struct Entry {
    Category category;
    common::Symbol id;
    Bag bag;
    /// Set only for side-table entries (id == kUninterned).
    std::string uninterned_name;

    /// The attribute's name (resolved through the interner, or stored
    /// in place for un-interned wire names).
    const std::string& name() const {
      return id == kUninterned ? uninterned_name : common::interner().name(id);
    }

    bool operator==(const Entry&) const = default;
  };

  /// Adds a value to the (category, id) bag, creating the bag if needed.
  /// Never interns: a name the process already knows goes into the
  /// symbol-keyed storage, an unknown name into the side table.
  void add(Category category, const std::string& id, AttributeValue value);

  /// As above for callers that pre-interned the name (attrs::Symbols):
  /// skips the interner probe entirely.
  void add(Category category, common::Symbol id, AttributeValue value);

  /// Replaces the whole bag.
  void set(Category category, const std::string& id, Bag bag);

  /// Returns the bag, or nullptr if the attribute was not provided.
  const Bag* get(Category category, const std::string& id) const;

  /// Hot-path overload for callers that pre-interned the name (the PDP
  /// target index): two int compares per probe, no string hashing. Falls
  /// back to a name comparison against the side table only when the side
  /// table is non-empty (a request parsed before its vocabulary was
  /// interned — e.g. before the first index rebuild — still resolves).
  const Bag* get(Category category, common::Symbol id) const;

  bool has(Category category, const std::string& id) const {
    return get(category, id) != nullptr;
  }

  /// Flat view of the interned attributes (sorted by category, then
  /// interned name), for candidate selection and fingerprinting. Side
  /// entries are NOT included — fingerprinting and serialisation must
  /// also walk side_attributes().
  const std::vector<Entry>& attributes() const { return entries_; }

  /// The un-interned side table, sorted by (category, name). Empty
  /// unless the request carried attribute names nobody interned.
  const std::vector<Entry>& side_attributes() const { return side_; }

  /// Entries re-sorted by (category, attribute *name*): the wire-stable
  /// order, independent of per-process interning order. Used by every
  /// serialised/canonical form (request_to_xml, canonical_request_key)
  /// so they cannot drift apart. Allocates; not for hot paths.
  std::vector<const Entry*> entries_by_name() const;

  std::size_t size() const { return entries_.size() + side_.size(); }

  bool operator==(const RequestContext&) const = default;

  // --- Convenience constructors -------------------------------------

  /// The canonical subject/resource/action triple request.
  static RequestContext make(const std::string& subject_id,
                             const std::string& resource_id,
                             const std::string& action_id);

 private:
  Entry& entry_for(Category category, common::Symbol id);
  Entry& side_entry_for(Category category, const std::string& name);
  const Bag* side_get(Category category, std::string_view name) const;
  /// Folds a stale side entry for (category, name) — one created before
  /// the name was interned — into `into`, so a write after late
  /// interning cannot split one logical bag across the two storages.
  /// `keep_values` is false when the caller is about to replace the bag.
  void absorb_side_entry(Category category, std::string_view name, Entry& into,
                         bool keep_values);

  std::vector<Entry> entries_;  // interned, sorted by (category, id)
  std::vector<Entry> side_;     // un-interned, sorted by (category, name)
};

/// Fluent builder for more involved requests.
class RequestBuilder {
 public:
  RequestBuilder& subject(const std::string& id);
  RequestBuilder& subject_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& resource(const std::string& id);
  RequestBuilder& resource_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& action(const std::string& id);
  RequestBuilder& action_attr(const std::string& attr_id, AttributeValue v);
  RequestBuilder& environment_attr(const std::string& attr_id, AttributeValue v);

  RequestContext build() const { return ctx_; }

 private:
  RequestContext ctx_;
};

}  // namespace mdac::core
