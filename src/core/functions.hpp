// The function registry: the vocabulary available to policy conditions.
//
// A trimmed-but-faithful rendition of the XACML function library
// (equality, ordering, arithmetic, logic, strings, bags, higher-order
// functions). Names drop the URN prefix ("string-equal" instead of
// "urn:oasis:...:function:string-equal"). The registry is extensible so a
// domain can add its own functions — one of the paper's extensibility
// requirements (§3).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluation.hpp"

namespace mdac::core {

struct FunctionDef {
  std::string name;
  /// Exact argument count, or -1 for variadic (minimum 1, unless stated).
  int arity = -1;
  /// Higher-order functions (any-of, all-of, any-of-any, map) are
  /// special-cased by ApplyExpr; their `invoke` is unused.
  bool higher_order = false;
  std::function<ExprResult(EvaluationContext&, const std::vector<Bag>&)> invoke;
};

class FunctionRegistry {
 public:
  /// The standard library of ~55 functions. Thread-safe, built once.
  static const FunctionRegistry& standard();

  /// A copy of the standard registry, for callers that want to extend it.
  static FunctionRegistry standard_copy();

  /// Registers (or replaces) a function.
  void add(FunctionDef def);

  /// Returns nullptr if unknown.
  const FunctionDef* find(std::string_view name) const;

  std::size_t size() const { return functions_.size(); }

 private:
  std::map<std::string, FunctionDef, std::less<>> functions_;
};

}  // namespace mdac::core
