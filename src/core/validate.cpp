#include "core/validate.hpp"

#include <set>

#include "core/combining.hpp"
#include "core/functions.hpp"

namespace mdac::core {

std::size_t ValidationReport::error_count() const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.severity == FindingSeverity::kError) ++n;
  }
  return n;
}

std::size_t ValidationReport::warning_count() const {
  return findings.size() - error_count();
}

namespace {

class Validator {
 public:
  explicit Validator(const PolicyStore* store) : store_(store) {}

  ValidationReport take_report() { return std::move(report_); }

  void check_node(const PolicyTreeNode& node, const std::string& path) {
    if (const auto* p = dynamic_cast<const Policy*>(&node)) {
      check_policy(*p, path);
    } else if (const auto* ps = dynamic_cast<const PolicySet*>(&node)) {
      check_policy_set(*ps, path);
    } else {
      check_reference(node, path);
    }
  }

 private:
  void add(FindingSeverity severity, const std::string& path, std::string message) {
    report_.findings.push_back({severity, path, std::move(message)});
  }
  void error(const std::string& path, std::string message) {
    add(FindingSeverity::kError, path, std::move(message));
  }
  void warn(const std::string& path, std::string message) {
    add(FindingSeverity::kWarning, path, std::move(message));
  }

  void check_combining(const std::string& algorithm, const std::string& path) {
    if (CombiningRegistry::standard().find(algorithm) == nullptr) {
      error(path, "unknown combining algorithm '" + algorithm + "'");
    }
  }

  void check_target(const Target& target, const std::string& path) {
    for (std::size_t i = 0; i < target.any_ofs.size(); ++i) {
      const AnyOf& any = target.any_ofs[i];
      if (any.all_ofs.empty()) {
        warn(path, "AnyOf group " + std::to_string(i) +
                       " has no AllOf children (never matches)");
      }
      for (const AllOf& all : any.all_ofs) {
        for (const Match& m : all.matches) {
          const FunctionDef* fn = FunctionRegistry::standard().find(m.function_id);
          if (fn == nullptr) {
            error(path, "Match uses unknown function '" + m.function_id + "'");
          } else if (fn->higher_order) {
            error(path, "Match may not use higher-order function '" +
                            m.function_id + "'");
          } else if (fn->arity >= 0 && fn->arity != 2) {
            error(path, "Match function '" + m.function_id + "' is not binary");
          }
          if (m.literal.type() != m.data_type) {
            warn(path, "Match literal type (" +
                           std::string(to_string(m.literal.type())) +
                           ") differs from designator type (" +
                           std::string(to_string(m.data_type)) +
                           "); it can never match");
          }
        }
      }
    }
  }

  void check_expression(const Expression& expr, const std::string& path) {
    switch (expr.kind()) {
      case ExprKind::kLiteral:
      case ExprKind::kDesignator:
        return;
      case ExprKind::kFunctionRef: {
        const auto& ref = static_cast<const FunctionRefExpr&>(expr);
        if (FunctionRegistry::standard().find(ref.function_id()) == nullptr) {
          error(path, "reference to unknown function '" + ref.function_id() + "'");
        }
        return;
      }
      case ExprKind::kApply: {
        const auto& app = static_cast<const ApplyExpr&>(expr);
        const FunctionDef* fn =
            FunctionRegistry::standard().find(app.function_id());
        if (fn == nullptr) {
          error(path, "unknown function '" + app.function_id() + "'");
        } else if (!fn->higher_order && fn->arity >= 0 &&
                   static_cast<int>(app.args().size()) != fn->arity) {
          error(path, "'" + app.function_id() + "' expects " +
                          std::to_string(fn->arity) + " arguments, got " +
                          std::to_string(app.args().size()));
        } else if (fn->higher_order) {
          if (app.args().empty() ||
              app.args()[0]->kind() != ExprKind::kFunctionRef) {
            error(path, "higher-order '" + app.function_id() +
                            "' needs a function reference as first argument");
          }
        }
        for (const ExprPtr& arg : app.args()) {
          check_expression(*arg, path);
        }
        return;
      }
    }
  }

  void check_obligations(const std::vector<ObligationExpr>& obligations,
                         const std::string& path) {
    std::set<std::string> seen;
    for (const ObligationExpr& ob : obligations) {
      const std::string ob_path = path + "/obligation:" + ob.id;
      if (ob.id.empty()) error(path, "obligation with empty id");
      for (const AttributeAssignmentExpr& a : ob.assignments) {
        if (!a.expr) {
          error(ob_path, "assignment '" + a.attribute_id + "' has no expression");
          continue;
        }
        check_expression(*a.expr, ob_path);
      }
    }
  }

  void check_rule(const Rule& rule, const std::string& path) {
    if (rule.id.empty()) error(path, "rule with empty id");
    if (rule.target.has_value()) check_target(*rule.target, path + "/target");
    if (rule.condition) check_expression(*rule.condition, path + "/condition");
    check_obligations(rule.obligations, path);
  }

  void check_policy(const Policy& policy, const std::string& prefix) {
    const std::string path = prefix.empty() ? policy.policy_id
                                            : prefix + "/" + policy.policy_id;
    if (policy.policy_id.empty()) error(path, "policy with empty id");
    check_combining(policy.rule_combining, path);
    check_target(policy.target_spec, path + "/target");
    if (policy.rules.empty()) {
      warn(path, "policy has no rules (always NotApplicable)");
    }
    std::set<std::string> rule_ids;
    for (const Rule& rule : policy.rules) {
      if (!rule_ids.insert(rule.id).second) {
        error(path, "duplicate rule id '" + rule.id + "'");
      }
      check_rule(rule, path + "/" + rule.id);
    }
    check_obligations(policy.obligations, path);
  }

  void check_policy_set(const PolicySet& ps, const std::string& prefix) {
    const std::string path =
        prefix.empty() ? ps.policy_set_id : prefix + "/" + ps.policy_set_id;
    if (ps.policy_set_id.empty()) error(path, "policy set with empty id");
    check_combining(ps.policy_combining, path);
    check_target(ps.target_spec, path + "/target");
    if (ps.children().empty()) {
      warn(path, "policy set has no children (always NotApplicable)");
    }
    std::set<std::string> child_ids;
    for (const PolicyNodePtr& child : ps.children()) {
      if (!child_ids.insert(child->id()).second) {
        error(path, "duplicate child id '" + child->id() + "'");
      }
      check_node(*child, path);
    }
    check_obligations(ps.obligations, path);
  }

  void check_reference(const PolicyTreeNode& ref, const std::string& prefix) {
    const std::string path = prefix + "/ref:" + ref.id();
    if (store_ == nullptr) {
      warn(path, "policy reference cannot be checked without a store");
      return;
    }
    if (store_->find(ref.id()) == nullptr) {
      error(path, "unresolvable policy reference '" + ref.id() + "'");
    }
  }

  const PolicyStore* store_;
  ValidationReport report_;
};

}  // namespace

ValidationReport validate(const PolicyTreeNode& node, const PolicyStore* store) {
  Validator v(store);
  v.check_node(node, "");
  return v.take_report();
}

ValidationReport validate_store(const PolicyStore& store) {
  Validator v(&store);
  for (const PolicyTreeNode* node : store.top_level()) {
    v.check_node(*node, "");
  }
  return v.take_report();
}

}  // namespace mdac::core
