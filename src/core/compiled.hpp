// Compiled policy programs: the arena-backed, symbol-resolved evaluation
// core that the PDP hot loop executes instead of interpreting the policy
// AST (ISSUE 3 tentpole).
//
// The interpreted path (core/policy.cpp) re-derives per-request state
// that never changes between requests: every Match re-finds its function
// and re-hashes its attribute name through the interner, every
// Policy::evaluate re-materialises a std::vector<Combinable> over its
// rules (~6 allocations per uncached decision, see PERF.md), and every
// condition walks a pointer-chasing expression tree. A CompiledPolicy
// does all of that exactly once, at the trusted PAP/PDP boundary:
//
//   * targets and rule targets are lowered into contiguous match tables
//     (flattened AnyOf/AllOf offsets + CompiledMatch entries) whose
//     attribute ids are pre-resolved to interner Symbols and whose
//     functions are pre-resolved against the standard registry;
//   * condition expressions are lowered into flat postfix instruction
//     programs (literal/designator/apply pools); higher-order applies and
//     anything not provably lowerable fall back to one kEvalAst
//     instruction over the owned AST, preserving interpreter semantics
//     to the byte (error texts included);
//   * each policy's rule Combinable list is materialised once, so
//     CombiningAlgorithm::combine always receives a prebuilt span and
//     steady-state evaluation allocates nothing.
//
// A CompiledPolicy owns a clone of its source Policy (every internal
// pointer targets that clone or the arena), so one compiled artifact is
// self-contained and freely shared: the PAP compiles on issue and every
// PDP replica loading the repository references the same immutable
// object (tests/pap_test.cpp pins the sharing down). Decisions are
// bit-identical to the interpreter — tests/compiled_differential_test.cpp
// proves it over randomized federation-shaped workloads; the interpreted
// path stays alive behind PdpConfig::use_compiled for exactly that
// differential testing.
//
// Unknown-at-compile-time names (symbol table exhausted, or compiling
// with intern_names=false) are recorded as compile diagnostics and
// degrade to the string-keyed lookup path — never to a wrong decision.
//
// Thread-safety: a CompiledPolicy is immutable after compile() and safe
// to share across threads. Mutable evaluation state lives in
// CompiledEvalScratch, which each Pdp owns privately and threads through
// the EvaluationContext.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/interner.hpp"
#include "core/combining.hpp"
#include "core/decision.hpp"
#include "core/evaluation.hpp"
#include "core/policy.hpp"

namespace mdac::core {

struct FunctionDef;

/// Bump-pointer arena backing the compiled instruction/match tables.
/// Chunks never move once allocated, so spans into the arena stay valid
/// for the owning CompiledPolicy's lifetime. Restricted to trivially
/// destructible element types: the arena frees memory wholesale.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Copies `src` into arena storage and returns the stable view.
  template <typename T>
  std::span<const T> copy_array(const std::vector<T>& src) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(std::is_trivially_destructible_v<T>);
    if (src.empty()) return {};
    auto* dst = static_cast<T*>(allocate(src.size() * sizeof(T), alignof(T)));
    std::memcpy(dst, src.data(), src.size() * sizeof(T));
    return {dst, src.size()};
  }

  std::size_t bytes_allocated() const { return bytes_; }

 private:
  void* allocate(std::size_t size, std::size_t align);

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t bytes_ = 0;
};

/// One lowered target Match. Pointer members target the owning
/// CompiledPolicy's source AST clone (stable for the artifact's
/// lifetime); `function` is the standard-registry resolution (null when
/// the function is unknown or higher-order — evaluates Indeterminate,
/// like the interpreter). A custom FunctionRegistry on the evaluation
/// context re-resolves through `function_id` at run time.
struct CompiledMatch {
  static constexpr common::Symbol kNoSymbol = static_cast<common::Symbol>(-1);

  const FunctionDef* function = nullptr;
  const AttributeValue* literal = nullptr;
  const std::string* function_id = nullptr;
  const std::string* attribute_name = nullptr;
  common::Symbol attribute_id = kNoSymbol;
  Category category = Category::kSubject;
  DataType data_type = DataType::kString;
  bool must_be_present = false;
  /// Standard string-equal over a string literal: compiled counterpart of
  /// the interpreter's in-place compare fast path.
  bool inline_string_equal = false;
};

/// A target lowered to flat arrays: `any_of_ends[k]` is the exclusive
/// end (into `all_of_ends`) of conjunct k's disjunction groups, and
/// `all_of_ends[g]` the exclusive end (into `matches`) of group g's
/// conjunctive match run. Empty `any_of_ends` = empty target.
struct CompiledTarget {
  std::span<const std::uint32_t> any_of_ends;
  std::span<const std::uint32_t> all_of_ends;
  std::span<const CompiledMatch> matches;

  bool empty() const { return any_of_ends.empty(); }
};

/// Postfix condition program opcodes. Operands index the owning
/// CompiledPolicy's pools.
enum class OpCode : std::uint8_t {
  kPushLiteral,    // push literal bag [index into literal pool]
  kLoadAttribute,  // push designator lookup [index into designator pool]
  kApply,          // pop argc bags, invoke, push result [apply pool]
  kEvalAst,        // evaluate an un-lowerable subtree via the AST [ast pool]
};

struct Instr {
  OpCode op = OpCode::kEvalAst;
  std::uint32_t index = 0;
};

struct CompiledDesignator {
  const std::string* name = nullptr;
  common::Symbol symbol = CompiledMatch::kNoSymbol;
  Category category = Category::kSubject;
  DataType data_type = DataType::kString;
  bool must_be_present = false;
};

struct CompiledApply {
  const FunctionDef* function = nullptr;
  const std::string* function_id = nullptr;
  std::uint16_t argc = 0;
};

struct CompiledProgram {
  std::span<const Instr> code;  // empty = no condition
};

struct CompiledRule {
  const Rule* source = nullptr;  // into the owning artifact's AST clone
  CompiledTarget target;
  CompiledProgram condition;
  Effect effect = Effect::kPermit;
  bool has_target = false;     // target present and non-empty
  bool has_condition = false;
};

/// What compilation produced — surfaced through PdpResult so operators
/// can see how much of the working set runs compiled.
struct CompileStats {
  std::size_t compiled_policies = 0;
  std::size_t interpreted_nodes = 0;  // top-level nodes without a program
  std::size_t rules = 0;
  std::size_t matches = 0;
  std::size_t instructions = 0;
  std::size_t unresolved_names = 0;  // attribute ids without a symbol
  std::size_t ast_fallbacks = 0;     // condition subtrees kept as AST
  std::size_t arena_bytes = 0;

  void accumulate(const CompileStats& other) {
    compiled_policies += other.compiled_policies;
    interpreted_nodes += other.interpreted_nodes;
    rules += other.rules;
    matches += other.matches;
    instructions += other.instructions;
    unresolved_names += other.unresolved_names;
    ast_fallbacks += other.ast_fallbacks;
    arena_bytes += other.arena_bytes;
  }

  bool operator==(const CompileStats&) const = default;
};

/// Reusable condition-program evaluation state. One per Pdp, wired
/// through EvaluationContext::set_compiled_scratch; programs execute
/// above a saved stack base, so re-entrant evaluation (a resolver
/// calling back into the PDP) nests safely on one scratch. `args_pool`
/// is a deque so an argument vector handed to a running function stays
/// valid while nested frames acquire deeper ones.
struct CompiledEvalScratch {
  std::vector<Bag> stack;
  std::deque<std::vector<Bag>> args_pool;
  std::size_t args_depth = 0;

  std::vector<Bag>& acquire_args() {
    if (args_depth == args_pool.size()) args_pool.emplace_back();
    std::vector<Bag>& args = args_pool[args_depth++];
    args.clear();
    return args;
  }
  void release_args() { --args_depth; }
};

struct CompileOptions {
  /// Interning is reserved for trusted paths. Both compile sites — PAP
  /// issue and PDP index rebuild — are trusted (policy content, never
  /// wire input), so the default interns referenced attribute names,
  /// exactly as the target index has always done for its constraint
  /// keys. False = resolve-only: names nobody interned stay on the
  /// string-lookup path and are recorded as diagnostics.
  bool intern_names = true;
};

class CompiledPolicy {
 public:
  /// Compiles `policy` into a self-contained, immutable, shareable
  /// artifact (the policy is cloned; the caller's object is not
  /// referenced). Never fails: anything not lowerable degrades to the
  /// AST with a diagnostic, and evaluation stays interpreter-identical.
  static std::shared_ptr<const CompiledPolicy> compile(const Policy& policy,
                                                       CompileOptions options = {});

  CompiledPolicy(const CompiledPolicy&) = delete;
  CompiledPolicy& operator=(const CompiledPolicy&) = delete;

  const std::string& id() const { return source_.policy_id; }
  const Policy& source() const { return source_; }

  /// Interpreter-equivalent Policy::match / Policy::evaluate over the
  /// compiled tables. Scratch comes from the context when wired (the
  /// Pdp's persistent buffers); otherwise a local fallback is used.
  MatchResult match(EvaluationContext& ctx) const;
  Decision evaluate(EvaluationContext& ctx) const;

  /// The rule Combinables materialised at compile time — what
  /// CombiningAlgorithm::combine receives with no per-request setup.
  std::span<const Combinable* const> rule_combinables() const { return rule_ptrs_; }

  const CompileStats& stats() const { return stats_; }
  const std::vector<std::string>& diagnostics() const { return diagnostics_; }

 private:
  explicit CompiledPolicy(Policy source) : source_(std::move(source)) {}

  void build(const CompileOptions& options);
  CompiledTarget lower_target(const Target& target, const CompileOptions& options);
  CompiledMatch lower_match(const Match& match, const CompileOptions& options);
  CompiledProgram lower_condition(const Expression& expr, const CompileOptions& options);
  void lower_expr(const Expression& expr, std::vector<Instr>* code,
                  const CompileOptions& options);
  void emit_ast(const Expression& expr, std::vector<Instr>* code);
  common::Symbol resolve_symbol(const std::string& name, const CompileOptions& options);

  MatchResult eval_target(const CompiledTarget& target, EvaluationContext& ctx) const;
  MatchResult eval_match(const CompiledMatch& match, EvaluationContext& ctx) const;
  MatchResult rule_match(const CompiledRule& rule, EvaluationContext& ctx) const;
  Decision evaluate_rule(const CompiledRule& rule, EvaluationContext& ctx) const;
  ExprResult run_program(const CompiledProgram& program, EvaluationContext& ctx,
                         CompiledEvalScratch& scratch) const;

  Policy source_;  // owned clone; all table pointers target it
  Arena arena_;
  CompiledTarget target_;
  std::vector<CompiledRule> rules_;
  std::vector<Combinable> rule_combinables_;
  std::vector<const Combinable*> rule_ptrs_;
  const CombiningAlgorithm* rule_algorithm_ = nullptr;

  // Instruction operand pools (non-trivial or pointer-bearing — kept out
  // of the arena, contiguous regardless).
  std::vector<const Bag*> literals_;
  std::vector<CompiledDesignator> designators_;
  std::vector<CompiledApply> applies_;
  std::vector<const Expression*> ast_exprs_;

  CompileStats stats_;
  std::vector<std::string> diagnostics_;
};

/// Every attribute name `policy` references: target and rule-target
/// match ids, condition designators, obligation assignment designators.
/// Sorted, deduplicated. The PAP's issue-time vocabulary auto-extraction
/// feeds this through register_attribute_names so a domain's allowlist
/// tracks its issued policies without manual registration.
std::vector<std::string> referenced_attribute_names(const Policy& policy);

/// As above for any policy tree node: PolicySets are walked recursively
/// (their own targets and obligations included); references contribute
/// nothing (the referenced policy registers its names at its own issue).
std::vector<std::string> referenced_attribute_names(const PolicyTreeNode& node);

}  // namespace mdac::core
