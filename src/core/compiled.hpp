// Compiled policy programs: the arena-backed, symbol-resolved evaluation
// core that the PDP hot loop executes instead of interpreting the policy
// AST (ISSUE 3 tentpole; generalised to whole PolicySet trees and
// lowered obligation programs by ISSUE 5).
//
// The interpreted path (core/policy.cpp) re-derives per-request state
// that never changes between requests: every Match re-finds its function
// and re-hashes its attribute name through the interner, every
// Policy::evaluate re-materialises a std::vector<Combinable> over its
// rules, every PolicySet::evaluate re-materialises one over its children
// (~6+ allocations per uncached decision, see PERF.md), and every
// condition or obligation assignment walks a pointer-chasing expression
// tree. A CompiledPolicyTree does all of that exactly once, at the
// trusted PAP/PDP boundary:
//
//   * targets — set-level, policy-level and rule-level — are lowered into
//     contiguous match tables (flattened AnyOf/AllOf offsets +
//     CompiledMatch entries) whose attribute ids are pre-resolved to
//     interner Symbols and whose functions are pre-resolved against the
//     standard registry;
//   * condition expressions AND obligation assignment expressions are
//     lowered into flat postfix instruction programs (literal/designator/
//     apply pools); higher-order applies and anything not provably
//     lowerable fall back to one kEvalAst instruction over the owned AST,
//     preserving interpreter semantics to the byte (error texts included);
//   * each policy's rule Combinable list and each set's child Combinable
//     list are materialised once, so CombiningAlgorithm::combine always
//     receives a prebuilt span and steady-state evaluation allocates
//     nothing;
//   * nested PolicySets compile recursively into the same artifact;
//     PolicyReference nodes stay *dynamic*: they resolve through the
//     evaluation context's PolicyStore per request — executing the
//     store-attached compiled artifact of the referenced node when one
//     exists, interpreting it otherwise. That keeps reference semantics
//     (resolution, cycle detection, error texts) byte-identical to the
//     interpreter and makes stale-artifact bugs structurally impossible:
//     a compiled set can never serve a withdrawn or replaced referenced
//     policy, because the reference always follows the live store (the
//     PAP additionally recompiles dependent artifacts on update so their
//     compile-time diagnostics stay faithful — see pap::PolicyRepository).
//
// A CompiledPolicyTree owns a clone of its source node (every internal
// pointer targets that clone or the arena), so one compiled artifact is
// self-contained and freely shared: the PAP compiles on issue and every
// PDP replica loading the repository references the same immutable
// object (tests/pap_test.cpp pins the sharing down). Decisions are
// bit-identical to the interpreter — tests/compiled_differential_test.cpp
// proves it over randomized federation-shaped workloads, including
// nested-set trees with references; the interpreted path stays alive
// behind PdpConfig::use_compiled for exactly that differential testing.
//
// Unknown-at-compile-time names (symbol table exhausted, or compiling
// with intern_names=false) are recorded as compile diagnostics and
// degrade to the string-keyed lookup path — never to a wrong decision.
// Unknown combining algorithms and unresolvable references likewise
// degrade per node with a diagnostic.
//
// Thread-safety: a CompiledPolicyTree is immutable after compile() and
// safe to share across threads. Mutable evaluation state lives in
// CompiledEvalScratch, which each Pdp owns privately and threads through
// the EvaluationContext.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/interner.hpp"
#include "core/combining.hpp"
#include "core/decision.hpp"
#include "core/evaluation.hpp"
#include "core/policy.hpp"

namespace mdac::core {

struct FunctionDef;

/// Bump-pointer arena backing the compiled instruction/match tables.
/// Chunks never move once allocated, so spans into the arena stay valid
/// for the owning CompiledPolicyTree's lifetime. Restricted to trivially
/// destructible element types: the arena frees memory wholesale.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Copies `src` into arena storage and returns the stable view.
  template <typename T>
  std::span<const T> copy_array(const std::vector<T>& src) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(std::is_trivially_destructible_v<T>);
    if (src.empty()) return {};
    auto* dst = static_cast<T*>(allocate(src.size() * sizeof(T), alignof(T)));
    std::memcpy(dst, src.data(), src.size() * sizeof(T));
    return {dst, src.size()};
  }

  std::size_t bytes_allocated() const { return bytes_; }

 private:
  void* allocate(std::size_t size, std::size_t align);

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t bytes_ = 0;
};

/// One lowered target Match. Pointer members target the owning
/// CompiledPolicyTree's source AST clone (stable for the artifact's
/// lifetime); `function` is the standard-registry resolution (null when
/// the function is unknown or higher-order — evaluates Indeterminate,
/// like the interpreter). A custom FunctionRegistry on the evaluation
/// context re-resolves through `function_id` at run time.
struct CompiledMatch {
  static constexpr common::Symbol kNoSymbol = static_cast<common::Symbol>(-1);

  const FunctionDef* function = nullptr;
  const AttributeValue* literal = nullptr;
  const std::string* function_id = nullptr;
  const std::string* attribute_name = nullptr;
  common::Symbol attribute_id = kNoSymbol;
  Category category = Category::kSubject;
  DataType data_type = DataType::kString;
  bool must_be_present = false;
  /// Standard string-equal over a string literal: compiled counterpart of
  /// the interpreter's in-place compare fast path.
  bool inline_string_equal = false;
};

/// A target lowered to flat arrays: `any_of_ends[k]` is the exclusive
/// end (into `all_of_ends`) of conjunct k's disjunction groups, and
/// `all_of_ends[g]` the exclusive end (into `matches`) of group g's
/// conjunctive match run. Empty `any_of_ends` = empty target.
struct CompiledTarget {
  std::span<const std::uint32_t> any_of_ends;
  std::span<const std::uint32_t> all_of_ends;
  std::span<const CompiledMatch> matches;

  bool empty() const { return any_of_ends.empty(); }
};

/// Postfix program opcodes (conditions and obligation assignments share
/// one program shape). Operands index the owning artifact's pools.
enum class OpCode : std::uint8_t {
  kPushLiteral,    // push literal bag [index into literal pool]
  kLoadAttribute,  // push designator lookup [index into designator pool]
  kApply,          // pop argc bags, invoke, push result [apply pool]
  kEvalAst,        // evaluate an un-lowerable subtree via the AST [ast pool]
};

struct Instr {
  OpCode op = OpCode::kEvalAst;
  std::uint32_t index = 0;
};

struct CompiledDesignator {
  const std::string* name = nullptr;
  common::Symbol symbol = CompiledMatch::kNoSymbol;
  Category category = Category::kSubject;
  DataType data_type = DataType::kString;
  bool must_be_present = false;
};

struct CompiledApply {
  const FunctionDef* function = nullptr;
  const std::string* function_id = nullptr;
  std::uint16_t argc = 0;
};

struct CompiledProgram {
  std::span<const Instr> code;  // empty = no condition / null assignment
};

/// One lowered obligation assignment expression. `source` targets the
/// owning artifact's AST clone; a null source expression is preserved as
/// an empty program and reproduces the interpreter's null-assignment
/// error at instantiation time.
struct CompiledAssignment {
  const AttributeAssignmentExpr* source = nullptr;
  CompiledProgram program;
};

/// One lowered ObligationExpr: effect/advice routing reads the source,
/// assignment values come from the postfix programs (ISSUE 5 tentpole —
/// previously obligations always re-walked the expression AST).
struct CompiledObligation {
  const ObligationExpr* source = nullptr;
  std::uint32_t assignments_begin = 0;  // into the artifact's assignment pool
  std::uint32_t assignments_end = 0;
};

struct CompiledRule {
  const Rule* source = nullptr;  // into the owning artifact's AST clone
  CompiledTarget target;
  CompiledProgram condition;
  Effect effect = Effect::kPermit;
  bool has_target = false;  // target present and non-empty
  bool has_condition = false;
  std::uint32_t obligations_begin = 0;  // into the artifact's obligation pool
  std::uint32_t obligations_end = 0;
};

/// What compilation produced — surfaced through PdpResult so operators
/// can see how much of the working set runs compiled, and at what shape
/// (set-level stats included since the tree compiler landed).
struct CompileStats {
  std::size_t compiled_policies = 0;  // Policy nodes lowered (any depth)
  std::size_t policy_sets = 0;        // PolicySet nodes lowered
  std::size_t references = 0;         // PolicyReference nodes (dynamic)
  std::size_t interpreted_nodes = 0;  // top-level nodes without a program
  std::size_t rules = 0;
  std::size_t obligations = 0;  // ObligationExprs with lowered assignments
  std::size_t matches = 0;
  std::size_t instructions = 0;
  std::size_t unresolved_names = 0;  // attribute ids without a symbol
  std::size_t ast_fallbacks = 0;     // expression subtrees kept as AST
  std::size_t arena_bytes = 0;

  void accumulate(const CompileStats& other) {
    compiled_policies += other.compiled_policies;
    policy_sets += other.policy_sets;
    references += other.references;
    interpreted_nodes += other.interpreted_nodes;
    rules += other.rules;
    obligations += other.obligations;
    matches += other.matches;
    instructions += other.instructions;
    unresolved_names += other.unresolved_names;
    ast_fallbacks += other.ast_fallbacks;
    arena_bytes += other.arena_bytes;
  }

  bool operator==(const CompileStats&) const = default;
};

/// Reusable postfix-program evaluation state. One per Pdp, wired
/// through EvaluationContext::set_compiled_scratch; programs execute
/// above a saved stack base, so re-entrant evaluation (a resolver
/// calling back into the PDP) nests safely on one scratch. `args_pool`
/// is a deque so an argument vector handed to a running function stays
/// valid while nested frames acquire deeper ones.
struct CompiledEvalScratch {
  std::vector<Bag> stack;
  std::deque<std::vector<Bag>> args_pool;
  std::size_t args_depth = 0;

  std::vector<Bag>& acquire_args() {
    if (args_depth == args_pool.size()) args_pool.emplace_back();
    std::vector<Bag>& args = args_pool[args_depth++];
    args.clear();
    return args;
  }
  void release_args() { --args_depth; }
};

struct CompileOptions {
  /// Interning is reserved for trusted paths. Both compile sites — PAP
  /// issue and PDP index rebuild — are trusted (policy content, never
  /// wire input), so the default interns referenced attribute names,
  /// exactly as the target index has always done for its constraint
  /// keys. False = resolve-only: names nobody interned stay on the
  /// string-lookup path and are recorded as diagnostics.
  bool intern_names = true;

  /// Optional compile-time existence probe for policy references: called
  /// with each referenced id; returning false records a compile
  /// diagnostic. Purely advisory — references always resolve through the
  /// evaluation context's PolicyStore per request (see the header
  /// comment), so decisions never depend on this probe. The PAP passes
  /// its issued set, the PDP its store.
  std::function<bool(const std::string&)> reference_resolves;
};

/// A compiled policy tree: one immutable artifact covering a whole
/// top-level PolicyTreeNode — a plain Policy, a (nested) PolicySet, or a
/// PolicyReference. See the file header for the lowering and sharing
/// contracts.
class CompiledPolicyTree {
 public:
  /// Compiles `node` into a self-contained, immutable, shareable
  /// artifact (the node is cloned; the caller's object is not
  /// referenced). Never fails: anything not lowerable degrades to the
  /// AST (or to dynamic per-request resolution, for references) with a
  /// diagnostic, and evaluation stays interpreter-identical.
  static std::shared_ptr<const CompiledPolicyTree> compile(const PolicyTreeNode& node,
                                                           CompileOptions options = {});

  CompiledPolicyTree(const CompiledPolicyTree&) = delete;
  CompiledPolicyTree& operator=(const CompiledPolicyTree&) = delete;

  const std::string& id() const { return source_->id(); }
  /// The owned source clone (root of the compiled tree).
  const PolicyTreeNode& source() const { return *source_; }

  /// Interpreter-equivalent PolicyTreeNode::match / ::evaluate over the
  /// compiled tables. Scratch comes from the context when wired (the
  /// Pdp's persistent buffers); otherwise a local fallback is used.
  /// Reference nodes resolve through the context's store; both calls are
  /// safe from any thread (the artifact is immutable; all mutable state
  /// is in the context and its scratch).
  MatchResult match(EvaluationContext& ctx) const;
  Decision evaluate(EvaluationContext& ctx) const;

  const CompileStats& stats() const { return stats_; }
  const std::vector<std::string>& diagnostics() const { return diagnostics_; }

 private:
  enum class NodeKind : std::uint8_t { kPolicy, kSet, kReference };

  /// One node of the compiled tree (root at nodes_[0], children of sets
  /// recorded in set_children_ ranges). Trivially copyable: every
  /// non-trivial structure lives in the artifact's pools.
  struct TreeNode {
    NodeKind kind = NodeKind::kPolicy;
    const PolicyTreeNode* source = nullptr;  // into the owned clone
    CompiledTarget target;                   // empty = always-match
    const CombiningAlgorithm* algorithm = nullptr;  // rule-/policy-combining
    std::uint32_t rules_begin = 0, rules_end = 0;        // kPolicy: into rules_
    std::uint32_t children_begin = 0, children_end = 0;  // kSet: into child_ptrs_
    std::uint32_t obligations_begin = 0, obligations_end = 0;
  };

  explicit CompiledPolicyTree(PolicyNodePtr source) : source_(std::move(source)) {}

  void build(const CompileOptions& options);
  std::uint32_t build_node(const PolicyTreeNode& node, const CompileOptions& options);
  std::pair<std::uint32_t, std::uint32_t> lower_obligations(
      const std::vector<ObligationExpr>& obligations, const CompileOptions& options);
  CompiledTarget lower_target(const Target& target, const CompileOptions& options);
  CompiledMatch lower_match(const Match& match, const CompileOptions& options);
  CompiledProgram lower_program(const Expression& expr, const CompileOptions& options);
  void lower_expr(const Expression& expr, std::vector<Instr>* code,
                  const CompileOptions& options);
  void emit_ast(const Expression& expr, std::vector<Instr>* code);
  common::Symbol resolve_symbol(const std::string& name, const CompileOptions& options);

  MatchResult node_match(const TreeNode& node, EvaluationContext& ctx) const;
  Decision node_evaluate(const TreeNode& node, EvaluationContext& ctx) const;
  Decision evaluate_policy(const TreeNode& node, EvaluationContext& ctx) const;
  Decision evaluate_set(const TreeNode& node, EvaluationContext& ctx) const;
  Decision evaluate_reference(const TreeNode& node, EvaluationContext& ctx) const;
  MatchResult reference_match(const TreeNode& node, EvaluationContext& ctx) const;

  MatchResult eval_target(const CompiledTarget& target, EvaluationContext& ctx) const;
  MatchResult eval_match(const CompiledMatch& match, EvaluationContext& ctx) const;
  MatchResult rule_match(const CompiledRule& rule, EvaluationContext& ctx) const;
  Decision evaluate_rule(const CompiledRule& rule, EvaluationContext& ctx) const;
  ExprResult run_program(const CompiledProgram& program, EvaluationContext& ctx,
                         CompiledEvalScratch& scratch) const;
  /// Runs a lowered program with the interpreter's exact fallbacks: a
  /// custom function registry evaluates the AST instead (the program's
  /// resolutions are against the standard registry), and scratch is the
  /// context's persistent buffers when wired, a local otherwise.
  ExprResult run_lowered(const CompiledProgram& program, const Expression& ast,
                         EvaluationContext& ctx) const;
  void attach_compiled_obligations(std::uint32_t begin, std::uint32_t end,
                                   EvaluationContext& ctx, Decision* decision) const;
  Status instantiate_obligation(const CompiledObligation& obligation,
                                EvaluationContext& ctx, ObligationInstance* out) const;

  PolicyNodePtr source_;  // owned clone; all table pointers target it
  Arena arena_;
  std::vector<TreeNode> nodes_;  // nodes_[0] = root, preorder
  std::vector<CompiledRule> rules_;
  std::vector<CompiledObligation> obligations_;
  std::vector<CompiledAssignment> assignments_;
  std::vector<std::uint32_t> set_children_;  // node indices, contiguous per set

  // Once-materialised Combinable lists: per-policy rule spans and
  // per-set child spans, what CombiningAlgorithm::combine receives with
  // no per-request setup. Pointers are stable: both vectors are fully
  // built before any pointer is taken, and the artifact is immutable.
  std::vector<Combinable> rule_combinables_;
  std::vector<const Combinable*> rule_ptrs_;
  std::vector<Combinable> child_combinables_;
  std::vector<const Combinable*> child_ptrs_;

  // Instruction operand pools (non-trivial or pointer-bearing — kept out
  // of the arena, contiguous regardless).
  std::vector<const Bag*> literals_;
  std::vector<CompiledDesignator> designators_;
  std::vector<CompiledApply> applies_;
  std::vector<const Expression*> ast_exprs_;

  CompileStats stats_;
  std::vector<std::string> diagnostics_;
};

/// Every attribute name `policy` references: target and rule-target
/// match ids, condition designators, obligation assignment designators.
/// Sorted, deduplicated. The PAP's issue-time vocabulary auto-extraction
/// feeds this through register_attribute_names so a domain's allowlist
/// tracks its issued policies without manual registration.
std::vector<std::string> referenced_attribute_names(const Policy& policy);

/// As above for any policy tree node: PolicySets are walked recursively
/// (their own targets and obligations included); references contribute
/// nothing (the referenced policy registers its names at its own issue).
std::vector<std::string> referenced_attribute_names(const PolicyTreeNode& node);

/// Every policy id `node`'s tree references through a PolicyReference,
/// at any nesting depth. Sorted, deduplicated. The PAP's dependency
/// tracking uses this to recompile dependent artifacts when a referenced
/// policy is re-issued or withdrawn (pap::PolicyRepository).
std::vector<std::string> referenced_policy_ids(const PolicyTreeNode& node);

}  // namespace mdac::core
