#include "core/combining.hpp"

namespace mdac::core {

Combinable Combinable::of_rule(const Rule& rule) {
  return Combinable{
      rule.id,
      [&rule](EvaluationContext& ctx) { return rule.match(ctx); },
      [&rule](EvaluationContext& ctx) { return rule.evaluate(ctx); }};
}

Combinable Combinable::of_node(const PolicyTreeNode& node) {
  return Combinable{
      node.id(),
      [&node](EvaluationContext& ctx) { return node.match(ctx); },
      [&node](EvaluationContext& ctx) { return node.evaluate(ctx); }};
}

Decision CombiningAlgorithm::combine(const std::vector<Combinable>& children,
                                     EvaluationContext& ctx) const {
  // Stack buffer for the common case (a policy's rule list); policies
  // with more children pay one allocation, exactly as they did when this
  // signature took the vector directly.
  constexpr std::size_t kInlineChildren = 32;
  if (children.size() <= kInlineChildren) {
    const Combinable* view[kInlineChildren];
    for (std::size_t i = 0; i < children.size(); ++i) view[i] = &children[i];
    return combine(std::span<const Combinable* const>(view, children.size()), ctx);
  }
  std::vector<const Combinable*> view;
  view.reserve(children.size());
  for (const Combinable& child : children) view.push_back(&child);
  return combine(std::span<const Combinable* const>(view), ctx);
}

namespace {

/// Merges the child's obligations/advice into the accumulator.
void merge_obligations(const Decision& from, Decision* into) {
  into->obligations.insert(into->obligations.end(), from.obligations.begin(),
                           from.obligations.end());
  into->advice.insert(into->advice.end(), from.advice.begin(), from.advice.end());
}

// ---------------------------------------------------------------------
// deny-overrides / permit-overrides (XACML 3.0 §C.2 / §C.3 semantics).
//
// The two are mirror images; `deny_wins` selects the orientation.
// ---------------------------------------------------------------------
class OverridesAlgorithm final : public CombiningAlgorithm {
 public:
  OverridesAlgorithm(std::string name, bool deny_wins)
      : name_(std::move(name)), deny_wins_(deny_wins) {}

  const std::string& name() const override { return name_; }

  Decision combine(std::span<const Combinable* const> children,
                   EvaluationContext& ctx) const override {
    bool at_least_one_winner = false;   // saw the overriding effect
    bool at_least_one_loser = false;    // saw the other effect
    bool ind_winner = false;            // Indeterminate{winner-effect}
    bool ind_loser = false;             // Indeterminate{loser-effect}
    bool ind_dp = false;
    Status first_error;
    Decision winner_acc;  // accumulates obligations of winner-effect children
    Decision loser_acc;

    for (const Combinable* child : children) {
      const Decision d = child->evaluate(ctx);
      switch (d.type) {
        case DecisionType::kDeny:
          if (deny_wins_) {
            // Overriding effect: we could short-circuit, except that other
            // children's obligations of the same effect must still be
            // collected per the spec, so keep going.
            at_least_one_winner = true;
            merge_obligations(d, &winner_acc);
          } else {
            at_least_one_loser = true;
            merge_obligations(d, &loser_acc);
          }
          break;
        case DecisionType::kPermit:
          if (!deny_wins_) {
            at_least_one_winner = true;
            merge_obligations(d, &winner_acc);
          } else {
            at_least_one_loser = true;
            merge_obligations(d, &loser_acc);
          }
          break;
        case DecisionType::kNotApplicable:
          break;
        case DecisionType::kIndeterminate:
          if (first_error.ok()) first_error = d.status;
          switch (d.extent) {
            case IndeterminateExtent::kDP:
              ind_dp = true;
              break;
            case IndeterminateExtent::kD:
              (deny_wins_ ? ind_winner : ind_loser) = true;
              break;
            case IndeterminateExtent::kP:
              (deny_wins_ ? ind_loser : ind_winner) = true;
              break;
            case IndeterminateExtent::kNone:
              ind_dp = true;  // conservative
              break;
          }
          break;
      }
    }

    const IndeterminateExtent winner_extent =
        deny_wins_ ? IndeterminateExtent::kD : IndeterminateExtent::kP;
    const IndeterminateExtent loser_extent =
        deny_wins_ ? IndeterminateExtent::kP : IndeterminateExtent::kD;

    if (at_least_one_winner) {
      Decision out = deny_wins_ ? Decision::deny() : Decision::permit();
      out.obligations = std::move(winner_acc.obligations);
      out.advice = std::move(winner_acc.advice);
      return out;
    }
    if (ind_dp || (ind_winner && (ind_loser || at_least_one_loser))) {
      return Decision::indeterminate(IndeterminateExtent::kDP, first_error);
    }
    if (ind_winner) {
      return Decision::indeterminate(winner_extent, first_error);
    }
    if (at_least_one_loser) {
      Decision out = deny_wins_ ? Decision::permit() : Decision::deny();
      out.obligations = std::move(loser_acc.obligations);
      out.advice = std::move(loser_acc.advice);
      return out;
    }
    if (ind_loser) {
      return Decision::indeterminate(loser_extent, first_error);
    }
    return Decision::not_applicable();
  }

 private:
  std::string name_;
  bool deny_wins_;
};

// ---------------------------------------------------------------------
// first-applicable: document order, first Permit/Deny/Indeterminate wins.
// ---------------------------------------------------------------------
class FirstApplicableAlgorithm final : public CombiningAlgorithm {
 public:
  const std::string& name() const override {
    static const std::string n = "first-applicable";
    return n;
  }

  Decision combine(std::span<const Combinable* const> children,
                   EvaluationContext& ctx) const override {
    for (const Combinable* child : children) {
      Decision d = child->evaluate(ctx);
      if (d.type == DecisionType::kNotApplicable) continue;
      if (d.type == DecisionType::kIndeterminate) {
        // Conservatively propagate as {DP}: we cannot know what later
        // children would have said without evaluating them.
        return Decision::indeterminate(IndeterminateExtent::kDP, d.status);
      }
      return d;
    }
    return Decision::not_applicable();
  }
};

// ---------------------------------------------------------------------
// only-one-applicable: at most one child's target may match.
// ---------------------------------------------------------------------
class OnlyOneApplicableAlgorithm final : public CombiningAlgorithm {
 public:
  const std::string& name() const override {
    static const std::string n = "only-one-applicable";
    return n;
  }

  Decision combine(std::span<const Combinable* const> children,
                   EvaluationContext& ctx) const override {
    const Combinable* applicable = nullptr;
    for (const Combinable* child : children) {
      const MatchResult m = child->match(ctx);
      if (m == MatchResult::kIndeterminate) {
        return Decision::indeterminate(
            IndeterminateExtent::kDP,
            Status::processing_error("only-one-applicable: target error in '" +
                                     child->id + "'"));
      }
      if (m == MatchResult::kMatch) {
        if (applicable != nullptr) {
          return Decision::indeterminate(
              IndeterminateExtent::kDP,
              Status::processing_error("only-one-applicable: both '" +
                                       applicable->id + "' and '" + child->id +
                                       "' apply"));
        }
        applicable = child;
      }
    }
    if (applicable == nullptr) return Decision::not_applicable();
    return applicable->evaluate(ctx);
  }
};

// ---------------------------------------------------------------------
// deny-unless-permit / permit-unless-deny: never NA, never Indeterminate.
// ---------------------------------------------------------------------
class UnlessAlgorithm final : public CombiningAlgorithm {
 public:
  UnlessAlgorithm(std::string name, Effect sought)
      : name_(std::move(name)), sought_(sought) {}

  const std::string& name() const override { return name_; }

  Decision combine(std::span<const Combinable* const> children,
                   EvaluationContext& ctx) const override {
    Decision fallback =
        sought_ == Effect::kPermit ? Decision::deny() : Decision::permit();
    const DecisionType sought_type = sought_ == Effect::kPermit
                                         ? DecisionType::kPermit
                                         : DecisionType::kDeny;
    const DecisionType fallback_type = sought_ == Effect::kPermit
                                           ? DecisionType::kDeny
                                           : DecisionType::kPermit;
    for (const Combinable* child : children) {
      Decision d = child->evaluate(ctx);
      if (d.type == sought_type) {
        return d;  // carries its own obligations
      }
      if (d.type == fallback_type) {
        merge_obligations(d, &fallback);
      }
    }
    return fallback;
  }

 private:
  std::string name_;
  Effect sought_;
};

}  // namespace

const CombiningRegistry& CombiningRegistry::standard() {
  static const CombiningRegistry* reg = [] {
    auto* r = new CombiningRegistry();
    auto put = [r](std::unique_ptr<CombiningAlgorithm> alg) {
      const std::string n = alg->name();
      r->algorithms_.emplace(n, std::move(alg));
    };
    put(std::make_unique<OverridesAlgorithm>("deny-overrides", true));
    put(std::make_unique<OverridesAlgorithm>("permit-overrides", false));
    // Document order is preserved throughout, so the ordered variants are
    // behaviourally identical; registered for interface completeness.
    put(std::make_unique<OverridesAlgorithm>("ordered-deny-overrides", true));
    put(std::make_unique<OverridesAlgorithm>("ordered-permit-overrides", false));
    put(std::make_unique<FirstApplicableAlgorithm>());
    put(std::make_unique<OnlyOneApplicableAlgorithm>());
    put(std::make_unique<UnlessAlgorithm>("deny-unless-permit", Effect::kPermit));
    put(std::make_unique<UnlessAlgorithm>("permit-unless-deny", Effect::kDeny));
    return r;
  }();
  return *reg;
}

const CombiningAlgorithm* CombiningRegistry::find(std::string_view name) const {
  const auto it = algorithms_.find(name);
  if (it == algorithms_.end()) return nullptr;
  return it->second.get();
}

std::vector<std::string> CombiningRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(algorithms_.size());
  for (const auto& [name, _] : algorithms_) out.push_back(name);
  return out;
}

}  // namespace mdac::core
