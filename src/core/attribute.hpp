// The attribute model: typed values, bags and attribute categories.
//
// Mirrors the XACML data model the paper builds on (§2.3): every piece of
// information about an access request — who the subject is, what resource
// is touched, which action is attempted, what the environment looks like
// — is an *attribute*: a (category, id) pair bound to a bag of typed
// values. Policies never see identities directly; they see attributes,
// which is exactly the property the paper needs for multi-domain
// evaluation where "access relationships may not involve an explicitly
// named set of individuals" (§2.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/clock.hpp"
#include "common/interner.hpp"

namespace mdac::core {

enum class DataType { kString, kBoolean, kInteger, kDouble, kTime };

const char* to_string(DataType t);
std::optional<DataType> data_type_from_string(std::string_view s);

/// Strong wrapper so time values are distinct from integers in the variant.
struct TimeValue {
  common::TimePoint millis = 0;
  bool operator==(const TimeValue&) const = default;
  auto operator<=>(const TimeValue&) const = default;
};

/// A single typed attribute value.
class AttributeValue {
 public:
  AttributeValue() : value_(std::string()) {}
  explicit AttributeValue(std::string v) : value_(std::move(v)) {}
  explicit AttributeValue(const char* v) : value_(std::string(v)) {}
  explicit AttributeValue(bool v) : value_(v) {}
  explicit AttributeValue(std::int64_t v) : value_(v) {}
  explicit AttributeValue(int v) : value_(static_cast<std::int64_t>(v)) {}
  explicit AttributeValue(double v) : value_(v) {}
  explicit AttributeValue(TimeValue v) : value_(v) {}

  DataType type() const;

  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_boolean() const { return std::holds_alternative<bool>(value_); }
  bool is_integer() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_time() const { return std::holds_alternative<TimeValue>(value_); }

  // Accessors throw std::bad_variant_access on type mismatch; evaluation
  // code checks types first and reports XACML Indeterminate instead.
  const std::string& as_string() const { return std::get<std::string>(value_); }
  bool as_boolean() const { return std::get<bool>(value_); }
  std::int64_t as_integer() const { return std::get<std::int64_t>(value_); }
  double as_double() const { return std::get<double>(value_); }
  TimeValue as_time() const { return std::get<TimeValue>(value_); }

  /// Lexical representation (used in XML serialisation and diagnostics).
  std::string to_text() const;

  /// Parses a lexical representation for a given type. Returns nullopt on
  /// malformed input.
  static std::optional<AttributeValue> from_text(DataType type, std::string_view text);

  bool operator==(const AttributeValue&) const = default;
  /// Orders first by type, then by value; gives bags a canonical order.
  auto operator<=>(const AttributeValue&) const = default;

 private:
  std::variant<std::string, bool, std::int64_t, double, TimeValue> value_;
};

/// An unordered multiset of attribute values. XACML expressions operate on
/// bags; a designator lookup always yields a bag (possibly empty).
class Bag {
 public:
  Bag() = default;
  explicit Bag(AttributeValue v) { values_.push_back(std::move(v)); }
  explicit Bag(std::vector<AttributeValue> vs) : values_(std::move(vs)) {}

  static Bag of(std::initializer_list<AttributeValue> vs) {
    return Bag(std::vector<AttributeValue>(vs));
  }

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }
  void add(AttributeValue v) { values_.push_back(std::move(v)); }
  bool contains(const AttributeValue& v) const;

  const std::vector<AttributeValue>& values() const { return values_; }
  const AttributeValue& at(std::size_t i) const { return values_.at(i); }

  /// True if this bag has exactly one element.
  bool singleton() const { return values_.size() == 1; }

  /// Multiset equality (order-insensitive).
  bool set_equals(const Bag& other) const;

  bool operator==(const Bag&) const = default;

 private:
  std::vector<AttributeValue> values_;
};

/// XACML attribute categories. kDelegate supports the administration /
/// delegation profile (§2.3, [13]).
enum class Category { kSubject, kResource, kAction, kEnvironment, kDelegate };

const char* to_string(Category c);
std::optional<Category> category_from_string(std::string_view s);

/// Well-known attribute ids used across the library (matching the XACML
/// core vocabulary, shortened).
namespace attrs {
inline constexpr const char* kSubjectId = "subject-id";
inline constexpr const char* kSubjectDomain = "subject-domain";
inline constexpr const char* kRole = "role";
inline constexpr const char* kClearance = "clearance";
inline constexpr const char* kResourceId = "resource-id";
inline constexpr const char* kResourceDomain = "resource-domain";
inline constexpr const char* kResourceOwner = "resource-owner";
inline constexpr const char* kClassification = "classification";
inline constexpr const char* kActionId = "action-id";
inline constexpr const char* kCurrentTime = "current-time";

/// The well-known ids pre-interned (common::Interner), for hot paths that
/// probe requests by Symbol instead of by string. Resolved once, on first
/// use.
struct Symbols {
  common::Symbol subject_id;
  common::Symbol subject_domain;
  common::Symbol role;
  common::Symbol clearance;
  common::Symbol resource_id;
  common::Symbol resource_domain;
  common::Symbol resource_owner;
  common::Symbol classification;
  common::Symbol action_id;
  common::Symbol current_time;

  static const Symbols& get();
};
}  // namespace attrs

}  // namespace mdac::core
