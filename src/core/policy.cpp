#include "core/policy.hpp"

#include "core/combining.hpp"
#include "core/functions.hpp"

namespace mdac::core {

// ---------------------------------------------------------------------
// Target matching
// ---------------------------------------------------------------------

namespace detail {

MatchResult match_candidates_against(const FunctionDef& fn,
                                     const AttributeValue& literal,
                                     DataType data_type, const Bag& bag,
                                     bool filter, EvaluationContext& ctx) {
  bool saw_error = false;
  for (const AttributeValue& candidate : bag.values()) {
    if (filter && candidate.type() != data_type) continue;
    const ExprResult r = fn.invoke(ctx, {Bag(literal), Bag(candidate)});
    if (!r.ok() || r.bag.size() != 1 || !r.bag.at(0).is_boolean()) {
      saw_error = true;
      continue;
    }
    if (r.bag.at(0).as_boolean()) return MatchResult::kMatch;
  }
  return saw_error ? MatchResult::kIndeterminate : MatchResult::kNoMatch;
}

bool bag_contains_string(const Bag& bag, const std::string& wanted) {
  for (const AttributeValue& candidate : bag.values()) {
    if (candidate.is_string() && candidate.as_string() == wanted) return true;
  }
  return false;
}

}  // namespace detail

MatchResult Match::evaluate(EvaluationContext& ctx) const {
  const FunctionDef* fn = ctx.functions().find(function_id);
  if (fn == nullptr || fn->higher_order) return MatchResult::kIndeterminate;

  // Fast path for the overwhelmingly common target shape: the request
  // itself supplies the attribute and the match is a string equality.
  // Compares in place — no bag filtering copy, no per-candidate Bag
  // wrapping — which is what keeps Pdp::evaluate allocation-free in
  // steady state.
  if (const Bag* bag = ctx.attribute_in_request(category, attribute_id, data_type)) {
    // Inlined only for the *standard* registry: a custom registry may
    // have redefined "string-equal".
    if (function_id == "string-equal" && data_type == DataType::kString &&
        literal.is_string() && &ctx.functions() == &FunctionRegistry::standard()) {
      return detail::bag_contains_string(*bag, literal.as_string())
                 ? MatchResult::kMatch
                 : MatchResult::kNoMatch;
    }
    return detail::match_candidates_against(*fn, literal, data_type, *bag,
                                            /*filter=*/true, ctx);
  }

  // General path: resolver consultation, type filtering and
  // missing-attribute handling.
  const ExprResult looked_up = ctx.attribute(category, attribute_id, data_type,
                                             must_be_present);
  if (!looked_up.ok()) return MatchResult::kIndeterminate;
  return detail::match_candidates_against(*fn, literal, data_type, looked_up.bag,
                                          /*filter=*/false, ctx);
}

MatchResult AllOf::evaluate(EvaluationContext& ctx) const {
  bool saw_indeterminate = false;
  for (const Match& m : matches) {
    switch (m.evaluate(ctx)) {
      case MatchResult::kNoMatch:
        return MatchResult::kNoMatch;
      case MatchResult::kIndeterminate:
        saw_indeterminate = true;
        break;
      case MatchResult::kMatch:
        break;
    }
  }
  return saw_indeterminate ? MatchResult::kIndeterminate : MatchResult::kMatch;
}

MatchResult AnyOf::evaluate(EvaluationContext& ctx) const {
  bool saw_indeterminate = false;
  for (const AllOf& group : all_ofs) {
    switch (group.evaluate(ctx)) {
      case MatchResult::kMatch:
        return MatchResult::kMatch;
      case MatchResult::kIndeterminate:
        saw_indeterminate = true;
        break;
      case MatchResult::kNoMatch:
        break;
    }
  }
  return saw_indeterminate ? MatchResult::kIndeterminate : MatchResult::kNoMatch;
}

MatchResult Target::evaluate(EvaluationContext& ctx) const {
  ++ctx.metrics().targets_checked;
  bool saw_indeterminate = false;
  for (const AnyOf& group : any_ofs) {
    switch (group.evaluate(ctx)) {
      case MatchResult::kNoMatch:
        return MatchResult::kNoMatch;
      case MatchResult::kIndeterminate:
        saw_indeterminate = true;
        break;
      case MatchResult::kMatch:
        break;
    }
  }
  return saw_indeterminate ? MatchResult::kIndeterminate : MatchResult::kMatch;
}

Target& Target::require(Category c, const std::string& attribute_id,
                        AttributeValue value, const std::string& function_id) {
  return require_any(c, attribute_id, {std::move(value)}, function_id);
}

Target& Target::require_any(Category c, const std::string& attribute_id,
                            const std::vector<AttributeValue>& values,
                            const std::string& function_id) {
  AnyOf any;
  for (const AttributeValue& v : values) {
    Match m;
    m.function_id = function_id;
    m.literal = v;
    m.category = c;
    m.attribute_id = attribute_id;
    m.data_type = v.type();
    AllOf all;
    all.matches.push_back(std::move(m));
    any.all_ofs.push_back(std::move(all));
  }
  any_ofs.push_back(std::move(any));
  return *this;
}

// ---------------------------------------------------------------------
// Obligations
// ---------------------------------------------------------------------

AttributeAssignmentExpr AttributeAssignmentExpr::clone() const {
  return AttributeAssignmentExpr{attribute_id, expr ? expr->clone() : nullptr};
}

ObligationExpr ObligationExpr::clone() const {
  ObligationExpr out;
  out.id = id;
  out.fulfill_on = fulfill_on;
  out.advice = advice;
  out.assignments.reserve(assignments.size());
  for (const AttributeAssignmentExpr& a : assignments) {
    out.assignments.push_back(a.clone());
  }
  return out;
}

Status ObligationExpr::instantiate(EvaluationContext& ctx,
                                   ObligationInstance* out) const {
  out->id = id;
  out->assignments.clear();
  for (const AttributeAssignmentExpr& a : assignments) {
    if (!a.expr) {
      return Status::processing_error("obligation '" + id + "': null assignment");
    }
    const ExprResult r = a.expr->evaluate(ctx);
    if (!r.ok()) return r.status;
    if (r.bag.size() != 1) {
      return Status::processing_error("obligation '" + id +
                                      "': assignment must yield one value");
    }
    out->assignments.emplace_back(a.attribute_id, r.bag.at(0));
  }
  return Status::okay();
}

void attach_obligations(const std::vector<ObligationExpr>& obligations,
                        EvaluationContext& ctx, Decision* decision) {
  if (decision->type != DecisionType::kPermit &&
      decision->type != DecisionType::kDeny) {
    return;
  }
  const Effect decided = decision->type == DecisionType::kPermit
                             ? Effect::kPermit
                             : Effect::kDeny;
  for (const ObligationExpr& ob : obligations) {
    if (ob.fulfill_on != decided) continue;
    ObligationInstance instance;
    const Status s = ob.instantiate(ctx, &instance);
    if (!s.ok()) {
      const IndeterminateExtent extent = decided == Effect::kPermit
                                             ? IndeterminateExtent::kP
                                             : IndeterminateExtent::kD;
      *decision = Decision::indeterminate(extent, s);
      return;
    }
    if (ob.advice) {
      decision->advice.push_back(std::move(instance));
    } else {
      decision->obligations.push_back(std::move(instance));
    }
  }
}

// ---------------------------------------------------------------------
// Rule
// ---------------------------------------------------------------------

MatchResult Rule::match(EvaluationContext& ctx) const {
  if (!target.has_value() || target->empty()) return MatchResult::kMatch;
  return target->evaluate(ctx);
}

Decision Rule::evaluate(EvaluationContext& ctx) const {
  ++ctx.metrics().rules_evaluated;
  const IndeterminateExtent my_extent = effect == Effect::kPermit
                                            ? IndeterminateExtent::kP
                                            : IndeterminateExtent::kD;

  switch (match(ctx)) {
    case MatchResult::kNoMatch:
      return Decision::not_applicable();
    case MatchResult::kIndeterminate:
      return Decision::indeterminate(
          my_extent, Status::processing_error("rule '" + id + "': target error"));
    case MatchResult::kMatch:
      break;
  }

  if (condition) {
    const ExprResult r = condition->evaluate(ctx);
    if (!r.ok()) return Decision::indeterminate(my_extent, r.status);
    if (r.bag.size() != 1 || !r.bag.at(0).is_boolean()) {
      return Decision::indeterminate(
          my_extent,
          Status::processing_error("rule '" + id + "': condition not boolean"));
    }
    if (!r.bag.at(0).as_boolean()) return Decision::not_applicable();
  }

  Decision d = effect == Effect::kPermit ? Decision::permit() : Decision::deny();
  attach_obligations(obligations, ctx, &d);
  return d;
}

Rule Rule::clone() const {
  Rule out;
  out.id = id;
  out.description = description;
  out.effect = effect;
  out.target = target;
  out.condition = condition ? condition->clone() : nullptr;
  out.obligations.reserve(obligations.size());
  for (const ObligationExpr& ob : obligations) out.obligations.push_back(ob.clone());
  return out;
}

// ---------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------

namespace detail {

/// Applies the XACML 3.0 "target Indeterminate" table: the policy's value
/// becomes Indeterminate whose extent reflects what the children would
/// have produced. Shared with the compiled evaluator (compiled.cpp).
Decision mask_by_indeterminate_target(Decision combined, const std::string& id) {
  const Status status =
      Status::processing_error("'" + id + "': target indeterminate");
  switch (combined.type) {
    case DecisionType::kPermit:
      return Decision::indeterminate(IndeterminateExtent::kP, status);
    case DecisionType::kDeny:
      return Decision::indeterminate(IndeterminateExtent::kD, status);
    case DecisionType::kIndeterminate:
      return Decision::indeterminate(combined.extent, combined.status);
    case DecisionType::kNotApplicable:
      return Decision::not_applicable();
  }
  return combined;
}

}  // namespace detail

namespace {

const CombiningAlgorithm* lookup_algorithm(const std::string& name) {
  return CombiningRegistry::standard().find(name);
}

}  // namespace

MatchResult Policy::match(EvaluationContext& ctx) const {
  if (target_spec.empty()) return MatchResult::kMatch;
  return target_spec.evaluate(ctx);
}

Decision Policy::evaluate(EvaluationContext& ctx) const {
  ++ctx.metrics().policies_evaluated;

  const MatchResult m = match(ctx);
  if (m == MatchResult::kNoMatch) return Decision::not_applicable();

  const CombiningAlgorithm* alg = lookup_algorithm(rule_combining);
  if (alg == nullptr) {
    return Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::syntax_error("policy '" + policy_id +
                             "': unknown rule-combining algorithm '" +
                             rule_combining + "'"));
  }

  std::vector<Combinable> children;
  children.reserve(rules.size());
  for (const Rule& r : rules) children.push_back(Combinable::of_rule(r));

  Decision combined = alg->combine(children, ctx);

  if (m == MatchResult::kIndeterminate) {
    return detail::mask_by_indeterminate_target(std::move(combined), policy_id);
  }
  attach_obligations(obligations, ctx, &combined);
  return combined;
}

PolicyNodePtr Policy::clone_node() const {
  return std::make_unique<Policy>(clone());
}

Policy Policy::clone() const {
  Policy out;
  out.policy_id = policy_id;
  out.version = version;
  out.description = description;
  out.issuer = issuer;
  out.target_spec = target_spec;
  out.rule_combining = rule_combining;
  out.rules.reserve(rules.size());
  for (const Rule& r : rules) out.rules.push_back(r.clone());
  out.obligations.reserve(obligations.size());
  for (const ObligationExpr& ob : obligations) out.obligations.push_back(ob.clone());
  return out;
}

// ---------------------------------------------------------------------
// PolicyReference
// ---------------------------------------------------------------------

const PolicyTreeNode* PolicyReference::resolve(EvaluationContext& ctx) const {
  if (ctx.store() == nullptr) return nullptr;
  return ctx.store()->find(ref_id_);
}

MatchResult PolicyReference::match(EvaluationContext& ctx) const {
  const PolicyTreeNode* node = resolve(ctx);
  if (node == nullptr) return MatchResult::kIndeterminate;
  if (!ctx.enter_reference(ref_id_)) return MatchResult::kIndeterminate;
  const MatchResult m = node->match(ctx);
  ctx.leave_reference(ref_id_);
  return m;
}

Decision PolicyReference::evaluate(EvaluationContext& ctx) const {
  const PolicyTreeNode* node = resolve(ctx);
  if (node == nullptr) {
    return Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::processing_error("unresolved policy reference '" + ref_id_ + "'"));
  }
  if (!ctx.enter_reference(ref_id_)) {
    return Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::processing_error("policy reference cycle at '" + ref_id_ + "'"));
  }
  Decision d = node->evaluate(ctx);
  ctx.leave_reference(ref_id_);
  return d;
}

// ---------------------------------------------------------------------
// PolicySet
// ---------------------------------------------------------------------

MatchResult PolicySet::match(EvaluationContext& ctx) const {
  if (target_spec.empty()) return MatchResult::kMatch;
  return target_spec.evaluate(ctx);
}

Decision PolicySet::evaluate(EvaluationContext& ctx) const {
  ++ctx.metrics().policies_evaluated;

  const MatchResult m = match(ctx);
  if (m == MatchResult::kNoMatch) return Decision::not_applicable();

  const CombiningAlgorithm* alg = lookup_algorithm(policy_combining);
  if (alg == nullptr) {
    return Decision::indeterminate(
        IndeterminateExtent::kDP,
        Status::syntax_error("policy set '" + policy_set_id +
                             "': unknown policy-combining algorithm '" +
                             policy_combining + "'"));
  }

  std::vector<Combinable> combinables;
  combinables.reserve(children_.size());
  for (const PolicyNodePtr& child : children_) {
    combinables.push_back(Combinable::of_node(*child));
  }

  Decision combined = alg->combine(combinables, ctx);

  if (m == MatchResult::kIndeterminate) {
    return detail::mask_by_indeterminate_target(std::move(combined), policy_set_id);
  }
  attach_obligations(obligations, ctx, &combined);
  return combined;
}

PolicyNodePtr PolicySet::clone_node() const {
  return std::make_unique<PolicySet>(clone());
}

PolicySet PolicySet::clone() const {
  PolicySet out;
  out.policy_set_id = policy_set_id;
  out.version = version;
  out.description = description;
  out.issuer = issuer;
  out.target_spec = target_spec;
  out.policy_combining = policy_combining;
  out.obligations.reserve(obligations.size());
  for (const ObligationExpr& ob : obligations) out.obligations.push_back(ob.clone());
  out.children_.reserve(children_.size());
  for (const PolicyNodePtr& c : children_) out.children_.push_back(c->clone_node());
  return out;
}

// ---------------------------------------------------------------------
// PolicyStore
// ---------------------------------------------------------------------

void PolicyStore::add(PolicyNodePtr node,
                      std::shared_ptr<const CompiledPolicyTree> compiled) {
  const std::string node_id = node->id();
  if (by_id_.find(node_id) == by_id_.end()) {
    order_.push_back(node_id);
  }
  by_id_[node_id] = std::move(node);
  // Replacing a node always invalidates the old artifact: attach the new
  // one, or clear so the PDP recompiles from the node it actually holds.
  if (compiled != nullptr) {
    compiled_[node_id] = std::move(compiled);
  } else {
    compiled_.erase(node_id);
  }
  ++revision_;
  updated_at_[node_id] = revision_;
}

bool PolicyStore::remove(const std::string& id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  by_id_.erase(it);
  compiled_.erase(id);
  updated_at_.erase(id);
  order_.erase(std::find(order_.begin(), order_.end(), id));
  ++revision_;
  return true;
}

std::shared_ptr<const CompiledPolicyTree> PolicyStore::compiled(
    const std::string& id) const {
  const auto it = compiled_.find(id);
  if (it == compiled_.end()) return nullptr;
  return it->second;
}

std::uint64_t PolicyStore::node_revision(const std::string& id) const {
  const auto it = updated_at_.find(id);
  if (it == updated_at_.end()) return 0;
  return it->second;
}

const PolicyTreeNode* PolicyStore::find(const std::string& id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  return it->second.get();
}

std::vector<const PolicyTreeNode*> PolicyStore::top_level() const {
  std::vector<const PolicyTreeNode*> out;
  out.reserve(order_.size());
  for (const std::string& id : order_) {
    out.push_back(by_id_.at(id).get());
  }
  return out;
}

void PolicyStore::clear() {
  order_.clear();
  by_id_.clear();
  compiled_.clear();
  updated_at_.clear();
  ++revision_;
}

}  // namespace mdac::core
