#include "core/expression.hpp"

#include "core/functions.hpp"

namespace mdac::core {

ExprPtr ApplyExpr::clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(args_.size());
  for (const ExprPtr& a : args_) cloned.push_back(a->clone());
  return std::make_unique<ApplyExpr>(function_id_, std::move(cloned));
}

ExprResult ApplyExpr::evaluate(EvaluationContext& ctx) const {
  const FunctionDef* fn = ctx.functions().find(function_id_);
  if (fn == nullptr) {
    return ExprResult::error(
        Status::processing_error("unknown function '" + function_id_ + "'"));
  }
  ++ctx.metrics().functions_invoked;

  if (fn->higher_order) return evaluate_higher_order(ctx);

  if (fn->arity >= 0 && static_cast<int>(args_.size()) != fn->arity) {
    return ExprResult::error(Status::processing_error(
        function_id_ + ": expected " + std::to_string(fn->arity) + " arguments, got " +
        std::to_string(args_.size())));
  }

  std::vector<Bag> arg_bags;
  arg_bags.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    ExprResult r = arg->evaluate(ctx);
    if (!r.ok()) return r;  // first error wins
    arg_bags.push_back(std::move(r.bag));
  }
  return fn->invoke(ctx, arg_bags);
}

ExprResult ApplyExpr::evaluate_higher_order(EvaluationContext& ctx) const {
  // First argument must be a function reference to a non-higher-order fn.
  if (args_.empty() || args_[0]->kind() != ExprKind::kFunctionRef) {
    return ExprResult::error(Status::processing_error(
        function_id_ + ": first argument must be a function reference"));
  }
  const auto& ref = static_cast<const FunctionRefExpr&>(*args_[0]);
  const FunctionDef* inner = ctx.functions().find(ref.function_id());
  if (inner == nullptr || inner->higher_order) {
    return ExprResult::error(Status::processing_error(
        function_id_ + ": bad inner function '" + ref.function_id() + "'"));
  }

  std::vector<Bag> rest;
  rest.reserve(args_.size() - 1);
  for (std::size_t i = 1; i < args_.size(); ++i) {
    ExprResult r = args_[i]->evaluate(ctx);
    if (!r.ok()) return r;
    rest.push_back(std::move(r.bag));
  }

  const auto call_inner = [&](const std::vector<Bag>& inner_args) -> ExprResult {
    ++ctx.metrics().functions_invoked;
    return inner->invoke(ctx, inner_args);
  };

  const auto as_boolean = [&](const ExprResult& r, bool* out) -> bool {
    if (!r.ok()) return false;
    if (r.bag.size() != 1 || !r.bag.at(0).is_boolean()) return false;
    *out = r.bag.at(0).as_boolean();
    return true;
  };

  if (function_id_ == "any-of" || function_id_ == "all-of") {
    // (f, v1..vk, bag): apply f(v1..vk, b) for each b in the final bag.
    if (rest.empty()) {
      return ExprResult::error(
          Status::processing_error(function_id_ + ": needs a bag argument"));
    }
    const Bag& bag = rest.back();
    const bool is_any = function_id_ == "any-of";
    for (const AttributeValue& candidate : bag.values()) {
      std::vector<Bag> inner_args(rest.begin(), rest.end() - 1);
      inner_args.push_back(Bag(candidate));
      const ExprResult r = call_inner(inner_args);
      bool b = false;
      if (!as_boolean(r, &b)) {
        return r.ok() ? ExprResult::error(Status::processing_error(
                            function_id_ + ": inner function must return boolean"))
                      : r;
      }
      if (is_any && b) return ExprResult::boolean(true);
      if (!is_any && !b) return ExprResult::boolean(false);
    }
    return ExprResult::boolean(!is_any);
  }

  if (function_id_ == "any-of-any") {
    if (rest.size() != 2) {
      return ExprResult::error(
          Status::processing_error("any-of-any: expected two bag arguments"));
    }
    for (const AttributeValue& a : rest[0].values()) {
      for (const AttributeValue& b : rest[1].values()) {
        const ExprResult r = call_inner({Bag(a), Bag(b)});
        bool res = false;
        if (!as_boolean(r, &res)) {
          return r.ok() ? ExprResult::error(Status::processing_error(
                              "any-of-any: inner function must return boolean"))
                        : r;
        }
        if (res) return ExprResult::boolean(true);
      }
    }
    return ExprResult::boolean(false);
  }

  if (function_id_ == "map") {
    if (rest.size() != 1) {
      return ExprResult::error(
          Status::processing_error("map: expected one bag argument"));
    }
    Bag out;
    for (const AttributeValue& a : rest[0].values()) {
      const ExprResult r = call_inner({Bag(a)});
      if (!r.ok()) return r;
      if (r.bag.size() != 1) {
        return ExprResult::error(Status::processing_error(
            "map: inner function must return a single value"));
      }
      out.add(r.bag.at(0));
    }
    return ExprResult::value(std::move(out));
  }

  return ExprResult::error(Status::processing_error(
      "unimplemented higher-order function '" + function_id_ + "'"));
}

}  // namespace mdac::core
