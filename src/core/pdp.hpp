// The Policy Decision Point (paper §2.2, component 2).
//
// Deterministic and self-contained: given a request, a policy store, a
// function registry and an optional attribute resolver, it produces one
// XACML decision. Everything distributed — transport, replication,
// caching, discovery — wraps *around* this class (mdac::net,
// mdac::dependability), which is the modularity requirement of §3.
//
// The optional target index answers the paper's scalability challenge:
// with thousands of policies a linear target scan dominates decision
// latency, so top-level policies with simple equality targets are indexed
// by (category, interned attribute symbol) with a hash table from literal
// value to admitted positions, and only candidates are evaluated.
// Candidate selection runs against reusable per-PDP scratch buffers
// (epoch-stamped selection marks, candidate and Combinable vectors), so
// steady-state evaluation performs no heap allocation of its own; the
// bench harness (bench/bench_main.cpp) tracks allocs/op per PR.
//
// The index is additionally *partitioned by administrative domain* —
// the paper's multi-domain decomposition applied to the PDP's own state.
// A top-level policy whose target carries a necessary conjunct on a
// domain attribute (subject-domain / resource-domain, string equality)
// belongs to the partitions for the admitted domain values; every other
// policy sits in the shared/global partition. A request is routed to the
// global partition plus only the partitions of the domains it names, so
// in an N-domain federation a single-domain request never touches the
// other N-1 domains' index state (PdpResult::partitions_probed and the
// cumulative partition_probes() counter make this observable). Pruning
// stays sound because the domain conjunct is necessary: a target that
// requires subject-domain == "a" cannot match a request that never says
// "a". Candidate sets from multiple named partitions combine through the
// same epoch-stamped scratch, in store order, so decisions are identical
// to the flat index — only the probing is domain-local. This is the
// structural step toward NUMA-sharding and per-domain replication: each
// partition is already an independent (category, symbol)-keyed index.
//
// Index soundness assumes target attributes are request-supplied (the
// PEP-disclosure model): an AttributeResolver that conjures a target
// attribute the request omitted could make a pruned policy match. That
// contract predates partitioning and applies to both layers equally.
//
// Thread-safety contract: a Pdp instance is NOT thread-safe. The
// evaluate* methods mutate the target index, the scratch buffers and the
// evaluation counter without synchronisation. Run one Pdp per thread —
// that is exactly what mdac::runtime::DecisionEngine does (one private
// replica per worker, bound to an immutable runtime::PolicySnapshot, so
// concurrent PAP updates become snapshot republications instead of
// racing store mutations); use it instead of sharing a Pdp. Debug builds
// (!NDEBUG) enforce the contract: the first evaluating thread becomes
// the owner and any later cross-thread evaluate* asserts, so a violation
// fails loudly instead of silently corrupting scratch state (a
// legitimate serialised hand-off between threads must call
// rebind_owner_thread() in between). The shared PolicyStore is only
// read, and its revision is re-checked before every evaluation; mutating
// the store *during* an evaluation is not supported from any thread —
// including from an AttributeResolver invoked by that evaluation:
// replacing a policy destroys the node the in-flight evaluation still
// references. A resolver may re-enter evaluate() (handled, see
// in_evaluation_), but must treat the store as read-only.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/interner.hpp"
#include "common/strings.hpp"
#include "core/combining.hpp"
#include "core/compiled.hpp"
#include "core/decision.hpp"
#include "core/evaluation.hpp"
#include "core/policy.hpp"

namespace mdac::core {

/// A necessary simple-equality target conjunct (defined in pdp.cpp).
struct TargetConstraint;

struct PdpConfig {
  /// Algorithm combining the store's top-level policies.
  std::string root_combining = "deny-overrides";
  bool use_target_index = true;
  /// Partition the target index by administrative domain (see the header
  /// comment). Off = one flat global partition, the pre-partitioning
  /// behaviour; decisions are identical either way.
  bool partition_by_domain = true;
  /// Execute compiled policy programs (core/compiled.hpp) for every
  /// top-level node — plain policies and whole PolicySet trees,
  /// references included: store-attached artifacts (PAP
  /// compile-on-issue) are reused, anything else is compiled once at
  /// index-rebuild time. Off = the interpreted AST path, kept alive for
  /// differential testing (tests/compiled_differential_test.cpp);
  /// decisions are identical either way.
  bool use_compiled = true;
};

struct PdpResult {
  Decision decision;
  EvaluationMetrics metrics;
  /// Number of top-level policies the index ruled out before evaluation.
  std::size_t candidates_skipped = 0;
  /// Number of distinct per-domain partitions this request was routed to
  /// (excludes the always-probed global partition).
  std::size_t partitions_probed = 0;
  /// Aggregate compile stats of the working set this request ran
  /// against; all-zero when use_compiled is off (so an all-zero struct
  /// reliably means "interpreted mode").
  CompileStats compile;
};

class Pdp {
 public:
  explicit Pdp(std::shared_ptr<PolicyStore> store, PdpConfig config = {});

  /// Optional PIP hook; not owned, must outlive the PDP.
  void set_resolver(AttributeResolver* resolver) { resolver_ = resolver; }

  /// Replaces the function registry (not owned; default: standard()).
  void set_functions(const FunctionRegistry* functions) { functions_ = functions; }

  const PolicyStore& store() const { return *store_; }
  PolicyStore& mutable_store() { return *store_; }
  std::shared_ptr<PolicyStore> shared_store() const { return store_; }

  Decision evaluate(const RequestContext& request);
  PdpResult evaluate_with_metrics(const RequestContext& request);

  /// Evaluates many requests in order, checking index staleness once and
  /// reusing the scratch buffers across the whole batch. The store must
  /// not be mutated while the batch runs.
  std::vector<PdpResult> evaluate_batch(std::span<const RequestContext> requests);

  std::uint64_t evaluation_count() const { return evaluation_count_; }
  const PdpConfig& config() const { return config_; }

  /// Releases the debug-build thread-ownership claim (see the contract
  /// in the header comment): the next evaluating thread becomes the new
  /// owner. Only for *serialised* hand-offs — the caller must guarantee
  /// no evaluation is concurrently in flight. No-op in NDEBUG builds.
  void rebind_owner_thread() {
    owner_thread_.store(std::thread::id{}, std::memory_order_relaxed);
  }

  /// Number of per-domain index partitions built from the current store
  /// (0 when partitioning is off or no policy names a domain).
  std::size_t partition_count() const { return partitions_.size(); }
  /// Cumulative count of per-domain partition probes across evaluations
  /// (tests assert requests only touch the partitions they name).
  std::uint64_t partition_probes() const { return partition_probes_; }

 private:
  struct IndexEntry {
    Category category;
    common::Symbol attribute_id;
    // literal string value -> positions (into store order) it admits;
    // heterogeneous lookup so probing with a request value never copies.
    std::unordered_map<std::string, std::vector<std::uint32_t>, common::StringHash,
                       std::equal_to<>>
        by_value;
  };

  /// One administrative domain's slice of the target index (the global
  /// partition is just the slice for domain-less policies). `residual`
  /// holds partition members with no further indexable conjunct — they
  /// are candidates whenever the partition is probed at all.
  struct Partition {
    std::vector<IndexEntry> entries;
    std::vector<std::uint32_t> residual;
    /// Dedup stamp: a request naming one domain twice (e.g. equal
    /// subject- and resource-domain) probes its partition once.
    std::uint64_t probe_epoch = 0;
  };

  /// Cheap inline staleness probe; the rebuild itself is out of line so
  /// the common already-fresh case costs two loads and a compare. Never
  /// rebuilds under an outer evaluation (re-entrant resolver frame): the
  /// live scratch references the current nodes, so a store change seen
  /// mid-evaluation takes effect on the next top-level evaluation.
  void rebuild_index_if_stale() {
    if (in_evaluation_) return;
    if (indexed_revision_ != store_->revision()) rebuild_index();
  }
  void rebuild_index();

  /// Fills `children_` (scratch) with pointers to the Combinables of the
  /// nodes whose targets might match; everything else is provably
  /// non-matching via the index (see soundness notes in the header
  /// comment).
  void select_candidates(const RequestContext& request, std::size_t* skipped,
                         std::size_t* partitions_probed);
  /// Stamps one partition's candidates for the current epoch.
  void probe_partition(const Partition& partition, const RequestContext& request);
  /// Places node `position` into a partition, under the given indexable
  /// conjunct, or as residual when `constraint` is null (or the symbol
  /// table is exhausted).
  static void place_in_partition(Partition& partition, std::uint32_t position,
                                 const TargetConstraint* constraint);

  PdpResult evaluate_prepared(const RequestContext& request);

  std::shared_ptr<PolicyStore> store_;
  PdpConfig config_;
  AttributeResolver* resolver_ = nullptr;
  const FunctionRegistry* functions_;
  const CombiningAlgorithm* root_algorithm_ = nullptr;

  // Domain-partitioned target index over top-level nodes (see header
  // comment). `global_` always participates; `partitions_` only for the
  // domains a request names.
  Partition global_;
  std::unordered_map<std::string, Partition, common::StringHash, std::equal_to<>>
      partitions_;
  std::uint64_t indexed_revision_ = static_cast<std::uint64_t>(-1);
  std::vector<const PolicyTreeNode*> ordered_nodes_;
  std::vector<Combinable> combinables_;  // parallel to ordered_nodes_
  /// Locally compiled artifacts carried across index rebuilds, keyed by
  /// id -> (store node revision, artifact): a store mutation recompiles
  /// only the nodes it replaced, not the whole working set.
  std::unordered_map<
      std::string,
      std::pair<std::uint64_t, std::shared_ptr<const CompiledPolicyTree>>>
      local_compile_cache_;
  CompileStats compile_stats_;
  /// Persistent condition-program buffers, wired into every evaluation
  /// context so compiled conditions run without per-request allocation.
  CompiledEvalScratch compiled_scratch_;

  // Reusable selection scratch: selected_stamp_[i] == select_epoch_ marks
  // node i selected for the current request; bumping the epoch clears the
  // whole bitmap in O(1). children_ holds pointers into combinables_, so
  // selection copies nothing.
  std::vector<std::uint64_t> selected_stamp_;
  std::uint64_t select_epoch_ = 0;
  std::vector<const Combinable*> children_;
  /// True while combine() runs over children_. An AttributeResolver may
  /// re-enter this Pdp (resolver -> evaluate); the nested frame must not
  /// clobber the live scratch, so it takes a local-buffer fallback.
  bool in_evaluation_ = false;

  std::uint64_t evaluation_count_ = 0;
  std::uint64_t partition_probes_ = 0;

  /// Debug-build owner-thread check: claims this Pdp for the first
  /// evaluating thread, asserts on cross-thread use. Compiles to nothing
  /// under NDEBUG (the contract still holds — it just isn't checked).
  void debug_check_owner_thread() {
#ifndef NDEBUG
    // compare_exchange keeps the claim itself race-free, so the check
    // reports the contract violation instead of being part of one.
    std::thread::id unowned{};
    if (!owner_thread_.compare_exchange_strong(unowned, std::this_thread::get_id(),
                                               std::memory_order_relaxed) &&
        unowned != std::this_thread::get_id()) {
      assert(false &&
             "core::Pdp evaluated from a second thread: a Pdp instance is "
             "single-threaded (use one replica per thread - see "
             "mdac::runtime::DecisionEngine - or rebind_owner_thread() for a "
             "serialised hand-off)");
    }
#endif
  }
  /// Atomic so the *check itself* is race-free under TSan even while it
  /// is busy reporting a contract violation. Present in ALL build modes
  /// — only the check is NDEBUG-conditional — so the class layout never
  /// depends on NDEBUG (mixing debug and release TUs around one Pdp
  /// must not corrupt memory, which is the failure the check exists to
  /// prevent).
  std::atomic<std::thread::id> owner_thread_{};
};

}  // namespace mdac::core
