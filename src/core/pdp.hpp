// The Policy Decision Point (paper §2.2, component 2).
//
// Deterministic and self-contained: given a request, a policy store, a
// function registry and an optional attribute resolver, it produces one
// XACML decision. Everything distributed — transport, replication,
// caching, discovery — wraps *around* this class (mdac::net,
// mdac::dependability), which is the modularity requirement of §3.
//
// The optional target index answers the paper's scalability challenge:
// with thousands of policies a linear target scan dominates decision
// latency, so top-level policies with simple equality targets are indexed
// by (category, attribute, value) and only candidates are evaluated.
// Figure-4's bench measures the difference.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/combining.hpp"
#include "core/decision.hpp"
#include "core/evaluation.hpp"
#include "core/policy.hpp"

namespace mdac::core {

struct PdpConfig {
  /// Algorithm combining the store's top-level policies.
  std::string root_combining = "deny-overrides";
  bool use_target_index = true;
};

struct PdpResult {
  Decision decision;
  EvaluationMetrics metrics;
  /// Number of top-level policies the index ruled out before evaluation.
  std::size_t candidates_skipped = 0;
};

class Pdp {
 public:
  explicit Pdp(std::shared_ptr<PolicyStore> store, PdpConfig config = {});

  /// Optional PIP hook; not owned, must outlive the PDP.
  void set_resolver(AttributeResolver* resolver) { resolver_ = resolver; }

  /// Replaces the function registry (not owned; default: standard()).
  void set_functions(const FunctionRegistry* functions) { functions_ = functions; }

  const PolicyStore& store() const { return *store_; }
  PolicyStore& mutable_store() { return *store_; }
  std::shared_ptr<PolicyStore> shared_store() const { return store_; }

  Decision evaluate(const RequestContext& request);
  PdpResult evaluate_with_metrics(const RequestContext& request);

  std::uint64_t evaluation_count() const { return evaluation_count_; }
  const PdpConfig& config() const { return config_; }

 private:
  struct IndexEntry {
    Category category;
    std::string attribute_id;
    // literal string value -> positions (into store order) it admits
    std::map<std::string, std::vector<std::size_t>> by_value;
  };

  void rebuild_index_if_stale();
  std::vector<const PolicyTreeNode*> select_candidates(
      const RequestContext& request, std::size_t* skipped) const;

  std::shared_ptr<PolicyStore> store_;
  PdpConfig config_;
  AttributeResolver* resolver_ = nullptr;
  const FunctionRegistry* functions_;

  // Target index over top-level nodes (see header comment).
  std::vector<IndexEntry> index_entries_;
  std::vector<std::size_t> residual_;  // positions that are always candidates
  std::uint64_t indexed_revision_ = static_cast<std::uint64_t>(-1);
  std::vector<const PolicyTreeNode*> ordered_nodes_;

  std::uint64_t evaluation_count_ = 0;
};

}  // namespace mdac::core
