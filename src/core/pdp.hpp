// The Policy Decision Point (paper §2.2, component 2).
//
// Deterministic and self-contained: given a request, a policy store, a
// function registry and an optional attribute resolver, it produces one
// XACML decision. Everything distributed — transport, replication,
// caching, discovery — wraps *around* this class (mdac::net,
// mdac::dependability), which is the modularity requirement of §3.
//
// The optional target index answers the paper's scalability challenge:
// with thousands of policies a linear target scan dominates decision
// latency, so top-level policies with simple equality targets are indexed
// by (category, interned attribute symbol) with a hash table from literal
// value to admitted positions, and only candidates are evaluated.
// Candidate selection runs against reusable per-PDP scratch buffers
// (epoch-stamped selection marks, candidate and Combinable vectors), so
// steady-state evaluation performs no heap allocation of its own; the
// bench harness (bench/bench_main.cpp) tracks allocs/op per PR.
//
// Thread-safety contract: a Pdp instance is NOT thread-safe. The
// evaluate* methods mutate the target index, the scratch buffers and the
// evaluation counter without synchronisation. Run one Pdp per thread
// (mdac::dependability replicates instances for exactly this shape) or
// serialise access externally. The shared PolicyStore is only read, and
// its revision is re-checked before every evaluation; mutating the store
// *during* an evaluation is not supported from any thread — including
// from an AttributeResolver invoked by that evaluation: replacing a
// policy destroys the node the in-flight evaluation still references.
// A resolver may re-enter evaluate() (handled, see in_evaluation_), but
// must treat the store as read-only.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.hpp"
#include "common/strings.hpp"
#include "core/combining.hpp"
#include "core/decision.hpp"
#include "core/evaluation.hpp"
#include "core/policy.hpp"

namespace mdac::core {

struct PdpConfig {
  /// Algorithm combining the store's top-level policies.
  std::string root_combining = "deny-overrides";
  bool use_target_index = true;
};

struct PdpResult {
  Decision decision;
  EvaluationMetrics metrics;
  /// Number of top-level policies the index ruled out before evaluation.
  std::size_t candidates_skipped = 0;
};

class Pdp {
 public:
  explicit Pdp(std::shared_ptr<PolicyStore> store, PdpConfig config = {});

  /// Optional PIP hook; not owned, must outlive the PDP.
  void set_resolver(AttributeResolver* resolver) { resolver_ = resolver; }

  /// Replaces the function registry (not owned; default: standard()).
  void set_functions(const FunctionRegistry* functions) { functions_ = functions; }

  const PolicyStore& store() const { return *store_; }
  PolicyStore& mutable_store() { return *store_; }
  std::shared_ptr<PolicyStore> shared_store() const { return store_; }

  Decision evaluate(const RequestContext& request);
  PdpResult evaluate_with_metrics(const RequestContext& request);

  /// Evaluates many requests in order, checking index staleness once and
  /// reusing the scratch buffers across the whole batch. The store must
  /// not be mutated while the batch runs.
  std::vector<PdpResult> evaluate_batch(std::span<const RequestContext> requests);

  std::uint64_t evaluation_count() const { return evaluation_count_; }
  const PdpConfig& config() const { return config_; }

 private:
  struct IndexEntry {
    Category category;
    common::Symbol attribute_id;
    // literal string value -> positions (into store order) it admits;
    // heterogeneous lookup so probing with a request value never copies.
    std::unordered_map<std::string, std::vector<std::uint32_t>, common::StringHash,
                       std::equal_to<>>
        by_value;
  };

  /// Cheap inline staleness probe; the rebuild itself is out of line so
  /// the common already-fresh case costs two loads and a compare. Never
  /// rebuilds under an outer evaluation (re-entrant resolver frame): the
  /// live scratch references the current nodes, so a store change seen
  /// mid-evaluation takes effect on the next top-level evaluation.
  void rebuild_index_if_stale() {
    if (in_evaluation_) return;
    if (indexed_revision_ != store_->revision()) rebuild_index();
  }
  void rebuild_index();

  /// Fills `children_` (scratch) with the Combinables of the nodes whose
  /// targets might match; everything else is provably non-matching via
  /// the index.
  void select_candidates(const RequestContext& request, std::size_t* skipped);

  PdpResult evaluate_prepared(const RequestContext& request);

  std::shared_ptr<PolicyStore> store_;
  PdpConfig config_;
  AttributeResolver* resolver_ = nullptr;
  const FunctionRegistry* functions_;
  const CombiningAlgorithm* root_algorithm_ = nullptr;

  // Target index over top-level nodes (see header comment).
  std::vector<IndexEntry> index_entries_;
  std::vector<std::uint32_t> residual_;  // positions that are always candidates
  std::uint64_t indexed_revision_ = static_cast<std::uint64_t>(-1);
  std::vector<const PolicyTreeNode*> ordered_nodes_;
  std::vector<Combinable> combinables_;  // parallel to ordered_nodes_

  // Reusable selection scratch: selected_stamp_[i] == select_epoch_ marks
  // node i selected for the current request; bumping the epoch clears the
  // whole bitmap in O(1).
  std::vector<std::uint64_t> selected_stamp_;
  std::uint64_t select_epoch_ = 0;
  std::vector<Combinable> children_;
  /// True while combine() runs over children_. An AttributeResolver may
  /// re-enter this Pdp (resolver -> evaluate); the nested frame must not
  /// clobber the live scratch, so it takes a local-buffer fallback.
  bool in_evaluation_ = false;

  std::uint64_t evaluation_count_ = 0;
};

}  // namespace mdac::core
