// Rule- and policy-combining algorithms (paper §2.3).
//
// All six standard algorithms plus the two "unless" variants, with XACML
// 3.0 extended-indeterminate semantics. The paper singles combining out
// as *the* conflict-resolution mechanism when rules from multiple
// administrative authorities apply to one request (§3.1), so these
// semantics are implemented exactly and property-tested.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/decision.hpp"
#include "core/policy.hpp"

namespace mdac::core {

/// A child as seen by a combining algorithm: lazily matchable and
/// evaluable. Laziness lets first-applicable and the override algorithms
/// short-circuit, which the C4 bench quantifies.
struct Combinable {
  std::string id;
  std::function<MatchResult(EvaluationContext&)> match;
  std::function<Decision(EvaluationContext&)> evaluate;

  static Combinable of_rule(const Rule& rule);
  static Combinable of_node(const PolicyTreeNode& node);
};

class CombiningAlgorithm {
 public:
  virtual ~CombiningAlgorithm() = default;
  virtual const std::string& name() const = 0;

  /// Combines over *pointers* so callers that already own Combinables
  /// (the PDP's per-store cache, a policy's rule list) select children
  /// without copying them — a Combinable carries an id string and two
  /// std::functions, so a copy is at least one allocation for URN-length
  /// ids. Pointers must be non-null and outlive the call.
  virtual Decision combine(std::span<const Combinable* const> children,
                           EvaluationContext& ctx) const = 0;

  /// Convenience for callers holding a materialised vector: builds the
  /// pointer view and forwards. Not for hot paths (allocates the view).
  Decision combine(const std::vector<Combinable>& children,
                   EvaluationContext& ctx) const;
};

/// Registry of combining algorithms by id:
///   deny-overrides, permit-overrides, ordered-deny-overrides,
///   ordered-permit-overrides, first-applicable, only-one-applicable,
///   deny-unless-permit, permit-unless-deny.
class CombiningRegistry {
 public:
  static const CombiningRegistry& standard();

  const CombiningAlgorithm* find(std::string_view name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::unique_ptr<CombiningAlgorithm>, std::less<>> algorithms_;
};

}  // namespace mdac::core
