#include "core/serialization.hpp"

#include <algorithm>
#include <vector>

namespace mdac::core {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw SerializationError(message);
}

std::string require_attr(const xml::Element& e, const std::string& key) {
  if (auto v = e.attr(key)) return *v;
  fail("<" + e.name + "> missing attribute '" + key + "'");
}

DataType parse_data_type(const std::string& s) {
  if (auto t = data_type_from_string(s)) return *t;
  fail("unknown data type '" + s + "'");
}

Category parse_category(const std::string& s) {
  if (auto c = category_from_string(s)) return *c;
  fail("unknown category '" + s + "'");
}

AttributeValue parse_value(DataType type, const std::string& text) {
  if (auto v = AttributeValue::from_text(type, text)) return *v;
  fail("cannot parse '" + text + "' as " + to_string(type));
}

Effect parse_effect(const std::string& s) {
  if (s == "permit") return Effect::kPermit;
  if (s == "deny") return Effect::kDeny;
  fail("unknown effect '" + s + "'");
}

bool parse_bool_attr(const xml::Element& e, const std::string& key, bool fallback) {
  const auto v = e.attr(key);
  if (!v) return fallback;
  if (*v == "true") return true;
  if (*v == "false") return false;
  fail("<" + e.name + "> attribute '" + key + "' must be true/false");
}

xml::Element value_to_xml(const AttributeValue& v) {
  xml::Element e("Value");
  e.set_attr("DataType", to_string(v.type()));
  e.text = v.to_text();
  return e;
}

AttributeValue value_from_xml(const xml::Element& e) {
  const DataType type = parse_data_type(e.attr_or("DataType", "string"));
  return parse_value(type, e.text);
}

}  // namespace

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

xml::Element expr_to_xml(const Expression& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(expr);
      if (lit.bag().singleton()) return value_to_xml(lit.bag().at(0));
      xml::Element e("BagValue");
      for (const AttributeValue& v : lit.bag().values()) {
        e.add_child(value_to_xml(v));
      }
      return e;
    }
    case ExprKind::kDesignator: {
      const auto& d = static_cast<const DesignatorExpr&>(expr);
      xml::Element e("Designator");
      e.set_attr("Category", to_string(d.category()));
      e.set_attr("AttributeId", d.id());
      e.set_attr("DataType", to_string(d.data_type()));
      if (d.must_be_present()) e.set_attr("MustBePresent", "true");
      return e;
    }
    case ExprKind::kFunctionRef: {
      const auto& f = static_cast<const FunctionRefExpr&>(expr);
      xml::Element e("Function");
      e.set_attr("FunctionId", f.function_id());
      return e;
    }
    case ExprKind::kApply: {
      const auto& a = static_cast<const ApplyExpr&>(expr);
      xml::Element e("Apply");
      e.set_attr("FunctionId", a.function_id());
      for (const ExprPtr& arg : a.args()) {
        e.add_child(expr_to_xml(*arg));
      }
      return e;
    }
  }
  fail("unknown expression kind");
}

ExprPtr expr_from_xml(const xml::Element& element) {
  if (element.name == "Value") {
    return std::make_unique<LiteralExpr>(value_from_xml(element));
  }
  if (element.name == "BagValue") {
    Bag bag;
    for (const xml::Element& c : element.children) {
      if (c.name != "Value") fail("<BagValue> may only contain <Value>");
      bag.add(value_from_xml(c));
    }
    return std::make_unique<LiteralExpr>(std::move(bag));
  }
  if (element.name == "Designator") {
    return std::make_unique<DesignatorExpr>(
        parse_category(require_attr(element, "Category")),
        require_attr(element, "AttributeId"),
        parse_data_type(element.attr_or("DataType", "string")),
        parse_bool_attr(element, "MustBePresent", false));
  }
  if (element.name == "Function") {
    return std::make_unique<FunctionRefExpr>(require_attr(element, "FunctionId"));
  }
  if (element.name == "Apply") {
    std::vector<ExprPtr> args;
    args.reserve(element.children.size());
    for (const xml::Element& c : element.children) {
      args.push_back(expr_from_xml(c));
    }
    return std::make_unique<ApplyExpr>(require_attr(element, "FunctionId"),
                                       std::move(args));
  }
  fail("unknown expression element <" + element.name + ">");
}

// ---------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------

xml::Element target_to_xml(const Target& target) {
  xml::Element e("Target");
  for (const AnyOf& any : target.any_ofs) {
    xml::Element& any_el = e.add_child("AnyOf");
    for (const AllOf& all : any.all_ofs) {
      xml::Element& all_el = any_el.add_child("AllOf");
      for (const Match& m : all.matches) {
        xml::Element match_el("Match");
        match_el.set_attr("MatchId", m.function_id);
        match_el.set_attr("Category", to_string(m.category));
        match_el.set_attr("AttributeId", m.attribute_id);
        match_el.set_attr("DataType", to_string(m.data_type));
        if (m.must_be_present) match_el.set_attr("MustBePresent", "true");
        match_el.add_child(value_to_xml(m.literal));
        all_el.add_child(std::move(match_el));
      }
    }
  }
  return e;
}

Target target_from_xml(const xml::Element& element) {
  if (element.name != "Target") fail("expected <Target>, got <" + element.name + ">");
  Target target;
  for (const xml::Element* any_el : element.children_named("AnyOf")) {
    AnyOf any;
    for (const xml::Element* all_el : any_el->children_named("AllOf")) {
      AllOf all;
      for (const xml::Element* match_el : all_el->children_named("Match")) {
        Match m;
        m.function_id = match_el->attr_or("MatchId", "string-equal");
        m.category = parse_category(require_attr(*match_el, "Category"));
        m.attribute_id = require_attr(*match_el, "AttributeId");
        m.data_type = parse_data_type(match_el->attr_or("DataType", "string"));
        m.must_be_present = parse_bool_attr(*match_el, "MustBePresent", false);
        const xml::Element* value_el = match_el->child("Value");
        if (value_el == nullptr) fail("<Match> missing <Value>");
        m.literal = value_from_xml(*value_el);
        all.matches.push_back(std::move(m));
      }
      any.all_ofs.push_back(std::move(all));
    }
    target.any_ofs.push_back(std::move(any));
  }
  return target;
}

// ---------------------------------------------------------------------
// Obligations
// ---------------------------------------------------------------------

namespace {

xml::Element obligation_expr_to_xml(const ObligationExpr& ob) {
  xml::Element e(ob.advice ? "AdviceExpression" : "Obligation");
  e.set_attr("ObligationId", ob.id);
  e.set_attr("FulfillOn", to_string(ob.fulfill_on));
  for (const AttributeAssignmentExpr& a : ob.assignments) {
    xml::Element assign("Assignment");
    assign.set_attr("AttributeId", a.attribute_id);
    assign.add_child(expr_to_xml(*a.expr));
    e.add_child(std::move(assign));
  }
  return e;
}

ObligationExpr obligation_expr_from_xml(const xml::Element& element) {
  ObligationExpr ob;
  ob.advice = element.name == "AdviceExpression";
  ob.id = require_attr(element, "ObligationId");
  ob.fulfill_on = parse_effect(element.attr_or("FulfillOn", "permit"));
  for (const xml::Element* assign : element.children_named("Assignment")) {
    if (assign->children.size() != 1) {
      fail("<Assignment> must contain exactly one expression");
    }
    AttributeAssignmentExpr a;
    a.attribute_id = require_attr(*assign, "AttributeId");
    a.expr = expr_from_xml(assign->children[0]);
    ob.assignments.push_back(std::move(a));
  }
  return ob;
}

void read_obligations(const xml::Element& element, std::vector<ObligationExpr>* out) {
  for (const xml::Element* ob : element.children_named("Obligation")) {
    out->push_back(obligation_expr_from_xml(*ob));
  }
  for (const xml::Element* ob : element.children_named("AdviceExpression")) {
    out->push_back(obligation_expr_from_xml(*ob));
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Rules, policies, policy sets
// ---------------------------------------------------------------------

xml::Element rule_to_xml(const Rule& rule) {
  xml::Element e("Rule");
  e.set_attr("RuleId", rule.id);
  e.set_attr("Effect", to_string(rule.effect));
  if (!rule.description.empty()) {
    e.add_child("Description").text = rule.description;
  }
  if (rule.target.has_value() && !rule.target->empty()) {
    e.add_child(target_to_xml(*rule.target));
  }
  if (rule.condition) {
    e.add_child("Condition").add_child(expr_to_xml(*rule.condition));
  }
  for (const ObligationExpr& ob : rule.obligations) {
    e.add_child(obligation_expr_to_xml(ob));
  }
  return e;
}

Rule rule_from_xml(const xml::Element& element) {
  if (element.name != "Rule") fail("expected <Rule>, got <" + element.name + ">");
  Rule rule;
  rule.id = require_attr(element, "RuleId");
  rule.effect = parse_effect(require_attr(element, "Effect"));
  if (const xml::Element* d = element.child("Description")) {
    rule.description = d->text;
  }
  if (const xml::Element* t = element.child("Target")) {
    rule.target = target_from_xml(*t);
  }
  if (const xml::Element* c = element.child("Condition")) {
    if (c->children.size() != 1) fail("<Condition> must contain one expression");
    rule.condition = expr_from_xml(c->children[0]);
  }
  read_obligations(element, &rule.obligations);
  return rule;
}

xml::Element policy_to_xml(const Policy& policy) {
  xml::Element e("Policy");
  e.set_attr("PolicyId", policy.policy_id);
  e.set_attr("Version", policy.version);
  e.set_attr("CombiningAlg", policy.rule_combining);
  if (!policy.issuer.empty()) e.set_attr("Issuer", policy.issuer);
  if (!policy.description.empty()) {
    e.add_child("Description").text = policy.description;
  }
  e.add_child(target_to_xml(policy.target_spec));
  for (const Rule& r : policy.rules) e.add_child(rule_to_xml(r));
  for (const ObligationExpr& ob : policy.obligations) {
    e.add_child(obligation_expr_to_xml(ob));
  }
  return e;
}

Policy policy_from_xml(const xml::Element& element) {
  if (element.name != "Policy") fail("expected <Policy>, got <" + element.name + ">");
  Policy policy;
  policy.policy_id = require_attr(element, "PolicyId");
  policy.version = element.attr_or("Version", "1");
  policy.rule_combining = element.attr_or("CombiningAlg", "deny-overrides");
  policy.issuer = element.attr_or("Issuer", "");
  if (const xml::Element* d = element.child("Description")) {
    policy.description = d->text;
  }
  if (const xml::Element* t = element.child("Target")) {
    policy.target_spec = target_from_xml(*t);
  }
  for (const xml::Element* r : element.children_named("Rule")) {
    policy.rules.push_back(rule_from_xml(*r));
  }
  read_obligations(element, &policy.obligations);
  return policy;
}

xml::Element policy_set_to_xml(const PolicySet& policy_set) {
  xml::Element e("PolicySet");
  e.set_attr("PolicySetId", policy_set.policy_set_id);
  e.set_attr("Version", policy_set.version);
  e.set_attr("CombiningAlg", policy_set.policy_combining);
  if (!policy_set.issuer.empty()) e.set_attr("Issuer", policy_set.issuer);
  if (!policy_set.description.empty()) {
    e.add_child("Description").text = policy_set.description;
  }
  e.add_child(target_to_xml(policy_set.target_spec));
  for (const PolicyNodePtr& child : policy_set.children()) {
    e.add_child(node_to_xml(*child));
  }
  for (const ObligationExpr& ob : policy_set.obligations) {
    e.add_child(obligation_expr_to_xml(ob));
  }
  return e;
}

PolicySet policy_set_from_xml(const xml::Element& element) {
  if (element.name != "PolicySet") {
    fail("expected <PolicySet>, got <" + element.name + ">");
  }
  PolicySet ps;
  ps.policy_set_id = require_attr(element, "PolicySetId");
  ps.version = element.attr_or("Version", "1");
  ps.policy_combining = element.attr_or("CombiningAlg", "deny-overrides");
  ps.issuer = element.attr_or("Issuer", "");
  if (const xml::Element* d = element.child("Description")) {
    ps.description = d->text;
  }
  if (const xml::Element* t = element.child("Target")) {
    ps.target_spec = target_from_xml(*t);
  }
  for (const xml::Element& c : element.children) {
    if (c.name == "Policy" || c.name == "PolicySet" || c.name == "PolicyReference") {
      ps.add_node(node_from_xml(c));
    }
  }
  read_obligations(element, &ps.obligations);
  return ps;
}

xml::Element node_to_xml(const PolicyTreeNode& node) {
  if (const auto* p = dynamic_cast<const Policy*>(&node)) {
    return policy_to_xml(*p);
  }
  if (const auto* ps = dynamic_cast<const PolicySet*>(&node)) {
    return policy_set_to_xml(*ps);
  }
  // PolicyReference
  xml::Element e("PolicyReference");
  e.text = node.id();
  return e;
}

PolicyNodePtr node_from_xml(const xml::Element& element) {
  if (element.name == "Policy") {
    return std::make_unique<Policy>(policy_from_xml(element));
  }
  if (element.name == "PolicySet") {
    return std::make_unique<PolicySet>(policy_set_from_xml(element));
  }
  if (element.name == "PolicyReference") {
    if (element.text.empty()) fail("<PolicyReference> missing referenced id");
    return std::make_unique<PolicyReference>(element.text);
  }
  fail("unknown policy node <" + element.name + ">");
}

// ---------------------------------------------------------------------
// Request / response contexts
// ---------------------------------------------------------------------

xml::Element request_to_xml(const RequestContext& request) {
  xml::Element e("Request");
  // Wire-stable (category, attribute-name) order — see entries_by_name().
  Category current{};
  xml::Element* group = nullptr;
  for (const RequestContext::Entry* entry_ptr : request.entries_by_name()) {
    const RequestContext::Entry& entry = *entry_ptr;
    const Category category = entry.category;
    const std::string& id = entry.name();
    const Bag& bag = entry.bag;
    if (group == nullptr || category != current) {
      group = &e.add_child("Attributes");
      group->set_attr("Category", to_string(category));
      current = category;
    }
    xml::Element attr("Attribute");
    attr.set_attr("AttributeId", id);
    for (const AttributeValue& v : bag.values()) {
      attr.add_child(value_to_xml(v));
    }
    group->add_child(std::move(attr));
  }
  return e;
}

RequestContext request_from_xml(const xml::Element& element) {
  if (element.name != "Request") fail("expected <Request>");
  RequestContext request;
  for (const xml::Element* group : element.children_named("Attributes")) {
    const Category category = parse_category(require_attr(*group, "Category"));
    for (const xml::Element* attr : group->children_named("Attribute")) {
      const std::string id = require_attr(*attr, "AttributeId");
      for (const xml::Element* value : attr->children_named("Value")) {
        request.add(category, id, value_from_xml(*value));
      }
    }
  }
  return request;
}

namespace {

xml::Element obligation_instance_to_xml(const ObligationInstance& ob) {
  xml::Element e("Obligation");
  e.set_attr("ObligationId", ob.id);
  for (const auto& [id, value] : ob.assignments) {
    xml::Element assign("Assignment");
    assign.set_attr("AttributeId", id);
    assign.set_attr("DataType", to_string(value.type()));
    assign.text = value.to_text();
    e.add_child(std::move(assign));
  }
  return e;
}

ObligationInstance obligation_instance_from_xml(const xml::Element& element) {
  ObligationInstance ob;
  ob.id = require_attr(element, "ObligationId");
  for (const xml::Element* assign : element.children_named("Assignment")) {
    const DataType type = parse_data_type(assign->attr_or("DataType", "string"));
    ob.assignments.emplace_back(require_attr(*assign, "AttributeId"),
                                parse_value(type, assign->text));
  }
  return ob;
}

}  // namespace

xml::Element decision_to_xml(const Decision& decision) {
  xml::Element e("Response");
  xml::Element& result = e.add_child("Result");
  result.set_attr("Decision", to_string(decision.type));
  if (decision.extent != IndeterminateExtent::kNone) {
    result.set_attr("Extent", to_string(decision.extent));
  }
  xml::Element& status = result.add_child("Status");
  status.set_attr("Code", to_string(decision.status.code));
  status.text = decision.status.message;
  if (!decision.obligations.empty()) {
    xml::Element& obs = result.add_child("Obligations");
    for (const ObligationInstance& ob : decision.obligations) {
      obs.add_child(obligation_instance_to_xml(ob));
    }
  }
  if (!decision.advice.empty()) {
    xml::Element& adv = result.add_child("Advice");
    for (const ObligationInstance& ob : decision.advice) {
      adv.add_child(obligation_instance_to_xml(ob));
    }
  }
  return e;
}

Decision decision_from_xml(const xml::Element& element) {
  const xml::Element* result =
      element.name == "Result" ? &element : element.child("Result");
  if (result == nullptr) fail("expected <Response> with <Result>");

  Decision d;
  const std::string decision_text = require_attr(*result, "Decision");
  if (decision_text == "permit") {
    d.type = DecisionType::kPermit;
  } else if (decision_text == "deny") {
    d.type = DecisionType::kDeny;
  } else if (decision_text == "not-applicable") {
    d.type = DecisionType::kNotApplicable;
  } else if (decision_text == "indeterminate") {
    d.type = DecisionType::kIndeterminate;
  } else {
    fail("unknown decision '" + decision_text + "'");
  }
  const std::string extent = result->attr_or("Extent", "");
  if (extent == "D") {
    d.extent = IndeterminateExtent::kD;
  } else if (extent == "P") {
    d.extent = IndeterminateExtent::kP;
  } else if (extent == "DP") {
    d.extent = IndeterminateExtent::kDP;
  }
  if (const xml::Element* status = result->child("Status")) {
    const std::string code = status->attr_or("Code", "ok");
    if (code == "ok") {
      d.status.code = StatusCode::kOk;
    } else if (code == "missing-attribute") {
      d.status.code = StatusCode::kMissingAttribute;
    } else if (code == "syntax-error") {
      d.status.code = StatusCode::kSyntaxError;
    } else if (code == "processing-error") {
      d.status.code = StatusCode::kProcessingError;
    } else {
      fail("unknown status code '" + code + "'");
    }
    d.status.message = status->text;
  }
  if (const xml::Element* obs = result->child("Obligations")) {
    for (const xml::Element* ob : obs->children_named("Obligation")) {
      d.obligations.push_back(obligation_instance_from_xml(*ob));
    }
  }
  if (const xml::Element* adv = result->child("Advice")) {
    for (const xml::Element* ob : adv->children_named("Obligation")) {
      d.advice.push_back(obligation_instance_from_xml(*ob));
    }
  }
  return d;
}

// ---------------------------------------------------------------------
// String round-trips
// ---------------------------------------------------------------------

std::string node_to_string(const PolicyTreeNode& node, bool pretty) {
  return xml::to_string(node_to_xml(node), pretty);
}

PolicyNodePtr node_from_string(const std::string& text) {
  return node_from_xml(xml::parse(text));
}

std::string request_to_string(const RequestContext& request, bool pretty) {
  return xml::to_string(request_to_xml(request), pretty);
}

RequestContext request_from_string(const std::string& text) {
  return request_from_xml(xml::parse(text));
}

std::string decision_to_string(const Decision& decision, bool pretty) {
  return xml::to_string(decision_to_xml(decision), pretty);
}

Decision decision_from_string(const std::string& text) {
  return decision_from_xml(xml::parse(text));
}

}  // namespace mdac::core
