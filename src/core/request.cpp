#include "core/request.hpp"

#include <algorithm>
#include <utility>

namespace mdac::core {

namespace {

/// Strict weak order over entries: category first, then interned name.
bool entry_before(const RequestContext::Entry& e, Category category,
                  common::Symbol id) {
  if (e.category != category) return e.category < category;
  return e.id < id;
}

/// The one binary-search probe shared by lookups and inserts: returns the
/// position (category, id) occupies or would occupy.
template <typename Entries>
auto probe(Entries& entries, Category category, common::Symbol id) {
  return std::lower_bound(
      entries.begin(), entries.end(), std::make_pair(category, id),
      [](const auto& e, const std::pair<Category, common::Symbol>& key) {
        return entry_before(e, key.first, key.second);
      });
}

}  // namespace

namespace {

/// Strict weak order over side entries: category first, then name.
bool side_before(const RequestContext::Entry& e, Category category,
                 std::string_view name) {
  if (e.category != category) return e.category < category;
  return e.uninterned_name < name;
}

}  // namespace

RequestContext::Entry& RequestContext::entry_for(Category category,
                                                 common::Symbol id) {
  const auto it = probe(entries_, category, id);
  if (it != entries_.end() && it->category == category && it->id == id) return *it;
  return *entries_.insert(it, Entry{category, id, Bag(), {}});
}

RequestContext::Entry& RequestContext::side_entry_for(Category category,
                                                      const std::string& name) {
  const auto it = std::lower_bound(
      side_.begin(), side_.end(), name,
      [category](const Entry& e, const std::string& n) {
        return side_before(e, category, n);
      });
  if (it != side_.end() && it->category == category && it->uninterned_name == name) {
    return *it;
  }
  return *side_.insert(it, Entry{category, kUninterned, Bag(), name});
}

const Bag* RequestContext::side_get(Category category, std::string_view name) const {
  const auto it = std::lower_bound(
      side_.begin(), side_.end(), name,
      [category](const Entry& e, std::string_view n) {
        return side_before(e, category, n);
      });
  if (it == side_.end() || it->category != category || it->uninterned_name != name) {
    return nullptr;
  }
  return &it->bag;
}

void RequestContext::absorb_side_entry(Category category, std::string_view name,
                                       Entry& into, bool keep_values) {
  const auto it = std::lower_bound(
      side_.begin(), side_.end(), name,
      [category](const Entry& e, std::string_view n) {
        return side_before(e, category, n);
      });
  if (it == side_.end() || it->category != category || it->uninterned_name != name) {
    return;
  }
  if (keep_values) {
    for (const AttributeValue& v : it->bag.values()) into.bag.add(v);
  }
  side_.erase(it);
}

void RequestContext::add(Category category, const std::string& id,
                         AttributeValue value) {
  // Never intern here: this is the wire-facing entry point, and interning
  // is permanent. Unknown names ride the per-request side table instead
  // (see the header comment on the interner boundary).
  if (const auto sym = common::interner().find(id)) {
    Entry& entry = entry_for(category, *sym);
    // The name may have been interned after an earlier add() parked it in
    // the side table; fold that entry in so one attribute stays one bag.
    if (!side_.empty()) absorb_side_entry(category, id, entry, /*keep_values=*/true);
    entry.bag.add(std::move(value));
  } else {
    side_entry_for(category, id).bag.add(std::move(value));
  }
}

void RequestContext::add(Category category, common::Symbol id, AttributeValue value) {
  Entry& entry = entry_for(category, id);
  if (!side_.empty()) {
    absorb_side_entry(category, common::interner().name(id), entry,
                      /*keep_values=*/true);
  }
  entry.bag.add(std::move(value));
}

void RequestContext::set(Category category, const std::string& id, Bag bag) {
  if (const auto sym = common::interner().find(id)) {
    Entry& entry = entry_for(category, *sym);
    if (!side_.empty()) absorb_side_entry(category, id, entry, /*keep_values=*/false);
    entry.bag = std::move(bag);
  } else {
    side_entry_for(category, id).bag = std::move(bag);
  }
}

const Bag* RequestContext::get(Category category, common::Symbol id) const {
  const auto it = probe(entries_, category, id);
  if (it != entries_.end() && it->category == category && it->id == id) {
    return &it->bag;
  }
  // Miss-means-absent fast path: with no side entries (every name in the
  // request was known when it was built — the steady state), a symbol
  // probe miss is definitive. Otherwise the name may have been interned
  // *after* this request was parsed, so compare against the side names.
  if (side_.empty()) return nullptr;
  return side_get(category, common::interner().name(id));
}

const Bag* RequestContext::get(Category category, const std::string& id) const {
  // find() never inserts; an id nobody interned cannot be in entries_,
  // but it can sit in the side table.
  if (const auto sym = common::interner().find(id)) {
    const auto it = probe(entries_, category, *sym);
    if (it != entries_.end() && it->category == category && it->id == *sym) {
      return &it->bag;
    }
  }
  if (side_.empty()) return nullptr;
  return side_get(category, id);
}

std::vector<const RequestContext::Entry*> RequestContext::entries_by_name() const {
  // Resolve each name once (each name() call takes the interner's shared
  // lock; resolving inside the sort comparator would take it 2*n*log(n)
  // times). The references stay valid for the interner's lifetime.
  std::vector<std::pair<const std::string*, const Entry*>> named;
  named.reserve(entries_.size() + side_.size());
  for (const Entry& entry : entries_) named.emplace_back(&entry.name(), &entry);
  for (const Entry& entry : side_) named.emplace_back(&entry.uninterned_name, &entry);
  std::sort(named.begin(), named.end(), [](const auto& a, const auto& b) {
    if (a.second->category != b.second->category) {
      return a.second->category < b.second->category;
    }
    return *a.first < *b.first;
  });
  std::vector<const Entry*> out;
  out.reserve(named.size());
  for (const auto& [name, entry] : named) out.push_back(entry);
  return out;
}

RequestContext RequestContext::make(const std::string& subject_id,
                                    const std::string& resource_id,
                                    const std::string& action_id) {
  const attrs::Symbols& syms = attrs::Symbols::get();
  RequestContext ctx;
  ctx.add(Category::kSubject, syms.subject_id, AttributeValue(subject_id));
  ctx.add(Category::kResource, syms.resource_id, AttributeValue(resource_id));
  ctx.add(Category::kAction, syms.action_id, AttributeValue(action_id));
  return ctx;
}

RequestBuilder& RequestBuilder::subject(const std::string& id) {
  ctx_.add(Category::kSubject, attrs::Symbols::get().subject_id, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::subject_attr(const std::string& attr_id,
                                             AttributeValue v) {
  ctx_.add(Category::kSubject, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::resource(const std::string& id) {
  ctx_.add(Category::kResource, attrs::Symbols::get().resource_id, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::resource_attr(const std::string& attr_id,
                                              AttributeValue v) {
  ctx_.add(Category::kResource, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::action(const std::string& id) {
  ctx_.add(Category::kAction, attrs::Symbols::get().action_id, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::action_attr(const std::string& attr_id,
                                            AttributeValue v) {
  ctx_.add(Category::kAction, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::environment_attr(const std::string& attr_id,
                                                 AttributeValue v) {
  ctx_.add(Category::kEnvironment, attr_id, std::move(v));
  return *this;
}

}  // namespace mdac::core
