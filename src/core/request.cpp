#include "core/request.hpp"

#include <algorithm>
#include <utility>

namespace mdac::core {

namespace {

/// Strict weak order over entries: category first, then interned name.
bool entry_before(const RequestContext::Entry& e, Category category,
                  common::Symbol id) {
  if (e.category != category) return e.category < category;
  return e.id < id;
}

/// The one binary-search probe shared by lookups and inserts: returns the
/// position (category, id) occupies or would occupy.
template <typename Entries>
auto probe(Entries& entries, Category category, common::Symbol id) {
  return std::lower_bound(
      entries.begin(), entries.end(), std::make_pair(category, id),
      [](const auto& e, const std::pair<Category, common::Symbol>& key) {
        return entry_before(e, key.first, key.second);
      });
}

}  // namespace

RequestContext::Entry& RequestContext::entry_for(Category category,
                                                 common::Symbol id) {
  const auto it = probe(entries_, category, id);
  if (it != entries_.end() && it->category == category && it->id == id) return *it;
  return *entries_.insert(it, Entry{category, id, Bag()});
}

void RequestContext::add(Category category, const std::string& id,
                         AttributeValue value) {
  entry_for(category, common::interner().intern(id)).bag.add(std::move(value));
}

void RequestContext::add(Category category, common::Symbol id, AttributeValue value) {
  entry_for(category, id).bag.add(std::move(value));
}

void RequestContext::set(Category category, const std::string& id, Bag bag) {
  entry_for(category, common::interner().intern(id)).bag = std::move(bag);
}

const Bag* RequestContext::get(Category category, common::Symbol id) const {
  const auto it = probe(entries_, category, id);
  if (it == entries_.end() || it->category != category || it->id != id) return nullptr;
  return &it->bag;
}

const Bag* RequestContext::get(Category category, const std::string& id) const {
  // find() never inserts: an id nobody interned cannot be in any request.
  const auto sym = common::interner().find(id);
  if (!sym) return nullptr;
  return get(category, *sym);
}

std::vector<const RequestContext::Entry*> RequestContext::entries_by_name() const {
  // Resolve each name once (each name() call takes the interner's shared
  // lock; resolving inside the sort comparator would take it 2*n*log(n)
  // times). The references stay valid for the interner's lifetime.
  std::vector<std::pair<const std::string*, const Entry*>> named;
  named.reserve(entries_.size());
  for (const Entry& entry : entries_) named.emplace_back(&entry.name(), &entry);
  std::sort(named.begin(), named.end(), [](const auto& a, const auto& b) {
    if (a.second->category != b.second->category) {
      return a.second->category < b.second->category;
    }
    return *a.first < *b.first;
  });
  std::vector<const Entry*> out;
  out.reserve(named.size());
  for (const auto& [name, entry] : named) out.push_back(entry);
  return out;
}

RequestContext RequestContext::make(const std::string& subject_id,
                                    const std::string& resource_id,
                                    const std::string& action_id) {
  const attrs::Symbols& syms = attrs::Symbols::get();
  RequestContext ctx;
  ctx.add(Category::kSubject, syms.subject_id, AttributeValue(subject_id));
  ctx.add(Category::kResource, syms.resource_id, AttributeValue(resource_id));
  ctx.add(Category::kAction, syms.action_id, AttributeValue(action_id));
  return ctx;
}

RequestBuilder& RequestBuilder::subject(const std::string& id) {
  ctx_.add(Category::kSubject, attrs::Symbols::get().subject_id, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::subject_attr(const std::string& attr_id,
                                             AttributeValue v) {
  ctx_.add(Category::kSubject, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::resource(const std::string& id) {
  ctx_.add(Category::kResource, attrs::Symbols::get().resource_id, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::resource_attr(const std::string& attr_id,
                                              AttributeValue v) {
  ctx_.add(Category::kResource, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::action(const std::string& id) {
  ctx_.add(Category::kAction, attrs::Symbols::get().action_id, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::action_attr(const std::string& attr_id,
                                            AttributeValue v) {
  ctx_.add(Category::kAction, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::environment_attr(const std::string& attr_id,
                                                 AttributeValue v) {
  ctx_.add(Category::kEnvironment, attr_id, std::move(v));
  return *this;
}

}  // namespace mdac::core
