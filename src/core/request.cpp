#include "core/request.hpp"

namespace mdac::core {

void RequestContext::add(Category category, const std::string& id,
                         AttributeValue value) {
  attributes_[{category, id}].add(std::move(value));
}

void RequestContext::set(Category category, const std::string& id, Bag bag) {
  attributes_[{category, id}] = std::move(bag);
}

const Bag* RequestContext::get(Category category, const std::string& id) const {
  const auto it = attributes_.find({category, id});
  if (it == attributes_.end()) return nullptr;
  return &it->second;
}

RequestContext RequestContext::make(const std::string& subject_id,
                                    const std::string& resource_id,
                                    const std::string& action_id) {
  RequestContext ctx;
  ctx.add(Category::kSubject, attrs::kSubjectId, AttributeValue(subject_id));
  ctx.add(Category::kResource, attrs::kResourceId, AttributeValue(resource_id));
  ctx.add(Category::kAction, attrs::kActionId, AttributeValue(action_id));
  return ctx;
}

RequestBuilder& RequestBuilder::subject(const std::string& id) {
  ctx_.add(Category::kSubject, attrs::kSubjectId, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::subject_attr(const std::string& attr_id,
                                             AttributeValue v) {
  ctx_.add(Category::kSubject, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::resource(const std::string& id) {
  ctx_.add(Category::kResource, attrs::kResourceId, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::resource_attr(const std::string& attr_id,
                                              AttributeValue v) {
  ctx_.add(Category::kResource, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::action(const std::string& id) {
  ctx_.add(Category::kAction, attrs::kActionId, AttributeValue(id));
  return *this;
}

RequestBuilder& RequestBuilder::action_attr(const std::string& attr_id,
                                            AttributeValue v) {
  ctx_.add(Category::kAction, attr_id, std::move(v));
  return *this;
}

RequestBuilder& RequestBuilder::environment_attr(const std::string& attr_id,
                                                 AttributeValue v) {
  ctx_.add(Category::kEnvironment, attr_id, std::move(v));
  return *this;
}

}  // namespace mdac::core
