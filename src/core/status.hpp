// Evaluation status. Mirrors XACML's status codes: evaluation failures are
// data, not exceptions — a PDP must keep answering under partial failure
// (missing attributes, broken policies), which is the "dependable" part
// of the paper's title at the decision-engine level.
#pragma once

#include <string>
#include <utility>

namespace mdac::core {

enum class StatusCode {
  kOk,
  kMissingAttribute,
  kSyntaxError,
  kProcessingError,
};

inline const char* to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kMissingAttribute: return "missing-attribute";
    case StatusCode::kSyntaxError: return "syntax-error";
    case StatusCode::kProcessingError: return "processing-error";
  }
  return "?";
}

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }

  static Status okay() { return {}; }
  static Status missing_attribute(std::string m) {
    return {StatusCode::kMissingAttribute, std::move(m)};
  }
  static Status syntax_error(std::string m) {
    return {StatusCode::kSyntaxError, std::move(m)};
  }
  static Status processing_error(std::string m) {
    return {StatusCode::kProcessingError, std::move(m)};
  }

  bool operator==(const Status&) const = default;
};

}  // namespace mdac::core
