// Static policy validation ("lint"): the correctness / governance /
// compliance checks the paper says externalised policies enable (§2.2:
// "This facilitates audits and checks of security policies for the
// purposes of correctness, governance and compliance").
//
// Catches, before deployment: unknown combining algorithms, unknown or
// mis-aried functions, non-boolean top-level conditions that can be
// detected structurally, duplicate rule/child ids, empty policies,
// unresolvable policy references, and suspicious constructs (a Match
// whose literal type disagrees with its designator type can never match).
#pragma once

#include <string>
#include <vector>

#include "core/policy.hpp"

namespace mdac::core {

enum class FindingSeverity { kError, kWarning };

struct ValidationFinding {
  FindingSeverity severity = FindingSeverity::kError;
  std::string path;     // e.g. "policy-1/rule-3/condition"
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationFinding> findings;

  bool ok() const {
    for (const ValidationFinding& f : findings) {
      if (f.severity == FindingSeverity::kError) return false;
    }
    return true;
  }
  std::size_t error_count() const;
  std::size_t warning_count() const;
};

/// Validates one node. `store` (optional) resolves policy references.
ValidationReport validate(const PolicyTreeNode& node,
                          const PolicyStore* store = nullptr);

/// Validates every top-level node of a store (references resolved
/// against the same store).
ValidationReport validate_store(const PolicyStore& store);

}  // namespace mdac::core
