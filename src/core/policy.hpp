// The policy tree: targets, rules, policies, policy sets and references.
//
// Follows the XACML 3.0 structure the paper presents in §2.3: a PolicySet
// combines Policies (and nested PolicySets) under a policy-combining
// algorithm; a Policy combines Rules under a rule-combining algorithm;
// Targets gate applicability; Conditions refine rules; Obligations ride
// along with decisions. Policies carry an `issuer` so the delegation
// module can run chain reduction over non-root-issued policy.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/decision.hpp"
#include "core/expression.hpp"

namespace mdac::core {

class CompiledPolicyTree;
struct FunctionDef;

enum class MatchResult { kMatch, kNoMatch, kIndeterminate };

/// One Match: applies `function_id(literal, candidate)` over the request's
/// candidate values for (category, attribute_id).
struct Match {
  std::string function_id = "string-equal";
  AttributeValue literal;
  Category category = Category::kSubject;
  std::string attribute_id;
  DataType data_type = DataType::kString;
  bool must_be_present = false;

  MatchResult evaluate(EvaluationContext& ctx) const;
};

/// Conjunction of matches.
struct AllOf {
  std::vector<Match> matches;
  MatchResult evaluate(EvaluationContext& ctx) const;
};

/// Disjunction of AllOf groups.
struct AnyOf {
  std::vector<AllOf> all_ofs;
  MatchResult evaluate(EvaluationContext& ctx) const;
};

/// Conjunction of AnyOf groups; an empty target matches every request.
struct Target {
  std::vector<AnyOf> any_ofs;

  bool empty() const { return any_ofs.empty(); }
  MatchResult evaluate(EvaluationContext& ctx) const;

  // -- builder helpers -------------------------------------------------
  /// Adds a single-match conjunct: target AND (attr == value).
  Target& require(Category c, const std::string& attribute_id, AttributeValue value,
                  const std::string& function_id = "string-equal");
  /// Adds a disjunctive conjunct: target AND (attr == v1 OR attr == v2 ...).
  Target& require_any(Category c, const std::string& attribute_id,
                      const std::vector<AttributeValue>& values,
                      const std::string& function_id = "string-equal");
};

/// An obligation (or advice) template inside a rule/policy/policy set.
struct AttributeAssignmentExpr {
  std::string attribute_id;
  ExprPtr expr;

  AttributeAssignmentExpr clone() const;
};

struct ObligationExpr {
  std::string id;
  Effect fulfill_on = Effect::kPermit;
  bool advice = false;  // advice = non-binding obligation
  std::vector<AttributeAssignmentExpr> assignments;

  ObligationExpr clone() const;

  /// Evaluates assignments; returns error status if any assignment fails.
  Status instantiate(EvaluationContext& ctx, ObligationInstance* out) const;
};

/// Appends instances of all obligation expressions matching `decision`'s
/// effect. On evaluation failure, converts the decision to Indeterminate
/// (per XACML: a decision whose obligations cannot be computed must not
/// be enforced).
void attach_obligations(const std::vector<ObligationExpr>& obligations,
                        EvaluationContext& ctx, Decision* decision);

class Rule {
 public:
  std::string id;
  std::string description;
  Effect effect = Effect::kPermit;
  std::optional<Target> target;  // absent = always applicable
  ExprPtr condition;             // null = always true
  std::vector<ObligationExpr> obligations;

  Decision evaluate(EvaluationContext& ctx) const;
  MatchResult match(EvaluationContext& ctx) const;
  Rule clone() const;
};

/// Base of the policy hierarchy: Policy, PolicySet, PolicyReference.
class PolicyTreeNode {
 public:
  virtual ~PolicyTreeNode() = default;
  virtual const std::string& id() const = 0;
  virtual MatchResult match(EvaluationContext& ctx) const = 0;
  virtual Decision evaluate(EvaluationContext& ctx) const = 0;
  virtual std::unique_ptr<PolicyTreeNode> clone_node() const = 0;
  /// The target, for static analysis (conflict detection, indexing).
  virtual const Target* target() const = 0;
};

using PolicyNodePtr = std::unique_ptr<PolicyTreeNode>;

class Policy final : public PolicyTreeNode {
 public:
  std::string policy_id;
  std::string version = "1";
  std::string description;
  std::string issuer;  // empty = trusted root issuer
  Target target_spec;
  std::string rule_combining = "deny-overrides";
  std::vector<Rule> rules;
  std::vector<ObligationExpr> obligations;

  const std::string& id() const override { return policy_id; }
  MatchResult match(EvaluationContext& ctx) const override;
  Decision evaluate(EvaluationContext& ctx) const override;
  PolicyNodePtr clone_node() const override;
  const Target* target() const override { return &target_spec; }

  Policy clone() const;
};

/// Reference to a policy (set) stored in the evaluation context's store.
class PolicyReference final : public PolicyTreeNode {
 public:
  explicit PolicyReference(std::string ref_id) : ref_id_(std::move(ref_id)) {}

  const std::string& id() const override { return ref_id_; }
  MatchResult match(EvaluationContext& ctx) const override;
  Decision evaluate(EvaluationContext& ctx) const override;
  PolicyNodePtr clone_node() const override {
    return std::make_unique<PolicyReference>(ref_id_);
  }
  const Target* target() const override { return nullptr; }

 private:
  const PolicyTreeNode* resolve(EvaluationContext& ctx) const;
  std::string ref_id_;
};

class PolicySet final : public PolicyTreeNode {
 public:
  std::string policy_set_id;
  std::string version = "1";
  std::string description;
  std::string issuer;
  Target target_spec;
  std::string policy_combining = "deny-overrides";
  std::vector<ObligationExpr> obligations;

  PolicySet() = default;
  PolicySet(PolicySet&&) = default;
  PolicySet& operator=(PolicySet&&) = default;

  void add(Policy p) { children_.push_back(std::make_unique<Policy>(std::move(p))); }
  void add(PolicySet ps) {
    children_.push_back(std::make_unique<PolicySet>(std::move(ps)));
  }
  void add_reference(std::string ref_id) {
    children_.push_back(std::make_unique<PolicyReference>(std::move(ref_id)));
  }
  void add_node(PolicyNodePtr node) { children_.push_back(std::move(node)); }

  const std::vector<PolicyNodePtr>& children() const { return children_; }

  const std::string& id() const override { return policy_set_id; }
  MatchResult match(EvaluationContext& ctx) const override;
  Decision evaluate(EvaluationContext& ctx) const override;
  PolicyNodePtr clone_node() const override;
  const Target* target() const override { return &target_spec; }

  PolicySet clone() const;

 private:
  std::vector<PolicyNodePtr> children_;
};

/// Id-indexed store of policy trees — the PDP's working set, fed by the
/// PAP (retrieval seam for policy references, §2.2).
class PolicyStore {
 public:
  /// Adds a top-level node; replaces any previous node with the same id.
  /// `compiled` optionally attaches the node's compiled program (the
  /// PAP's compile-on-issue artifact, shared by every store loading the
  /// same repository); passing null clears any stale attachment, so a
  /// replaced policy can never execute its predecessor's program. The
  /// attachment invariant — compiled(id), when non-null, was compiled
  /// from a clone of exactly the node find(id) returns — is what lets
  /// compiled PolicyReference nodes execute the attached artifact of
  /// their referent (core/compiled.hpp).
  void add(PolicyNodePtr node,
           std::shared_ptr<const CompiledPolicyTree> compiled = nullptr);
  void add(Policy p) { add(std::make_unique<Policy>(std::move(p))); }
  void add(PolicySet ps) { add(std::make_unique<PolicySet>(std::move(ps))); }

  bool remove(const std::string& id);
  const PolicyTreeNode* find(const std::string& id) const;

  /// The compiled artifact attached to `id`, or null (the PDP then
  /// compiles locally at index-rebuild time, or interprets).
  std::shared_ptr<const CompiledPolicyTree> compiled(const std::string& id) const;

  /// The revision at which `id` was last (re)placed, 0 if absent. Lets
  /// evaluators cache per-node derived state (locally compiled
  /// programs) across index rebuilds: same id + same node revision =
  /// same node object, no content hashing and no pointer-ABA hazard.
  std::uint64_t node_revision(const std::string& id) const;

  /// Top-level nodes in insertion order (the PDP's root children).
  std::vector<const PolicyTreeNode*> top_level() const;

  std::size_t size() const { return order_.size(); }
  void clear();

  /// Monotonic counter bumped on every mutation; caches key off it.
  std::uint64_t revision() const { return revision_; }

 private:
  std::vector<std::string> order_;
  std::map<std::string, PolicyNodePtr> by_id_;
  std::map<std::string, std::shared_ptr<const CompiledPolicyTree>> compiled_;
  std::map<std::string, std::uint64_t> updated_at_;  // id -> revision of last add
  std::uint64_t revision_ = 0;
};

namespace detail {
/// The XACML 3.0 "target Indeterminate" masking table, shared by the
/// interpreted (policy.cpp) and compiled (compiled.cpp) evaluators so
/// their decisions — status text included — cannot drift apart.
Decision mask_by_indeterminate_target(Decision combined, const std::string& id);

/// The Match candidate loop: applies `fn(literal, candidate)` over a
/// bag, skipping wrong-typed values when `filter` is set (the
/// in-request unfiltered-bag path). Shared by Match::evaluate and the
/// compiled match tables for the same no-drift reason as above.
MatchResult match_candidates_against(const FunctionDef& fn,
                                     const AttributeValue& literal,
                                     DataType data_type, const Bag& bag,
                                     bool filter, EvaluationContext& ctx);

/// The standard string-equal in-place fast path: true if `bag` holds a
/// string equal to `wanted`. No bag copy, no per-candidate wrapping.
bool bag_contains_string(const Bag& bag, const std::string& wanted);
}  // namespace detail

}  // namespace mdac::core
