// The PDP/cache perf harness: runs the request-evaluation and
// decision-caching hot paths and emits BENCH_pdp.json (schema and
// comparison workflow documented in PERF.md).
//
// Unlike the google-benchmark experiments (c1..c8, fig*), this binary has
// no external dependencies, runs in seconds, and reports the three things
// the ROADMAP's perf trajectory needs per benchmark:
//   * throughput (ops/sec) and latency percentiles (p50/p90/p99 ns/op)
//   * allocation pressure (allocs/op, bytes/op) via a global
//     operator-new hook — the zero-allocation fast path is an explicit
//     acceptance criterion, so it is measured, not asserted
//
// Usage: bench_pdp [--smoke] [--out BENCH_pdp.json]
//   --smoke shrinks every workload so the whole run fits in <2s; the
//   bench-smoke ctest target uses it to exercise the perf plumbing on
//   every tier-1 run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/analysis.hpp"
#include "cache/decision_cache.hpp"
#include "cache/request_key.hpp"
#include "cache/ttl_cache.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/pdp.hpp"
#include "dependability/replicated_pdp.hpp"
#include "net/fault.hpp"
#include "obs/trace.hpp"
#include "report.hpp"
#include "runtime/engine.hpp"
#include "runtime/snapshot.hpp"
#include "workload.hpp"

// ---------------------------------------------------------------------
// Counting allocator hook: every global new/delete in the process is
// counted. Relaxed atomics keep the probe cheap enough not to distort
// the measurement (one uncontended RMW per allocation).
// ---------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// GCC's mismatched-new-delete heuristic cannot see that the replacement
// operators above pair global new with std::malloc, so free() here is
// the matching deallocator by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace mdac::bench {

/// Keeps the optimizer from discarding decision results without the
/// google-benchmark dependency.
void benchmark_sink(const core::Decision& d);

namespace {

using Clock = std::chrono::steady_clock;

struct Scale {
  int policies = 200;
  int roles = 4;
  std::uint64_t iterations = 200'000;
  std::uint64_t cache_iterations = 1'000'000;
  int threads = 4;
};

/// Runs `op` `iterations` times in batches of `batch`, timing each batch
/// to build the latency distribution and reading the allocation hook
/// around the whole run. `op(i)` receives the global op index.
template <typename Op>
BenchResult run_bench(const std::string& name, std::uint64_t iterations,
                      std::uint64_t batch, Op&& op) {
  BenchResult r;
  r.name = name;
  r.iterations = iterations;

  // Warmup: populate caches/scratch so we measure steady state.
  const std::uint64_t warmup = std::max<std::uint64_t>(batch, iterations / 100);
  for (std::uint64_t i = 0; i < warmup; ++i) op(i);

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iterations / batch) + 1);

  const std::uint64_t allocs_before = g_alloc_count.load();
  const std::uint64_t bytes_before = g_alloc_bytes.load();
  const auto run_start = Clock::now();
  std::uint64_t done = 0;
  while (done < iterations) {
    const std::uint64_t n = std::min(batch, iterations - done);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i) op(done + i);
    const auto t1 = Clock::now();
    samples.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
        static_cast<double>(n));
    done += n;
  }
  const auto run_end = Clock::now();
  const std::uint64_t allocs_after = g_alloc_count.load();
  const std::uint64_t bytes_after = g_alloc_bytes.load();

  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(run_end - run_start).count());
  r.mean_ns = total_ns / static_cast<double>(iterations);
  r.ops_per_sec = total_ns > 0 ? 1e9 * static_cast<double>(iterations) / total_ns : 0;
  r.p50_ns = percentile(samples, 0.50);
  r.p90_ns = percentile(samples, 0.90);
  r.p99_ns = percentile(samples, 0.99);
  r.allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(iterations);
  r.bytes_per_op =
      static_cast<double>(bytes_after - bytes_before) / static_cast<double>(iterations);
  return r;
}

/// Pre-generated request pool so request construction stays out of the
/// measured region. ~half the requests carry an authorised role.
std::vector<core::RequestContext> make_request_pool(const Scale& s, std::size_t n) {
  common::Rng rng(1234);
  std::vector<core::RequestContext> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.push_back(random_request(rng, s.policies, s.roles));
  }
  return pool;
}

// ---------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------

/// Full PDP evaluation with the target index on: candidate selection +
/// combining over the selected policies. Since PR 3 the default path
/// executes compiled policy programs (core/compiled.hpp).
BenchResult bench_pdp_evaluate(const Scale& s) {
  auto store = make_policy_store(s.policies, s.roles);
  core::Pdp pdp(store);
  const auto pool = make_request_pool(s, 512);
  double skipped = 0;
  double calls = 0;
  double compiled_policies = 0;
  auto r = run_bench("pdp_evaluate_indexed", s.iterations, 64, [&](std::uint64_t i) {
    const auto res = pdp.evaluate_with_metrics(pool[i % pool.size()]);
    skipped += static_cast<double>(res.candidates_skipped);
    calls += 1;
    compiled_policies = static_cast<double>(res.compile.compiled_policies);
  });
  r.counters["policies"] = s.policies;
  r.counters["avg_candidates_skipped"] = calls > 0 ? skipped / calls : 0;
  r.counters["compiled_policies"] = compiled_policies;
  return r;
}

/// The same workload on the interpreted AST path (use_compiled off) —
/// the seed evaluator running in the same process, which both documents
/// the compiled path's win and serves as the load reference for the
/// uncached regression gate (absolute ops/sec move with machine load;
/// the compiled/interpreted ratio only moves with code).
BenchResult bench_pdp_evaluate_interpreted(const Scale& s) {
  core::PdpConfig cfg;
  cfg.use_compiled = false;
  auto store = make_policy_store(s.policies, s.roles);
  core::Pdp pdp(store, cfg);
  const auto pool = make_request_pool(s, 512);
  auto r = run_bench("pdp_evaluate_interpreted", s.iterations, 64,
                     [&](std::uint64_t i) {
                       benchmark_sink(pdp.evaluate(pool[i % pool.size()]));
                     });
  r.counters["policies"] = s.policies;
  return r;
}

/// The domain-partitioned index: the same per-resource policy mass split
/// across `n_domains` administrative domains, single-domain request
/// traffic. With 1 domain every request probes the one partition
/// (flat-equivalent); with 8 each request touches 1/8 of the index
/// state — the paper's multi-domain decomposition applied to the PDP.
BenchResult bench_pdp_evaluate_domains(const Scale& s, int n_domains) {
  auto store = make_domain_policy_store(n_domains, s.policies, s.roles);
  core::Pdp pdp(store);
  common::Rng rng(4321);
  std::vector<core::RequestContext> pool;
  pool.reserve(512);
  for (std::size_t i = 0; i < 512; ++i) {
    pool.push_back(random_domain_request(rng, n_domains, s.policies, s.roles));
  }
  double skipped = 0;
  double calls = 0;
  auto r = run_bench("pdp_evaluate_domains_" + std::to_string(n_domains),
                     s.iterations, 64, [&](std::uint64_t i) {
                       const auto res = pdp.evaluate_with_metrics(pool[i % pool.size()]);
                       skipped += static_cast<double>(res.candidates_skipped);
                       calls += 1;
                     });
  r.counters["policies"] = s.policies;
  r.counters["domains"] = n_domains;
  r.counters["partitions"] = static_cast<double>(pdp.partition_count());
  r.counters["avg_candidates_skipped"] = calls > 0 ? skipped / calls : 0;
  r.counters["avg_partitions_probed"] =
      calls > 0 ? static_cast<double>(pdp.partition_probes()) / calls : 0;
  return r;
}

/// The nested PolicySet workload (3-level set trees per domain, see
/// bench/workload.hpp): what federation-shaped syndicated policy looks
/// like at the PDP. Since ISSUE 5 the whole tree — set targets, nested
/// combining, obligation assignments — executes as one compiled program.
BenchResult bench_pdp_evaluate_set_tree_impl(const Scale& s, bool use_compiled,
                                             const std::string& name) {
  constexpr int kDomains = 4;
  constexpr int kServices = 4;
  const int per_service = std::max(1, s.policies / (kDomains * kServices));
  core::PdpConfig cfg;
  cfg.use_compiled = use_compiled;
  auto store = make_set_tree_store(kDomains, kServices, per_service, s.roles);
  core::Pdp pdp(store, cfg);
  common::Rng rng(8642);
  std::vector<core::RequestContext> pool;
  pool.reserve(512);
  for (std::size_t i = 0; i < 512; ++i) {
    pool.push_back(random_set_tree_request(rng, kDomains, kServices, s.roles));
  }
  double policy_sets = 0;
  auto r = run_bench(name, s.iterations, 64, [&](std::uint64_t i) {
    const auto res = pdp.evaluate_with_metrics(pool[i % pool.size()]);
    policy_sets = static_cast<double>(res.compile.policy_sets);
    benchmark_sink(res.decision);
  });
  r.counters["domains"] = kDomains;
  r.counters["services_per_domain"] = kServices;
  r.counters["leaf_policies"] = kDomains * kServices * per_service;
  r.counters["compiled_policy_sets"] = policy_sets;
  return r;
}

BenchResult bench_pdp_evaluate_set_tree(const Scale& s) {
  return bench_pdp_evaluate_set_tree_impl(s, /*use_compiled=*/true,
                                          "pdp_evaluate_set_tree");
}

/// The same tree workload on the interpreted AST path — the in-binary
/// load-normalisation reference for the set-tree regression gate.
BenchResult bench_pdp_evaluate_set_tree_interpreted(const Scale& s) {
  return bench_pdp_evaluate_set_tree_impl(s, /*use_compiled=*/false,
                                          "pdp_evaluate_set_tree_interpreted");
}

/// The amortised batch entry point: one staleness check and one warm
/// scratch set for the whole span.
BenchResult bench_pdp_evaluate_batch(const Scale& s) {
  auto store = make_policy_store(s.policies, s.roles);
  core::Pdp pdp(store);
  const auto pool = make_request_pool(s, 512);
  constexpr std::uint64_t kBatch = 64;
  auto r = run_bench("pdp_evaluate_batch", s.iterations / kBatch, 8,
                     [&](std::uint64_t i) {
                       const std::size_t start = (i * kBatch) % (pool.size() - kBatch);
                       const auto results = pdp.evaluate_batch(
                           std::span<const core::RequestContext>(&pool[start], kBatch));
                       benchmark_sink(results.back().decision);
                     });
  // Rescale: one "op" above is a whole batch of requests.
  r.iterations *= kBatch;
  r.ops_per_sec *= static_cast<double>(kBatch);
  r.mean_ns /= static_cast<double>(kBatch);
  r.p50_ns /= static_cast<double>(kBatch);
  r.p90_ns /= static_cast<double>(kBatch);
  r.p99_ns /= static_cast<double>(kBatch);
  r.allocs_per_op /= static_cast<double>(kBatch);
  r.bytes_per_op /= static_cast<double>(kBatch);
  r.counters["batch"] = kBatch;
  return r;
}

/// Same workload with the index off: the linear target scan the paper's
/// scalability argument says must be avoided.
BenchResult bench_pdp_evaluate_noindex(const Scale& s) {
  core::PdpConfig cfg;
  cfg.use_target_index = false;
  auto store = make_policy_store(s.policies, s.roles);
  core::Pdp pdp(store, cfg);
  const auto pool = make_request_pool(s, 512);
  auto r = run_bench("pdp_evaluate_linear_scan", s.iterations / 4, 64,
                     [&](std::uint64_t i) {
                       benchmark_sink(pdp.evaluate(pool[i % pool.size()]));
                     });
  r.counters["policies"] = s.policies;
  return r;
}

/// The cached-decision fast path: 100% hits after warmup. This is the
/// path the paper's §3.2 argument needs to be near-free.
BenchResult bench_cached_hit(const Scale& s) {
  common::ManualClock clock;
  auto store = make_policy_store(s.policies, s.roles);
  core::Pdp pdp(store);
  cache::DecisionCache cache(clock, /*ttl=*/1'000'000'000, /*capacity=*/8192);
  cache::CachingEvaluator cached(cache, [&](const core::RequestContext& req) {
    return pdp.evaluate(req);
  });
  const auto pool = make_request_pool(s, 512);
  auto r = run_bench("cached_decision_hit", s.cache_iterations, 256,
                     [&](std::uint64_t i) { benchmark_sink(cached(pool[i % pool.size()])); });
  r.counters["hit_ratio"] = cache.stats().hit_ratio();
  return r;
}

/// Mixed hit/miss traffic under TTL churn: the steady-state PEP shape.
BenchResult bench_cached_churn(const Scale& s) {
  common::ManualClock clock;
  auto store = make_policy_store(s.policies, s.roles);
  core::Pdp pdp(store);
  cache::DecisionCache cache(clock, /*ttl=*/5'000, /*capacity=*/4096);
  cache::CachingEvaluator cached(cache, [&](const core::RequestContext& req) {
    return pdp.evaluate(req);
  });
  const auto pool = make_request_pool(s, 2048);
  auto r = run_bench("cached_decision_churn", s.cache_iterations / 4, 256,
                     [&](std::uint64_t i) {
                       clock.advance(1);
                       benchmark_sink(cached(pool[i % pool.size()]));
                     });
  r.counters["hit_ratio"] = cache.stats().hit_ratio();
  return r;
}

/// Raw key derivation cost: what lookup+insert pay per request before
/// they ever touch the cache structure. Legacy canonical string...
BenchResult bench_request_key_legacy(const Scale& s) {
  const auto pool = make_request_pool(s, 512);
  std::size_t sink = 0;
  auto r = run_bench("request_key_canonical_string", s.cache_iterations / 2, 256,
                     [&](std::uint64_t i) {
                       sink += cache::canonical_request_key(pool[i % pool.size()]).size();
                     });
  r.counters["sink"] = static_cast<double>(sink % 7);
  return r;
}

/// ...vs the allocation-free 128-bit fingerprint the cache now keys on.
BenchResult bench_request_key_fingerprint(const Scale& s) {
  const auto pool = make_request_pool(s, 512);
  std::uint64_t sink = 0;
  auto r = run_bench("request_key_fingerprint", s.cache_iterations, 256,
                     [&](std::uint64_t i) {
                       sink += cache::fingerprint(pool[i % pool.size()]).lo;
                     });
  r.counters["sink"] = static_cast<double>(sink % 7);
  return r;
}

/// The seed's cached-decision path, reproduced for in-binary comparison:
/// single-lock TtlLruCache keyed by the canonical string, and — as the
/// seed's CachingEvaluator did — the key canonicalised once in lookup
/// and AGAIN in insert on every miss.
BenchResult bench_cached_hit_legacy(const Scale& s) {
  common::ManualClock clock;
  auto store = make_policy_store(s.policies, s.roles);
  core::Pdp pdp(store);
  cache::TtlLruCache<std::string, core::Decision> cache(clock, 1'000'000'000, 8192);
  const auto pool = make_request_pool(s, 512);
  auto evaluate_cached = [&](const core::RequestContext& req) {
    if (auto hit = cache.lookup(cache::canonical_request_key(req))) return *hit;
    core::Decision d = pdp.evaluate(req);
    if (d.is_permit() || d.is_deny()) {
      cache.insert(cache::canonical_request_key(req), d);
    }
    return d;
  };
  auto r = run_bench("cached_decision_hit_legacy", s.cache_iterations, 256,
                     [&](std::uint64_t i) {
                       benchmark_sink(evaluate_cached(pool[i % pool.size()]));
                     });
  r.counters["hit_ratio"] = cache.stats().hit_ratio();
  return r;
}

/// Multi-threaded 100%-hit traffic against the DecisionCache;
/// `shards` = 1 measures the old single-lock behaviour, `shards` = 8 the
/// striped one. Throughput is aggregated across threads; latency
/// percentiles come from thread 0's batches.
BenchResult bench_cache_mt(const Scale& s, const char* name, std::size_t shards) {
  common::ManualClock clock;
  auto store = make_policy_store(s.policies, s.roles);
  core::Pdp pdp(store);
  cache::DecisionCache cache(clock, 1'000'000'000, 8192, shards);
  const auto pool = make_request_pool(s, 512);
  for (const auto& req : pool) {
    cache.insert(req, pdp.evaluate(req));
  }

  const int threads = s.threads;
  const std::uint64_t per_thread = s.cache_iterations / static_cast<std::uint64_t>(threads);
  constexpr std::uint64_t kBatch = 256;

  std::vector<double> samples;  // thread 0 only
  samples.reserve(static_cast<std::size_t>(per_thread / kBatch) + 1);
  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto t_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::uint64_t done = 0;
        while (done < per_thread) {
          const std::uint64_t n = std::min(kBatch, per_thread - done);
          const auto b0 = Clock::now();
          for (std::uint64_t i = 0; i < n; ++i) {
            const auto& req = pool[(done + i + static_cast<std::uint64_t>(t) * 131) %
                                   pool.size()];
            if (auto hit = cache.lookup(req)) benchmark_sink(*hit);
          }
          const auto b1 = Clock::now();
          if (t == 0) {
            samples.push_back(
                static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        b1 - b0)
                                        .count()) /
                static_cast<double>(n));
          }
          done += n;
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  const auto t_end = Clock::now();
  const std::uint64_t allocs_after = g_alloc_count.load();

  const std::uint64_t total_ops = per_thread * static_cast<std::uint64_t>(threads);
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t_start).count());
  BenchResult r;
  r.name = name;
  r.iterations = total_ops;
  r.ops_per_sec = total_ns > 0 ? 1e9 * static_cast<double>(total_ops) / total_ns : 0;
  r.mean_ns = total_ns / static_cast<double>(total_ops) * threads;  // per-op CPU-ish
  r.p50_ns = percentile(samples, 0.50);
  r.p90_ns = percentile(samples, 0.90);
  r.p99_ns = percentile(samples, 0.99);
  r.allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(total_ops);
  r.counters["threads"] = threads;
  r.counters["shards"] = static_cast<double>(cache.shard_count());
  r.counters["hit_ratio"] = cache.stats().hit_ratio();
  return r;
}

/// The multi-threaded decision-engine runtime on the federation
/// workload (8 administrative domains, single-domain request traffic):
/// W workers, each a private Pdp replica over the published snapshot,
/// fed through the bounded queue with a windowed in-flight submitter so
/// the queue never hits its bound (sheds are a *separate* row). The
/// workers_1 row doubles as the load-normalisation reference for the
/// thread-scaling regression gate: the mt_8/mt_1 ratio moves with code
/// (and core count), not machine load. Latency percentiles come from
/// the engine's own histogram — the metrics surface this PR adds.
BenchResult bench_pdp_mt(const Scale& s, std::size_t workers) {
  constexpr int kDomains = 8;
  auto store = make_domain_policy_store(kDomains, s.policies, s.roles);

  runtime::SnapshotPublisher publisher;
  publisher.publish(store);
  runtime::EngineConfig config;
  config.workers = workers;
  config.queue_capacity = 8192;
  config.max_batch = 64;
  runtime::DecisionEngine engine(publisher, config);

  common::Rng rng(4321);
  std::vector<core::RequestContext> pool;
  pool.reserve(512);
  for (std::size_t i = 0; i < 512; ++i) {
    pool.push_back(random_domain_request(rng, kDomains, s.policies, s.roles));
  }

  // Warmup doubles as the differential check the mt rows are gated on
  // being *correct* for: every engine decision must be bit-identical to
  // the single-threaded Pdp's (the store is shared; both only read it).
  std::uint64_t mismatches = 0;
  {
    core::Pdp reference(store);
    for (const core::RequestContext& request : pool) {
      const core::Decision expected = reference.evaluate(request);
      const runtime::EngineResult got = engine.submit(request).get();
      if (!(got.decision == expected)) ++mismatches;
    }
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "FAIL: pdp_mt_workers_%zu: %llu engine decisions differ from "
                   "single-threaded Pdp\n",
                   workers, static_cast<unsigned long long>(mismatches));
    }
  }

  const std::uint64_t iterations = s.iterations;
  constexpr std::size_t kWindow = 512;
  std::vector<std::future<runtime::EngineResult>> inflight(kWindow);

  // The engine is quiescent after the serial differential round trips:
  // drop warmup traffic from the metrics so the reported latency
  // percentiles cover only the measured window's queueing regime (the
  // adoption count happens at warmup, so capture it first).
  const std::uint64_t warm_adoptions = engine.metrics().snapshot_adoptions;
  engine.reset_metrics();
  const std::uint64_t allocs_before = g_alloc_count.load();
  const std::uint64_t bytes_before = g_alloc_bytes.load();
  const auto t_start = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    auto& slot = inflight[i % kWindow];
    if (slot.valid()) benchmark_sink(slot.get().decision);
    slot = engine.submit(pool[i % pool.size()]);
  }
  for (auto& slot : inflight) {
    if (slot.valid()) benchmark_sink(slot.get().decision);
  }
  const auto t_end = Clock::now();
  const std::uint64_t allocs_after = g_alloc_count.load();
  const std::uint64_t bytes_after = g_alloc_bytes.load();

  const runtime::EngineMetrics::Snapshot m = engine.metrics();
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t_start).count());
  BenchResult r;
  r.name = "pdp_mt_workers_" + std::to_string(workers);
  r.iterations = iterations;
  r.ops_per_sec = total_ns > 0 ? 1e9 * static_cast<double>(iterations) / total_ns : 0;
  r.mean_ns = total_ns / static_cast<double>(iterations);
  r.p50_ns = m.latency_p50_ns;
  r.p90_ns = m.latency_p90_ns;
  r.p99_ns = m.latency_p99_ns;
  r.allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(iterations);
  r.bytes_per_op =
      static_cast<double>(bytes_after - bytes_before) / static_cast<double>(iterations);
  r.counters["workers"] = static_cast<double>(workers);
  r.counters["domains"] = kDomains;
  r.counters["policies"] = s.policies;
  r.counters["sheds"] = static_cast<double>(m.sheds());
  r.counters["mean_batch"] = m.mean_batch_size;
  r.counters["snapshot_adoptions"] =
      static_cast<double>(m.snapshot_adoptions + warm_adoptions);
  r.counters["differential_mismatches"] = static_cast<double>(mismatches);
  return r;
}

BenchResult bench_pdp_mt_1(const Scale& s) { return bench_pdp_mt(s, 1); }
BenchResult bench_pdp_mt_8(const Scale& s) { return bench_pdp_mt(s, 8); }

/// The PR-8 contention rows: the same engine workload with a decision
/// cache attached, in both storage modes. Two-level rows serve the hot
/// pool from per-worker L1s (zero synchronisation) backed by the shared
/// seqlock L2; mutex rows funnel every hit through the sharded locks —
/// the in-binary reference that load-normalises the speedup ratio.
/// Cache counters (the EngineMetrics surface satellite 2 adds) ride on
/// every row so BENCH_pdp.json records where hits were served from.
/// `traced` attaches an obs::DecisionTracer with the given head-sampling
/// cadence (0 = tracing compiled in and admitting ids, but recording no
/// spans) — the pdp_mt_traced_* rows that pin the tracing-off overhead
/// contract. `name_override` renames the row so traced variants don't
/// collide with the cached baselines.
BenchResult bench_pdp_mt_cached(const Scale& s, std::size_t workers,
                                bool two_level, bool traced = false,
                                std::uint64_t sample_every_n = 0,
                                const char* name_override = nullptr) {
  constexpr int kDomains = 8;
  auto store = make_domain_policy_store(kDomains, s.policies, s.roles);
  runtime::SnapshotPublisher publisher;
  publisher.publish(store);

  common::WallClock clock;
  auto cache = two_level
                   ? std::make_unique<cache::DecisionCache>(
                         cache::DecisionCache::TwoLevelConfig{.capacity = 8192})
                   : std::make_unique<cache::DecisionCache>(
                         clock, /*ttl=*/1'000'000'000, /*capacity=*/8192,
                         /*shards=*/8);
  obs::DecisionTracer tracer(
      obs::ObsConfig{.sample_every_n = sample_every_n, .ring_capacity = 1024});
  runtime::EngineConfig config;
  config.workers = workers;
  config.queue_capacity = 8192;
  config.max_batch = 64;
  config.l1_capacity = 1024;  // holds the whole hot pool per worker
  if (traced) config.tracer = &tracer;
  runtime::DecisionEngine engine(publisher, config, cache.get());

  // The hot pool is rejection-sampled to *definitive* decisions: the
  // engine only caches Permit/Deny, and a pool dominated by
  // NotApplicable would make these rows measure evaluation throughput
  // (already covered by pdp_mt_workers_*) instead of cache contention.
  common::Rng rng(4321);
  std::vector<core::RequestContext> pool;
  pool.reserve(512);
  {
    core::Pdp sampler(store);
    for (int attempts = 0; pool.size() < 512 && attempts < 100'000; ++attempts) {
      core::RequestContext req =
          random_domain_request(rng, kDomains, s.policies, s.roles);
      const core::Decision d = sampler.evaluate(req);
      if (d.is_permit() || d.is_deny()) pool.push_back(std::move(req));
    }
    while (pool.size() < 512) {
      pool.push_back(random_domain_request(rng, kDomains, s.policies, s.roles));
    }
  }

  // Warmup doubles as the differential check AND the cache fill: the
  // first encounter of each request misses and caches; later encounters
  // are served from L1/L2 and must still be bit-identical to the
  // single-threaded Pdp.
  std::uint64_t mismatches = 0;
  {
    core::Pdp reference(store);
    for (int round = 0; round < 2; ++round) {
      for (const core::RequestContext& request : pool) {
        const core::Decision expected = reference.evaluate(request);
        const runtime::EngineResult got = engine.submit(request).get();
        if (!(got.decision == expected)) ++mismatches;
      }
    }
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "FAIL: pdp_mt_cached workers=%zu: %llu cached engine "
                   "decisions differ from single-threaded Pdp\n",
                   workers, static_cast<unsigned long long>(mismatches));
    }
  }

  const std::uint64_t iterations = s.iterations;
  constexpr std::size_t kWindow = 512;
  std::vector<std::future<runtime::EngineResult>> inflight(kWindow);
  engine.reset_metrics();
  const std::uint64_t allocs_before = g_alloc_count.load();
  const std::uint64_t bytes_before = g_alloc_bytes.load();
  const auto t_start = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    auto& slot = inflight[i % kWindow];
    if (slot.valid()) benchmark_sink(slot.get().decision);
    slot = engine.submit(pool[i % pool.size()]);
  }
  for (auto& slot : inflight) {
    if (slot.valid()) benchmark_sink(slot.get().decision);
  }
  const auto t_end = Clock::now();
  const std::uint64_t allocs_after = g_alloc_count.load();
  const std::uint64_t bytes_after = g_alloc_bytes.load();

  const runtime::EngineMetrics::Snapshot m = engine.metrics();
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t_start).count());
  BenchResult r;
  r.name = name_override != nullptr
               ? std::string(name_override)
               : std::string(two_level ? "pdp_mt_cached_workers_"
                                       : "pdp_mt_cached_mutex_workers_") +
                     std::to_string(workers);
  r.iterations = iterations;
  r.ops_per_sec = total_ns > 0 ? 1e9 * static_cast<double>(iterations) / total_ns : 0;
  r.mean_ns = total_ns / static_cast<double>(iterations);
  r.p50_ns = m.latency_p50_ns;
  r.p90_ns = m.latency_p90_ns;
  r.p99_ns = m.latency_p99_ns;
  r.allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(iterations);
  r.bytes_per_op =
      static_cast<double>(bytes_after - bytes_before) / static_cast<double>(iterations);
  r.counters["workers"] = static_cast<double>(workers);
  r.counters["two_level"] = two_level ? 1 : 0;
  r.counters["sheds"] = static_cast<double>(m.sheds());
  r.counters["l1_hits"] = static_cast<double>(m.l1_hits);
  r.counters["l2_hits"] = static_cast<double>(m.l2_hits);
  r.counters["cache_misses"] = static_cast<double>(m.cache_misses);
  r.counters["l2_read_retries"] = static_cast<double>(m.l2_read_retries);
  r.counters["version_evictions"] = static_cast<double>(m.version_evictions);
  r.counters["hit_ratio"] =
      m.decided > 0 ? static_cast<double>(m.cache_hits) / static_cast<double>(m.decided)
                    : 0;
  r.counters["differential_mismatches"] = static_cast<double>(mismatches);
  if (traced) {
    r.counters["trace_sample_every_n"] = static_cast<double>(sample_every_n);
    r.counters["traces_admitted"] = static_cast<double>(tracer.admitted_total());
    r.counters["traces_published"] = static_cast<double>(tracer.published_total());
  }
  return r;
}

BenchResult bench_pdp_mt_cached_1(const Scale& s) {
  return bench_pdp_mt_cached(s, 1, /*two_level=*/true);
}
BenchResult bench_pdp_mt_cached_8(const Scale& s) {
  return bench_pdp_mt_cached(s, 8, /*two_level=*/true);
}
BenchResult bench_pdp_mt_cached_mutex_1(const Scale& s) {
  return bench_pdp_mt_cached(s, 1, /*two_level=*/false);
}
BenchResult bench_pdp_mt_cached_mutex_8(const Scale& s) {
  return bench_pdp_mt_cached(s, 8, /*two_level=*/false);
}
/// Tracing compiled in, sampling off: the hot path pays one relaxed
/// fetch_add per submission and nothing else. The in-binary overhead
/// gate holds this row within 3% of pdp_mt_cached_workers_8.
BenchResult bench_pdp_mt_traced_off(const Scale& s) {
  return bench_pdp_mt_cached(s, 8, /*two_level=*/true, /*traced=*/true,
                             /*sample_every_n=*/0, "pdp_mt_traced_off");
}
/// Every 1024th decision records full spans + publishes to the ring —
/// the sampled cost an operator actually runs with.
BenchResult bench_pdp_mt_traced_sampled(const Scale& s) {
  return bench_pdp_mt_cached(s, 8, /*two_level=*/true, /*traced=*/true,
                             /*sample_every_n=*/1024, "pdp_mt_traced_sampled");
}

/// Deliberate overload: a tiny queue bound, fire-and-forget callback
/// submissions at full rate, no in-flight window. Measures how the
/// engine behaves AT saturation — decided throughput stays up while the
/// overflow is shed deterministically (shed_rate counter), instead of
/// latency collapsing under an unbounded backlog. ops_per_sec counts
/// *decided* requests; sheds are accounted separately.
BenchResult bench_pdp_engine_saturation(const Scale& s) {
  constexpr int kDomains = 8;
  auto store = make_domain_policy_store(kDomains, s.policies, s.roles);
  runtime::SnapshotPublisher publisher;
  publisher.publish(store);
  runtime::EngineConfig config;
  config.workers = 2;
  config.queue_capacity = 256;
  config.max_batch = 64;
  runtime::DecisionEngine engine(publisher, config);

  common::Rng rng(9876);
  std::vector<core::RequestContext> pool;
  pool.reserve(512);
  for (std::size_t i = 0; i < 512; ++i) {
    pool.push_back(random_domain_request(rng, kDomains, s.policies, s.roles));
  }
  // Warm the workers' replicas (index build, compilation), then drop
  // the warmup ops from the metrics: decided/shed counts and the
  // latency histogram must cover only the overloaded window.
  for (int i = 0; i < 64; ++i) engine.submit(pool[i]).get();
  engine.reset_metrics();

  const std::uint64_t iterations = s.iterations;
  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto t_start = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    engine.submit(pool[i % pool.size()],
                  [](runtime::EngineResult result) { benchmark_sink(result.decision); });
  }
  engine.shutdown(runtime::DecisionEngine::Drain::kDrain);
  const auto t_end = Clock::now();
  const std::uint64_t allocs_after = g_alloc_count.load();

  const runtime::EngineMetrics::Snapshot m = engine.metrics();
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t_start).count());
  const std::uint64_t decided = m.decided;
  BenchResult r;
  r.name = "pdp_engine_saturation";
  r.iterations = iterations;
  r.ops_per_sec = total_ns > 0 ? 1e9 * static_cast<double>(decided) / total_ns : 0;
  r.mean_ns = decided > 0 ? total_ns / static_cast<double>(decided) : 0;
  r.p50_ns = m.latency_p50_ns;
  r.p90_ns = m.latency_p90_ns;
  r.p99_ns = m.latency_p99_ns;
  r.allocs_per_op = static_cast<double>(allocs_after - allocs_before) /
                    static_cast<double>(iterations);
  r.counters["workers"] = static_cast<double>(config.workers);
  r.counters["queue_capacity"] = static_cast<double>(config.queue_capacity);
  r.counters["submitted"] = static_cast<double>(m.submitted);
  r.counters["decided"] = static_cast<double>(decided);
  r.counters["sheds"] = static_cast<double>(m.sheds());
  r.counters["shed_rate"] = m.shed_rate();
  return r;
}

/// Dependability under a named fault plan (net/fault.hpp): a
/// self-healing failover dispatcher over 3 PDP replicas, paced request
/// traffic, the plan's scripted faults active for the whole run. These
/// rows are RECORDED, not ratio-gated — availability and simulated
/// latency are properties of the scripted scenario, not of machine
/// load, so they belong in BENCH_pdp.json as tracked data points. The
/// latency percentile fields carry *simulated* time (ms on the
/// simulator clock, stored as ns like every other row); wall-clock cost
/// of the whole sim run is in mean_ns/ops_per_sec.
BenchResult bench_fault_plan(const Scale& s, const std::string& plan_name) {
  constexpr int kRequests = 400;
  constexpr common::Duration kPace = 25;  // simulated ms between requests
  const common::TimePoint horizon = kRequests * kPace;

  net::Simulator sim(42);
  net::Network network(sim);
  network.set_default_link({10, 0, 0.0});

  auto store = make_policy_store(s.policies, s.roles);
  const std::vector<std::string> ids = {"pdp/0", "pdp/1", "pdp/2"};
  std::vector<std::unique_ptr<dependability::PdpReplica>> replicas;
  for (const std::string& id : ids) {
    replicas.push_back(std::make_unique<dependability::PdpReplica>(
        network, id, std::make_shared<core::Pdp>(store)));
  }
  auto plan = net::make_named_fault_plan(plan_name, 42, ids, "pep", horizon);
  plan->arm(network);
  dependability::ReplicatedPdpClient client(
      network, "pep", ids, dependability::DispatchStrategy::kFailover);

  const auto pool = make_request_pool(s, 256);
  std::vector<double> sim_latency_ms;
  sim_latency_ms.reserve(kRequests);
  std::size_t definitive = 0;
  for (int i = 0; i < kRequests; ++i) {
    sim.schedule(i * kPace, [&, i] {
      const common::TimePoint issued = sim.now();
      client.evaluate(pool[static_cast<std::size_t>(i) % pool.size()],
                      [&, issued](const core::Decision& d) {
                        sim_latency_ms.push_back(
                            static_cast<double>(sim.now() - issued));
                        if (d.is_permit() || d.is_deny()) ++definitive;
                      });
    });
  }
  const auto t0 = Clock::now();
  sim.run();
  const auto t1 = Clock::now();

  std::string row_name = "fault_plan_" + plan_name;
  std::replace(row_name.begin(), row_name.end(), '-', '_');
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  const dependability::DispatchStats& stats = client.stats();
  BenchResult r;
  r.name = row_name;
  r.iterations = kRequests;
  r.ops_per_sec = wall_ns > 0 ? 1e9 * kRequests / wall_ns : 0;
  r.mean_ns = wall_ns / kRequests;
  r.p50_ns = percentile(sim_latency_ms, 0.50) * 1e6;  // simulated ms -> ns
  r.p90_ns = percentile(sim_latency_ms, 0.90) * 1e6;
  r.p99_ns = percentile(sim_latency_ms, 0.99) * 1e6;
  r.counters["availability"] = static_cast<double>(definitive) / kRequests;
  r.counters["sim_latency_p99_ms"] = percentile(sim_latency_ms, 0.99);
  r.counters["tries_per_request"] =
      static_cast<double>(stats.tries) / kRequests;
  r.counters["failsafe"] = static_cast<double>(stats.failsafe);
  r.counters["breaker_opens"] = static_cast<double>(stats.breaker_opens);
  r.counters["breaker_skips"] = static_cast<double>(stats.breaker_skips);
  r.counters["replies_undelivered"] = static_cast<double>(
      stats.retryable_replies + stats.undecodable_replies);
  return r;
}

/// Static-analysis throughput: one full analyse_store() pass (every
/// lint family, findings capped so the clock measures analysis, not
/// materialising ~10^5 cross-root conflict findings) over a 2000-policy
/// 8-domain federation corpus — the ISSUE's analyser scaling row. The
/// smoke workload shrinks the corpus with everything else.
BenchResult bench_analysis_lint(const Scale& s) {
  const int corpus = s.policies * 10;  // full: 2000 policies, smoke: 200
  auto store = make_domain_policy_store(8, corpus, s.roles);
  analysis::AnalyzerOptions options;
  options.max_findings_per_pass = 64;
  double errors = 0, warnings = 0, suppressed = 0;
  auto r = run_bench("analysis_lint_2k", 3, 1, [&](std::uint64_t) {
    const analysis::AnalysisReport report = analysis::analyse_store(*store, options);
    errors = static_cast<double>(report.error_count);
    warnings = static_cast<double>(report.warning_count);
    suppressed = static_cast<double>(report.suppressed);
  });
  r.counters["policies"] = corpus;
  r.counters["error_findings"] = errors;
  r.counters["warning_findings"] = warnings;
  r.counters["suppressed_findings"] = suppressed;
  return r;
}

void print_row(const BenchResult& r) {
  std::printf("%-32s %12.0f ops/s  p50 %8.0f ns  p99 %8.0f ns  %7.2f allocs/op\n",
              r.name.c_str(), r.ops_per_sec, r.p50_ns, r.p99_ns, r.allocs_per_op);
}

/// Reads one benchmark's ops_per_sec out of a previously written report
/// (the fixed mdac-bench-v1 layout report.hpp emits — a full JSON parser
/// would be overkill for a file we write ourselves). Returns 0 when the
/// file or the row is missing.
double baseline_ops_per_sec(const std::string& path, const std::string& bench) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  const std::string needle = "\"name\": \"" + bench + "\",";
  const auto at = text.find(needle);
  if (at == std::string::npos) return 0;
  const std::string field = "\"ops_per_sec\": ";
  const auto ops = text.find(field, at);
  if (ops == std::string::npos) return 0;
  return std::strtod(text.c_str() + ops + field.size(), nullptr);
}

/// One gated benchmark pair: the gated row is compared as a *ratio* to
/// an in-binary reference row measured in the same process under the
/// same load (absolute ops/sec move with machine load; the ratio only
/// moves with code). `run_gated`/`run_reference` re-measure a
/// below-floor first sample before failing.
struct GateSpec {
  const char* gated;
  const char* reference;
  BenchResult (*run_gated)(const Scale&);
  BenchResult (*run_reference)(const Scale&);
  /// Cores the gate needs to be meaningful (0 = always). The
  /// thread-scaling gate compares 8 workers against 1; on a host with
  /// fewer cores that ratio measures scheduler oversubscription, not
  /// code, so the gate skips itself rather than flaking.
  unsigned min_cores = 0;
  /// Additional tolerance on top of --max-regress, for gates whose
  /// ratio is workload-size dependent: the smoke workload shrinks the
  /// set-tree to 16 leaf policies while the committed baseline measures
  /// 192, which systematically compresses the compiled/interpreted
  /// ratio. The slack keeps the gate calm across that scale gap while a
  /// real regression (ratio collapsing toward 1.0) still trips it.
  double extra_slack = 0.0;
};

/// The bench-smoke regression gate (wired up in CMakeLists): fails the
/// run if a gated row regressed >max_regress against the committed
/// baseline. Four rows are gated: the cached-hit path against the
/// seed's cache implementation, the uncached compiled evaluate path
/// against the interpreted AST path (PR 3), the compiled set-tree path
/// against its interpreted reference (ISSUE 5), and — since PR 4 — the
/// 8-worker engine row against the 1-worker engine row (thread scaling:
/// the ratio is machine-load independent, and on a multi-core host a
/// serialisation bug collapses it immediately).
int check_regression(const Scale& scale, const Report& report,
                     const std::string& baseline_path, double max_regress) {
  static constexpr GateSpec kGates[] = {
      {"cached_decision_hit", "cached_decision_hit_legacy", &bench_cached_hit,
       &bench_cached_hit_legacy},
      {"pdp_evaluate_indexed", "pdp_evaluate_interpreted", &bench_pdp_evaluate,
       &bench_pdp_evaluate_interpreted},
      {"pdp_evaluate_set_tree", "pdp_evaluate_set_tree_interpreted",
       &bench_pdp_evaluate_set_tree, &bench_pdp_evaluate_set_tree_interpreted,
       /*min_cores=*/0, /*extra_slack=*/0.20},
      {"pdp_mt_workers_8", "pdp_mt_workers_1", &bench_pdp_mt_8, &bench_pdp_mt_1,
       /*min_cores=*/8},
      {"pdp_mt_cached_workers_8", "pdp_mt_cached_mutex_workers_8",
       &bench_pdp_mt_cached_8, &bench_pdp_mt_cached_mutex_8, /*min_cores=*/8},
  };

  int failures = 0;
  for (const GateSpec& gate : kGates) {
    if (gate.min_cores > 0 && std::thread::hardware_concurrency() < gate.min_cores) {
      std::printf("regression gate: %s needs >=%u cores (have %u); skipping\n",
                  gate.gated, gate.min_cores, std::thread::hardware_concurrency());
      continue;
    }
    const double baseline_gated = baseline_ops_per_sec(baseline_path, gate.gated);
    const double baseline_ref = baseline_ops_per_sec(baseline_path, gate.reference);
    if (baseline_gated <= 0 || baseline_ref <= 0) {
      std::printf("regression gate: no '%s'/'%s' baseline in %s; skipping\n",
                  gate.gated, gate.reference, baseline_path.c_str());
      continue;
    }
    double gated = 0;
    double reference = 0;
    for (const BenchResult& r : report.results()) {
      if (r.name == gate.gated) gated = r.ops_per_sec;
      if (r.name == gate.reference) reference = r.ops_per_sec;
    }
    if (reference <= 0) continue;

    const double baseline_ratio = baseline_gated / baseline_ref;
    const double floor = baseline_ratio * (1.0 - max_regress - gate.extra_slack);
    double ratio = gated / reference;
    for (int attempt = 0; ratio < floor && attempt < 2; ++attempt) {
      std::printf("regression gate: %s ratio %.2f below floor %.2f; re-measuring\n",
                  gate.gated, ratio, floor);
      const double g = gate.run_gated(scale).ops_per_sec;
      const double ref = gate.run_reference(scale).ops_per_sec;
      if (ref > 0) ratio = std::max(ratio, g / ref);
    }
    std::printf(
        "regression gate: %s %.2fx the reference row vs baseline %.2fx (floor "
        "%.2fx; absolute %.0f vs baseline %.0f ops/s)\n",
        gate.gated, ratio, baseline_ratio, floor, gated, baseline_gated);
    if (ratio < floor) {
      std::fprintf(stderr,
                   "FAIL: %s regressed %.1f%% against %s (max allowed %.0f%%)\n",
                   gate.gated, 100.0 * (1.0 - ratio / baseline_ratio),
                   baseline_path.c_str(), 100.0 * max_regress);
      ++failures;
    }
  }
  return failures > 0 ? 1 : 0;
}

/// The PR-8 acceptance floors, checked in-binary (no baseline file
/// needed — both rows of each ratio are measured in the same process
/// under the same load):
///   * contended speedup: the two-level cache must serve the 8-worker
///     hot-pool workload at >= 1.5x the mutex-sharded cache. Only
///     meaningful with >= 8 cores — below that, both sides measure the
///     scheduler, so the check skips itself.
///   * uncontended cost: at 1 worker the two-level path (L1 probe +
///     seqlock fallback) must stay within 10% of the mutex cache.
///     Needs >= 2 cores so the submitter thread isn't time-slicing
///     against the one worker.
/// A below-floor first sample is re-measured before failing, like the
/// baseline gates.
int check_cached_speedup_floor(const Scale& scale, const Report& report) {
  struct Floor {
    const char* gated;
    const char* reference;
    BenchResult (*run_gated)(const Scale&);
    BenchResult (*run_reference)(const Scale&);
    double min_ratio;
    unsigned min_cores;
  };
  static constexpr Floor kFloors[] = {
      {"pdp_mt_cached_workers_8", "pdp_mt_cached_mutex_workers_8",
       &bench_pdp_mt_cached_8, &bench_pdp_mt_cached_mutex_8, 1.5, 8},
      {"pdp_mt_cached_workers_1", "pdp_mt_cached_mutex_workers_1",
       &bench_pdp_mt_cached_1, &bench_pdp_mt_cached_mutex_1, 0.90, 2},
      // The ISSUE-9 hot-path cost contract: tracing compiled in with
      // sampling OFF stays within 3% of the untraced 8-worker cached
      // row. Needs the same 8-core floor as that row; a below-floor
      // first sample is re-measured before failing (machine noise
      // between the two process phases, not code, is the usual cause).
      {"pdp_mt_traced_off", "pdp_mt_cached_workers_8", &bench_pdp_mt_traced_off,
       &bench_pdp_mt_cached_8, 0.97, 8},
  };

  int failures = 0;
  for (const Floor& floor : kFloors) {
    if (std::thread::hardware_concurrency() < floor.min_cores) {
      std::printf("speedup floor: %s needs >=%u cores (have %u); skipping\n",
                  floor.gated, floor.min_cores, std::thread::hardware_concurrency());
      continue;
    }
    double gated = 0;
    double reference = 0;
    for (const BenchResult& r : report.results()) {
      if (r.name == floor.gated) gated = r.ops_per_sec;
      if (r.name == floor.reference) reference = r.ops_per_sec;
    }
    if (reference <= 0) continue;
    double ratio = gated / reference;
    for (int attempt = 0; ratio < floor.min_ratio && attempt < 2; ++attempt) {
      std::printf("speedup floor: %s ratio %.2f below %.2f; re-measuring\n",
                  floor.gated, ratio, floor.min_ratio);
      const double g = floor.run_gated(scale).ops_per_sec;
      const double ref = floor.run_reference(scale).ops_per_sec;
      if (ref > 0) ratio = std::max(ratio, g / ref);
    }
    std::printf("speedup floor: %s %.2fx the %s row (floor %.2fx)\n", floor.gated,
                ratio, floor.reference, floor.min_ratio);
    if (ratio < floor.min_ratio) {
      std::fprintf(stderr, "FAIL: %s is %.2fx %s (floor %.2fx)\n", floor.gated,
                   ratio, floor.reference, floor.min_ratio);
      ++failures;
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace

void benchmark_sink(const core::Decision& d) {
  static std::atomic<int> sink{0};
  sink.fetch_add(static_cast<int>(d.type), std::memory_order_relaxed);
}

int run(int argc, char** argv) {
  Scale scale;
  std::string out = "BENCH_pdp.json";
  std::string workload = "full";
  std::string baseline;
  double max_regress = 0.20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      workload = "smoke";
      scale.policies = 20;
      scale.iterations = 2'000;
      scale.cache_iterations = 10'000;
      scale.threads = 2;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--max-regress") == 0 && i + 1 < argc) {
      max_regress = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out FILE] [--baseline FILE] "
                   "[--max-regress FRACTION]\n",
                   argv[0]);
      return 2;
    }
  }

  Report report;
  for (auto* bench : {&bench_pdp_evaluate, &bench_pdp_evaluate_interpreted,
                      &bench_pdp_evaluate_set_tree,
                      &bench_pdp_evaluate_set_tree_interpreted,
                      &bench_pdp_evaluate_batch, &bench_pdp_evaluate_noindex,
                      &bench_cached_hit, &bench_cached_hit_legacy,
                      &bench_cached_churn, &bench_request_key_fingerprint,
                      &bench_request_key_legacy}) {
    BenchResult r = (*bench)(scale);
    print_row(r);
    report.add(std::move(r));
  }
  for (const int n_domains : {1, 8}) {
    BenchResult r = bench_pdp_evaluate_domains(scale, n_domains);
    print_row(r);
    report.add(std::move(r));
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    BenchResult r = bench_pdp_mt(scale, workers);
    print_row(r);
    report.add(std::move(r));
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    BenchResult r = bench_pdp_mt_cached(scale, workers, /*two_level=*/true);
    print_row(r);
    report.add(std::move(r));
  }
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    BenchResult r = bench_pdp_mt_cached(scale, workers, /*two_level=*/false);
    print_row(r);
    report.add(std::move(r));
  }
  for (auto* bench : {&bench_pdp_mt_traced_off, &bench_pdp_mt_traced_sampled}) {
    BenchResult r = (*bench)(scale);
    print_row(r);
    report.add(std::move(r));
  }
  {
    BenchResult r = bench_pdp_engine_saturation(scale);
    print_row(r);
    report.add(std::move(r));
  }
  for (const auto& [name, shards] :
       std::initializer_list<std::pair<const char*, std::size_t>>{
           {"cached_decision_hit_mt_sharded", 8},
           {"cached_decision_hit_mt_single_shard", 1}}) {
    BenchResult r = bench_cache_mt(scale, name, shards);
    print_row(r);
    report.add(std::move(r));
  }
  for (const std::string& plan : net::named_fault_plan_names()) {
    BenchResult r = bench_fault_plan(scale, plan);
    print_row(r);
    report.add(std::move(r));
  }
  {
    BenchResult r = bench_analysis_lint(scale);
    print_row(r);
    report.add(std::move(r));
  }

  if (!report.write(out, workload)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu benchmarks, workload=%s)\n", out.c_str(),
              report.results().size(), workload.c_str());

  // The mt rows' warmup differential check is a correctness gate, not a
  // counter: any engine decision that differed from the single-threaded
  // Pdp fails the whole run (and with it the bench-smoke ctest).
  int failures = 0;
  for (const BenchResult& r : report.results()) {
    const auto it = r.counters.find("differential_mismatches");
    if (it != r.counters.end() && it->second > 0) {
      std::fprintf(stderr, "FAIL: %s: %.0f decisions differ from single-threaded Pdp\n",
                   r.name.c_str(), it->second);
      failures = 1;
    }
  }
  failures |= check_cached_speedup_floor(scale, report);
  if (!baseline.empty()) {
    failures |= check_regression(scale, report, baseline, max_regress);
  }
  return failures;
}

}  // namespace mdac::bench

int main(int argc, char** argv) { return mdac::bench::run(argc, argv); }
