// C7 — dependability of the authorisation fabric itself (the paper's
// title claim, §3.2): PDP replication under failure injection.
//
// Series reported (per replica count and per-replica failure probability):
//   * availability — the fraction of requests that obtained a definitive
//     decision — for failover and quorum dispatch
//   * mean simulated decision latency (timeouts make failures slow, not
//     just unavailable)
//
// Expected shape: a single PDP's availability tracks (1 - p) directly;
// failover with n replicas approaches 1 - p^n at the cost of one timeout
// per dead replica tried; quorum keeps latency flat while any majority
// is alive but collapses faster than failover as p grows (needs ⌈n/2⌉+1
// live replicas, not just one).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "dependability/replicated_pdp.hpp"
#include "net/fault.hpp"
#include "workload.hpp"

namespace {

using namespace mdac;

void run_dependability(benchmark::State& state,
                       dependability::DispatchStrategy strategy) {
  const int n_replicas = static_cast<int>(state.range(0));
  const double failure_probability = static_cast<double>(state.range(1)) / 100.0;
  constexpr int kRequests = 400;

  double availability = 0;
  double mean_latency = 0;
  for (auto _ : state) {
    net::Simulator sim;
    net::Network network(sim);
    network.set_default_link({5, 0, 0.0});

    std::vector<std::unique_ptr<dependability::PdpReplica>> replicas;
    std::vector<std::string> ids;
    for (int i = 0; i < n_replicas; ++i) {
      ids.push_back("pdp/" + std::to_string(i));
      replicas.push_back(std::make_unique<dependability::PdpReplica>(
          network, ids.back(), std::make_shared<core::Pdp>(bench::make_policy_store(20))));
    }
    dependability::ReplicatedPdpClient client(network, "pep", ids, strategy,
                                              /*per_try_timeout=*/50);
    common::Rng rng(1234);
    std::size_t decided = 0;
    double latency_sum = 0;

    for (int r = 0; r < kRequests; ++r) {
      // Crash/recover injection: each replica is independently down with
      // probability p for this request.
      for (auto& replica : replicas) {
        replica->set_up(!rng.chance(failure_probability));
      }
      const auto request = bench::random_request(rng, 20, 3);
      const common::TimePoint start = sim.now();
      common::TimePoint done = start;
      core::Decision decision;
      client.evaluate(request, [&](core::Decision d) {
        decision = std::move(d);
        done = sim.now();
      });
      sim.run();
      if (decision.is_permit() || decision.is_deny()) {
        ++decided;
        latency_sum += static_cast<double>(done - start);
      }
    }
    availability = static_cast<double>(decided) / kRequests;
    mean_latency = decided > 0 ? latency_sum / static_cast<double>(decided) : 0;
  }
  state.counters["replicas"] = n_replicas;
  state.counters["failure_pct"] = static_cast<double>(state.range(1));
  state.counters["availability"] = availability;
  state.counters["mean_sim_ms"] = mean_latency;
}

void BM_FailoverAvailability(benchmark::State& state) {
  run_dependability(state, dependability::DispatchStrategy::kFailover);
}
BENCHMARK(BM_FailoverAvailability)
    ->Args({1, 10})
    ->Args({2, 10})
    ->Args({3, 10})
    ->Args({5, 10})
    ->Args({3, 0})
    ->Args({3, 30})
    ->Args({3, 50});

void BM_QuorumAvailability(benchmark::State& state) {
  run_dependability(state, dependability::DispatchStrategy::kQuorum);
}
BENCHMARK(BM_QuorumAvailability)
    ->Args({1, 10})
    ->Args({3, 10})
    ->Args({5, 10})
    ->Args({3, 0})
    ->Args({3, 30})
    ->Args({3, 50});

// Named fault plans (ISSUE 6): availability and p99 simulated latency of
// the self-healing dispatcher under each scripted net::FaultPlan —
// drop/jitter storms, a crash-flapping primary, asymmetric partitions,
// duplication+corruption, and the combined chaos mix. Unlike the
// per-request coin-flip injection above, these plans exercise *temporal*
// structure (outage windows, flap schedules) and the breaker/backoff
// machinery that copes with it.
//
// Arg 0 indexes net::named_fault_plan_names(); arg 1 picks the strategy
// (0 = failover, 1 = quorum).
void BM_FaultPlanAvailability(benchmark::State& state) {
  const auto plan_names = net::named_fault_plan_names();
  const std::string plan_name =
      plan_names[static_cast<std::size_t>(state.range(0)) % plan_names.size()];
  const auto strategy = state.range(1) == 1
                            ? dependability::DispatchStrategy::kQuorum
                            : dependability::DispatchStrategy::kFailover;
  constexpr int kRequests = 400;
  constexpr common::Duration kPace = 25;
  constexpr common::TimePoint kHorizon = kRequests * kPace;

  double availability = 0;
  double p99_latency = 0;
  double tries_per_request = 0;
  double breaker_opens = 0;
  for (auto _ : state) {
    net::Simulator sim(42);
    net::Network network(sim);
    network.set_default_link({10, 0, 0.0});

    const std::vector<std::string> ids = {"pdp/0", "pdp/1", "pdp/2"};
    std::vector<std::unique_ptr<dependability::PdpReplica>> replicas;
    for (const std::string& id : ids) {
      replicas.push_back(std::make_unique<dependability::PdpReplica>(
          network, id, std::make_shared<core::Pdp>(bench::make_policy_store(20))));
    }
    auto plan = net::make_named_fault_plan(plan_name, 42, ids, "pep", kHorizon);
    plan->arm(network);

    dependability::DispatchConfig config;
    config.seed = 42;
    dependability::ReplicatedPdpClient client(network, "pep", ids, strategy,
                                              config);
    common::Rng rng(1234);
    std::size_t decided = 0;
    std::vector<double> latencies;
    latencies.reserve(kRequests);
    for (int r = 0; r < kRequests; ++r) {
      sim.schedule(r * kPace, [&, r, request = bench::random_request(rng, 20, 3)] {
        const common::TimePoint start = sim.now();
        client.evaluate(request, [&, start](core::Decision d) {
          if (d.is_permit() || d.is_deny()) {
            ++decided;
            latencies.push_back(static_cast<double>(sim.now() - start));
          }
        });
      });
    }
    sim.run();

    availability = static_cast<double>(decided) / kRequests;
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      p99_latency = latencies[std::min(
          latencies.size() - 1,
          static_cast<std::size_t>(static_cast<double>(latencies.size()) * 0.99))];
    }
    const auto& s = client.stats();
    tries_per_request = static_cast<double>(s.tries) / kRequests;
    breaker_opens = static_cast<double>(s.breaker_opens);
  }
  state.SetLabel(plan_name + (state.range(1) == 1 ? "/quorum" : "/failover"));
  state.counters["availability"] = availability;
  state.counters["sim_p99_ms"] = p99_latency;
  state.counters["tries_per_request"] = tries_per_request;
  state.counters["breaker_opens"] = breaker_opens;
}
BENCHMARK(BM_FaultPlanAvailability)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({4, 1});

// Ablation: the PEP's fail-safe bias (deny vs permit) when the single PDP
// is unreachable. Bias=permit buys availability (every request answered
// "yes" during the outage) at the price of unsafe grants — requests an
// always-on oracle PDP would have denied. Bias=deny never grants
// unsafely but turns every outage into lost service. This is the
// dependability/safety trade-off behind the PEP's §2.2 "conforms to
// decisions" role.
void BM_PepBiasAblation(benchmark::State& state) {
  const bool permit_bias = state.range(0) == 1;
  const double failure_probability = static_cast<double>(state.range(1)) / 100.0;
  constexpr int kRequests = 400;

  double served = 0, unsafe = 0, lost = 0;
  for (auto _ : state) {
    net::Simulator sim;
    net::Network network(sim);
    network.set_default_link({5, 0, 0.0});
    auto pdp = std::make_shared<core::Pdp>(bench::make_policy_store(20));
    dependability::PdpReplica replica(network, "pdp", pdp);
    dependability::ReplicatedPdpClient client(
        network, "pep", {"pdp"}, dependability::DispatchStrategy::kFailover, 50);
    core::Pdp oracle(bench::make_policy_store(20));  // always-on ground truth
    common::Rng rng(99);

    std::size_t served_n = 0, unsafe_n = 0, lost_n = 0;
    for (int r = 0; r < kRequests; ++r) {
      replica.set_up(!rng.chance(failure_probability));
      const auto request = bench::random_request(rng, 20, 3);
      core::Decision decision;
      client.evaluate(request, [&](core::Decision d) { decision = std::move(d); });
      sim.run();

      bool allowed;
      if (decision.is_permit()) {
        allowed = true;
      } else if (decision.is_deny()) {
        allowed = false;
      } else {
        allowed = permit_bias;  // the ablated knob
      }
      const core::Decision truth = oracle.evaluate(request);
      if (allowed) {
        ++served_n;
        if (!truth.is_permit()) ++unsafe_n;
      } else if (truth.is_permit()) {
        ++lost_n;  // service the oracle would have granted
      }
    }
    served = static_cast<double>(served_n) / kRequests;
    unsafe = static_cast<double>(unsafe_n) / kRequests;
    lost = static_cast<double>(lost_n) / kRequests;
  }
  state.counters["permit_bias"] = permit_bias ? 1 : 0;
  state.counters["failure_pct"] = static_cast<double>(state.range(1));
  state.counters["served_ratio"] = served;
  state.counters["unsafe_grant_ratio"] = unsafe;
  state.counters["lost_service_ratio"] = lost;
}
BENCHMARK(BM_PepBiasAblation)
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({0, 30})
    ->Args({1, 30});

}  // namespace
