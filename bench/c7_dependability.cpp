// C7 — dependability of the authorisation fabric itself (the paper's
// title claim, §3.2): PDP replication under failure injection.
//
// Series reported (per replica count and per-replica failure probability):
//   * availability — the fraction of requests that obtained a definitive
//     decision — for failover and quorum dispatch
//   * mean simulated decision latency (timeouts make failures slow, not
//     just unavailable)
//
// Expected shape: a single PDP's availability tracks (1 - p) directly;
// failover with n replicas approaches 1 - p^n at the cost of one timeout
// per dead replica tried; quorum keeps latency flat while any majority
// is alive but collapses faster than failover as p grows (needs ⌈n/2⌉+1
// live replicas, not just one).
#include <benchmark/benchmark.h>

#include <memory>

#include "dependability/replicated_pdp.hpp"
#include "workload.hpp"

namespace {

using namespace mdac;

void run_dependability(benchmark::State& state,
                       dependability::DispatchStrategy strategy) {
  const int n_replicas = static_cast<int>(state.range(0));
  const double failure_probability = static_cast<double>(state.range(1)) / 100.0;
  constexpr int kRequests = 400;

  double availability = 0;
  double mean_latency = 0;
  for (auto _ : state) {
    net::Simulator sim;
    net::Network network(sim);
    network.set_default_link({5, 0, 0.0});

    std::vector<std::unique_ptr<dependability::PdpReplica>> replicas;
    std::vector<std::string> ids;
    for (int i = 0; i < n_replicas; ++i) {
      ids.push_back("pdp/" + std::to_string(i));
      replicas.push_back(std::make_unique<dependability::PdpReplica>(
          network, ids.back(), std::make_shared<core::Pdp>(bench::make_policy_store(20))));
    }
    dependability::ReplicatedPdpClient client(network, "pep", ids, strategy,
                                              /*per_try_timeout=*/50);
    common::Rng rng(1234);
    std::size_t decided = 0;
    double latency_sum = 0;

    for (int r = 0; r < kRequests; ++r) {
      // Crash/recover injection: each replica is independently down with
      // probability p for this request.
      for (auto& replica : replicas) {
        replica->set_up(!rng.chance(failure_probability));
      }
      const auto request = bench::random_request(rng, 20, 3);
      const common::TimePoint start = sim.now();
      common::TimePoint done = start;
      core::Decision decision;
      client.evaluate(request, [&](core::Decision d) {
        decision = std::move(d);
        done = sim.now();
      });
      sim.run();
      if (decision.is_permit() || decision.is_deny()) {
        ++decided;
        latency_sum += static_cast<double>(done - start);
      }
    }
    availability = static_cast<double>(decided) / kRequests;
    mean_latency = decided > 0 ? latency_sum / static_cast<double>(decided) : 0;
  }
  state.counters["replicas"] = n_replicas;
  state.counters["failure_pct"] = static_cast<double>(state.range(1));
  state.counters["availability"] = availability;
  state.counters["mean_sim_ms"] = mean_latency;
}

void BM_FailoverAvailability(benchmark::State& state) {
  run_dependability(state, dependability::DispatchStrategy::kFailover);
}
BENCHMARK(BM_FailoverAvailability)
    ->Args({1, 10})
    ->Args({2, 10})
    ->Args({3, 10})
    ->Args({5, 10})
    ->Args({3, 0})
    ->Args({3, 30})
    ->Args({3, 50});

void BM_QuorumAvailability(benchmark::State& state) {
  run_dependability(state, dependability::DispatchStrategy::kQuorum);
}
BENCHMARK(BM_QuorumAvailability)
    ->Args({1, 10})
    ->Args({3, 10})
    ->Args({5, 10})
    ->Args({3, 0})
    ->Args({3, 30})
    ->Args({3, 50});

// Ablation: the PEP's fail-safe bias (deny vs permit) when the single PDP
// is unreachable. Bias=permit buys availability (every request answered
// "yes" during the outage) at the price of unsafe grants — requests an
// always-on oracle PDP would have denied. Bias=deny never grants
// unsafely but turns every outage into lost service. This is the
// dependability/safety trade-off behind the PEP's §2.2 "conforms to
// decisions" role.
void BM_PepBiasAblation(benchmark::State& state) {
  const bool permit_bias = state.range(0) == 1;
  const double failure_probability = static_cast<double>(state.range(1)) / 100.0;
  constexpr int kRequests = 400;

  double served = 0, unsafe = 0, lost = 0;
  for (auto _ : state) {
    net::Simulator sim;
    net::Network network(sim);
    network.set_default_link({5, 0, 0.0});
    auto pdp = std::make_shared<core::Pdp>(bench::make_policy_store(20));
    dependability::PdpReplica replica(network, "pdp", pdp);
    dependability::ReplicatedPdpClient client(
        network, "pep", {"pdp"}, dependability::DispatchStrategy::kFailover, 50);
    core::Pdp oracle(bench::make_policy_store(20));  // always-on ground truth
    common::Rng rng(99);

    std::size_t served_n = 0, unsafe_n = 0, lost_n = 0;
    for (int r = 0; r < kRequests; ++r) {
      replica.set_up(!rng.chance(failure_probability));
      const auto request = bench::random_request(rng, 20, 3);
      core::Decision decision;
      client.evaluate(request, [&](core::Decision d) { decision = std::move(d); });
      sim.run();

      bool allowed;
      if (decision.is_permit()) {
        allowed = true;
      } else if (decision.is_deny()) {
        allowed = false;
      } else {
        allowed = permit_bias;  // the ablated knob
      }
      const core::Decision truth = oracle.evaluate(request);
      if (allowed) {
        ++served_n;
        if (!truth.is_permit()) ++unsafe_n;
      } else if (truth.is_permit()) {
        ++lost_n;  // service the oracle would have granted
      }
    }
    served = static_cast<double>(served_n) / kRequests;
    unsafe = static_cast<double>(unsafe_n) / kRequests;
    lost = static_cast<double>(lost_n) / kRequests;
  }
  state.counters["permit_bias"] = permit_bias ? 1 : 0;
  state.counters["failure_pct"] = static_cast<double>(state.range(1));
  state.counters["served_ratio"] = served;
  state.counters["unsafe_grant_ratio"] = unsafe;
  state.counters["lost_service_ratio"] = lost;
}
BENCHMARK(BM_PepBiasAblation)
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({0, 30})
    ->Args({1, 30});

}  // namespace
