// C6 — automated trust negotiation (paper §3.1, [46]/[60]): cost of
// establishing trust between strangers.
//
// Series reported:
//   * rounds and messages vs the depth of the credential dependency
//     chain, for eager and parsimonious strategies
//   * credentials disclosed (the privacy cost) for both strategies when
//     parties carry irrelevant credentials
//   * wall-clock negotiation cost
//
// Expected shape: rounds grow linearly with chain depth for both
// strategies; the parsimonious strategy discloses a constant (minimal)
// credential set while eager's disclosure grows with everything that
// happens to be unlocked — the classic privacy/efficiency trade-off.
#include <benchmark/benchmark.h>

#include "trust/negotiation.hpp"

namespace {

using namespace mdac;

/// Alternating dependency chain of the given depth (see trust_test.cpp).
std::pair<trust::Party, trust::Party> chain_scenario(int depth, int extra_noise) {
  trust::Party requester;
  requester.name = "requester";
  trust::Party provider;
  provider.name = "provider";
  for (int i = 0; i < depth; ++i) {
    const std::string c = "c" + std::to_string(i);
    const std::string p = "p" + std::to_string(i);
    requester.credentials.insert(c);
    provider.credentials.insert(p);
    requester.release_policies[c] = trust::DisclosurePolicy::credential(p);
    if (i + 1 < depth) {
      provider.release_policies[p] =
          trust::DisclosurePolicy::credential("c" + std::to_string(i + 1));
    }
  }
  // Irrelevant, freely releasable credentials (the privacy bait).
  for (int i = 0; i < extra_noise; ++i) {
    requester.credentials.insert("noise-" + std::to_string(i));
  }
  provider.resource_policies["res"] = trust::DisclosurePolicy::credential("c0");
  return {requester, provider};
}

void run_negotiation(benchmark::State& state, trust::Strategy strategy) {
  const int depth = static_cast<int>(state.range(0));
  const auto [requester, provider] = chain_scenario(depth, 8);
  trust::NegotiationResult result;
  for (auto _ : state) {
    result = trust::negotiate(requester, provider, "res", strategy, 1000);
    benchmark::DoNotOptimize(result);
  }
  state.counters["depth"] = depth;
  state.counters["success"] = result.success ? 1 : 0;
  state.counters["rounds"] = static_cast<double>(result.rounds);
  state.counters["messages"] = static_cast<double>(result.messages);
  state.counters["requester_disclosed"] =
      static_cast<double>(result.disclosed_by_requester.size());
}

void BM_EagerNegotiation(benchmark::State& state) {
  run_negotiation(state, trust::Strategy::kEager);
}
BENCHMARK(BM_EagerNegotiation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ParsimoniousNegotiation(benchmark::State& state) {
  run_negotiation(state, trust::Strategy::kParsimonious);
}
BENCHMARK(BM_ParsimoniousNegotiation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_FailedNegotiationCost(benchmark::State& state) {
  // Deadlocked policies: how fast do we discover there is no deal?
  trust::Party a;
  a.name = "a";
  a.credentials = {"ca"};
  a.release_policies["ca"] = trust::DisclosurePolicy::credential("cb");
  trust::Party b;
  b.name = "b";
  b.credentials = {"cb"};
  b.release_policies["cb"] = trust::DisclosurePolicy::credential("ca");
  b.resource_policies["res"] = trust::DisclosurePolicy::credential("ca");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trust::negotiate(a, b, "res", trust::Strategy::kEager, 1000));
  }
}
BENCHMARK(BM_FailedNegotiationCost);

}  // namespace
