// C8 — cross-domain delegation (paper §3.2): the cost of validating
// third-party-issued policy by reduction to a trusted root, and the blast
// radius of revocation.
//
// Series reported:
//   * reduction (chain validation) cost vs delegation depth
//   * filtering a policy store by reduction vs store size
//   * post-revocation re-filtering: how many policies a mid-chain
//     revocation invalidates
//
// Expected shape: reduction cost grows linearly with chain depth (DFS up
// the grant graph); filtering is linear in policies x chain depth;
// revoking an authority at depth d invalidates every policy issued below
// it — the revocation complexity the paper warns about, made concrete.
#include <benchmark/benchmark.h>

#include "core/policy.hpp"
#include "delegation/delegation.hpp"

namespace {

using namespace mdac;

/// root -> a0 -> a1 -> ... -> a(depth-1), all over scope "shared/*".
delegation::DelegationRegistry chain_registry(int depth) {
  delegation::DelegationRegistry reg;
  reg.add_root("root");
  std::string previous = "root";
  for (int i = 0; i < depth; ++i) {
    const std::string next = "a" + std::to_string(i);
    const delegation::AdminGrant grant{
        previous, next, "shared/*",
        /*allow_redelegation=*/i + 1 < depth,
        /*max_further_depth=*/depth - i - 1};
    if (!reg.grant(grant)) std::abort();  // bench setup must be valid
    previous = next;
  }
  return reg;
}

core::Policy issued_policy(const std::string& id, const std::string& issuer) {
  core::Policy p;
  p.policy_id = id;
  p.issuer = issuer;
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("shared/data"));
  core::Rule r;
  r.id = "permit";
  r.effect = core::Effect::kPermit;
  p.rules.push_back(std::move(r));
  return p;
}

void BM_ReductionVsChainDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto reg = chain_registry(depth);
  const std::string leaf = "a" + std::to_string(depth - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.reduction_chain(leaf, "shared/data"));
  }
  state.counters["depth"] = depth;
}
BENCHMARK(BM_ReductionVsChainDepth)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_StoreFilteringVsSize(benchmark::State& state) {
  const int n_policies = static_cast<int>(state.range(0));
  const auto reg = chain_registry(4);
  core::PolicyStore store;
  for (int i = 0; i < n_policies; ++i) {
    // Mix of root-issued, validly delegated and rogue policies.
    const std::string issuer = i % 3 == 0   ? ""
                               : i % 3 == 1 ? "a3"
                                            : "rogue";
    store.add(issued_policy("p-" + std::to_string(i), issuer));
  }
  std::size_t accepted = 0;
  for (auto _ : state) {
    const auto filter = delegation::filter_by_reduction(store, reg);
    accepted = filter.accepted.size();
    benchmark::DoNotOptimize(filter);
  }
  state.counters["policies"] = n_policies;
  state.counters["accepted"] = static_cast<double>(accepted);
}
BENCHMARK(BM_StoreFilteringVsSize)->Arg(30)->Arg(120)->Arg(480);

void BM_RevocationBlastRadius(benchmark::State& state) {
  // Revoke the authority at the given chain position; count policies
  // invalidated among 100 issued along the chain.
  const int revoke_at = static_cast<int>(state.range(0));
  constexpr int kDepth = 8;
  std::size_t invalidated = 0;
  for (auto _ : state) {
    auto reg = chain_registry(kDepth);
    core::PolicyStore store;
    for (int i = 0; i < 100; ++i) {
      store.add(issued_policy("p-" + std::to_string(i),
                              "a" + std::to_string(i % kDepth)));
    }
    const std::size_t before = delegation::filter_by_reduction(store, reg).accepted.size();
    reg.revoke_grantee("a" + std::to_string(revoke_at));
    const std::size_t after = delegation::filter_by_reduction(store, reg).accepted.size();
    invalidated = before - after;
    benchmark::DoNotOptimize(after);
  }
  state.counters["revoked_depth"] = revoke_at;
  state.counters["policies_invalidated"] = static_cast<double>(invalidated);
}
BENCHMARK(BM_RevocationBlastRadius)->Arg(0)->Arg(3)->Arg(7);

}  // namespace
