// C5 — push (capability, Fig 2) vs pull (policy-issuing, Fig 3) across
// request rates: where does the crossover fall?
//
// The workload: one client makes K requests against one provider over
// the simulated network. Pull pays a PEP->PDP round trip per request.
// Push pays one capability-issuance round trip up front, then presents
// the token with each request (validated locally at the gate).
//
// Series reported (per K):
//   * total simulated latency and messages for both models
//   * the crossover point where push's up-front cost amortises
//
// Expected shape: pull is cheaper for K=1 (one round trip vs the push
// model's issue+use), push wins from K≈2 and asymptotically costs one
// message per request vs pull's two.
#include <benchmark/benchmark.h>

#include <memory>

#include "capability/capability.hpp"
#include "net/rpc.hpp"
#include "pep/remote.hpp"
#include "tokens/assertion.hpp"
#include "workload.hpp"

namespace {

using namespace mdac;

std::shared_ptr<core::Pdp> shared_policy_pdp() {
  return std::make_shared<core::Pdp>(bench::make_policy_store(10));
}

core::RequestContext client_request() {
  core::RequestContext req = core::RequestContext::make("alice", "res-3", "read");
  req.add(core::Category::kSubject, core::attrs::kRole,
          core::AttributeValue("role-1"));
  return req;
}

void BM_PullModel(benchmark::State& state) {
  // Topology: client -> provider (PEP) -> remote PDP -> provider -> client.
  // Four messages and two round trips per request.
  const int k = static_cast<int>(state.range(0));
  double sim_ms = 0;
  std::size_t messages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    net::Simulator sim;
    net::Network network(sim);
    network.set_default_link({10, 0, 0.0});
    pep::PdpService pdp_service(network, "pdp", shared_policy_pdp());
    pep::RemotePdpClient pep_side(network, "provider-pep", "pdp", 10'000);

    net::RpcNode provider(network, "provider");
    provider.set_async_request_handler(
        [&pep_side](const std::string&, const std::string&, const std::string&,
                    net::RpcNode::Responder respond) {
          pep_side.evaluate(client_request(), [respond](core::Decision d) {
            respond(d.is_permit() ? "ok" : "no");
          });
        });
    net::RpcNode client(network, "client");
    state.ResumeTiming();

    double latency_sum = 0;
    for (int i = 0; i < k; ++i) {
      // Per-request latency: pending timeout no-ops drain between
      // requests and advance the clock, so measure each round trip.
      const common::TimePoint t0 = sim.now();
      client.call("provider", "access", "", 10'000,
                  [&](std::optional<std::string> r) {
                    latency_sum += static_cast<double>(sim.now() - t0);
                    benchmark::DoNotOptimize(r);
                  });
      sim.run();
    }
    sim_ms = latency_sum;
    messages = network.stats().messages_sent;
  }
  state.counters["requests"] = k;
  state.counters["sim_ms_total"] = sim_ms;
  state.counters["messages_total"] = static_cast<double>(messages);
  state.counters["msgs_per_request"] =
      static_cast<double>(messages) / static_cast<double>(k);
}
BENCHMARK(BM_PullModel)->Arg(1)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_PushModel(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  double sim_ms = 0;
  std::size_t messages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    net::Simulator sim;
    net::Network network(sim);
    network.set_default_link({10, 0, 0.0});

    const crypto::KeyPair cas_key = crypto::KeyPair::generate("cas");
    crypto::TrustStore provider_trust;
    provider_trust.add_trusted_key(cas_key);
    capability::CapabilityService cas("cas", cas_key, shared_policy_pdp(),
                                      sim.clock(), 1'000'000);
    capability::CapabilityGate gate("provider", provider_trust, sim.clock(),
                                    shared_policy_pdp());

    // Capability service as a network node.
    net::RpcNode cas_node(network, "cas");
    cas_node.set_request_handler(
        [&cas](const std::string&, const std::string&, const std::string&) {
          capability::CapabilityRequest r;
          r.subject = "alice";
          r.subject_attributes[core::attrs::kRole] =
              core::Bag(core::AttributeValue("role-1"));
          r.resource = "res-3";
          r.action = "read";
          r.audience = "provider";
          return cas.issue(r).token->to_wire();
        });
    // Provider as a network node validating attached tokens.
    net::RpcNode provider_node(network, "provider");
    provider_node.set_request_handler(
        [&gate](const std::string&, const std::string& payload, const std::string&) {
          const auto token = tokens::SignedAssertion::from_wire(payload);
          return std::string(gate.admit(token, "res-3", "read").allowed ? "ok"
                                                                        : "no");
        });
    net::RpcNode client(network, "client");
    state.ResumeTiming();

    double latency_sum = 0;
    // Step 1: obtain the capability (one round trip).
    std::string token_wire;
    {
      const common::TimePoint t0 = sim.now();
      client.call("cas", "issue", "", 10'000, [&](std::optional<std::string> r) {
        token_wire = r.value_or("");
        latency_sum += static_cast<double>(sim.now() - t0);
      });
      sim.run();
    }
    // Step 2: K requests carrying the token (one round trip each, but no
    // PDP in the loop — gate validates locally).
    for (int i = 0; i < k; ++i) {
      const common::TimePoint t0 = sim.now();
      client.call("provider", "access", token_wire, 10'000,
                  [&](std::optional<std::string> r) {
                    latency_sum += static_cast<double>(sim.now() - t0);
                    benchmark::DoNotOptimize(r);
                  });
      sim.run();
    }
    sim_ms = latency_sum;
    messages = network.stats().messages_sent;
  }
  state.counters["requests"] = k;
  state.counters["sim_ms_total"] = sim_ms;
  state.counters["messages_total"] = static_cast<double>(messages);
  state.counters["msgs_per_request"] =
      static_cast<double>(messages) / static_cast<double>(k);
}
BENCHMARK(BM_PushModel)->Arg(1)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
