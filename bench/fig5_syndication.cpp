// FIG5 — the PAP / policy-syndication-server hierarchy of Fig. 5.
//
// Series reported:
//   * simulated propagation completion time vs tree depth (fanout 2)
//   * completion time vs fanout (depth 2)
//   * messages and bytes per publication
//   * rejection behaviour when scoped domains filter the feed
//
// Expected shape: completion time grows linearly with depth (each level
// adds one request/response round trip) but only logarithmically-ish in
// total node count at fixed depth (children are contacted in parallel);
// messages are 2*(nodes-1) per publication.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/serialization.hpp"
#include "pap/syndication.hpp"

namespace {

using namespace mdac;

std::string vo_policy_doc() {
  core::Policy p;
  p.policy_id = "vo-policy";
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("shared/data"));
  core::Rule r;
  r.id = "permit";
  r.effect = core::Effect::kPermit;
  p.rules.push_back(std::move(r));
  return core::node_to_string(p);
}

/// Builds a complete tree of syndication servers; returns the root index.
struct Tree {
  net::Simulator sim;
  net::Network network{sim};
  common::ManualClock repo_clock;
  std::vector<std::unique_ptr<pap::PolicyRepository>> repos;
  std::vector<std::unique_ptr<pap::SyndicationServer>> servers;

  Tree(int depth, int fanout, common::Duration link_ms = 5) {
    network.set_default_link({link_ms, 0, 0.0});
    build_level(0, depth, fanout, "pap/0");
  }

  std::string build_level(int level, int depth, int fanout, const std::string& id) {
    repos.push_back(std::make_unique<pap::PolicyRepository>(repo_clock));
    servers.push_back(std::make_unique<pap::SyndicationServer>(
        network, id, *repos.back(), pap::SyndicationConstraint{}));
    pap::SyndicationServer* me = servers.back().get();
    if (level < depth) {
      for (int c = 0; c < fanout; ++c) {
        const std::string child_id = id + "." + std::to_string(c);
        build_level(level + 1, depth, fanout, child_id);
        me->add_child(child_id);
      }
    }
    return id;
  }
};

void run_publication(benchmark::State& state, int depth, int fanout) {
  const std::string doc = vo_policy_doc();
  double total_sim_ms = 0;
  std::size_t publications = 0;
  std::size_t nodes = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();  // tree construction is setup, not the experiment
    Tree tree(depth, fanout);
    state.ResumeTiming();

    const common::TimePoint start = tree.sim.now();
    common::TimePoint done_at = start;
    pap::SyndicationReport report;
    tree.servers[0]->publish(doc, [&](pap::SyndicationReport r) {
      report = r;
      done_at = tree.sim.now();
    });
    tree.sim.run();
    total_sim_ms += static_cast<double>(done_at - start);
    nodes = report.nodes_reached;
    messages = tree.network.stats().messages_sent;
    bytes = tree.network.stats().bytes_sent;
    ++publications;
  }
  state.counters["depth"] = depth;
  state.counters["fanout"] = fanout;
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["sim_ms_to_complete"] =
      total_sim_ms / static_cast<double>(publications);
  state.counters["msgs_per_publication"] = static_cast<double>(messages);
  state.counters["bytes_per_publication"] = static_cast<double>(bytes);
}

void BM_PropagationVsDepth(benchmark::State& state) {
  run_publication(state, static_cast<int>(state.range(0)), 2);
}
BENCHMARK(BM_PropagationVsDepth)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_PropagationVsFanout(benchmark::State& state) {
  run_publication(state, 2, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_PropagationVsFanout)->Arg(2)->Arg(4)->Arg(8);

void BM_ScopedRejection(benchmark::State& state) {
  // Half the leaves are scoped to a different domain and reject the feed.
  const std::string doc = vo_policy_doc();
  std::size_t accepted = 0, rejected = 0;
  for (auto _ : state) {
    state.PauseTiming();
    net::Simulator sim;
    net::Network network(sim);
    network.set_default_link({5, 0, 0.0});
    common::ManualClock clock;
    std::vector<std::unique_ptr<pap::PolicyRepository>> repos;
    std::vector<std::unique_ptr<pap::SyndicationServer>> servers;
    repos.push_back(std::make_unique<pap::PolicyRepository>(clock));
    servers.push_back(std::make_unique<pap::SyndicationServer>(
        network, "root", *repos.back(), pap::SyndicationConstraint{}));
    for (int i = 0; i < 8; ++i) {
      repos.push_back(std::make_unique<pap::PolicyRepository>(clock));
      pap::SyndicationConstraint constraint;
      if (i % 2 == 0) constraint.resource_scope = "other-domain/*";
      servers.push_back(std::make_unique<pap::SyndicationServer>(
          network, "leaf-" + std::to_string(i), *repos.back(), constraint));
      servers[0]->add_child("leaf-" + std::to_string(i));
    }
    state.ResumeTiming();

    pap::SyndicationReport report;
    servers[0]->publish(doc, [&](pap::SyndicationReport r) { report = r; });
    sim.run();
    accepted = report.accepted;
    rejected = report.rejected;
  }
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["rejected"] = static_cast<double>(rejected);
}
BENCHMARK(BM_ScopedRejection);

}  // namespace
