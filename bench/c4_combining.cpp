// C4 — combining-algorithm throughput (paper §2.3/§3.1: combining
// algorithms are the conflict-resolution workhorse on every decision).
//
// Series reported:
//   * decisions/second for each of the 8 standard algorithms over a
//     fixed 16-rule policy, across child-decision mixes
//   * the short-circuit benefit of first-applicable vs the overrides
//     family (which must visit every child to collect obligations)
//
// Expected shape: first-applicable wins when an early rule decides;
// the *-unless-* algorithms are the cheapest uniform scanners (no
// indeterminate bookkeeping); deny/permit-overrides pay for extended-
// indeterminate tracking.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/functions.hpp"
#include "core/pdp.hpp"

namespace {

using namespace mdac;

/// A policy with `n` rules; `deciding_rule` is the first applicable one
/// (-1: none applicable -> NotApplicable overall for most algorithms).
core::Policy rules_policy(const std::string& combining, int n, int deciding_rule) {
  core::Policy p;
  p.policy_id = "bench";
  p.rule_combining = combining;
  for (int i = 0; i < n; ++i) {
    core::Rule r;
    r.id = "rule-" + std::to_string(i);
    r.effect = i % 2 == 0 ? core::Effect::kPermit : core::Effect::kDeny;
    if (i != deciding_rule) {
      core::Target t;
      t.require(core::Category::kSubject, "never-present",
                core::AttributeValue("never"));
      r.target = std::move(t);
    }
    p.rules.push_back(std::move(r));
  }
  return p;
}

void run_algorithm(benchmark::State& state, const std::string& algorithm,
                   int deciding_rule) {
  const core::Policy p = rules_policy(algorithm, 16, deciding_rule);
  const auto request = core::RequestContext::make("alice", "res", "read");
  for (auto _ : state) {
    core::EvaluationContext ctx(request, core::FunctionRegistry::standard());
    benchmark::DoNotOptimize(p.evaluate(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}

#define MDAC_COMBINING_BENCH(name, algorithm)                          \
  void BM_##name##_EarlyDecision(benchmark::State& state) {            \
    run_algorithm(state, algorithm, 0);                                \
  }                                                                    \
  BENCHMARK(BM_##name##_EarlyDecision);                                \
  void BM_##name##_LateDecision(benchmark::State& state) {             \
    run_algorithm(state, algorithm, 15);                               \
  }                                                                    \
  BENCHMARK(BM_##name##_LateDecision);                                 \
  void BM_##name##_NoneApplicable(benchmark::State& state) {           \
    run_algorithm(state, algorithm, -1);                               \
  }                                                                    \
  BENCHMARK(BM_##name##_NoneApplicable)

MDAC_COMBINING_BENCH(DenyOverrides, "deny-overrides");
MDAC_COMBINING_BENCH(PermitOverrides, "permit-overrides");
MDAC_COMBINING_BENCH(OrderedDenyOverrides, "ordered-deny-overrides");
MDAC_COMBINING_BENCH(OrderedPermitOverrides, "ordered-permit-overrides");
MDAC_COMBINING_BENCH(FirstApplicable, "first-applicable");
MDAC_COMBINING_BENCH(OnlyOneApplicable, "only-one-applicable");
MDAC_COMBINING_BENCH(DenyUnlessPermit, "deny-unless-permit");
MDAC_COMBINING_BENCH(PermitUnlessDeny, "permit-unless-deny");

#undef MDAC_COMBINING_BENCH

void BM_RuleCountScaling(benchmark::State& state) {
  // deny-overrides over growing rule counts: linear, no surprises wanted.
  const int n = static_cast<int>(state.range(0));
  const core::Policy p = rules_policy("deny-overrides", n, n / 2);
  const auto request = core::RequestContext::make("alice", "res", "read");
  for (auto _ : state) {
    core::EvaluationContext ctx(request, core::FunctionRegistry::standard());
    benchmark::DoNotOptimize(p.evaluate(ctx));
  }
  state.counters["rules"] = n;
}
BENCHMARK(BM_RuleCountScaling)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
