// JSON reporting for the perf harness (bench_main.cpp).
//
// The harness exists so every PR leaves a machine-readable perf
// trajectory behind (`BENCH_pdp.json`); PERF.md documents the schema and
// how to compare two runs. No external JSON dependency: the writer below
// emits the small fixed schema directly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace mdac::bench {

/// One benchmark row. Latency percentiles are nanoseconds per operation,
/// derived from batched samples; allocation figures come from the global
/// operator-new hook in bench_main.cpp.
struct BenchResult {
  std::string name;
  std::uint64_t iterations = 0;
  double ops_per_sec = 0;
  double mean_ns = 0;
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
  double allocs_per_op = 0;
  double bytes_per_op = 0;
  /// Benchmark-specific extra series (hit ratios, skip counts, ...).
  std::map<std::string, double> counters;
};

/// Percentile over a sample vector (ns/op); sorts a copy.
inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

class Report {
 public:
  void add(BenchResult r) { results_.push_back(std::move(r)); }

  const std::vector<BenchResult>& results() const { return results_; }

  /// Writes the report (schema "mdac-bench-v1", see PERF.md).
  bool write(const std::string& path, const std::string& workload) const {
    std::ofstream os(path);
    if (!os) return false;
    os << "{\n";
    os << "  \"schema\": \"mdac-bench-v1\",\n";
    os << "  \"workload\": \"" << workload << "\",\n";
    os << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      os << "    {\n";
      os << "      \"name\": \"" << r.name << "\",\n";
      os << "      \"iterations\": " << r.iterations << ",\n";
      os << "      \"ops_per_sec\": " << num(r.ops_per_sec) << ",\n";
      os << "      \"mean_ns\": " << num(r.mean_ns) << ",\n";
      os << "      \"p50_ns\": " << num(r.p50_ns) << ",\n";
      os << "      \"p90_ns\": " << num(r.p90_ns) << ",\n";
      os << "      \"p99_ns\": " << num(r.p99_ns) << ",\n";
      os << "      \"allocs_per_op\": " << num(r.allocs_per_op) << ",\n";
      os << "      \"bytes_per_op\": " << num(r.bytes_per_op);
      if (!r.counters.empty()) {
        os << ",\n      \"counters\": {";
        bool first = true;
        for (const auto& [k, v] : r.counters) {
          if (!first) os << ", ";
          os << "\"" << k << "\": " << num(v);
          first = false;
        }
        os << "}";
      }
      os << "\n    }" << (i + 1 < results_.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return static_cast<bool>(os);
  }

 private:
  /// JSON has no NaN/Inf; clamp to 0 so the file always parses.
  static std::string num(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::vector<BenchResult> results_;
};

}  // namespace mdac::bench
