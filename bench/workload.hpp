// Shared workload generators for the benchmark suite. Everything is
// seeded and deterministic so every reported row is reproducible.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/expression.hpp"
#include "core/pdp.hpp"
#include "core/policy.hpp"
#include "core/request.hpp"

namespace mdac::bench {

/// A policy permitting `roles[i]` to perform `actions` on resource
/// "res-<i>", with a trailing deny — the shape of a typical per-resource
/// protection policy.
inline core::Policy resource_policy(int index, int n_roles) {
  core::Policy p;
  p.policy_id = "policy-" + std::to_string(index);
  p.rule_combining = "first-applicable";
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                        core::AttributeValue("res-" + std::to_string(index)));
  for (int r = 0; r < n_roles; ++r) {
    core::Rule rule;
    rule.id = p.policy_id + ":permit-role-" + std::to_string(r);
    rule.effect = core::Effect::kPermit;
    core::Target t;
    t.require(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-" + std::to_string(r)));
    rule.target = std::move(t);
    p.rules.push_back(std::move(rule));
  }
  core::Rule deny;
  deny.id = p.policy_id + ":deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  return p;
}

inline std::shared_ptr<core::PolicyStore> make_policy_store(int n_policies,
                                                            int n_roles = 3) {
  auto store = std::make_shared<core::PolicyStore>();
  for (int i = 0; i < n_policies; ++i) {
    store->add(resource_policy(i, n_roles));
  }
  return store;
}

/// A uniformly random request over the generated policy space; roughly
/// half the requests carry an authorised role.
inline core::RequestContext random_request(common::Rng& rng, int n_policies,
                                           int n_roles) {
  const int resource = static_cast<int>(rng.uniform_int(0, n_policies - 1));
  const int role = static_cast<int>(rng.uniform_int(0, 2 * n_roles - 1));
  core::RequestContext req = core::RequestContext::make(
      "user-" + std::to_string(rng.uniform_int(0, 999)),
      "res-" + std::to_string(resource), "read");
  req.add(core::Category::kSubject, core::attrs::kRole,
          core::AttributeValue("role-" + std::to_string(role)));
  return req;
}

/// A role-gated policy scoped to one administrative domain — the
/// federation shape (each domain grants its roles over its own
/// resources): target requires resource-domain == "domain-<d>" AND
/// role == "role-<r>". The role is the only non-domain conjunct, so the
/// *flat* index can prune by role alone, while the partitioned index
/// additionally confines the probe to the named domain — which is the
/// separation the 1-vs-8-domain benchmark measures.
inline core::Policy domain_role_policy(int domain, int index, int n_roles) {
  core::Policy p;
  p.policy_id = "domain-" + std::to_string(domain) + ":policy-" + std::to_string(index);
  p.rule_combining = "first-applicable";
  p.target_spec.require(core::Category::kResource, core::attrs::kResourceDomain,
                        core::AttributeValue("domain-" + std::to_string(domain)));
  p.target_spec.require(core::Category::kSubject, core::attrs::kRole,
                        core::AttributeValue("role-" + std::to_string(index % n_roles)));
  core::Rule permit;
  permit.id = p.policy_id + ":permit-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kAction, core::attrs::kActionId,
            core::AttributeValue("read"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = p.policy_id + ":deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  return p;
}

/// `n_policies` split evenly across `n_domains` administrative domains.
/// With 1 domain all policies share one partition (flat-equivalent);
/// with 8, each domain owns n_policies/8 of them.
inline std::shared_ptr<core::PolicyStore> make_domain_policy_store(int n_domains,
                                                                   int n_policies,
                                                                   int n_roles = 3) {
  auto store = std::make_shared<core::PolicyStore>();
  for (int i = 0; i < n_policies; ++i) {
    store->add(domain_role_policy(i % n_domains, i, n_roles));
  }
  return store;
}

/// A 3-level PolicySet tree for one administrative domain — the shape
/// policy syndication produces (paper §3.2): a root set gated on
/// resource-domain == "domain-<d>" containing one PolicySet per service
/// (gated on resource attribute "service"), each containing role-gated
/// leaf Policies whose permits carry an audit obligation. Exercises
/// set-level targets, nested combining and obligation programs — the
/// workload the pdp_evaluate_set_tree rows measure.
inline core::PolicySet domain_service_set(int domain, int n_services,
                                          int policies_per_service, int n_roles) {
  core::PolicySet root;
  root.policy_set_id = "domain-" + std::to_string(domain) + ":set";
  root.policy_combining = "first-applicable";
  root.target_spec.require(core::Category::kResource, core::attrs::kResourceDomain,
                           core::AttributeValue("domain-" + std::to_string(domain)));
  for (int s = 0; s < n_services; ++s) {
    core::PolicySet service;
    service.policy_set_id = root.policy_set_id + ":svc-" + std::to_string(s);
    service.policy_combining = "deny-overrides";
    service.target_spec.require(core::Category::kResource, "service",
                                core::AttributeValue("svc-" + std::to_string(s)));
    for (int p = 0; p < policies_per_service; ++p) {
      core::Policy leaf;
      leaf.policy_id = service.policy_set_id + ":policy-" + std::to_string(p);
      leaf.rule_combining = "first-applicable";
      leaf.target_spec.require(
          core::Category::kSubject, core::attrs::kRole,
          core::AttributeValue("role-" + std::to_string(p % n_roles)));
      core::Rule permit;
      permit.id = leaf.policy_id + ":permit-read";
      permit.effect = core::Effect::kPermit;
      core::Target t;
      t.require(core::Category::kAction, core::attrs::kActionId,
                core::AttributeValue("read"));
      permit.target = std::move(t);
      core::ObligationExpr audit;
      audit.id = leaf.policy_id + ":audit";
      audit.fulfill_on = core::Effect::kPermit;
      audit.assignments.push_back(core::AttributeAssignmentExpr{
          "who", core::designator(core::Category::kSubject, core::attrs::kSubjectId,
                                  core::DataType::kString)});
      permit.obligations.push_back(std::move(audit));
      leaf.rules.push_back(std::move(permit));
      core::Rule deny;
      deny.id = leaf.policy_id + ":deny-rest";
      deny.effect = core::Effect::kDeny;
      leaf.rules.push_back(std::move(deny));
      service.add(std::move(leaf));
    }
    root.add(std::move(service));
  }
  return root;
}

/// One 3-level set tree per domain as the store's top level; the domain
/// conjunct on each root set keeps the PDP's domain partitioning
/// engaged, exactly as for the flat domain workload.
inline std::shared_ptr<core::PolicyStore> make_set_tree_store(
    int n_domains, int n_services, int policies_per_service, int n_roles = 3) {
  auto store = std::make_shared<core::PolicyStore>();
  for (int d = 0; d < n_domains; ++d) {
    store->add(domain_service_set(d, n_services, policies_per_service, n_roles));
  }
  return store;
}

/// A random request against the set-tree store: one domain, one service,
/// one role (half the roles authorised, as elsewhere).
inline core::RequestContext random_set_tree_request(common::Rng& rng, int n_domains,
                                                    int n_services, int n_roles) {
  const int domain = static_cast<int>(rng.uniform_int(0, n_domains - 1));
  const int service = static_cast<int>(rng.uniform_int(0, n_services - 1));
  const int role = static_cast<int>(rng.uniform_int(0, 2 * n_roles - 1));
  core::RequestContext req = core::RequestContext::make(
      "user-" + std::to_string(rng.uniform_int(0, 999)),
      "res-" + std::to_string(rng.uniform_int(0, 63)), "read");
  req.add(core::Category::kResource, core::attrs::kResourceDomain,
          core::AttributeValue("domain-" + std::to_string(domain)));
  req.add(core::Category::kResource, "service",
          core::AttributeValue("svc-" + std::to_string(service)));
  req.add(core::Category::kSubject, core::attrs::kRole,
          core::AttributeValue("role-" + std::to_string(role)));
  return req;
}

/// A random single-domain request against the domain-partitioned store:
/// names exactly one resource-domain plus a role.
inline core::RequestContext random_domain_request(common::Rng& rng, int n_domains,
                                                  int n_policies, int n_roles) {
  const int domain = static_cast<int>(rng.uniform_int(0, n_domains - 1));
  const int resource = static_cast<int>(rng.uniform_int(0, n_policies - 1));
  const int role = static_cast<int>(rng.uniform_int(0, 2 * n_roles - 1));
  core::RequestContext req = core::RequestContext::make(
      "user-" + std::to_string(rng.uniform_int(0, 999)),
      "res-" + std::to_string(resource), "read");
  req.add(core::Category::kResource, core::attrs::kResourceDomain,
          core::AttributeValue("domain-" + std::to_string(domain)));
  req.add(core::Category::kSubject, core::attrs::kRole,
          core::AttributeValue("role-" + std::to_string(role)));
  return req;
}

}  // namespace mdac::bench
