// C2 — message size and processing overhead of securing the
// authorisation protocol (paper §3.2, citing Juric et al. [40]: secured
// Web-Service messages are "significantly bigger").
//
// Series reported:
//   * bytes on the wire: plain vs signed vs signed+encrypted, across
//     payload sizes (an XACML request, a policy document, a bulk blob)
//   * protect/unprotect CPU cost for each mode
//   * the XML encoding overhead itself (binary payload vs its envelope)
//
// Expected shape: signing adds a near-constant overhead (digest +
// base64); encryption adds ~33% (base64 expansion) plus a per-byte
// keystream cost; both are dwarfed by XML verbosity for small payloads —
// the paper's observation that the *encoding* is the real tax.
#include <benchmark/benchmark.h>

#include "core/serialization.hpp"
#include "net/secure_channel.hpp"
#include "workload.hpp"

namespace {

using namespace mdac;

struct Channel {
  crypto::KeyPair key = crypto::KeyPair::generate("sender");
  crypto::TrustStore trust;
  net::SecureChannel channel{key, trust, common::to_bytes("content-key")};

  Channel() { trust.add_trusted_key(key); }
};

std::string payload_of_size(std::size_t n) { return std::string(n, 'x'); }

void run_protect(benchmark::State& state, net::ChannelSecurity mode) {
  const std::size_t payload_size = static_cast<std::size_t>(state.range(0));
  Channel c;
  const std::string payload = payload_of_size(payload_size);
  std::size_t wire_size = 0;
  for (auto _ : state) {
    const std::string wire = c.channel.protect(payload, mode);
    wire_size = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["payload_bytes"] = static_cast<double>(payload_size);
  state.counters["wire_bytes"] = static_cast<double>(wire_size);
  state.counters["overhead_ratio"] =
      static_cast<double>(wire_size) / static_cast<double>(payload_size);
}

void BM_ProtectPlain(benchmark::State& state) {
  run_protect(state, {false, false});
}
BENCHMARK(BM_ProtectPlain)->Arg(128)->Arg(1024)->Arg(16384);

void BM_ProtectSigned(benchmark::State& state) {
  run_protect(state, {true, false});
}
BENCHMARK(BM_ProtectSigned)->Arg(128)->Arg(1024)->Arg(16384);

void BM_ProtectSignedEncrypted(benchmark::State& state) {
  run_protect(state, {true, true});
}
BENCHMARK(BM_ProtectSignedEncrypted)->Arg(128)->Arg(1024)->Arg(16384);

void BM_UnprotectSignedEncrypted(benchmark::State& state) {
  Channel c;
  const std::string wire =
      c.channel.protect(payload_of_size(1024), {true, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.channel.unprotect(wire));
  }
}
BENCHMARK(BM_UnprotectSignedEncrypted);

void BM_XacmlRequestOnTheWire(benchmark::State& state) {
  // A realistic authorisation decision query, all three protection modes.
  common::Rng rng(3);
  const auto request = bench::random_request(rng, 100, 3);
  const std::string xml = core::request_to_string(request);
  Channel c;
  const std::size_t plain = c.channel.protect(xml, {false, false}).size();
  const std::size_t signed_only = c.channel.protect(xml, {true, false}).size();
  const std::size_t full = c.channel.protect(xml, {true, true}).size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.channel.protect(xml, {true, true}));
  }
  state.counters["request_xml_bytes"] = static_cast<double>(xml.size());
  state.counters["plain_bytes"] = static_cast<double>(plain);
  state.counters["signed_bytes"] = static_cast<double>(signed_only);
  state.counters["signed_encrypted_bytes"] = static_cast<double>(full);
}
BENCHMARK(BM_XacmlRequestOnTheWire);

void BM_PolicyDocumentOnTheWire(benchmark::State& state) {
  // Policies are the largest artefacts the PAP ships (syndication, C5).
  const core::Policy p = bench::resource_policy(0, 10);
  const std::string xml = core::node_to_string(p);
  Channel c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.channel.protect(xml, {true, true}));
  }
  state.counters["policy_xml_bytes"] = static_cast<double>(xml.size());
  state.counters["protected_bytes"] =
      static_cast<double>(c.channel.protect(xml, {true, true}).size());
}
BENCHMARK(BM_PolicyDocumentOnTheWire);

}  // namespace
