// FIG2 — the capability-issuing (push) architecture of Fig. 2.
//
// Series reported:
//   * capability issuance cost (pre-screen + build + sign)
//   * gate-side validation cost, with and without the provider's local
//     final-say PDP
//   * amortised per-request cost when one token covers K requests
//
// Expected shape: issuance is the expensive step (policy evaluation +
// signature); validation is cheaper; amortised cost falls as 1/K towards
// the pure-validation floor — this is the push model's advantage that
// the C5 crossover bench builds on.
#include <benchmark/benchmark.h>

#include <memory>

#include "capability/capability.hpp"

namespace {

using namespace mdac;

std::shared_ptr<core::Pdp> community_pdp() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "community";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "members-read";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, "community", core::AttributeValue("vo"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

std::shared_ptr<core::Pdp> provider_pdp() {
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "provider";
  core::Rule permit;
  permit.id = "permit-vo";
  permit.effect = core::Effect::kPermit;
  permit.condition = core::make_apply(
      "any-of", core::function_ref("string-equal"), core::lit("vo"),
      core::designator(core::Category::kSubject, "community",
                       core::DataType::kString));
  p.rules.push_back(std::move(permit));
  store->add(std::move(p));
  return std::make_shared<core::Pdp>(store);
}

capability::CapabilityRequest member_request() {
  capability::CapabilityRequest r;
  r.subject = "alice";
  r.subject_attributes["community"] = core::Bag(core::AttributeValue("vo"));
  r.resource = "dataset";
  r.action = "read";
  r.audience = "provider";
  return r;
}

struct Fixture {
  crypto::KeyPair key = crypto::KeyPair::generate("cas-bench");
  common::ManualClock clock{1000};
  capability::CapabilityService service{"cas", key, community_pdp(), clock, 60'000};
  crypto::TrustStore trust;

  Fixture() { trust.add_trusted_key(key); }
};

void BM_CapabilityIssue(benchmark::State& state) {
  Fixture f;
  const auto request = member_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service.issue(request));
  }
}
BENCHMARK(BM_CapabilityIssue);

void BM_GateValidateOnly(benchmark::State& state) {
  Fixture f;
  const auto token = *f.service.issue(member_request()).token;
  capability::CapabilityGate gate("provider", f.trust, f.clock, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gate.admit(token, "dataset", "read"));
  }
}
BENCHMARK(BM_GateValidateOnly);

void BM_GateValidateWithLocalPdp(benchmark::State& state) {
  Fixture f;
  const auto token = *f.service.issue(member_request()).token;
  capability::CapabilityGate gate("provider", f.trust, f.clock, provider_pdp());
  for (auto _ : state) {
    benchmark::DoNotOptimize(gate.admit(token, "dataset", "read"));
  }
}
BENCHMARK(BM_GateValidateWithLocalPdp);

void BM_AmortisedPerRequest(benchmark::State& state) {
  // One issuance covering K requests: the push model's economy.
  const int k = static_cast<int>(state.range(0));
  Fixture f;
  capability::CapabilityGate gate("provider", f.trust, f.clock, provider_pdp());
  const auto request = member_request();
  for (auto _ : state) {
    const auto token = *f.service.issue(request).token;
    for (int i = 0; i < k; ++i) {
      benchmark::DoNotOptimize(gate.admit(token, "dataset", "read"));
    }
  }
  state.SetItemsProcessed(state.iterations() * k);
  state.counters["requests_per_token"] = k;
}
BENCHMARK(BM_AmortisedPerRequest)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_TokenWireSize(benchmark::State& state) {
  // The size of the capability riding in every SOAP header (paper §3.2:
  // secured messages are "significantly bigger").
  Fixture f;
  const auto token = *f.service.issue(member_request()).token;
  std::size_t wire_size = 0;
  for (auto _ : state) {
    const std::string wire = token.to_wire();
    wire_size = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["token_bytes"] = static_cast<double>(wire_size);
}
BENCHMARK(BM_TokenWireSize);

}  // namespace
