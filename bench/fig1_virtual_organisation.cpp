// FIG1 — the Virtual Organisation of Fig. 1: N autonomous domains with
// pairwise IdP trust and a shared VO policy. The workload is the full
// cross-domain flow: home IdP issues an identity assertion, the target
// domain validates it and decides under VO + local policy.
//
// Series reported:
//   * end-to-end cross-domain authorisation cost vs VO size (domains)
//   * the same flow split into its parts (issue / validate+decide)
//
// Expected shape: per-request cost is flat in VO size (each request
// touches exactly two domains — the paper's architecture scales by NOT
// centralising decisions); setup cost (trust mesh) is what grows
// quadratically.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/clock.hpp"
#include "domain/domain.hpp"

namespace {

using namespace mdac;

core::Policy vo_policy() {
  core::Policy p;
  p.policy_id = "vo-shared";
  p.rule_combining = "first-applicable";
  core::Rule permit;
  permit.id = "analysts-read-dataset";
  permit.effect = core::Effect::kPermit;
  core::Target t;
  t.require(core::Category::kSubject, core::attrs::kRole,
            core::AttributeValue("analyst"));
  t.require(core::Category::kResource, core::attrs::kResourceId,
            core::AttributeValue("vo-dataset"));
  permit.target = std::move(t);
  p.rules.push_back(std::move(permit));
  core::Rule deny;
  deny.id = "deny-rest";
  deny.effect = core::Effect::kDeny;
  p.rules.push_back(std::move(deny));
  return p;
}

struct Vo {
  common::ManualClock clock{1'000'000};
  std::vector<std::unique_ptr<domain::Domain>> domains;
  domain::VirtualOrganisation vo{"bench-vo"};

  explicit Vo(int n) {
    for (int i = 0; i < n; ++i) {
      domains.push_back(
          std::make_unique<domain::Domain>("domain-" + std::to_string(i), clock));
      domains.back()->register_user(
          "user-" + std::to_string(i),
          {{core::attrs::kRole, core::Bag(core::AttributeValue("analyst"))}});
      vo.add_member(domains.back().get());
    }
    vo.establish_pairwise_trust();
    vo.distribute_policy(vo_policy());
  }
};

void BM_CrossDomainRequest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Vo vo(n);
  int i = 0;
  std::size_t allowed = 0;
  for (auto _ : state) {
    domain::Domain& home = *vo.domains[static_cast<std::size_t>(i) % vo.domains.size()];
    domain::Domain& target =
        *vo.domains[static_cast<std::size_t>(i + 1) % vo.domains.size()];
    const auto token = home.issue_identity_assertion(
        "user-" + std::to_string(i % n), target.name(), 60'000);
    const auto result =
        target.handle_cross_domain_request(token, "vo-dataset", "read");
    allowed += result.allowed ? 1 : 0;
    benchmark::DoNotOptimize(result);
    ++i;
  }
  state.counters["domains"] = n;
  state.counters["grant_ratio"] =
      benchmark::Counter(static_cast<double>(allowed) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CrossDomainRequest)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_AssertionIssueOnly(benchmark::State& state) {
  Vo vo(2);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vo.domains[0]->issue_identity_assertion(
        "user-0", "domain-1", 60'000));
    ++i;
  }
}
BENCHMARK(BM_AssertionIssueOnly);

void BM_ValidateAndDecideOnly(benchmark::State& state) {
  Vo vo(2);
  const auto token =
      vo.domains[0]->issue_identity_assertion("user-0", "domain-1", 60'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vo.domains[1]->handle_cross_domain_request(token, "vo-dataset", "read"));
  }
}
BENCHMARK(BM_ValidateAndDecideOnly);

void BM_VoSetupCost(benchmark::State& state) {
  // Trust-mesh establishment + policy distribution; quadratic in members.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Vo vo(n);
    benchmark::DoNotOptimize(vo.domains.size());
  }
  state.counters["domains"] = n;
}
BENCHMARK(BM_VoSetupCost)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
