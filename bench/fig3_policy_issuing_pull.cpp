// FIG3 — the policy-issuing (pull) architecture of Fig. 3: every access
// triggers a PEP -> PDP decision query over the (simulated) network.
//
// Series reported:
//   * wall-clock cost of one pull decision (serialise, two envelope
//     codecs, PDP evaluation, deserialise)
//   * simulated end-to-end latency and message/byte counts per decision
//     as link latency grows
//
// Expected shape: the pull model pays 2 messages and 2x link latency on
// EVERY request — the "communication performance" burden of §3.2 that
// caching (C1) and the push model (C5) attack.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/serialization.hpp"
#include "pep/pep.hpp"
#include "pep/remote.hpp"
#include "workload.hpp"

namespace {

using namespace mdac;

void BM_PullDecisionWallClock(benchmark::State& state) {
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({0, 0, 0.0});  // isolate processing cost
  auto pdp = std::make_shared<core::Pdp>(bench::make_policy_store(100));
  pep::PdpService service(network, "pdp", pdp);
  pep::RemotePdpClient client(network, "pep", "pdp");

  common::Rng rng(7);
  for (auto _ : state) {
    const auto request = bench::random_request(rng, 100, 3);
    core::Decision decision;
    client.evaluate(request, [&](core::Decision d) { decision = std::move(d); });
    sim.run();
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_PullDecisionWallClock);

void BM_PullDecisionSimLatency(benchmark::State& state) {
  // Reports simulated milliseconds + messages + bytes per decision for a
  // given one-way link latency.
  const common::Duration link_ms = state.range(0);
  net::Simulator sim;
  net::Network network(sim);
  network.set_default_link({link_ms, 0, 0.0});
  auto pdp = std::make_shared<core::Pdp>(bench::make_policy_store(100));
  pep::PdpService service(network, "pdp", pdp);
  pep::RemotePdpClient client(network, "pep", "pdp", /*timeout=*/10'000);

  common::Rng rng(7);
  double total_sim_ms = 0;
  std::size_t decisions = 0;
  for (auto _ : state) {
    const auto request = bench::random_request(rng, 100, 3);
    const common::TimePoint start = sim.now();
    common::TimePoint decided_at = start;
    client.evaluate(request, [&](core::Decision) { decided_at = sim.now(); });
    sim.run();
    total_sim_ms += static_cast<double>(decided_at - start);
    ++decisions;
  }
  state.counters["link_ms"] = static_cast<double>(link_ms);
  state.counters["sim_ms_per_decision"] = total_sim_ms / static_cast<double>(decisions);
  state.counters["msgs_per_decision"] =
      static_cast<double>(network.stats().messages_sent) /
      static_cast<double>(decisions);
  state.counters["bytes_per_decision"] =
      static_cast<double>(network.stats().bytes_sent) /
      static_cast<double>(decisions);
}
BENCHMARK(BM_PullDecisionSimLatency)->Arg(1)->Arg(5)->Arg(20)->Arg(80);

void BM_AgentModelColocated(benchmark::State& state) {
  // The agent model (paper §2.2): PEP and PDP colocated, no network.
  // The floor the pull model's overhead is measured against.
  auto pdp = std::make_shared<core::Pdp>(bench::make_policy_store(100));
  pep::EnforcementPoint pep(
      [&](const core::RequestContext& request) { return pdp->evaluate(request); });
  common::Rng rng(7);
  for (auto _ : state) {
    const auto request = bench::random_request(rng, 100, 3);
    benchmark::DoNotOptimize(pep.enforce(request));
  }
}
BENCHMARK(BM_AgentModelColocated);

void BM_RequestSerialisationShare(benchmark::State& state) {
  // How much of the pull path is XML encode/decode (the paper's XACML
  // verbosity concern).
  common::Rng rng(7);
  for (auto _ : state) {
    const auto request = bench::random_request(rng, 100, 3);
    const std::string wire = core::request_to_string(request);
    benchmark::DoNotOptimize(core::request_from_string(wire));
  }
}
BENCHMARK(BM_RequestSerialisationShare);

}  // namespace
