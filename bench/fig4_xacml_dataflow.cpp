// FIG4 — XACML data-flow (paper Fig. 4): cost of one authorisation
// decision query inside the PDP as the policy base grows.
//
// Series reported:
//   * decision latency vs number of policies, target index ON vs OFF
//   * decision latency vs rules per policy
//   * decision latency vs attributes pulled from the PIP resolver
//
// Expected shape: without the index, latency grows linearly in the policy
// count (every target is scanned); with the index it stays near-constant.
// Rules-per-policy grows linearly in both configurations (the applicable
// policy must still be combined). PIP pulls add a constant per-attribute
// cost and are memoised within one evaluation.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/pdp.hpp"
#include "core/policy.hpp"
#include "core/request.hpp"

namespace {

using namespace mdac;

/// Builds `n_policies` policies, each targeting its own resource id
/// "res-<i>" with `rules_per_policy` role-gated rules.
std::shared_ptr<core::PolicyStore> make_store(int n_policies, int rules_per_policy) {
  auto store = std::make_shared<core::PolicyStore>();
  for (int i = 0; i < n_policies; ++i) {
    core::Policy p;
    p.policy_id = "policy-" + std::to_string(i);
    p.rule_combining = "first-applicable";
    p.target_spec.require(core::Category::kResource, core::attrs::kResourceId,
                          core::AttributeValue("res-" + std::to_string(i)));
    for (int r = 0; r < rules_per_policy; ++r) {
      core::Rule rule;
      rule.id = "rule-" + std::to_string(r);
      rule.effect =
          r + 1 == rules_per_policy ? core::Effect::kPermit : core::Effect::kDeny;
      rule.condition = core::make_apply(
          "any-of", core::function_ref("string-equal"),
          core::lit("role-" + std::to_string(r)),
          core::designator(core::Category::kSubject, core::attrs::kRole,
                           core::DataType::kString));
      p.rules.push_back(std::move(rule));
    }
    store->add(std::move(p));
  }
  return store;
}

core::RequestContext middle_request(int n_policies, int rules_per_policy) {
  core::RequestContext req = core::RequestContext::make(
      "alice", "res-" + std::to_string(n_policies / 2), "read");
  req.add(core::Category::kSubject, core::attrs::kRole,
          core::AttributeValue("role-" + std::to_string(rules_per_policy - 1)));
  return req;
}

void BM_DecisionVsPolicyCount_Indexed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto store = make_store(n, 2);
  core::Pdp pdp(store, core::PdpConfig{"deny-overrides", /*use_target_index=*/true});
  const auto req = middle_request(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdp.evaluate(req));
  }
  state.counters["policies"] = n;
}
BENCHMARK(BM_DecisionVsPolicyCount_Indexed)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecisionVsPolicyCount_Scan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto store = make_store(n, 2);
  core::Pdp pdp(store, core::PdpConfig{"deny-overrides", /*use_target_index=*/false});
  const auto req = middle_request(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdp.evaluate(req));
  }
  state.counters["policies"] = n;
}
BENCHMARK(BM_DecisionVsPolicyCount_Scan)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecisionVsRulesPerPolicy(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  auto store = make_store(100, rules);
  core::Pdp pdp(store);
  const auto req = middle_request(100, rules);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdp.evaluate(req));
  }
  state.counters["rules_per_policy"] = rules;
}
BENCHMARK(BM_DecisionVsRulesPerPolicy)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Resolver that answers any subject attribute after simulating a lookup.
class CountingResolver final : public core::AttributeResolver {
 public:
  std::optional<core::Bag> resolve(core::Category, const std::string& id,
                                   const core::RequestContext&) override {
    ++calls;
    return core::Bag(core::AttributeValue("value-of-" + id));
  }
  int calls = 0;
};

void BM_DecisionVsPipAttributes(benchmark::State& state) {
  const int n_attrs = static_cast<int>(state.range(0));
  auto store = std::make_shared<core::PolicyStore>();
  core::Policy p;
  p.policy_id = "attribute-heavy";
  core::Rule rule;
  rule.id = "needs-attrs";
  rule.effect = core::Effect::kPermit;
  // AND over n PIP-resolved attribute comparisons.
  std::vector<core::ExprPtr> conjuncts;
  for (int i = 0; i < n_attrs; ++i) {
    const std::string id = "pip-attr-" + std::to_string(i);
    conjuncts.push_back(core::make_apply(
        "string-equal",
        core::make_apply("one-and-only",
                    core::designator(core::Category::kSubject, id,
                                     core::DataType::kString, true)),
        core::lit("value-of-" + id)));
  }
  rule.condition = core::make_apply_vec("and", std::move(conjuncts));
  p.rules.push_back(std::move(rule));
  store->add(std::move(p));

  CountingResolver resolver;
  core::Pdp pdp(store);
  pdp.set_resolver(&resolver);
  const auto req = core::RequestContext::make("alice", "res", "read");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdp.evaluate(req));
  }
  state.counters["pip_attributes"] = n_attrs;
}
BENCHMARK(BM_DecisionVsPipAttributes)->Arg(0)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
