// C1 — decision caching at the PEP (paper §3.2, "Communication
// Performance", Woo & Lam's caching proposal [61]).
//
// Series reported:
//   * hit ratio and backend-call reduction vs TTL, fixed policy churn
//   * the price of staleness: false permits / false denies observed when
//     cached decisions are compared against a fresh-oracle PDP
//   * hit ratio vs working-set size at fixed capacity (LRU pressure)
//
// Expected shape: longer TTLs push the hit ratio towards the request
// distribution's re-reference rate, while stale-decision incidents rise
// roughly linearly with TTL x churn — exactly the trade-off the paper
// warns about ("information stored in the cache memory may not be
// up-to-date which may result in false positive or false negative access
// control decisions").
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/decision_cache.hpp"
#include "common/rng.hpp"
#include "workload.hpp"

namespace {

using namespace mdac;

void BM_HitRatioAndStalenessVsTtl(benchmark::State& state) {
  const common::Duration ttl = state.range(0);
  constexpr int kPolicies = 50;
  constexpr int kRoles = 3;
  constexpr int kUsers = 20;

  double hit_ratio = 0;
  double false_rate = 0;
  for (auto _ : state) {
    common::ManualClock clock;
    auto store = bench::make_policy_store(kPolicies, kRoles);
    core::Pdp pdp(store);
    cache::DecisionCache decision_cache(clock, ttl);
    cache::StalenessProbe probe;
    common::Rng rng(42);

    std::size_t backend_calls = 0;
    for (int step = 0; step < 2000; ++step) {
      clock.advance(1);
      // Policy churn: every 100 steps one policy flips its protected
      // resource's rules (simulated by replacing it with a deny-all).
      if (step % 100 == 99) {
        const int victim = static_cast<int>(rng.uniform_int(0, kPolicies - 1));
        core::Policy deny_all;
        deny_all.policy_id = "policy-" + std::to_string(victim);
        deny_all.target_spec.require(
            core::Category::kResource, core::attrs::kResourceId,
            core::AttributeValue("res-" + std::to_string(victim)));
        core::Rule r;
        r.id = "deny";
        r.effect = core::Effect::kDeny;
        deny_all.rules.push_back(std::move(r));
        store->add(std::move(deny_all));
        // NOTE: deliberately no cache invalidation — that is the
        // staleness being measured.
      }

      // Zipf-ish: a small set of users re-reads a small set of resources.
      core::RequestContext req = core::RequestContext::make(
          "user-" + std::to_string(rng.uniform_int(0, kUsers - 1)),
          "res-" + std::to_string(rng.uniform_int(0, kPolicies / 5)), "read");
      req.add(core::Category::kSubject, core::attrs::kRole,
              core::AttributeValue("role-" + std::to_string(rng.uniform_int(0, kRoles))));

      core::Decision served;
      if (auto hit = decision_cache.lookup(req)) {
        served = *hit;
        probe.observe(*hit, pdp.evaluate(req));  // oracle comparison
      } else {
        served = pdp.evaluate(req);
        ++backend_calls;
        if (served.is_permit() || served.is_deny()) {
          decision_cache.insert(req, served);
        }
      }
      benchmark::DoNotOptimize(served);
    }
    hit_ratio = decision_cache.stats().hit_ratio();
    const double disagreements =
        static_cast<double>(probe.false_permits + probe.false_denies);
    false_rate = disagreements / 2000.0;
    benchmark::DoNotOptimize(backend_calls);
  }
  state.counters["ttl_ms"] = static_cast<double>(ttl);
  state.counters["hit_ratio"] = hit_ratio;
  state.counters["stale_decision_rate"] = false_rate;
}
BENCHMARK(BM_HitRatioAndStalenessVsTtl)->Arg(0)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_LruPressure(benchmark::State& state) {
  // Working set larger than capacity: hit ratio collapses.
  const int working_set = static_cast<int>(state.range(0));
  common::ManualClock clock;
  cache::DecisionCache decision_cache(clock, /*ttl=*/1'000'000, /*capacity=*/256);
  common::Rng rng(7);
  for (auto _ : state) {
    const auto req = core::RequestContext::make(
        "user", "res-" + std::to_string(rng.uniform_int(0, working_set - 1)), "read");
    if (!decision_cache.lookup(req)) {
      decision_cache.insert(req, core::Decision::permit());
    }
  }
  state.counters["working_set"] = working_set;
  state.counters["hit_ratio"] = decision_cache.stats().hit_ratio();
}
BENCHMARK(BM_LruPressure)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CacheLookupCost(benchmark::State& state) {
  // The raw cost of a hit (canonicalisation dominates).
  common::ManualClock clock;
  cache::DecisionCache decision_cache(clock, 1'000'000);
  const auto req = core::RequestContext::make("user", "res", "read");
  decision_cache.insert(req, core::Decision::permit());
  for (auto _ : state) {
    benchmark::DoNotOptimize(decision_cache.lookup(req));
  }
}
BENCHMARK(BM_CacheLookupCost);

void BM_InvalidationRestoresCorrectness(benchmark::State& state) {
  // With invalidate_all() wired to policy changes the stale rate is zero;
  // the cost is the post-invalidation miss burst, measured here.
  common::ManualClock clock;
  auto store = bench::make_policy_store(20, 3);
  core::Pdp pdp(store);
  cache::DecisionCache decision_cache(clock, 1'000'000);
  common::Rng rng(42);
  std::size_t misses_after_invalidation = 0;
  for (auto _ : state) {
    for (int i = 0; i < 20; ++i) {
      const auto req = bench::random_request(rng, 20, 3);
      if (!decision_cache.lookup(req)) {
        decision_cache.insert(req, pdp.evaluate(req));
      }
    }
    decision_cache.invalidate_all();
    const auto probe = bench::random_request(rng, 20, 3);
    if (!decision_cache.lookup(probe)) ++misses_after_invalidation;
  }
  state.counters["miss_burst"] = static_cast<double>(misses_after_invalidation) /
                                 static_cast<double>(state.iterations());
}
BENCHMARK(BM_InvalidationRestoresCorrectness);

}  // namespace
